// ksa_lint -- the project-specific model-conformance linter.
//
// General-purpose static analysis (clang-tidy, sanitizers; see
// doc/analysis.md) cannot know the *model* rules this repository lives
// by: executions must be bit-identical across replays (sim/system.hpp),
// so any iteration-order, RNG or hidden-IO dependence in the engine is a
// proof-soundness bug even when it is perfectly well-defined C++.  This
// tool scans source files for those hazards:
//
//   unordered-container   std::unordered_{set,map,multiset,multimap} in
//                         sim/ or core/: hash-iteration order leaks into
//                         traces, digests and exploration frontiers.
//   raw-random            rand()/srand()/std::random_device anywhere in
//                         src/: nondeterministic or hidden-global
//                         randomness.  Randomized components must take a
//                         seed and use std::mt19937_64 (RandomScheduler
//                         is the pattern).
//   missing-override      a Scheduler/Behavior/Algorithm/FdOracle virtual
//                         re-declared without `override`/`final`:
//                         interface drift then silently detaches a
//                         subclass from the engine.
//   stream-io-in-library  std::cout/std::cerr/printf in src/ library
//                         code: libraries report through return values
//                         and reports, not process-global streams
//                         (rendering belongs to examples/ and tools/).
//   interning-outside-reduction
//                         TagInterner/intern_tag used outside
//                         src/core/reduction.*: the interner is the
//                         reduction layer's private cache.  Its ids are
//                         content-derived (so dedup keys stay
//                         deterministic), but the table itself is
//                         warm-up-stateful global state -- any other
//                         layer keying on interned ids would couple its
//                         output to interner history.  Everyone else
//                         hashes the tag bytes directly (sim/digest.hpp).
//
// Suppression: append  // ksa-lint: allow(<rule>)  to the offending line
// or the line directly above it.  Suppressions are for *justified*
// exceptions (say why in a comment); the ctest-registered clean run
// (`ksa_lint <repo>/src`) keeps src/ at zero unsuppressed findings.
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
    std::string file;
    std::size_t line = 0;
    std::string rule;
    std::string message;
};

struct Rule {
    std::string name;
    std::regex pattern;
    std::string message;
    /// Returns true when the rule applies to this file at all.
    bool (*applies)(const fs::path& file);
};

/// Path helpers ------------------------------------------------------------

bool path_contains_dir(const fs::path& file, const std::string& dir) {
    for (const fs::path& part : file)
        if (part == dir) return true;
    return false;
}

bool in_deterministic_hot_path(const fs::path& file) {
    // The engine (sim/), the proof constructions (core/) and the
    // fault-injection adversary (chaos/) are the replay-critical layers:
    // chaos runs must replay bit-identically through the determinism
    // auditor, so the injector is held to the same determinism bar as
    // the engine it perturbs.
    return path_contains_dir(file, "sim") || path_contains_dir(file, "core") ||
           path_contains_dir(file, "chaos");
}

bool any_source(const fs::path&) { return true; }

bool in_library_code(const fs::path& file) {
    // Library code lives under src/; examples/ and tools/ are entitled
    // to stream IO (it is their job).
    return path_contains_dir(file, "src");
}

bool in_library_code_outside_exec(const fs::path& file) {
    // src/exec/ is the ONE layer allowed to hold threading primitives
    // (thread_pool.hpp states the determinism discipline).  Everywhere
    // else in src/, parallelism must go through
    // exec::parallel_map_deterministic, so that N-thread output stays
    // byte-identical to 1-thread output by construction.
    return path_contains_dir(file, "src") && !path_contains_dir(file, "exec");
}

bool is_interface_header(const fs::path& file) {
    // The headers that *introduce* the virtuals: declaring them there
    // without `override` is correct.
    const std::string name = file.filename().string();
    return name == "scheduler.hpp" || name == "behavior.hpp" ||
           name == "fd_oracle.hpp";
}

bool override_rule_applies(const fs::path& file) {
    return !is_interface_header(file);
}

bool in_library_code_outside_reduction(const fs::path& file) {
    // src/core/reduction.{hpp,cpp} own the tag interner; every other
    // library file must not touch it (see the rule table entry).
    const std::string name = file.filename().string();
    if (path_contains_dir(file, "core") && name.rfind("reduction.", 0) == 0)
        return false;
    return path_contains_dir(file, "src");
}

/// The rule table ----------------------------------------------------------

const std::vector<Rule>& rules() {
    static const std::vector<Rule> kRules = {
        {"unordered-container",
         std::regex(R"(std::unordered_(set|map|multiset|multimap)\b)"),
         "hash-ordered container in a replay-critical layer; iteration "
         "order is not deterministic across builds -- use std::set/std::map "
         "or sort before iterating",
         &in_deterministic_hot_path},
        {"raw-random",
         // ksa-lint: allow(raw-random) -- the pattern itself.
         std::regex(R"((\b(s?rand)\s*\()|(std::random_device\b))"),
         "unseeded/global randomness; take an explicit seed and use "
         "std::mt19937_64 so runs stay replayable",
         &any_source},
        {"missing-override",
         // A re-declaration of one of the engine's virtuals that carries
         // neither `override` nor `final` nor a pure-virtual marker on
         // the same line.  The virtual set is small and stable, which
         // keeps this textual check precise.
         std::regex(
             R"((next\s*\(\s*const\s+SystemView|on_step\s*\(\s*const\s+StepInput|state_digest\s*\(\s*\)\s*const|fold_state\s*\(\s*StateHasher|fold_state_renamed\s*\(\s*StateHasher|make_behavior\s*\(\s*ProcessId|query\s*\(\s*const\s+QueryContext|needs_failure_detector\s*\(\s*\)\s*const|may_send\s*\(\s*\)\s*const|message_inert\s*\(\s*ProcessId|rename_payload_ids\s*\(\s*Payload|decided_is_final\s*\(\s*\)\s*const))"),
         "re-declared engine virtual without `override`/`final`; interface "
         "drift would silently detach this subclass",
         &override_rule_applies},
        {"threading-outside-exec",
         // Thread/lock/atomic vocabulary outside the exec layer.  The
         // match is on the primitives, not on <thread>-style includes,
         // so a comment mentioning threads stays legal.
         // ksa-lint: allow(threading-outside-exec) -- the pattern itself.
         std::regex(
             R"(std::(jthread|thread\b|mutex|shared_mutex|timed_mutex|recursive_mutex|condition_variable|atomic|async\s*\(|future<|promise<|lock_guard|unique_lock|scoped_lock|shared_lock|barrier<|latch\b|counting_semaphore|binary_semaphore|call_once|once_flag|this_thread))"),
         "threading primitive outside src/exec/; express parallelism "
         "through exec::parallel_map_deterministic (doc/performance.md) "
         "or, for genuinely thread-safe bookkeeping, annotate with "
         "ksa-lint: allow(threading-outside-exec)",
         &in_library_code_outside_exec},
        {"stream-io-in-library",
         std::regex(R"((std::cout\b|std::cerr\b|\bprintf\s*\())"),
         "process-global stream IO in library code; return a report/string "
         "and let examples/ or tools/ render it",
         &in_library_code},
        {"interning-outside-reduction",
         std::regex(R"(\b(TagInterner|intern_tag)\b)"),
         "tag interning outside core/reduction; interned ids are the "
         "reduction layer's private cache (content-derived, but the table "
         "is warm-up-stateful global state) -- hash the tag bytes directly "
         "(sim/digest.hpp) or, for a justified exception, annotate with "
         "ksa-lint: allow(interning-outside-reduction)",
         &in_library_code_outside_reduction},
    };
    return kRules;
}

/// Per-line machinery ------------------------------------------------------

bool is_suppressed(const std::string& line, const std::string& prev,
                   const std::string& rule) {
    const std::string tag = "ksa-lint: allow(" + rule + ")";
    return line.find(tag) != std::string::npos ||
           prev.find(tag) != std::string::npos;
}

/// `missing-override` exemptions the regex cannot see: virtual
/// introductions (`virtual ... = 0;` or `virtual ...;` in the interface)
/// and the contract-layer's own mentions in comments.
bool line_declares_virtual(const std::string& line) {
    return line.find("virtual ") != std::string::npos;
}

bool looks_like_comment(const std::string& line) {
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) return true;
    return line.compare(first, 2, "//") == 0 || line[first] == '*' ||
           line.compare(first, 2, "/*") == 0;
}

/// Whether `word` occurs in `text` as a whole identifier token.  A
/// plain substring search would let `decided_is_final` satisfy the
/// `final` requirement through its own name.
bool contains_token(const std::string& text, const std::string& word) {
    auto is_ident = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               (c >= '0' && c <= '9') || c == '_';
    };
    for (std::size_t pos = text.find(word); pos != std::string::npos;
         pos = text.find(word, pos + 1)) {
        const bool left_ok = pos == 0 || !is_ident(text[pos - 1]);
        const std::size_t end = pos + word.size();
        const bool right_ok = end >= text.size() || !is_ident(text[end]);
        if (left_ok && right_ok) return true;
    }
    return false;
}

/// An out-of-class member *definition* (`Type Class::next(...)`) cannot
/// repeat `override`; only in-class re-declarations are checked.
bool is_out_of_class_definition(const std::string& line,
                                const std::smatch& match) {
    const std::size_t pos = static_cast<std::size_t>(match.position(0));
    return pos >= 2 && line.compare(pos - 2, 2, "::") == 0;
}

/// Joins `lines[index..]` into the complete declaration statement: C++
/// declarations may wrap, and `override` usually sits on the last line.
std::string statement_from(const std::vector<std::string>& lines,
                           std::size_t index) {
    std::string statement;
    const std::size_t limit = std::min(lines.size(), index + 8);
    for (std::size_t i = index; i < limit; ++i) {
        statement += lines[i];
        statement += ' ';
        // A declaration ends at `;` or at the body's opening `{`.
        if (lines[i].find(';') != std::string::npos ||
            lines[i].find('{') != std::string::npos)
            break;
    }
    return statement;
}

void scan_file(const fs::path& file, std::vector<Finding>& findings) {
    std::ifstream in(file);
    if (!in) {
        throw std::runtime_error("cannot open " + file.string());
    }
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(line);

    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string& line = lines[i];
        if (looks_like_comment(line)) continue;
        const std::string& prev = i > 0 ? lines[i - 1] : line;
        for (const Rule& rule : rules()) {
            if (!rule.applies(file)) continue;
            std::smatch match;
            if (!std::regex_search(line, match, rule.pattern)) continue;
            if (rule.name == "missing-override") {
                if (line_declares_virtual(line)) continue;
                if (is_out_of_class_definition(line, match)) continue;
                const std::string statement = statement_from(lines, i);
                if (contains_token(statement, "override") ||
                    contains_token(statement, "final"))
                    continue;
            }
            if (is_suppressed(line, prev, rule.name)) continue;
            findings.push_back(
                {file.string(), i + 1, rule.name, rule.message});
        }
    }
}

bool is_source_file(const fs::path& file) {
    const std::string ext = file.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

int usage() {
    std::cerr
        << "usage: ksa_lint [--list-rules] <file-or-directory>...\n"
        << "Scans C++ sources for ksa model-conformance hazards.\n"
        << "Suppress a finding with `// ksa-lint: allow(<rule>)` on the\n"
        << "offending line or the line above it.\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<fs::path> roots;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const Rule& rule : rules())
                std::cout << rule.name << ": " << rule.message << "\n";
            return 0;
        }
        if (arg == "--help" || arg == "-h") return usage();
        roots.emplace_back(arg);
    }
    if (roots.empty()) return usage();

    std::vector<Finding> findings;
    std::size_t files_scanned = 0;
    try {
        for (const fs::path& root : roots) {
            if (fs::is_regular_file(root)) {
                scan_file(root, findings);
                ++files_scanned;
                continue;
            }
            if (!fs::is_directory(root)) {
                std::cerr << "ksa_lint: no such file or directory: " << root
                          << "\n";
                return 2;
            }
            for (const auto& entry : fs::recursive_directory_iterator(root)) {
                if (!entry.is_regular_file()) continue;
                if (!is_source_file(entry.path())) continue;
                scan_file(entry.path(), findings);
                ++files_scanned;
            }
        }
    } catch (const std::exception& e) {
        std::cerr << "ksa_lint: " << e.what() << "\n";
        return 2;
    }

    for (const Finding& f : findings)
        std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
    std::cout << "ksa_lint: " << files_scanned << " file(s), "
              << findings.size() << " finding(s)\n";
    return findings.empty() ? 0 : 1;
}
