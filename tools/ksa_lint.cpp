// ksa_lint -- the project-specific model-conformance linter (classic
// rule set), now a thin CLI over the src/lint/ library.
//
// General-purpose static analysis (clang-tidy, sanitizers; see
// doc/analysis.md) cannot know the *model* rules this repository lives
// by: executions must be bit-identical across replays (sim/system.hpp),
// so any iteration-order, RNG or hidden-IO dependence in the engine is a
// proof-soundness bug even when it is perfectly well-defined C++.
//
// This tool runs exactly the six classic line rules (the `legacy` set in
// src/lint/rules.cpp): unordered-container, raw-random,
// missing-override, threading-outside-exec, stream-io-in-library,
// interning-outside-reduction.  The whole-program passes (layering,
// include cycles, float-in-digest) and the SARIF/ratchet machinery live
// in tools/ksa_analyze, built on the same library.
//
// What moved into the library (src/lint/):
//   * the lexer: rules no longer fire inside comments, string literals
//     or raw strings (lexer.hpp);
//   * suppressions: `// ksa-lint: allow(rule-a, rule-b)` may name
//     several rules, a standalone allow-comment covers the whole next
//     statement even when it wraps, and tags inside block comments or
//     strings are inert (source_file.hpp states the exact semantics);
//   * the rule table itself (rules.cpp), so ksa_lint and ksa_analyze
//     can never disagree about what a rule means.
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/rules.hpp"
#include "lint/source_file.hpp"

namespace fs = std::filesystem;

namespace {

/// Directories the scan never descends into: planted-violation corpora
/// (tests/lint_fixtures/, scanned explicitly by their own tests), build
/// trees and VCS/housekeeping directories.  Mirrors
/// lint::scan_tree's policy so the two CLIs agree.
bool skip_directory(const fs::path& dir) {
    const std::string name = dir.filename().string();
    return name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
           (!name.empty() && name[0] == '.');
}

int usage() {
    std::cerr
        << "usage: ksa_lint [--list-rules] <file-or-directory>...\n"
        << "Scans C++ sources for ksa model-conformance hazards.\n"
        << "Suppress a finding with `// ksa-lint: allow(<rule>)` on the\n"
        << "offending line or the line above it.\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<fs::path> roots;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const ksa::lint::RuleInfo& rule : ksa::lint::all_rules())
                if (rule.legacy)
                    std::cout << rule.name << ": " << rule.message << "\n";
            return 0;
        }
        if (arg == "--help" || arg == "-h") return usage();
        roots.emplace_back(arg);
    }
    if (roots.empty()) return usage();

    std::vector<ksa::lint::SourceFile> files;
    try {
        for (const fs::path& root : roots) {
            if (fs::is_regular_file(root)) {
                files.push_back(
                    ksa::lint::SourceFile::load(root, root.string()));
                continue;
            }
            if (!fs::is_directory(root)) {
                std::cerr << "ksa_lint: no such file or directory: " << root
                          << "\n";
                return 2;
            }
            for (fs::recursive_directory_iterator it(root), end; it != end;
                 ++it) {
                if (it->is_directory() && skip_directory(it->path())) {
                    it.disable_recursion_pending();
                    continue;
                }
                if (!it->is_regular_file() ||
                    !ksa::lint::is_source_file(it->path()))
                    continue;
                files.push_back(ksa::lint::SourceFile::load(
                    it->path(), it->path().string()));
            }
        }
    } catch (const std::exception& e) {
        std::cerr << "ksa_lint: " << e.what() << "\n";
        return 2;
    }

    const ksa::lint::AnalysisResult result =
        ksa::lint::analyze_files(files, /*legacy_only=*/true);
    for (const ksa::lint::Finding& f : result.findings)
        std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
    std::cout << "ksa_lint: " << result.files_scanned << " file(s), "
              << result.findings.size() << " finding(s)\n";
    return result.findings.empty() ? 0 : 1;
}
