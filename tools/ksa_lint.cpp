// ksa_lint -- the project-specific model-conformance linter (classic
// rule set), now a thin CLI over the src/lint/ library.
//
// General-purpose static analysis (clang-tidy, sanitizers; see
// doc/analysis.md) cannot know the *model* rules this repository lives
// by: executions must be bit-identical across replays (sim/system.hpp),
// so any iteration-order, RNG or hidden-IO dependence in the engine is a
// proof-soundness bug even when it is perfectly well-defined C++.
//
// This tool runs exactly the six classic line rules (the `legacy` set in
// src/lint/rules.cpp): unordered-container, raw-random,
// missing-override, threading-outside-exec, stream-io-in-library,
// interning-outside-reduction.  The whole-program passes (layering,
// include cycles, float-in-digest) and the SARIF/ratchet machinery live
// in tools/ksa_analyze, built on the same library.
//
// What moved into the library (src/lint/):
//   * the lexer: rules no longer fire inside comments, string literals
//     or raw strings (lexer.hpp);
//   * suppressions: `// ksa-lint: allow(rule-a, rule-b)` may name
//     several rules, a standalone allow-comment covers the whole next
//     statement even when it wraps, and tags inside block comments or
//     strings are inert (source_file.hpp states the exact semantics);
//   * the rule table itself (rules.cpp), so ksa_lint and ksa_analyze
//     can never disagree about what a rule means.
//
// Ratchet: --baseline <file> grandfathers committed findings exactly
// like ksa_analyze does (same src/lint/ratchet.hpp machinery).  A
// missing or unreadable baseline is a hard error -- create one
// explicitly with --init-baseline.  --format json emits the findings
// as the internal JSON model instead of the text report.
//
// Exit codes: 0 clean (or ratchet satisfied), 1 findings/regressions,
// 2 usage/IO error (including a missing/unreadable baseline).

#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/ratchet.hpp"
#include "lint/rules.hpp"
#include "lint/source_file.hpp"

namespace fs = std::filesystem;

namespace {

/// Directories the scan never descends into: planted-violation corpora
/// (tests/lint_fixtures/, scanned explicitly by their own tests), build
/// trees and VCS/housekeeping directories.  Mirrors
/// lint::scan_tree's policy so the two CLIs agree.
bool skip_directory(const fs::path& dir) {
    const std::string name = dir.filename().string();
    return name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
           (!name.empty() && name[0] == '.');
}

int usage() {
    std::cerr
        << "usage: ksa_lint [options] <file-or-directory>...\n"
        << "Scans C++ sources for ksa model-conformance hazards.\n"
        << "\n"
        << "  --list-rules       print the classic rule set and exit\n"
        << "  --format <fmt>     report format: text (default) or json\n"
        << "  --baseline <file>  ratchet against a committed baseline\n"
        << "                     (missing/unreadable baseline = exit 2)\n"
        << "  --init-baseline    create the --baseline file and exit\n"
        << "\n"
        << "Suppress a finding with `// ksa-lint: allow(<rule>)` on the\n"
        << "offending line or the line above it.\n";
    return 2;
}

bool write_file(const fs::path& path, const std::string& text,
                std::string& error) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        error = "cannot write " + path.string();
        return false;
    }
    out << text;
    out.flush();
    if (!out) {
        error = "short write to " + path.string();
        return false;
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<fs::path> roots;
    std::optional<fs::path> baseline_path;
    bool init_baseline = false;
    std::string format = "text";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const ksa::lint::RuleInfo& rule : ksa::lint::all_rules())
                if (rule.legacy)
                    std::cout << rule.name << ": " << rule.message << "\n";
            return 0;
        }
        if (arg == "--baseline") {
            if (i + 1 >= argc) {
                std::cerr << "ksa_lint: --baseline needs an argument\n";
                return 2;
            }
            baseline_path = fs::path(argv[++i]);
            continue;
        }
        if (arg == "--init-baseline") {
            init_baseline = true;
            continue;
        }
        if (arg == "--format") {
            if (i + 1 >= argc) {
                std::cerr << "ksa_lint: --format needs an argument\n";
                return 2;
            }
            format = argv[++i];
            continue;
        }
        if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
            continue;
        }
        if (arg == "--help" || arg == "-h") return usage();
        if (!arg.empty() && arg[0] == '-') {
            std::cerr << "ksa_lint: unknown option " << arg << "\n";
            return usage();
        }
        roots.emplace_back(arg);
    }
    if (roots.empty()) return usage();
    if (init_baseline && !baseline_path.has_value()) {
        std::cerr << "ksa_lint: --init-baseline needs --baseline <file>\n";
        return 2;
    }
    if (format != "text" && format != "json") {
        std::cerr << "ksa_lint: unknown --format " << format
                  << " (expected text or json)\n";
        return 2;
    }
    // Same contract as ksa_analyze: a missing/unreadable baseline is a
    // hard error, never an implicit empty baseline.
    if (baseline_path.has_value() && !init_baseline) {
        std::error_code ec;
        if (!fs::is_regular_file(*baseline_path, ec)) {
            std::cerr << "ksa_lint: baseline " << baseline_path->string()
                      << " not found or unreadable; create it with "
                         "--init-baseline\n";
            return 2;
        }
    }
    if (init_baseline) {
        std::error_code ec;
        if (fs::is_regular_file(*baseline_path, ec)) {
            std::cerr << "ksa_lint: baseline " << baseline_path->string()
                      << " already exists; delete it first or refresh "
                         "with ksa_analyze --write-baseline\n";
            return 2;
        }
    }

    std::vector<ksa::lint::SourceFile> files;
    try {
        for (const fs::path& root : roots) {
            if (fs::is_regular_file(root)) {
                files.push_back(
                    ksa::lint::SourceFile::load(root, root.string()));
                continue;
            }
            if (!fs::is_directory(root)) {
                std::cerr << "ksa_lint: no such file or directory: " << root
                          << "\n";
                return 2;
            }
            for (fs::recursive_directory_iterator it(root), end; it != end;
                 ++it) {
                if (it->is_directory() && skip_directory(it->path())) {
                    it.disable_recursion_pending();
                    continue;
                }
                if (!it->is_regular_file() ||
                    !ksa::lint::is_source_file(it->path()))
                    continue;
                files.push_back(ksa::lint::SourceFile::load(
                    it->path(), it->path().string()));
            }
        }
    } catch (const std::exception& e) {
        std::cerr << "ksa_lint: " << e.what() << "\n";
        return 2;
    }

    ksa::lint::AnalysisResult result =
        ksa::lint::analyze_files(files, /*legacy_only=*/true);

    if (init_baseline) {
        std::string error;
        if (!write_file(*baseline_path,
                        ksa::lint::baseline_json(result.findings), error)) {
            std::cerr << "ksa_lint: " << error << "\n";
            return 2;
        }
        std::cout << "ksa_lint: wrote baseline (" << result.findings.size()
                  << " finding(s)) to " << baseline_path->string() << "\n";
        return 0;
    }
    if (baseline_path.has_value())
        ksa::lint::apply_baseline(result, *baseline_path);
    for (const std::string& error : result.errors)
        std::cerr << "ksa_lint: " << error << "\n";

    if (format == "json") {
        std::cout << ksa::lint::analysis_json(result);
        if (!result.errors.empty()) return 2;
        return result.has_violations() ? 1 : 0;
    }

    for (const ksa::lint::Finding& f : result.findings)
        std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
    if (result.ratcheted) {
        for (const std::string& line : result.ratchet_regressions)
            std::cout << "ratchet regression: " << line << "\n";
        for (const std::string& line : result.ratchet_stale)
            std::cout << "ratchet stale: " << line << "\n";
    }
    std::cout << "ksa_lint: " << result.files_scanned << " file(s), "
              << result.findings.size() << " finding(s)\n";
    if (!result.errors.empty()) return 2;
    return result.has_violations() ? 1 : 0;
}
