// ksa_analyze -- the whole-program architecture & determinism analyzer.
//
// Built on the same src/lint/ library as ksa_lint, plus the passes that
// need cross-file facts:
//
//   layering          every quoted include is checked against the
//                     architecture DAG in src/lint/layers.def; private
//                     layers (core/reduction) admit only their listed
//                     importer TUs.
//   include-cycle     Tarjan SCC over the include graph: a cycle has no
//                     valid build order, so it is reported even when
//                     every edge individually is legal.
//   float-in-digest   float/double in any file that feeds the state
//                     digest (direct includer of sim/digest.hpp, or a
//                     transitive includer naming the hasher vocabulary).
//   pointer-keyed-container / wall-clock-outside-bench
//                     line rules that exist only in the analyzer set.
//
// Reporting:
//   --sarif <file>      SARIF 2.1.0 for CI code-scanning upload;
//   --format json       findings as the internal JSON model (CI diffs
//                       and service integration read this, not SARIF);
//   --baseline <file>   ratchet mode -- grandfathered findings pass,
//                       NEW findings fail, and FIXED findings fail too
//                       until the baseline is refreshed (monotone
//                       burn-down; see src/lint/ratchet.hpp).  A
//                       missing or unreadable baseline is a hard error:
//                       silently treating it as empty would turn the
//                       ratchet off exactly when a typo'd path or a
//                       corrupted file made it matter;
//   --init-baseline     create the --baseline file from the current
//                       findings (errors if it already exists);
//   --write-baseline    refresh the existing baseline file in place.
//
// Exit codes: 0 clean (or ratchet satisfied), 1 findings/regressions,
// 2 usage/IO error (including a missing/unreadable baseline).

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/ratchet.hpp"
#include "lint/rules.hpp"
#include "lint/sarif.hpp"

namespace fs = std::filesystem;

namespace {

int usage() {
    std::cerr
        << "usage: ksa_analyze [options] [root-relative scan dirs...]\n"
        << "\n"
        << "Whole-program architecture & determinism analysis.\n"
        << "Default scan set: src tools tests bench examples.\n"
        << "\n"
        << "  --root <dir>       repo root (default: .)\n"
        << "  --sarif <file>     also write findings as SARIF 2.1.0\n"
        << "  --format <fmt>     report format: text (default) or json\n"
        << "  --baseline <file>  ratchet against a committed baseline\n"
        << "                     (missing/unreadable baseline = exit 2)\n"
        << "  --init-baseline    create the --baseline file and exit\n"
        << "  --write-baseline   refresh the --baseline file and exit\n"
        << "  --list-rules       print the rule table (name: message)\n"
        << "  --json             with --list-rules: machine-readable\n"
        << "\n"
        << "Suppress a finding with `// ksa-lint: allow(<rule>, ...)` on\n"
        << "the offending line, the line above it, or a comment line\n"
        << "above the (possibly wrapped) statement.\n";
    return 2;
}

bool write_file(const fs::path& path, const std::string& text,
                std::string& error) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        error = "cannot write " + path.string();
        return false;
    }
    out << text;
    out.flush();
    if (!out) {
        error = "short write to " + path.string();
        return false;
    }
    return true;
}

std::string file_uri(const fs::path& root) {
    std::error_code ec;
    fs::path abs = fs::weakly_canonical(fs::absolute(root, ec), ec);
    if (ec) abs = root;
    std::string uri = "file://" + abs.generic_string();
    if (uri.empty() || uri.back() != '/') uri += '/';
    return uri;
}

}  // namespace

int main(int argc, char** argv) {
    ksa::lint::AnalyzerOptions options;
    options.root = ".";
    std::vector<std::string> scan_roots;
    std::optional<fs::path> sarif_path;
    std::optional<fs::path> baseline_path;
    bool write_baseline = false;
    bool init_baseline = false;
    bool list_rules = false;
    bool list_json = false;
    std::string format = "text";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "ksa_analyze: " << flag
                          << " needs an argument\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--root") {
            const char* v = value("--root");
            if (v == nullptr) return 2;
            options.root = v;
        } else if (arg == "--sarif") {
            const char* v = value("--sarif");
            if (v == nullptr) return 2;
            sarif_path = fs::path(v);
        } else if (arg == "--baseline") {
            const char* v = value("--baseline");
            if (v == nullptr) return 2;
            baseline_path = fs::path(v);
        } else if (arg == "--write-baseline") {
            write_baseline = true;
        } else if (arg == "--init-baseline") {
            init_baseline = true;
        } else if (arg == "--format") {
            const char* v = value("--format");
            if (v == nullptr) return 2;
            format = v;
        } else if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
        } else if (arg == "--list-rules") {
            list_rules = true;
        } else if (arg == "--json") {
            list_json = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "ksa_analyze: unknown option " << arg << "\n";
            return usage();
        } else {
            scan_roots.push_back(arg);
        }
    }

    if (list_rules) {
        if (list_json) {
            std::cout << ksa::lint::rules_json();
        } else {
            for (const ksa::lint::RuleInfo& rule : ksa::lint::all_rules())
                std::cout << rule.name << ": " << rule.message << "\n";
        }
        return 0;
    }
    if (list_json) {
        std::cerr << "ksa_analyze: --json requires --list-rules\n";
        return 2;
    }
    if ((write_baseline || init_baseline) && !baseline_path.has_value()) {
        std::cerr << "ksa_analyze: "
                  << (write_baseline ? "--write-baseline"
                                     : "--init-baseline")
                  << " needs --baseline <file>\n";
        return 2;
    }
    if (format != "text" && format != "json") {
        std::cerr << "ksa_analyze: unknown --format " << format
                  << " (expected text or json)\n";
        return 2;
    }
    if (!scan_roots.empty()) options.roots = scan_roots;

    // Ratchet mode.  A missing or unreadable baseline is a HARD error:
    // treating it as empty would silently disable grandfathering on a
    // typo'd path.  Bootstrapping is the explicit --init-baseline path.
    if (baseline_path.has_value() && !write_baseline && !init_baseline) {
        std::error_code ec;
        if (!fs::is_regular_file(*baseline_path, ec)) {
            std::cerr << "ksa_analyze: baseline "
                      << baseline_path->string()
                      << " not found or unreadable; create it with "
                         "--init-baseline\n";
            return 2;
        }
        options.baseline = baseline_path;
    }
    if (init_baseline) {
        std::error_code ec;
        if (fs::is_regular_file(*baseline_path, ec)) {
            std::cerr << "ksa_analyze: baseline "
                      << baseline_path->string()
                      << " already exists; refresh it with "
                         "--write-baseline\n";
            return 2;
        }
    }

    const ksa::lint::AnalysisResult result = ksa::lint::analyze(options);

    for (const std::string& error : result.errors)
        std::cerr << "ksa_analyze: " << error << "\n";

    if (write_baseline || init_baseline) {
        std::string error;
        if (!write_file(*baseline_path,
                        ksa::lint::baseline_json(result.findings), error)) {
            std::cerr << "ksa_analyze: " << error << "\n";
            return 2;
        }
        std::cout << "ksa_analyze: wrote baseline ("
                  << result.findings.size() << " finding(s)) to "
                  << baseline_path->string() << "\n";
        return result.errors.empty() ? 0 : 2;
    }

    if (sarif_path.has_value()) {
        std::string error;
        if (!write_file(*sarif_path,
                        ksa::lint::to_sarif(result.findings,
                                            file_uri(options.root)),
                        error)) {
            std::cerr << "ksa_analyze: " << error << "\n";
            return 2;
        }
    }

    if (format == "json") {
        std::cout << ksa::lint::analysis_json(result);
        if (!result.errors.empty()) return 2;
        return result.has_violations() ? 1 : 0;
    }

    for (const ksa::lint::Finding& f : result.findings) {
        std::cout << f.file << ":" << f.line;
        if (f.column > 0) std::cout << ":" << f.column;
        std::cout << ": [" << f.rule << "] " << f.message << "\n";
    }
    if (result.ratcheted) {
        for (const std::string& line : result.ratchet_regressions)
            std::cout << "ratchet regression: " << line << "\n";
        for (const std::string& line : result.ratchet_stale)
            std::cout << "ratchet stale: " << line << "\n";
    }
    std::cout << "ksa_analyze: " << result.files_scanned << " file(s), "
              << result.findings.size() << " finding(s)";
    if (result.ratcheted)
        std::cout << ", ratchet "
                  << (result.ratchet_regressions.empty() &&
                              result.ratchet_stale.empty()
                          ? "ok"
                          : "FAILED");
    std::cout << "\n";

    if (!result.errors.empty()) return 2;
    return result.has_violations() ? 1 : 0;
}
