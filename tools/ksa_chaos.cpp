// ksa_chaos: the chaos-engineering front door.
//
//   $ ksa_chaos sweep  [--min-n A] [--max-n B] [--seeds S] [--base-seed X]
//                      [--trial-budget-ms T] [--out DIR]
//       Runs the resilience sweep over the Theorem 8 grid under
//       guard-mode chaos and writes DIR/sweep.json + DIR/sweep.md
//       (default DIR = chaos-report).  Exits non-zero if any
//       solvable-side cell shows a violation.  Each trial gets a
//       wall-clock budget (default 2000 ms; 0 disables) so pathological
//       profiles degrade to inconclusive cells instead of stalling.
//
//   $ ksa_chaos byzantine-sweep [--min-n A] [--max-n B] [--seeds S]
//                      [--base-seed X] [--max-steps M]
//                      [--trial-budget-ms T] [--out DIR]
//       Runs the Byzantine resilience sweep: no crash faults, up to f
//       corrupting/equivocating victim senders per (n, k, f) cell, each
//       cell labeled with the Bouzid-Imbs-Raynal necessary condition
//       k*n > (2k+1)*f.  Writes DIR/sweep.json + DIR/sweep.md (default
//       DIR = chaos-byzantine).  Exits non-zero only if some trial went
//       unaccounted -- budget-exhausted trials degrade to inconclusive.
//
//   $ ksa_chaos demo-shrink [--out DIR]
//       Plants an agreement violation on the impossible side of the
//       boundary (n=4, k=1, f=2: 1*4 > 2*2 fails) with a partition
//       schedule under guard-mode chaos, shrinks it, and archives
//       original.run / shrunk.run / shrink.md into DIR (default
//       chaos-demo).  Both runs replay bit-identically.
//
//   $ ksa_chaos replay FILE.run [--k K]
//       Reads an archived chaos run, replays its extracted trace
//       through a fresh System, verifies byte-identity and classifies
//       the outcome.
//
//   $ ksa_chaos shrink FILE.run --k K [--out DIR]
//       Reads an archived violating run and minimizes it.
//
// replay/shrink reconstruct the algorithm from the run's recorded label
// (currently the initial-clique family, `initial-clique(L=...)`).

#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algo/initial_clique.hpp"
#include "chaos/chaos_trace.hpp"
#include "chaos/fault_injector.hpp"
#include "chaos/profile.hpp"
#include "chaos/resilience.hpp"
#include "chaos/shrink.hpp"
#include "check/determinism.hpp"
#include "core/kset_spec.hpp"
#include "sim/schedulers.hpp"
#include "sim/serialize.hpp"
#include "sim/system.hpp"
#include "sim/trace.hpp"

namespace {

using namespace ksa;

struct Args {
    std::vector<std::string> positional;
    std::map<std::string, std::string> flags;

    static Args parse(int argc, char** argv, int from) {
        Args args;
        for (int i = from; i < argc; ++i) {
            std::string a = argv[i];
            if (a.rfind("--", 0) == 0) {
                const std::string key = a.substr(2);
                if (i + 1 < argc) {
                    args.flags[key] = argv[++i];
                } else {
                    args.flags[key] = "";
                }
            } else {
                args.positional.push_back(a);
            }
        }
        return args;
    }

    int geti(const std::string& key, int fallback) const {
        auto it = flags.find(key);
        return it == flags.end() ? fallback : std::stoi(it->second);
    }
    std::string get(const std::string& key, std::string fallback) const {
        auto it = flags.find(key);
        return it == flags.end() ? fallback : it->second;
    }
};

void write_file(const std::filesystem::path& path, const std::string& body) {
    std::ofstream out(path);
    out << body;
    std::cout << "  wrote " << path.string() << " (" << body.size()
              << " bytes)\n";
}

/// Reconstructs the algorithm a run was recorded against from its
/// label.  Currently understands the initial-clique family.
std::unique_ptr<Algorithm> algorithm_of(const Run& run) {
    const std::string& label = run.algorithm;
    const std::string prefix = "initial-clique(L=";
    if (label.rfind(prefix, 0) == 0) {
        const int l = std::stoi(label.substr(prefix.size()));
        return std::make_unique<algo::InitialCliqueKSet>(l);
    }
    throw UsageError("ksa_chaos: cannot reconstruct algorithm '" + label +
                     "' (supported: initial-clique(L=...))");
}

/// Byte-identity audit of a run's extracted trace.
void audit_or_die(const Algorithm& algorithm, const Run& run) {
    check::DeterminismAuditor auditor(algorithm, {});
    const check::ReplayReport report = auditor.audit_replay(run);
    if (!report.deterministic)
        throw UsageError("ksa_chaos: replay diverged: " + report.divergence);
}

int cmd_sweep(const Args& args) {
    chaos::SweepConfig config;
    config.min_n = args.geti("min-n", 2);
    config.max_n = args.geti("max-n", 7);
    config.seeds_per_cell = args.geti("seeds", 20);
    config.base_seed = static_cast<std::uint64_t>(args.geti("base-seed", 1));
    config.profile = chaos::guarded_profile(config.base_seed);
    config.trial_wall_budget_ms = args.geti("trial-budget-ms", 2000);

    std::cout << "resilience sweep: n in [" << config.min_n << ", "
              << config.max_n << "], " << config.seeds_per_cell
              << " seeds/cell, profile " << config.profile.describe() << "\n";
    const chaos::SweepReport report = chaos::resilience_sweep(config);

    const std::filesystem::path dir = args.get("out", "chaos-report");
    std::filesystem::create_directories(dir);
    write_file(dir / "sweep.json", report.to_json());
    write_file(dir / "sweep.md", report.to_markdown());

    std::cout << report.total_trials() << " trials, solvable side "
              << (report.boundary_clean() ? "clean" : "NOT CLEAN") << "\n";
    return report.boundary_clean() ? 0 : 1;
}

int cmd_byzantine_sweep(const Args& args) {
    chaos::SweepConfig config;
    config.model = chaos::SweepConfig::FaultModel::kByzantine;
    config.min_n = args.geti("min-n", 2);
    config.max_n = args.geti("max-n", 5);
    config.seeds_per_cell = args.geti("seeds", 12);
    config.base_seed = static_cast<std::uint64_t>(args.geti("base-seed", 1));
    // The per-trial victim cap is forced to each cell's f inside
    // byzantine_trial; -1 here just keeps the template profile valid.
    config.profile = chaos::byzantine_profile(config.base_seed, -1);
    config.limits.max_steps = args.geti("max-steps", 6000);
    config.trial_wall_budget_ms = args.geti("trial-budget-ms", 1000);

    std::cout << "byzantine sweep: n in [" << config.min_n << ", "
              << config.max_n << "], " << config.seeds_per_cell
              << " seeds/cell, profile " << config.profile.describe() << "\n";
    const chaos::SweepReport report = chaos::resilience_sweep(config);

    const std::filesystem::path dir = args.get("out", "chaos-byzantine");
    std::filesystem::create_directories(dir);
    write_file(dir / "sweep.json", report.to_json());
    write_file(dir / "sweep.md", report.to_markdown());

    int inconclusive = 0, violations = 0;
    for (const chaos::CellResult& c : report.cells) {
        inconclusive += c.inconclusive;
        violations += c.agreement_violations + c.validity_violations;
    }
    std::cout << report.total_trials() << " trials, " << violations
              << " spec violations witnessed, " << inconclusive
              << " inconclusive; grid "
              << (report.complete() ? "complete" : "INCOMPLETE") << "\n";
    return report.complete() ? 0 : 1;
}

/// The planted violation: impossible side of the Theorem 8 boundary
/// (n=4, f=2, k=1), partition {1,2} | {3,4}, guard-mode chaos on top.
Run planted_violation(std::uint64_t seed) {
    const int n = 4, f = 2;
    const auto algorithm = algo::make_flp_kset(n, f);  // L = 2
    PartitionScheduler partition({{1, 2}, {3, 4}});
    chaos::ChaosProfile profile = chaos::guarded_profile(seed);
    profile.duplicate_per_mille = 300;
    profile.max_duplicates = 24;
    chaos::FaultInjector injector(partition, profile);
    return execute_run(*algorithm, n, distinct_inputs(n), FailurePlan{},
                       injector);
}

int cmd_demo_shrink(const Args& args) {
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.geti("seed", 7));
    Run original = planted_violation(seed);
    const auto algorithm = algorithm_of(original);
    audit_or_die(*algorithm, original);

    const int k = 1;
    std::cout << "planted violation: " << run_summary(original) << "\n";
    const chaos::ChaosTrace trace = chaos::extract_chaos_trace(original);
    const chaos::ShrinkResult shrunk = chaos::shrink_chaos_trace(
        *algorithm, trace, chaos::violates_k_agreement(k));
    audit_or_die(*algorithm, shrunk.run);
    std::cout << shrunk.to_string() << "\n";

    const std::filesystem::path dir = args.get("out", "chaos-demo");
    std::filesystem::create_directories(dir);
    write_file(dir / "original.run", run_to_string(original));
    write_file(dir / "shrunk.run", run_to_string(shrunk.run));
    std::ostringstream md;
    md << "# Shrunk chaos counterexample\n\n"
       << "Planted on the impossible side of Theorem 8 (n=4, f=2, k=1; "
       << "1*4 > 2*2 fails), partition {1,2} | {3,4} under guard-mode "
       << "chaos, seed " << seed << ".\n\n"
       << "* " << shrunk.to_string() << "\n"
       << "* original: " << run_summary(original) << "\n"
       << "* shrunk:   " << run_summary(shrunk.run) << "\n\n"
       << "Shrunk trace:\n\n```\n"
       << trace_string(shrunk.run) << "```\n";
    write_file(dir / "shrink.md", md.str());
    return 0;
}

int cmd_replay(const Args& args) {
    if (args.positional.empty())
        throw UsageError("ksa_chaos replay: missing FILE.run");
    std::ifstream in(args.positional[0]);
    if (!in) throw UsageError("ksa_chaos: cannot open " + args.positional[0]);
    const Run run = read_run(in);
    const auto algorithm = algorithm_of(run);
    audit_or_die(*algorithm, run);
    const int k = args.geti("k", 1);
    std::cout << run_summary(run) << "\n";
    std::cout << "replay byte-identical; outcome (k=" << k
              << "): " << chaos::to_string(chaos::classify_run(run, k))
              << ", fault events: " << run.num_fault_events() << "\n";
    return 0;
}

int cmd_shrink(const Args& args) {
    if (args.positional.empty())
        throw UsageError("ksa_chaos shrink: missing FILE.run");
    std::ifstream in(args.positional[0]);
    if (!in) throw UsageError("ksa_chaos: cannot open " + args.positional[0]);
    const Run run = read_run(in);
    const auto algorithm = algorithm_of(run);
    const int k = args.geti("k", 1);
    const chaos::ShrinkResult shrunk = chaos::shrink_chaos_trace(
        *algorithm, chaos::extract_chaos_trace(run),
        chaos::violates_k_agreement(k));
    audit_or_die(*algorithm, shrunk.run);
    std::cout << shrunk.to_string() << "\n";
    const std::filesystem::path dir = args.get("out", "chaos-shrunk");
    std::filesystem::create_directories(dir);
    write_file(dir / "shrunk.run", run_to_string(shrunk.run));
    return 0;
}

int usage() {
    std::cerr << "usage: ksa_chaos "
                 "<sweep|byzantine-sweep|demo-shrink|replay|shrink> "
                 "[options]\n"
                 "  sweep           [--min-n A] [--max-n B] [--seeds S] "
                 "[--base-seed X]\n"
                 "                  [--trial-budget-ms T] [--out DIR]\n"
                 "  byzantine-sweep [--min-n A] [--max-n B] [--seeds S] "
                 "[--base-seed X]\n"
                 "                  [--max-steps M] [--trial-budget-ms T] "
                 "[--out DIR]\n"
                 "  demo-shrink     [--seed S] [--out DIR]\n"
                 "  replay          FILE.run [--k K]\n"
                 "  shrink          FILE.run [--k K] [--out DIR]\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    const Args args = Args::parse(argc, argv, 2);
    try {
        if (cmd == "sweep") return cmd_sweep(args);
        if (cmd == "byzantine-sweep") return cmd_byzantine_sweep(args);
        if (cmd == "demo-shrink") return cmd_demo_shrink(args);
        if (cmd == "replay") return cmd_replay(args);
        if (cmd == "shrink") return cmd_shrink(args);
        return usage();
    } catch (const std::exception& e) {
        std::cerr << "ksa_chaos: " << e.what() << "\n";
        return 1;
    }
}
