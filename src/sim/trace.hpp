#pragma once
// Human-readable run traces.
//
// Formatting helpers used by the examples, the benches and failing
// tests: a one-line summary and a full step-by-step trace of a recorded
// run.  The trace format is stable so it can be diffed across runs when
// debugging non-determinism.

#include <iosfwd>
#include <string>

#include "sim/run.hpp"

namespace ksa {

/// One line: algorithm, n, #steps, stop reason, decisions.
std::string run_summary(const Run& run);

/// Full step-by-step trace.
void print_trace(std::ostream& out, const Run& run);

/// Full trace as a string.
std::string trace_string(const Run& run);

}  // namespace ksa
