#include "sim/model.hpp"

#include <sstream>

namespace ksa {

ModelDescriptor ModelDescriptor::asynchronous() { return ModelDescriptor{}; }

ModelDescriptor ModelDescriptor::theorem2() {
    ModelDescriptor m;
    m.processes = ProcessSync::kSynchronous;
    m.communication = CommSync::kAsynchronous;
    m.order = MessageOrder::kUnordered;
    m.transmission = Transmission::kBroadcast;
    m.send_receive = SendReceive::kAtomic;
    return m;
}

ModelDescriptor ModelDescriptor::asynchronous_with_fd() {
    ModelDescriptor m;
    m.fd = FdDim::kAvailable;
    return m;
}

std::string ModelDescriptor::to_string() const {
    std::ostringstream out;
    out << "P:" << (processes == ProcessSync::kSynchronous ? "sync" : "async")
        << " C:"
        << (communication == CommSync::kSynchronous ? "sync" : "async")
        << " O:" << (order == MessageOrder::kOrdered ? "ord" : "unord")
        << " T:" << (transmission == Transmission::kBroadcast ? "bcast" : "p2p")
        << " SR:" << (send_receive == SendReceive::kAtomic ? "atomic" : "sep")
        << " FD:" << (fd == FdDim::kAvailable ? "yes" : "none");
    return out.str();
}

bool consensus_solvable_with_one_crash(const ModelDescriptor& m) {
    require(m.fd == FdDim::kNone,
            "consensus_solvable_with_one_crash: classification applies to "
            "detector-free models only");
    const bool p = m.processes == ProcessSync::kSynchronous;
    const bool c = m.communication == CommSync::kSynchronous;
    const bool o = m.order == MessageOrder::kOrdered;
    const bool b = m.transmission == Transmission::kBroadcast;
    const bool a = m.send_receive == SendReceive::kAtomic;
    return (p && c) || (p && o) || (b && o) || (c && b && a);
}

}  // namespace ksa
