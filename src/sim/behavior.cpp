#include "sim/behavior.hpp"

#include <sstream>

namespace ksa {

std::string FdSample::to_string() const {
    std::ostringstream out;
    out << "Q{";
    for (std::size_t i = 0; i < quorum.size(); ++i) {
        if (i > 0) out << ',';
        out << quorum[i];
    }
    out << "}L{";
    for (std::size_t i = 0; i < leaders.size(); ++i) {
        if (i > 0) out << ',';
        out << leaders[i];
    }
    out << '}';
    return out.str();
}

}  // namespace ksa
