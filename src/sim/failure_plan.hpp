#pragma once
// Crash-failure plans.
//
// In the paper's model the failure pattern F(t) of a run is *derived*
// from the run: p is in F(t) iff p takes no step at any time >= t.  An
// adversary in the simulator fixes failures ahead of time with a
// FailurePlan: for each faulty process, after how many of its *own* steps
// it crashes (0 = initially dead, i.e. it never takes a step), and to
// which receivers its final step's messages are omitted (the model lets a
// crashing process omit sending to a subset of receivers in its very last
// step).  Planning by own-step count rather than global time makes plans
// composable with any scheduler.
//
// The System enforces the plan (a crashed process is never stepped) and
// records the *realized* failure pattern F(t) into the Run, which is what
// admissibility checking and failure-detector validation use.

#include <map>
#include <set>
#include <vector>

#include "check/contract.hpp"
#include "sim/types.hpp"

namespace ksa {

/// Crash specification for one faulty process.
struct CrashSpec {
    /// The process executes exactly this many steps, then crashes.
    /// 0 means initially dead: the process never takes a step.
    int after_own_steps = 0;
    /// Receivers to which the sends of the final step are omitted.  Only
    /// meaningful when after_own_steps > 0.
    std::set<ProcessId> omit_to;

    friend bool operator==(const CrashSpec&, const CrashSpec&) = default;
};

/// A complete crash plan for a run: which processes fail, and how.
/// Processes not mentioned are correct.
class FailurePlan {
public:
    FailurePlan() = default;

    /// Declares `p` faulty with the given spec.  Re-declaring replaces.
    void set_crash(ProcessId p, CrashSpec spec) {
        KSA_REQUIRE(p >= 1, "FailurePlan::set_crash: invalid process id");
        KSA_REQUIRE(spec.after_own_steps >= 0,
                    "FailurePlan::set_crash: negative step count");
        KSA_REQUIRE(spec.after_own_steps > 0 || spec.omit_to.empty(),
                    "FailurePlan::set_crash: an initially dead process takes "
                    "no final step whose sends could be omitted");
        crashes_[p] = std::move(spec);
    }

    /// Declares `p` initially dead (never takes a step).
    void set_initially_dead(ProcessId p) { crashes_[p] = CrashSpec{0, {}}; }

    /// Declares every process in `ps` initially dead.
    void set_initially_dead(const std::vector<ProcessId>& ps) {
        for (ProcessId p : ps) set_initially_dead(p);
    }

    /// True iff `p` is faulty in this plan (the set F of the paper).
    bool is_faulty(ProcessId p) const { return crashes_.count(p) != 0; }

    /// True iff `p` never takes a step.
    bool is_initially_dead(ProcessId p) const {
        auto it = crashes_.find(p);
        return it != crashes_.end() && it->second.after_own_steps == 0;
    }

    /// Number of own steps `p` may take (kNever-like large value if
    /// correct).
    int allowed_steps(ProcessId p) const {
        auto it = crashes_.find(p);
        if (it == crashes_.end()) return -1;  // unbounded
        return it->second.after_own_steps;
    }

    /// The crash spec of `p`; `p` must be faulty.
    const CrashSpec& spec(ProcessId p) const {
        auto it = crashes_.find(p);
        KSA_REQUIRE(it != crashes_.end(),
                    "FailurePlan::spec: process is correct");
        if (it == crashes_.end()) {
            // Reached only under check::Policy::kCount: stay memory-safe.
            static const CrashSpec kCorrect{};
            return kCorrect;
        }
        return it->second;
    }

    /// The planned faulty set F.
    std::set<ProcessId> faulty() const {
        std::set<ProcessId> out;
        for (const auto& [p, _] : crashes_) out.insert(p);
        return out;
    }

    /// The correct processes among 1..n.
    std::vector<ProcessId> correct(int n) const {
        std::vector<ProcessId> out;
        for (ProcessId p = 1; p <= n; ++p)
            if (!is_faulty(p)) out.push_back(p);
        return out;
    }

    /// Number of faulty processes.
    int num_faulty() const { return static_cast<int>(crashes_.size()); }

    friend bool operator==(const FailurePlan&, const FailurePlan&) = default;

private:
    std::map<ProcessId, CrashSpec> crashes_;
};

}  // namespace ksa
