#pragma once
// Crash-failure plans.
//
// In the paper's model the failure pattern F(t) of a run is *derived*
// from the run: p is in F(t) iff p takes no step at any time >= t.  An
// adversary in the simulator fixes failures ahead of time with a
// FailurePlan: for each faulty process, after how many of its *own* steps
// it crashes (0 = initially dead, i.e. it never takes a step), and to
// which receivers its final step's messages are omitted (the model lets a
// crashing process omit sending to a subset of receivers in its very last
// step).  Planning by own-step count rather than global time makes plans
// composable with any scheduler.
//
// The System enforces the plan (a crashed process is never stepped) and
// records the *realized* failure pattern F(t) into the Run, which is what
// admissibility checking and failure-detector validation use.

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "check/contract.hpp"
#include "sim/types.hpp"

namespace ksa {

/// Crash specification for one faulty process.
struct CrashSpec {
    /// The process executes exactly this many steps, then crashes.
    /// 0 means initially dead: the process never takes a step.
    int after_own_steps = 0;
    /// Receivers to which the sends of the final step are omitted.  Only
    /// meaningful when after_own_steps > 0.
    std::set<ProcessId> omit_to;

    friend bool operator==(const CrashSpec&, const CrashSpec&) = default;

    /// Builds the spec of a crash whose final step's sends are omitted to
    /// *every* receiver 1..n (a "crash between receive and send": the
    /// process performs its last state transition but nothing it sends
    /// survives).  Requires after_own_steps > 0.
    static CrashSpec omitting_all(int after_own_steps, int n) {
        KSA_REQUIRE(after_own_steps > 0,
                    "CrashSpec::omitting_all: an initially dead process has "
                    "no final step whose sends could be omitted");
        KSA_REQUIRE(n >= 1, "CrashSpec::omitting_all: n must be >= 1");
        CrashSpec spec;
        spec.after_own_steps = after_own_steps;
        for (ProcessId q = 1; q <= n; ++q) spec.omit_to.insert(q);
        return spec;
    }

    /// Canonical rendering for traces and reports: "initially-dead" or
    /// "after <s> steps" with the omission set, e.g.
    /// "after 2 steps omit{1,4}".
    std::string to_string() const {
        if (after_own_steps == 0) return "initially-dead";
        std::ostringstream out;
        out << "after " << after_own_steps
            << (after_own_steps == 1 ? " step" : " steps");
        if (!omit_to.empty()) {
            out << " omit{";
            bool first = true;
            for (ProcessId q : omit_to) {
                if (!first) out << ',';
                first = false;
                out << q;
            }
            out << '}';
        }
        return out.str();
    }
};

/// Byzantine specification for one process: how many corruption and
/// equivocation fault events its channels realized.  Unlike CrashSpec
/// this is pure bookkeeping of *realized* misbehavior -- Byzantine specs
/// are only ever injected by fault events (System::apply_fault), never
/// planned statically, so Run::static_plan() strips them and replay
/// rebuilds the identical counts from the recorded fault stream.
struct ByzantineSpec {
    int corruptions = 0;    ///< kCorruptMessage events charged to this sender
    int equivocations = 0;  ///< kEquivocate events charged to this sender

    friend bool operator==(const ByzantineSpec&, const ByzantineSpec&) = default;

    /// Canonical rendering, e.g. "byzantine(corrupt=2,equiv=1)".
    std::string to_string() const {
        std::ostringstream out;
        out << "byzantine(corrupt=" << corruptions << ",equiv=" << equivocations
            << ')';
        return out.str();
    }
};

/// A complete crash plan for a run: which processes fail, and how.
/// Processes not mentioned are correct.
class FailurePlan {
public:
    FailurePlan() = default;

    /// Declares `p` faulty with the given spec.  Re-declaring replaces.
    void set_crash(ProcessId p, CrashSpec spec) {
        KSA_REQUIRE(p >= 1, "FailurePlan::set_crash: invalid process id");
        KSA_REQUIRE(spec.after_own_steps >= 0,
                    "FailurePlan::set_crash: negative step count");
        KSA_REQUIRE(spec.after_own_steps > 0 || spec.omit_to.empty(),
                    "FailurePlan::set_crash: an initially dead process takes "
                    "no final step whose sends could be omitted");
        KSA_REQUIRE(spec.omit_to.empty() || *spec.omit_to.begin() >= 1,
                    "FailurePlan::set_crash: omission set contains an "
                    "invalid process id");
        crashes_[p] = std::move(spec);
    }

    /// Declares `p` faulty, crashing after `after_own_steps` own steps
    /// with the sends of its final step omitted to *all* n receivers --
    /// the convenience for "crash between the receive and the send phase
    /// of a step" that per-receiver omit_to sets spell out by hand.
    void set_crash_omit_all(ProcessId p, int after_own_steps, int n) {
        set_crash(p, CrashSpec::omitting_all(after_own_steps, n));
    }

    /// Declares `p` initially dead (never takes a step).
    void set_initially_dead(ProcessId p) { crashes_[p] = CrashSpec{0, {}}; }

    /// Declares every process in `ps` initially dead.
    void set_initially_dead(const std::vector<ProcessId>& ps) {
        for (ProcessId p : ps) set_initially_dead(p);
    }

    /// True iff `p` is faulty in this plan (the set F of the paper).
    bool is_faulty(ProcessId p) const { return crashes_.count(p) != 0; }

    /// True iff `p` never takes a step.
    bool is_initially_dead(ProcessId p) const {
        auto it = crashes_.find(p);
        return it != crashes_.end() && it->second.after_own_steps == 0;
    }

    /// Number of own steps `p` may take (kNever-like large value if
    /// correct).
    int allowed_steps(ProcessId p) const {
        auto it = crashes_.find(p);
        if (it == crashes_.end()) return -1;  // unbounded
        return it->second.after_own_steps;
    }

    /// The crash spec of `p`; `p` must be faulty.
    const CrashSpec& spec(ProcessId p) const {
        auto it = crashes_.find(p);
        KSA_REQUIRE(it != crashes_.end(),
                    "FailurePlan::spec: process is correct");
        if (it == crashes_.end()) {
            // Reached only under check::Policy::kCount: stay memory-safe.
            static const CrashSpec kCorrect{};
            return kCorrect;
        }
        return it->second;
    }

    /// The planned faulty set F.
    std::set<ProcessId> faulty() const {
        std::set<ProcessId> out;
        for (const auto& [p, _] : crashes_) out.insert(p);
        return out;
    }

    /// The correct processes among 1..n.
    std::vector<ProcessId> correct(int n) const {
        std::vector<ProcessId> out;
        for (ProcessId p = 1; p <= n; ++p)
            if (!is_faulty(p)) out.push_back(p);
        return out;
    }

    /// Number of faulty processes.
    int num_faulty() const { return static_cast<int>(crashes_.size()); }

    // -- Byzantine bookkeeping (realized corruption/equivocation) ------

    /// Charges one realized Byzantine fault event to sender `p`:
    /// `corruptions` / `equivocations` are added to p's ByzantineSpec
    /// (created on first use).  Called by System::apply_fault for both
    /// live injection and replay, so the effective plan converges to the
    /// same counts either way.
    void note_byzantine(ProcessId p, int corruptions, int equivocations) {
        KSA_REQUIRE(p >= 1, "FailurePlan::note_byzantine: invalid process id");
        KSA_REQUIRE(corruptions >= 0 && equivocations >= 0,
                    "FailurePlan::note_byzantine: negative event count");
        ByzantineSpec& spec = byzantine_[p];
        spec.corruptions += corruptions;
        spec.equivocations += equivocations;
    }

    /// True iff `p` realized at least one Byzantine fault event.
    bool is_byzantine(ProcessId p) const { return byzantine_.count(p) != 0; }

    /// The Byzantine spec of `p`; `p` must be Byzantine.
    const ByzantineSpec& byzantine_spec(ProcessId p) const {
        auto it = byzantine_.find(p);
        KSA_REQUIRE(it != byzantine_.end(),
                    "FailurePlan::byzantine_spec: process is not Byzantine");
        if (it == byzantine_.end()) {
            // Reached only under check::Policy::kCount: stay memory-safe.
            static const ByzantineSpec kNone{};
            return kNone;
        }
        return it->second;
    }

    /// The realized Byzantine sender set.
    std::set<ProcessId> byzantine() const {
        std::set<ProcessId> out;
        for (const auto& [p, _] : byzantine_) out.insert(p);
        return out;
    }

    /// Number of Byzantine senders.
    int num_byzantine() const { return static_cast<int>(byzantine_.size()); }

    /// Canonical rendering for traces: "none" for the empty plan, else
    /// "p2 after 1 step omit{3}; p4 initially-dead; p3
    /// byzantine(corrupt=2,equiv=0)".
    std::string to_string() const {
        if (crashes_.empty() && byzantine_.empty()) return "none";
        std::ostringstream out;
        bool first = true;
        for (const auto& [p, spec] : crashes_) {
            if (!first) out << "; ";
            first = false;
            out << 'p' << p << ' ' << spec.to_string();
        }
        for (const auto& [p, spec] : byzantine_) {
            if (!first) out << "; ";
            first = false;
            out << 'p' << p << ' ' << spec.to_string();
        }
        return out.str();
    }

    friend bool operator==(const FailurePlan&, const FailurePlan&) = default;

private:
    std::map<ProcessId, CrashSpec> crashes_;
    std::map<ProcessId, ByzantineSpec> byzantine_;
};

}  // namespace ksa
