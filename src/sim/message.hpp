#pragma once
// Messages and message identity.
//
// Sending a message (q, m) simply places m into q's buffer (Section II of
// the paper).  The simulator additionally stamps each message with a
// globally unique id and the time at which it was sent; schedulers select
// messages for delivery by id, which is what makes adversarial delivery
// control (delaying, reordering, partitioning) deterministic and
// replayable.

#include <cstdint>
#include <string>

#include "sim/payload.hpp"
#include "sim/types.hpp"

namespace ksa {

/// Unique message identifier, assigned by the System in send order.
using MessageId = std::uint64_t;

/// A message in flight or delivered.  Value type; equality ignores the
/// simulator-assigned identity fields so that runs can be compared on
/// their communication content alone.
struct Message {
    MessageId id = 0;    ///< unique, assigned by the System
    ProcessId from = 0;  ///< sender
    ProcessId to = 0;    ///< receiver
    Time sent_at = 0;    ///< global time of the sending step
    Payload payload;

    /// Content equality: sender, receiver and payload (identity fields
    /// are simulator bookkeeping and excluded on purpose).
    friend bool content_equal(const Message& a, const Message& b) {
        return a.from == b.from && a.to == b.to && a.payload == b.payload;
    }

    /// Canonical rendering `from->to:payload` used in traces and digests.
    std::string to_string() const;
};

}  // namespace ksa
