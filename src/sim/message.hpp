#pragma once
// Messages and message identity.
//
// Sending a message (q, m) simply places m into q's buffer (Section II of
// the paper).  The simulator additionally stamps each message with a
// globally unique id and the time at which it was sent; schedulers select
// messages for delivery by id, which is what makes adversarial delivery
// control (delaying, reordering, partitioning) deterministic and
// replayable.

#include <cstdint>
#include <string>

#include "sim/payload.hpp"
#include "sim/types.hpp"

namespace ksa {

/// Unique message identifier, assigned by the System in send order.
using MessageId = std::uint64_t;

/// Ids at or above this bound belong to *injected* messages: clones
/// created by a kDuplicateMessage fault (src/chaos/).  A clone of source
/// message s is the d-th duplicate of s and gets id
///   kInjectedMessageIdBase + s.id * kMaxDuplicatesPerMessage + d,
/// a scheme chosen so that clone ids depend only on their own source --
/// removing an unrelated fault event during counterexample shrinking
/// leaves them stable, unlike a shared running counter would.
inline constexpr MessageId kInjectedMessageIdBase = MessageId{1} << 48;
inline constexpr MessageId kMaxDuplicatesPerMessage = 16;

/// Ids at or above this bound belong to Byzantine *corruption* forgeries:
/// a kCorruptMessage fault rewrites a buffered original s in place and
/// renames it to kCorruptionIdBase + s.id.  Like the duplicate scheme the
/// forged id depends only on its own source, so counterexample shrinking
/// can decide locally whether a recorded delivery of a forgery is still
/// satisfiable after fault events were removed.
inline constexpr MessageId kCorruptionIdBase = MessageId{1} << 56;

/// Ids at or above this bound belong to Byzantine *equivocation*
/// forgeries: a kEquivocate fault on an anchor message a rewrites every
/// in-flight sibling of a's broadcast into a receiver-specific variant
/// with id kEquivocationIdBase + a.id * kEquivocationFanout + receiver.
inline constexpr MessageId kEquivocationIdBase = MessageId{1} << 60;
inline constexpr MessageId kEquivocationFanout = 64;

/// True iff `id` was assigned by a fault event rather than a send
/// (duplicate clone, corruption forgery or equivocation forgery).
inline constexpr bool is_injected_message_id(MessageId id) {
    return id >= kInjectedMessageIdBase;
}

/// True iff `id` names a corruption forgery.
inline constexpr bool is_corruption_id(MessageId id) {
    return id >= kCorruptionIdBase && id < kEquivocationIdBase;
}

/// True iff `id` names an equivocation forgery.
inline constexpr bool is_equivocation_id(MessageId id) {
    return id >= kEquivocationIdBase;
}

/// The forged id of the corruption of original message `src`.
inline constexpr MessageId corrupted_message_id(MessageId src) {
    return kCorruptionIdBase + src;
}

/// The forged id of the equivocation variant of anchor message `anchor`
/// addressed to `receiver` (receiver < kEquivocationFanout).
inline constexpr MessageId equivocated_message_id(MessageId anchor,
                                                  ProcessId receiver) {
    return kEquivocationIdBase + anchor * kEquivocationFanout +
           static_cast<MessageId>(receiver);
}

/// A message in flight or delivered.  Value type; equality ignores the
/// simulator-assigned identity fields so that runs can be compared on
/// their communication content alone.
struct Message {
    MessageId id = 0;    ///< unique, assigned by the System
    ProcessId from = 0;  ///< sender
    ProcessId to = 0;    ///< receiver
    Time sent_at = 0;    ///< global time of the sending step
    Payload payload;

    /// Content equality: sender, receiver and payload (identity fields
    /// are simulator bookkeeping and excluded on purpose).
    friend bool content_equal(const Message& a, const Message& b) {
        return a.from == b.from && a.to == b.to && a.payload == b.payload;
    }

    /// Canonical rendering `from->to:payload` used in traces and digests.
    std::string to_string() const;
};

}  // namespace ksa
