#pragma once
// Messages and message identity.
//
// Sending a message (q, m) simply places m into q's buffer (Section II of
// the paper).  The simulator additionally stamps each message with a
// globally unique id and the time at which it was sent; schedulers select
// messages for delivery by id, which is what makes adversarial delivery
// control (delaying, reordering, partitioning) deterministic and
// replayable.

#include <cstdint>
#include <string>

#include "sim/payload.hpp"
#include "sim/types.hpp"

namespace ksa {

/// Unique message identifier, assigned by the System in send order.
using MessageId = std::uint64_t;

/// Ids at or above this bound belong to *injected* messages: clones
/// created by a kDuplicateMessage fault (src/chaos/).  A clone of source
/// message s is the d-th duplicate of s and gets id
///   kInjectedMessageIdBase + s.id * kMaxDuplicatesPerMessage + d,
/// a scheme chosen so that clone ids depend only on their own source --
/// removing an unrelated fault event during counterexample shrinking
/// leaves them stable, unlike a shared running counter would.
inline constexpr MessageId kInjectedMessageIdBase = MessageId{1} << 48;
inline constexpr MessageId kMaxDuplicatesPerMessage = 16;

/// True iff `id` was assigned to an injected duplicate.
inline constexpr bool is_injected_message_id(MessageId id) {
    return id >= kInjectedMessageIdBase;
}

/// A message in flight or delivered.  Value type; equality ignores the
/// simulator-assigned identity fields so that runs can be compared on
/// their communication content alone.
struct Message {
    MessageId id = 0;    ///< unique, assigned by the System
    ProcessId from = 0;  ///< sender
    ProcessId to = 0;    ///< receiver
    Time sent_at = 0;    ///< global time of the sending step
    Payload payload;

    /// Content equality: sender, receiver and payload (identity fields
    /// are simulator bookkeeping and excluded on purpose).
    friend bool content_equal(const Message& a, const Message& b) {
        return a.from == b.from && a.to == b.to && a.payload == b.payload;
    }

    /// Canonical rendering `from->to:payload` used in traces and digests.
    std::string to_string() const;
};

}  // namespace ksa
