#pragma once
// Deterministic Byzantine payload mutators.
//
// The Byzantine fault kinds of sim/scheduler.hpp (kCorruptMessage,
// kEquivocate) rewrite in-flight payloads through these functions.  Two
// properties matter:
//
//   * determinism -- the mutation is a pure function of (payload, seed,
//     receiver, n).  The seed rides inside the FaultAction and is
//     serialized with the run, so a Byzantine run replays
//     byte-identically through the DeterminismAuditor;
//   * plausibility -- mutated scalars stay in [1, n], the range of
//     process ids and (all-distinct) proposal values used throughout the
//     library.  A Byzantine sender that emits well-formed-but-lying
//     messages provokes real agreement/validity confusion in receivers;
//     garbage values would mostly just stall the protocol.
//
// The mixing function is splitmix64 (the same one chaos/resilience.cpp
// uses for trial seeds); no <random> engine state is involved, so the
// mutators are freestanding value-level functions.

#include <cstdint>

#include "sim/payload.hpp"
#include "sim/types.hpp"

namespace ksa {

/// The corrupted variant of `original` under `seed`: the tag is kept,
/// each scalar/list entry is independently rewritten (with at least one
/// scalar guaranteed to change when n >= 2 and any scalars exist) to a
/// value in [1, n].
Payload corrupt_payload(const Payload& original, std::uint64_t seed, int n);

/// The receiver-specific equivocation variant of `original`: a
/// corruption whose seed is mixed with `receiver`, so distinct receivers
/// of the same broadcast see divergent payloads.
Payload equivocate_payload(const Payload& original, std::uint64_t seed,
                           ProcessId receiver, int n);

}  // namespace ksa
