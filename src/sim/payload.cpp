#include "sim/payload.hpp"

#include <sstream>

namespace ksa {

std::string Payload::to_string() const {
    std::ostringstream out;
    out << tag << '(';
    for (std::size_t i = 0; i < ints.size(); ++i) {
        if (i > 0) out << ',';
        out << ints[i];
    }
    if (!lists.empty()) {
        out << '|';
        for (std::size_t i = 0; i < lists.size(); ++i) {
            if (i > 0) out << ',';
            out << '[';
            for (std::size_t j = 0; j < lists[i].size(); ++j) {
                if (j > 0) out << ',';
                out << lists[i][j];
            }
            out << ']';
        }
    }
    out << ')';
    return out.str();
}

void Payload::fold(StateHasher& h) const {
    h.str(tag);
    h.u64(ints.size());
    for (int v : ints) h.i64(v);
    h.u64(lists.size());
    for (const auto& list : lists) {
        h.u64(list.size());
        for (int v : list) h.i64(v);
    }
}

Payload make_payload(std::string tag, std::vector<int> ints) {
    return Payload{std::move(tag), std::move(ints), {}};
}

Payload make_payload(std::string tag, std::vector<int> ints,
                     std::vector<std::vector<int>> lists) {
    return Payload{std::move(tag), std::move(ints), std::move(lists)};
}

}  // namespace ksa
