#include "sim/trace.hpp"

#include <ostream>
#include <sstream>

namespace ksa {

std::string run_summary(const Run& run) {
    std::ostringstream out;
    out << run.algorithm << " n=" << run.n << " steps=" << run.steps.size()
        << " stop=" << to_string(run.stop) << " decisions={";
    bool first = true;
    for (ProcessId p = 1; p <= run.n; ++p) {
        auto d = run.decision_of(p);
        if (!d) continue;
        if (!first) out << ',';
        first = false;
        out << 'p' << p << ':' << *d;
    }
    out << "} distinct=" << run.distinct_decisions().size();
    return out.str();
}

void print_trace(std::ostream& out, const Run& run) {
    out << "run of " << run.algorithm << " on n=" << run.n << " inputs=[";
    for (std::size_t i = 0; i < run.inputs.size(); ++i) {
        if (i > 0) out << ',';
        out << run.inputs[i];
    }
    out << "]\n";
    for (const StepRecord& s : run.steps) {
        out << "  t=" << s.time << " p" << s.process;
        if (s.fd) out << " fd=" << s.fd->to_string();
        if (!s.delivered.empty()) {
            out << " recv{";
            for (std::size_t i = 0; i < s.delivered.size(); ++i) {
                if (i > 0) out << ',';
                out << s.delivered[i].to_string();
            }
            out << '}';
        }
        if (!s.sent.empty()) out << " sent=" << s.sent.size();
        if (!s.omitted.empty()) out << " omitted=" << s.omitted.size();
        if (s.decision) out << " DECIDE " << *s.decision;
        if (s.final_crash_step) out << " CRASH";
        out << '\n';
    }
    out << "  => " << run_summary(run) << '\n';
}

std::string trace_string(const Run& run) {
    std::ostringstream out;
    print_trace(out, run);
    return out.str();
}

}  // namespace ksa
