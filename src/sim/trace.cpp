#include "sim/trace.hpp"

#include <ostream>
#include <sstream>

namespace ksa {

namespace {

/// Renders one injected fault event for the trace, e.g. `drop#7`,
/// `dup#7` or `crash p3 omit{1,2}`.
void print_fault(std::ostream& out, const FaultAction& a) {
    switch (a.kind) {
        case FaultAction::Kind::kDropMessage:
            out << "drop#" << a.message;
            return;
        case FaultAction::Kind::kDuplicateMessage:
            out << "dup#" << a.message;
            return;
        case FaultAction::Kind::kCrashProcess: {
            out << "crash p" << a.process;
            if (a.omit_to.empty()) return;
            out << " omit{";
            bool first = true;
            for (ProcessId q : a.omit_to) {
                if (!first) out << ',';
                first = false;
                out << q;
            }
            out << '}';
            return;
        }
        case FaultAction::Kind::kCorruptMessage:
            out << "corrupt#" << a.message;
            return;
        case FaultAction::Kind::kEquivocate:
            out << "equiv#" << a.message;
            return;
    }
    out << "fault?";
}

}  // namespace

std::string run_summary(const Run& run) {
    std::ostringstream out;
    out << run.algorithm << " n=" << run.n << " steps=" << run.steps.size()
        << " stop=" << to_string(run.stop) << " decisions={";
    bool first = true;
    for (ProcessId p = 1; p <= run.n; ++p) {
        auto d = run.decision_of(p);
        if (!d) continue;
        if (!first) out << ',';
        first = false;
        out << 'p' << p << ':' << *d;
    }
    out << "} distinct=" << run.distinct_decisions().size();
    return out.str();
}

void print_trace(std::ostream& out, const Run& run) {
    out << "run of " << run.algorithm << " on n=" << run.n << " inputs=[";
    for (std::size_t i = 0; i < run.inputs.size(); ++i) {
        if (i > 0) out << ',';
        out << run.inputs[i];
    }
    out << "]\n";
    if (!run.scheduler.empty())
        out << "  scheduler: " << run.scheduler << '\n';
    if (!run.plan.faulty().empty())
        out << "  plan: " << run.plan.to_string() << '\n';
    for (const StepRecord& s : run.steps) {
        out << "  t=" << s.time << " p" << s.process;
        if (!s.faults.empty()) {
            out << " faults{";
            for (std::size_t i = 0; i < s.faults.size(); ++i) {
                if (i > 0) out << ';';
                print_fault(out, s.faults[i]);
            }
            out << '}';
        }
        if (s.fd) out << " fd=" << s.fd->to_string();
        if (!s.delivered.empty()) {
            out << " recv{";
            for (std::size_t i = 0; i < s.delivered.size(); ++i) {
                if (i > 0) out << ',';
                out << s.delivered[i].to_string();
            }
            out << '}';
        }
        if (!s.sent.empty()) out << " sent=" << s.sent.size();
        if (!s.omitted.empty()) out << " omitted=" << s.omitted.size();
        if (!s.dropped.empty()) out << " dropped=" << s.dropped.size();
        if (!s.injected.empty()) out << " injected=" << s.injected.size();
        if (!s.forged.empty()) out << " forged=" << s.forged.size();
        if (s.decision) out << " DECIDE " << *s.decision;
        if (s.final_crash_step) out << " CRASH";
        out << '\n';
    }
    out << "  => " << run_summary(run) << '\n';
}

std::string trace_string(const Run& run) {
    std::ostringstream out;
    print_trace(out, run);
    return out.str();
}

}  // namespace ksa
