#include "sim/message.hpp"

#include <sstream>

namespace ksa {

std::string Message::to_string() const {
    std::ostringstream out;
    out << from << "->" << to << ':' << payload.to_string();
    return out.str();
}

}  // namespace ksa
