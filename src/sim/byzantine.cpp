#include "sim/byzantine.hpp"

#include "check/contract.hpp"

namespace ksa {

namespace {

/// splitmix64, the seed mixer used across the chaos layer.
std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// A plausible lie for scalar `old` at field position `pos`: a value in
/// [1, n], different from `old` whenever n >= 2 allows it.
int lie(int old, std::uint64_t seed, std::uint64_t pos, int n) {
    const std::uint64_t h =
        mix(seed ^ mix(pos * 0x5851f42d4c957f2dull) ^
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(old)));
    int v = 1 + static_cast<int>(h % static_cast<std::uint64_t>(n));
    if (v == old && n >= 2) v = 1 + v % n;
    return v;
}

}  // namespace

Payload corrupt_payload(const Payload& original, std::uint64_t seed, int n) {
    require(n >= 1, "corrupt_payload: n must be >= 1");
    Payload out = original;
    std::uint64_t pos = 0;
    // Every scalar is rewritten with probability 1/2, but at least the
    // dice-selected pivot always changes: a "corruption" that leaves the
    // payload intact would be a silent no-op fault event.
    if (!out.ints.empty()) {
        const std::size_t pivot = static_cast<std::size_t>(
            mix(seed ^ 0xa0761d6478bd642full) % out.ints.size());
        for (std::size_t i = 0; i < out.ints.size(); ++i) {
            ++pos;
            const bool hit = i == pivot || (mix(seed ^ (pos << 32)) & 1) != 0;
            if (hit) out.ints[i] = lie(out.ints[i], seed, pos, n);
        }
    }
    // List entries (heard-from sets and the like) are rewritten more
    // sparingly -- probability 1/4 -- so corrupted protocol rounds stay
    // mostly well-formed instead of devolving into pure noise.
    for (auto& list : out.lists) {
        for (int& v : list) {
            ++pos;
            if ((mix(seed ^ (pos << 32)) & 3) == 0) v = lie(v, seed, pos, n);
        }
    }
    return out;
}

Payload equivocate_payload(const Payload& original, std::uint64_t seed,
                           ProcessId receiver, int n) {
    require(receiver >= 1, "equivocate_payload: invalid receiver");
    return corrupt_payload(
        original,
        mix(seed ^ (static_cast<std::uint64_t>(receiver) * 0xe7037ed1a0b428dbull)),
        n);
}

}  // namespace ksa
