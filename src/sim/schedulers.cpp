#include "sim/schedulers.hpp"

#include <algorithm>
#include <sstream>

#include "check/contract.hpp"

namespace ksa {
namespace {

/// A faulty process that still has planned steps to take (stepping it is
/// required to realize the crash plan).
bool faulty_pending(const SystemView& v, ProcessId p) {
    return v.plan().is_faulty(p) && v.can_step(p);
}

/// A correct process that still has work: it has not decided, or it has
/// undrained messages (admissibility requires eventual delivery).
bool useful_correct(const SystemView& v, ProcessId p) {
    return !v.plan().is_faulty(p) && (!v.decided(p) || !v.buffer(p).empty());
}

/// True when the run prefix is decisive: all correct processes decided,
/// their buffers are drained, and every planned crash is realized.
bool all_done(const SystemView& v) {
    if (!v.all_correct_decided() || !v.correct_buffers_empty()) return false;
    for (ProcessId p = 1; p <= v.n(); ++p)
        if (faulty_pending(v, p)) return false;
    return true;
}

}  // namespace

std::optional<StepChoice> RoundRobinScheduler::next(const SystemView& view) {
    if (all_done(view)) return std::nullopt;
    const int n = view.n();
    for (int off = 1; off <= n; ++off) {
        ProcessId p = (cursor_ + off - 1) % n + 1;
        if (!view.can_step(p)) continue;
        if (faulty_pending(view, p) || useful_correct(view, p)) {
            cursor_ = p;
            StepChoice c;
            c.process = p;
            c.deliver_all = true;
            return c;
        }
    }
    return std::nullopt;
}

std::string RandomScheduler::name() const {
    std::ostringstream out;
    out << "random(seed=" << seed_ << ",max_age=" << max_age_ << ")";
    return out.str();
}

std::optional<StepChoice> RandomScheduler::next(const SystemView& view) {
    if (all_done(view)) return std::nullopt;
    std::vector<ProcessId> candidates;
    for (ProcessId p = 1; p <= view.n(); ++p)
        if (view.can_step(p) &&
            (faulty_pending(view, p) || useful_correct(view, p)))
            candidates.push_back(p);
    if (candidates.empty()) return std::nullopt;

    std::uniform_int_distribution<std::size_t> pick(0, candidates.size() - 1);
    StepChoice c;
    c.process = candidates[pick(rng_)];

    if (view.all_correct_decided()) {
        c.deliver_all = true;
        return c;
    }
    std::bernoulli_distribution coin(0.5);
    for (const Message& m : view.buffer(c.process)) {
        const bool aged = view.now() - m.sent_at >= max_age_;
        if (aged || coin(rng_)) c.deliver.push_back(m.id);
    }
    return c;
}

PartitionScheduler::PartitionScheduler(
        std::vector<std::vector<ProcessId>> blocks, int block_budget)
    : blocks_(std::move(blocks)), block_budget_(block_budget) {
    // The blocks B_1..B_m are the D_1,...,D_{k-1},D of the Theorem 2/10
    // partition arguments: a process in two blocks would make the pasted
    // run's plan ill-defined, so disjointness is a hard precondition.
    KSA_REQUIRE(block_budget_ > 0, "PartitionScheduler: non-positive budget");
    std::vector<ProcessId> seen;
    for (const auto& block : blocks_) {
        KSA_REQUIRE(!block.empty(), "PartitionScheduler: empty block");
        for (ProcessId p : block) {
            KSA_REQUIRE(p >= 1, "PartitionScheduler: invalid process id");
            KSA_REQUIRE(std::find(seen.begin(), seen.end(), p) == seen.end(),
                        "PartitionScheduler: blocks must be disjoint");
            seen.push_back(p);
        }
    }
}

bool PartitionScheduler::block_done(const SystemView& view, int b) const {
    for (ProcessId p : blocks_[b]) {
        if (view.plan().is_faulty(p)) {
            if (view.can_step(p)) return false;  // crash not yet realized
        } else if (!view.decided(p)) {
            return false;
        }
    }
    return true;
}

std::optional<StepChoice> PartitionScheduler::intra_block_step(
        const SystemView& view, int b) {
    // Cycles through the block's members in order starting after the last
    // stepped one -- the same relative order a fair round-robin schedule
    // produces when everyone outside the block is dead, which is what the
    // run-pasting indistinguishability arguments (Lemmas 11/12) rely on.
    const auto& block = blocks_[b];
    const int size = static_cast<int>(block.size());
    for (int off = 0; off < size; ++off) {
        const int idx = (block_cursor_ + off) % size;
        ProcessId p = block[idx];
        if (!view.can_step(p)) continue;
        StepChoice c;
        c.process = p;
        for (const Message& m : view.buffer(p))
            if (std::find(block.begin(), block.end(), m.from) != block.end())
                c.deliver.push_back(m.id);
        // A process is worth stepping if it must realize a planned crash,
        // has not decided, or has deliverable messages to drain (matching
        // the fair scheduler's rule).
        const bool faulty = view.plan().is_faulty(p);
        const bool useful = faulty_pending(view, p) ||
                            (!faulty && (!view.decided(p) || !c.deliver.empty()));
        if (!useful) continue;
        block_cursor_ = (idx + 1) % size;
        return c;
    }
    return std::nullopt;
}

std::optional<StepChoice> PartitionScheduler::next(const SystemView& view) {
    while (!releasing_) {
        if (current_block_ >= static_cast<int>(blocks_.size())) {
            releasing_ = true;
            release_time_ = view.now();
            break;
        }
        if (block_done(view, current_block_)) {
            ++current_block_;
            budget_used_ = 0;
            block_cursor_ = 0;
            continue;
        }
        if (budget_used_ >= block_budget_) {
            stalled_.push_back(current_block_);
            ++current_block_;
            budget_used_ = 0;
            block_cursor_ = 0;
            continue;
        }
        std::optional<StepChoice> c = intra_block_step(view, current_block_);
        if (!c) {
            // Nobody in the block can make progress in isolation at all
            // (e.g. all members crashed before deciding).
            stalled_.push_back(current_block_);
            ++current_block_;
            budget_used_ = 0;
            block_cursor_ = 0;
            continue;
        }
        ++budget_used_;
        return c;
    }

    // Release phase: fair round-robin with full delivery.
    if (all_done(view)) return std::nullopt;
    const int n = view.n();
    for (int off = 1; off <= n; ++off) {
        ProcessId p = (release_cursor_ + off - 1) % n + 1;
        if (!view.can_step(p)) continue;
        if (faulty_pending(view, p) || useful_correct(view, p)) {
            release_cursor_ = p;
            StepChoice c;
            c.process = p;
            c.deliver_all = true;
            return c;
        }
    }
    return std::nullopt;
}

StagedScheduler::StagedScheduler(std::vector<Stage> stages)
    : stages_(std::move(stages)) {
    for (const Stage& s : stages_) {
        KSA_REQUIRE(!s.active.empty(),
                    "StagedScheduler: stage with no active set");
        KSA_REQUIRE(s.budget > 0, "StagedScheduler: non-positive stage budget");
    }
}

bool StagedScheduler::stage_done(const SystemView& view,
                                 const Stage& s) const {
    if (s.done) return s.done(view);
    for (ProcessId p : s.active) {
        if (view.plan().is_faulty(p)) {
            if (view.can_step(p)) return false;
        } else if (!view.decided(p)) {
            return false;
        }
    }
    return true;
}

std::optional<StepChoice> StagedScheduler::next(const SystemView& view) {
    while (!releasing_) {
        if (current_ >= stages_.size()) {
            releasing_ = true;
            release_time_ = view.now();
            break;
        }
        const Stage& stage = stages_[current_];
        if (stage_done(view, stage)) {
            ++current_;
            used_ = 0;
            cursor_ = 0;
            continue;
        }
        if (used_ >= stage.budget) {
            stalled_.push_back(static_cast<int>(current_));
            ++current_;
            used_ = 0;
            cursor_ = 0;
            continue;
        }
        // Cursor-based round-robin over the stage's active processes, in
        // the same relative order a fair scheduler would use (see
        // PartitionScheduler::intra_block_step for why this matters).
        bool issued = false;
        StepChoice choice;
        const int size = static_cast<int>(stage.active.size());
        for (int off = 0; off < size && !issued; ++off) {
            const int idx = (cursor_ + off) % size;
            ProcessId p = stage.active[idx];
            if (!view.can_step(p)) continue;
            choice.process = p;
            choice.deliver.clear();
            for (const Message& m : view.buffer(p)) {
                const bool admit =
                    stage.filter
                        ? stage.filter(m, p)
                        : std::find(stage.active.begin(), stage.active.end(),
                                    m.from) != stage.active.end();
                if (admit) choice.deliver.push_back(m.id);
            }
            const bool faulty = view.plan().is_faulty(p);
            const bool useful =
                faulty_pending(view, p) ||
                (!faulty && (!view.decided(p) || !choice.deliver.empty()));
            if (!useful) continue;
            cursor_ = (idx + 1) % size;
            issued = true;
        }
        if (!issued) {
            stalled_.push_back(static_cast<int>(current_));
            ++current_;
            used_ = 0;
            cursor_ = 0;
            continue;
        }
        ++used_;
        return choice;
    }

    if (all_done(view)) return std::nullopt;
    const int n = view.n();
    for (int off = 1; off <= n; ++off) {
        ProcessId p = (release_cursor_ + off - 1) % n + 1;
        if (!view.can_step(p)) continue;
        if (faulty_pending(view, p) || useful_correct(view, p)) {
            release_cursor_ = p;
            StepChoice c;
            c.process = p;
            c.deliver_all = true;
            return c;
        }
    }
    return std::nullopt;
}

std::optional<StepChoice> LockstepScheduler::next(const SystemView& view) {
    if (all_done(view)) return std::nullopt;
    const int n = view.n();
    for (int off = 1; off <= n; ++off) {
        ProcessId p = (cursor_ + off - 1) % n + 1;
        if (!view.can_step(p)) continue;
        if (p <= cursor_) ++cycles_;  // wrapped around: a cycle completed
        cursor_ = p;
        StepChoice c;
        c.process = p;
        for (const Message& m : view.buffer(p))
            if (!filter_ || filter_(m, p, view)) c.deliver.push_back(m.id);
        return c;
    }
    return std::nullopt;
}

std::optional<StepChoice> ScriptedScheduler::next(const SystemView&) {
    if (pos_ >= script_.size()) return std::nullopt;
    return script_[pos_++];
}

std::optional<StepChoice> FairCompletionScheduler::next(const SystemView& view) {
    if (!draining_) {
        std::optional<StepChoice> c = inner_->next(view);
        if (c) return c;
        draining_ = true;
    }
    return drain_.next(view);
}

}  // namespace ksa
