#include "sim/admissibility.hpp"

#include <sstream>

namespace ksa {

AdmissibilityReport check_admissibility(const Run& run) {
    AdmissibilityReport report;
    if (run.stop == StopReason::kStepLimit) report.conclusive = false;

    for (ProcessId p = 1; p <= run.n; ++p) {
        const bool faulty = run.plan.is_faulty(p);
        const int steps = run.steps_of(p);

        // A Byzantine sender (ByzantineSpec in the effective plan) is
        // outside the crash-model obligations entirely: Byzantine k-set
        // agreement binds correct processes only, so neither a decision
        // nor drained channels are required of it.  Messages *to* a
        // correct receiver that a Byzantine channel forged still count --
        // Run::undelivered_to transfers the delivery obligation from the
        // tampered original to the forgery.
        if (!faulty && run.plan.is_byzantine(p)) continue;

        if (faulty) {
            const int allowed = run.plan.allowed_steps(p);
            if (steps > allowed) {
                std::ostringstream out;
                out << "faulty process " << p << " took " << steps
                    << " steps, plan allows " << allowed;
                report.fail(out.str());
            }
            if (report.conclusive && steps < allowed) {
                std::ostringstream out;
                out << "planned crash of process " << p
                    << " not realized: took " << steps << " of " << allowed
                    << " steps";
                report.fail(out.str());
            }
            continue;
        }

        // Correct process: must have kept stepping until it decided.
        if (report.conclusive && !run.decision_of(p).has_value()) {
            std::ostringstream out;
            out << "correct process " << p
                << " never decided in a decisive prefix";
            report.fail(out.str());
        }
        // Eventual delivery: nothing addressed to a correct process may
        // remain buffered in a decisive prefix.
        if (report.conclusive) {
            auto pending = run.undelivered_to(p);
            if (!pending.empty()) {
                std::ostringstream out;
                out << pending.size()
                    << " message(s) to correct process " << p
                    << " never delivered";
                report.fail(out.str());
            }
        }
    }
    return report;
}

}  // namespace ksa
