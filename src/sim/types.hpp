#pragma once
// Core vocabulary types for the message-passing simulation substrate.
//
// The substrate implements the computing model the paper adopts from
// Dolev, Dwork and Stockmeyer ("On the minimal synchronism needed for
// distributed consensus", JACM 1987), extended with the paper's 6th
// dimension: failure-detector queries at the beginning of each step.
//
// A system is a set of n deterministic process state machines
// communicating through per-process message buffers.  A *run* is a
// sequence of configurations where each configuration follows from a
// single atomic step of a single process.  The i-th step of a run is
// said to occur at (global, discrete) time i; processes have no access
// to time.

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace ksa {

/// Process identifier.  Processes are numbered 1..n as in the paper; 0 is
/// never a valid id and is used as a sentinel in a few internal places.
using ProcessId = int;

/// Discrete global time: the index of a step in a run.  The first step of
/// a run occurs at time 1.
using Time = std::int64_t;

/// Proposal / decision values.  The paper assumes a finite value universe
/// V with |V| > n so that all-distinct-inputs runs exist; callers pick the
/// concrete values.
using Value = int;

/// Sentinel used in a few dense tables; the public API uses
/// std::optional<Value> for "no decision yet" (the paper's bottom).
inline constexpr Value kNoValue = std::numeric_limits<Value>::min();

/// Maximum time sentinel ("never").
inline constexpr Time kNever = std::numeric_limits<Time>::max();

/// Base class of all exceptions thrown by the library.  Invariant
/// violations *inside* the simulator (which would mean the reproduction
/// itself is broken) throw SimulationBug; misuse of the public API throws
/// UsageError.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An algorithm or driver used the library incorrectly (e.g. decided
/// twice, sent to a process id out of range).
class UsageError : public Error {
public:
    explicit UsageError(const std::string& what) : Error(what) {}
};

/// The simulator detected an internal inconsistency.
class SimulationBug : public Error {
public:
    explicit SimulationBug(const std::string& what) : Error(what) {}
};

/// Throws UsageError with `what` when `cond` is false.
inline void require(bool cond, const std::string& what) {
    if (!cond) throw UsageError(what);
}

/// Throws SimulationBug with `what` when `cond` is false.
inline void invariant(bool cond, const std::string& what) {
    if (!cond) throw SimulationBug(what);
}

}  // namespace ksa
