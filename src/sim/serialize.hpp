#pragma once
// Run serialization: a stable, line-oriented text format for recorded
// runs, with full-fidelity round-tripping of every field the run
// queries and validators consume (steps, deliveries, sends, omissions,
// detector samples, crash plans and realized Byzantine specs, fault
// events, decisions, digests).
//
// Uses: archiving counterexample runs produced by the impossibility
// engines, diffing runs across code changes, and replaying a run's
// schedule in a fresh process (see schedule_of()).

#include <iosfwd>
#include <string>

#include "sim/run.hpp"
#include "sim/scheduler.hpp"

namespace ksa {

/// Writes `run` to `out` in the KSARUN-1 text format.
void write_run(std::ostream& out, const Run& run);

/// The same, as a string.
std::string run_to_string(const Run& run);

/// Parses a KSARUN-1 document.  Throws UsageError on malformed input.
Run read_run(std::istream& in);

/// The same, from a string.
Run run_from_string(const std::string& text);

/// Extracts the schedule of a recorded run: the exact StepChoice
/// sequence (process + delivered message ids) that, replayed through a
/// ScriptedScheduler against the same algorithm/inputs/plan/oracle,
/// reproduces the run bit for bit.
std::vector<StepChoice> schedule_of(const Run& run);

}  // namespace ksa
