#pragma once
// The scheduler zoo.
//
// Every schedule used by the paper's proofs (and by the possibility
// results) is a concrete Scheduler:
//
//   * RoundRobinScheduler -- the canonical fair schedule: cycles through
//     live processes delivering everything.  Used for possibility
//     results and as the "benign" baseline.
//   * RandomScheduler -- seeded random fair schedule with bounded message
//     aging; models arbitrary asynchrony while staying admissible.
//   * PartitionScheduler -- the paper's central adversary: given blocks
//     B1..Bm, runs each block in isolation (only intra-block delivery)
//     until its correct members decide, then releases all delayed
//     traffic.  This is exactly the "delay all communication between the
//     sets of processes D1,...,Dk-1, D until every correct process has
//     decided" schedule of Theorems 2 and 10.
//   * ScriptedScheduler -- replays an explicit step sequence; the
//     building block of the run-pasting constructions (Lemmas 11/12).

#include <cstdint>
#include <functional>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace ksa {

/// Fair round-robin: cycles through processes in id order, delivering the
/// whole buffer at each step.  Faulty processes take their planned steps
/// interleaved with everyone else (realizing the crash plan).  Stops when
/// every correct process has decided, all correct buffers are drained and
/// every planned crash has been realized.
class RoundRobinScheduler final : public Scheduler {
public:
    std::optional<StepChoice> next(const SystemView& view) override;
    std::string name() const override { return "round-robin"; }

private:
    ProcessId cursor_ = 0;
};

/// Seeded random fair schedule.  Each step picks a uniformly random
/// runnable process; each buffered message is delivered with probability
/// 1/2, except that messages older than `max_age` steps are always
/// delivered (which keeps the schedule admissible: every message to a
/// correct process is eventually received).  After all correct processes
/// have decided the scheduler switches to deliver-all draining.
class RandomScheduler final : public Scheduler {
public:
    explicit RandomScheduler(std::uint64_t seed, Time max_age = 64)
        : seed_(seed), rng_(seed), max_age_(max_age) {}

    std::optional<StepChoice> next(const SystemView& view) override;
    /// Embeds the seed (and aging bound), e.g. `random(seed=7,max_age=64)`,
    /// so archived runs and trace headers record how to regenerate the
    /// schedule.
    std::string name() const override;

    /// The seed this schedule was constructed from.
    std::uint64_t seed() const { return seed_; }

private:
    std::uint64_t seed_;
    std::mt19937_64 rng_;
    Time max_age_;
};

/// The partitioning adversary.  Blocks are processed sequentially: while
/// block i is active, only its members step and they receive only
/// messages sent from within block i; once all correct members of block i
/// have decided (or the per-block step budget is exhausted -- evidence of
/// a termination violation), the next block starts.  After the last
/// block, all delayed traffic is released and everyone is scheduled
/// round-robin until quiescence, which makes the complete run admissible
/// in the asynchronous model.
class PartitionScheduler final : public Scheduler {
public:
    /// `blocks` must be disjoint; processes not mentioned in any block
    /// are only scheduled in the release phase.  `block_budget` bounds
    /// the number of steps spent inside one block's isolation phase.
    explicit PartitionScheduler(std::vector<std::vector<ProcessId>> blocks,
                                int block_budget = 20000);

    std::optional<StepChoice> next(const SystemView& view) override;
    std::string name() const override { return "partition"; }

    /// Indices of blocks whose correct members failed to all decide
    /// within the budget while isolated.  Non-empty after execution means
    /// the algorithm's termination depends on cross-partition traffic.
    const std::vector<int>& stalled_blocks() const { return stalled_; }

    /// Global time at which the release phase started (kNever if it has
    /// not).  Before this time no cross-block message was delivered.
    Time release_time() const { return release_time_; }

private:
    bool block_done(const SystemView& view, int b) const;
    std::optional<StepChoice> intra_block_step(const SystemView& view, int b);

    std::vector<std::vector<ProcessId>> blocks_;
    int block_budget_;
    int current_block_ = 0;
    int budget_used_ = 0;
    std::vector<int> stalled_;
    bool releasing_ = false;
    Time release_time_ = kNever;
    ProcessId release_cursor_ = 0;
    int block_cursor_ = 0;
};

/// The fully general staged adversary, subsuming PartitionScheduler.
/// A run is divided into *stages*; in each stage only the stage's active
/// processes take steps and a per-stage message filter decides which
/// buffered messages may be delivered (by sender, receiver, payload --
/// e.g. "hold back decision announcements", as the Theorem 10
/// construction requires).  A stage completes when all its correct
/// active processes have decided (or an explicit predicate holds, or its
/// step budget is exhausted, which is recorded as a stall).  After the
/// last stage all traffic is released and everyone is scheduled fairly
/// until quiescence.
class StagedScheduler final : public Scheduler {
public:
    struct Stage {
        /// Processes stepped during this stage (in round-robin order).
        std::vector<ProcessId> active;
        /// Message admission filter: deliver m to `dest` now?  Null means
        /// "only messages sent from within `active`".
        std::function<bool(const Message& m, ProcessId dest)> filter;
        /// Optional completion predicate; null means "all correct active
        /// processes decided and active planned crashes realized".
        std::function<bool(const SystemView&)> done;
        /// Step budget before the stage is declared stalled.
        int budget = 20000;
    };

    explicit StagedScheduler(std::vector<Stage> stages);

    std::optional<StepChoice> next(const SystemView& view) override;
    std::string name() const override { return "staged"; }

    /// Indices of stages that exhausted their budget (or had no runnable
    /// process) before completing.
    const std::vector<int>& stalled_stages() const { return stalled_; }

    /// Global time at which the release phase began (kNever if not yet).
    Time release_time() const { return release_time_; }

private:
    bool stage_done(const SystemView& view, const Stage& s) const;

    std::vector<Stage> stages_;
    std::size_t current_ = 0;
    int used_ = 0;
    int cursor_ = 0;
    std::vector<int> stalled_;
    bool releasing_ = false;
    Time release_time_ = kNever;
    ProcessId release_cursor_ = 0;
};

/// Lockstep scheduler: SYNCHRONOUS processes, asynchronous communication
/// -- the exact premise of Theorem 2.  Execution proceeds in cycles; in
/// every cycle each live process takes exactly one step, in id order
/// (relative speeds are therefore equal), while a dynamic filter decides
/// which buffered messages may be delivered (communication delays remain
/// under adversary control).  Stops when every correct process has
/// decided, buffers are drained and planned crashes are realized.
class LockstepScheduler final : public Scheduler {
public:
    /// Message admission: deliver m to `dest` in the current step?  The
    /// view enables phase-dependent filters ("release after decisions").
    /// A null filter delivers everything.
    using Filter = std::function<bool(const Message& m, ProcessId dest,
                                      const SystemView& view)>;

    explicit LockstepScheduler(Filter filter = {})
        : filter_(std::move(filter)) {}

    std::optional<StepChoice> next(const SystemView& view) override;
    std::string name() const override { return "lockstep"; }

    /// Number of completed cycles so far.
    int cycles() const { return cycles_; }

private:
    Filter filter_;
    ProcessId cursor_ = 0;  // last stepped pid within the cycle
    int cycles_ = 0;
};

/// Replays a fixed step sequence, then stops.  Illegal choices (e.g. a
/// message id that is not in the buffer) surface as UsageError from the
/// System, which is intentional: a paste that does not correspond to a
/// legal run must fail loudly.
class ScriptedScheduler final : public Scheduler {
public:
    explicit ScriptedScheduler(std::vector<StepChoice> script)
        : script_(std::move(script)) {}

    std::optional<StepChoice> next(const SystemView& view) override;
    std::string name() const override { return "scripted"; }

private:
    std::vector<StepChoice> script_;
    std::size_t pos_ = 0;
};

/// Runs an inner scheduler to completion, then keeps scheduling
/// round-robin deliver-all steps until the system is quiescent.  Wrap any
/// adversarial prefix with this to obtain an admissible run.
class FairCompletionScheduler final : public Scheduler {
public:
    explicit FairCompletionScheduler(Scheduler& inner) : inner_(&inner) {}

    std::optional<StepChoice> next(const SystemView& view) override;
    std::string name() const override {
        return inner_->name() + "+fair-completion";
    }

private:
    Scheduler* inner_;
    bool draining_ = false;
    RoundRobinScheduler drain_;
};

}  // namespace ksa
