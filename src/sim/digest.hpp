#pragma once
// Deterministic 128-bit state digests.
//
// The configuration-space explorer (core/explorer.hpp) deduplicates
// reached configurations.  Its reference mode keys the visited set by a
// canonical rendering of the full configuration -- unambiguous but
// allocation-heavy: every candidate state pays an ostringstream pass
// over every buffer and behavior.  The fast path instead folds the same
// canonical byte stream into the 128-bit hash below.
//
// Requirements (and why std::hash is banned here):
//
//   * deterministic across processes, builds and platforms -- std::hash
//     is implementation-defined and may be seeded per process, which
//     would make "which states fall inside max_states" unreproducible
//     (the ksa_lint raw-randomness/determinism rules exist for exactly
//     this class of bug);
//   * incremental -- state components are folded in as they are walked,
//     no intermediate string is materialized;
//   * 128 bits wide -- at the explorer's scale (<= ~10^6 states) the
//     collision probability of a well-mixed 128-bit hash is ~10^-26
//     (birthday bound), far below e.g. the probability of a memory
//     error corrupting the canonical-string comparison.  The golden
//     equivalence suite (tests/test_explorer_equiv.cpp) cross-checks
//     the fast path against the canonical-string reference mode on
//     every supported case anyway.
//
// The construction is two independent 64-bit FNV-1a lanes with distinct
// offset bases, each post-mixed with a splitmix64-style finalizer.  The
// lanes consume the same byte stream but evolve through different
// states from the first byte on; the finalizer breaks FNV's weak
// avalanche in the low bits.

#include <cstdint>
#include <string>
#include <string_view>

namespace ksa {

/// A 128-bit digest value.  Ordered (usable as a std::set key) and
/// renderable for reports.
struct Digest128 {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    friend bool operator==(const Digest128&, const Digest128&) = default;
    friend auto operator<=>(const Digest128&, const Digest128&) = default;

    /// Fixed-width hex rendering "hhhhhhhhhhhhhhhh:llllllllllllllll".
    std::string to_string() const {
        static constexpr char kHex[] = "0123456789abcdef";
        std::string out(33, ':');
        for (int i = 0; i < 16; ++i) {
            out[15 - i] = kHex[(hi >> (4 * i)) & 0xf];
            out[32 - i] = kHex[(lo >> (4 * i)) & 0xf];
        }
        return out;
    }
};

/// Incremental, deterministic 128-bit hasher.  Feed bytes / integers /
/// strings in a canonical order, then read digest().  The same feed
/// sequence always yields the same digest; distinct feed sequences are
/// kept distinct by tagging every variable-length field with its length
/// at the call sites (see core/explorer.cpp).
class StateHasher {
public:
    void bytes(const void* data, std::size_t size) {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < size; ++i) {
            const std::uint64_t b = p[i];
            a_ = (a_ ^ b) * kPrime;
            b_ = (b_ ^ (b + 0x9e)) * kPrime;
        }
    }

    void str(std::string_view s) {
        // Length prefix keeps ("ab","c") distinct from ("a","bc").
        u64(s.size());
        bytes(s.data(), s.size());
    }

    void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    /// Folds a previously computed digest into the stream (128 bits).
    /// The explorer uses this to fold cached per-message digests into a
    /// state key instead of re-walking message payloads per candidate.
    void fold(const Digest128& d) {
        u64(d.hi);
        u64(d.lo);
    }

    /// Finalizes (without consuming) the current state.
    Digest128 digest() const {
        return {finalize(a_ ^ 0x2545f4914f6cdd1dull), finalize(b_)};
    }

    /// Rewinds the hasher to its initial state.  The explorer's hot
    /// paths keep one scratch hasher per worker and reset it between
    /// candidates instead of constructing a fresh object -- the hasher
    /// is trivially small, but reset() also documents the reuse
    /// discipline (no state may leak between candidates).
    void reset() {
        a_ = kBasisA;
        b_ = kBasisB;
    }

private:
    static constexpr std::uint64_t kPrime = 0x100000001b3ull;  // FNV-1a
    static constexpr std::uint64_t kBasisA = 0xcbf29ce484222325ull;  // FNV-1a
    static constexpr std::uint64_t kBasisB = 0x84222325cbf29ce4ull;  // lane 2

    static std::uint64_t finalize(std::uint64_t x) {
        // splitmix64 finalizer: full avalanche over the FNV state.
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    std::uint64_t a_ = kBasisA;
    std::uint64_t b_ = kBasisB;
};

}  // namespace ksa
