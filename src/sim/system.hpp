#pragma once
// The execution engine.
//
// A System instantiates one Behavior per process from an Algorithm, owns
// the per-process message buffers, enforces the FailurePlan, queries the
// failure-detector oracle (when the model has one) and records every step
// into a Run.  It can be driven in two ways:
//
//   * System::execute(scheduler, limits) -- the usual mode: the scheduler
//     (the asynchrony adversary) picks steps until it stops or a limit
//     trips;
//   * the step-wise apply_choice() API -- used by the run-pasting
//     machinery of core/ (Lemmas 11 and 12), which replays recorded step
//     sequences of several runs interleaved into a single new run.
//
// Everything is deterministic: the same (algorithm, inputs, plan, oracle,
// choice sequence) yields bit-identical Runs.

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/behavior.hpp"
#include "sim/failure_plan.hpp"
#include "sim/fd_oracle.hpp"
#include "sim/run.hpp"
#include "sim/scheduler.hpp"
#include "sim/types.hpp"

namespace ksa {

/// Hard bounds on an execution.
struct ExecutionLimits {
    /// Hard cap on the total number of steps; exceeding it stops the run
    /// with StopReason::kStepLimit (the signature of non-termination for
    /// a decision task).
    Time max_steps = 200000;
};

/// See file comment.
class System final : public SystemView {
public:
    /// Builds the initial configuration: behavior of process p gets
    /// inputs[p-1] as its proposal value.  `oracle` may be null iff the
    /// algorithm does not query a failure detector; it is borrowed and
    /// must outlive the System.
    System(const Algorithm& algorithm, int n, std::vector<Value> inputs,
           FailurePlan plan, FdOracle* oracle = nullptr);

    System(const System&) = delete;
    System& operator=(const System&) = delete;

    // -- SystemView --------------------------------------------------
    int n() const override { return n_; }
    Time now() const override { return now_; }
    const std::deque<Message>& buffer(ProcessId p) const override;
    bool crashed(ProcessId p) const override;
    bool decided(ProcessId p) const override;
    int steps_of(ProcessId p) const override;
    const FailurePlan& plan() const override { return plan_; }

    // -- stepping ----------------------------------------------------

    /// Executes one atomic step as described by `choice`.  Any fault
    /// events attached to the choice (chaos layer) are applied first, in
    /// order: drops remove buffered messages, duplicates clone them, and
    /// crash injections extend the effective FailurePlan so the victim's
    /// next step is its final one.  Throws UsageError if the choice is
    /// illegal (crashed/dead process, message id not in the buffer, plan
    /// exhausted, conflicting fault).
    void apply_choice(const StepChoice& choice);

    /// Records the scheduler label into the run metadata (System::execute
    /// does this automatically; step-wise drivers replaying a recorded
    /// run set it from Run::scheduler to keep replays byte-identical).
    void set_scheduler_label(std::string label);

    /// Runs `scheduler` until it stops or `limits.max_steps` is reached,
    /// then finalizes and returns the recorded Run.  The System is spent
    /// afterwards.
    Run execute(Scheduler& scheduler, ExecutionLimits limits = {});

    /// Finalizes the record without a scheduler (step-wise mode).
    Run finish(StopReason reason);

    /// Decision of p so far, if any.
    std::optional<Value> decision_of(ProcessId p) const;

private:
    void check_pid(ProcessId p, const char* who) const;
    void apply_fault(const FaultAction& action, StepRecord& rec);
    /// Locates a buffered message by id; returns the owning buffer or
    /// nullptr.  `out_it` receives the message's position on success.
    std::deque<Message>* find_buffered(MessageId id,
                                       std::deque<Message>::iterator* out_it);

    int n_;
    std::string algo_name_;
    bool uses_fd_;
    std::vector<Value> inputs_;
    FailurePlan plan_;
    FdOracle* oracle_;

    std::vector<std::unique_ptr<Behavior>> behaviors_;  // index p-1
    std::vector<std::deque<Message>> buffers_;          // index p-1
    std::vector<int> step_counts_;                      // index p-1
    std::vector<bool> crashed_;                         // index p-1
    std::vector<std::optional<Value>> decisions_;       // index p-1

    Time now_ = 1;
    MessageId next_msg_id_ = 1;
    std::map<MessageId, int> duplicate_counts_;  ///< clones per source id
    Run run_;
    bool finished_ = false;
};

/// Convenience wrapper: build a System and execute it in one call.
Run execute_run(const Algorithm& algorithm, int n, std::vector<Value> inputs,
                FailurePlan plan, Scheduler& scheduler,
                FdOracle* oracle = nullptr, ExecutionLimits limits = {});

/// Convenience: inputs 1..n as distinct proposal values (the paper's
/// all-distinct assumption, |V| > n).
std::vector<Value> distinct_inputs(int n);

/// Convenience: all processes propose `v`.
std::vector<Value> uniform_inputs(int n, Value v);

}  // namespace ksa
