#pragma once
// The execution engine.
//
// A System instantiates one Behavior per process from an Algorithm, owns
// the per-process message buffers, enforces the FailurePlan, queries the
// failure-detector oracle (when the model has one) and records every step
// into a Run.  It can be driven in two ways:
//
//   * System::execute(scheduler, limits) -- the usual mode: the scheduler
//     (the asynchrony adversary) picks steps until it stops or a limit
//     trips;
//   * the step-wise apply_choice() API -- used by the run-pasting
//     machinery of core/ (Lemmas 11 and 12), which replays recorded step
//     sequences of several runs interleaved into a single new run.
//
// Everything is deterministic: the same (algorithm, inputs, plan, oracle,
// choice sequence) yields bit-identical Runs.

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/behavior.hpp"
#include "sim/failure_plan.hpp"
#include "sim/fd_oracle.hpp"
#include "sim/run.hpp"
#include "sim/scheduler.hpp"
#include "sim/types.hpp"

namespace ksa {

/// Hard bounds on an execution.
struct ExecutionLimits {
    /// Hard cap on the total number of steps; exceeding it stops the run
    /// with StopReason::kStepLimit (the signature of non-termination for
    /// a decision task).
    Time max_steps = 200000;
};

/// See file comment.
class System final : public SystemView {
public:
    /// Builds the initial configuration: behavior of process p gets
    /// inputs[p-1] as its proposal value.  `oracle` may be null iff the
    /// algorithm does not query a failure detector; it is borrowed and
    /// must outlive the System.
    System(const Algorithm& algorithm, int n, std::vector<Value> inputs,
           FailurePlan plan, FdOracle* oracle = nullptr);

    System(const System&) = delete;
    System& operator=(const System&) = delete;

    /// Deep snapshot of the live execution state: clones every Behavior
    /// (Behavior::clone), copies buffers, step counts, crash flags,
    /// decisions, the effective plan, the message-id counter and -- when
    /// recording is enabled -- the partial Run record.  The fork can be
    /// stepped independently of the original; the same choice sequence
    /// applied to both yields bit-identical states.  This is what lets
    /// the explorer expand children from live parent states instead of
    /// replaying the whole schedule prefix per child (doc/performance.md).
    ///
    /// `verify_digests` additionally asserts (KSA_REQUIRE) that every
    /// cloned behavior round-trips digest-identically -- the executable
    /// form of the clone() contract.  It costs 2n digest renderings, so
    /// it defaults to on in Debug/sanitizer builds and off in optimized
    /// builds; hot paths pass false explicitly.
    ///
    /// The failure-detector oracle (if any) is *borrowed*, not cloned:
    /// both systems keep querying the same oracle object.
    std::unique_ptr<System> fork(bool verify_digests =
#ifdef NDEBUG
                                     false
#else
                                     true
#endif
                                 ) const;

    /// Current canonical state digest of process p's behavior (the same
    /// string StepRecord::digest_after records after each step).  This is
    /// a live accessor: callers no longer need to finish() a throwaway
    /// copy of the System to learn per-process state digests.
    std::string last_digest(ProcessId p) const;

    /// Clones the current behavior of p (Behavior::clone) *without*
    /// copying the rest of the System.  This is the ghost-stepping
    /// primitive of the fast explorer: to compute a child state's dedup
    /// key it steps a lone behavior clone and combines the outcome with
    /// the parent's (unchanged) buffers and flags, deferring the full
    /// fork() until the child is known to be new (doc/performance.md).
    std::unique_ptr<Behavior> clone_behavior(ProcessId p) const;

    /// Read-only access to the live behavior of p.  The fast explorer
    /// uses this to fold behavior state into a hash key
    /// (Behavior::fold_state) without cloning or rendering a digest
    /// string.
    const Behavior& behavior_of(ProcessId p) const;

    /// Fills `scratch.delivered` with the first `count` messages of p's
    /// buffer (the delivery prefixes the explorer enumerates), reusing
    /// the vector's capacity across calls -- the allocation-lean
    /// companion of clone_behavior for ghost stepping: one scratch
    /// StepInput per worker serves every candidate step of a layer.
    /// `count` must not exceed the buffer size.
    void deliver_prefix(ProcessId p, std::size_t count,
                        StepInput& scratch) const;

    /// Toggles step recording (default on).  With recording off,
    /// apply_choice still executes transitions, enforces the plan and
    /// updates all live state, but appends nothing to the Run record and
    /// skips the per-step digest rendering -- the configuration-space
    /// explorer uses this, where the schedule script *is* the record.
    /// finish()/execute() on a non-recording System return a Run with
    /// header fields only (n, algorithm, inputs, plan, stop) and skip
    /// the step-record shape checks.
    void set_recording(bool recording) { recording_ = recording; }
    bool recording() const { return recording_; }

    // -- SystemView --------------------------------------------------
    int n() const override { return n_; }
    Time now() const override { return now_; }
    const std::deque<Message>& buffer(ProcessId p) const override;
    bool crashed(ProcessId p) const override;
    bool decided(ProcessId p) const override;
    int steps_of(ProcessId p) const override;
    const FailurePlan& plan() const override { return plan_; }

    // -- stepping ----------------------------------------------------

    /// Executes one atomic step as described by `choice`.  Any fault
    /// events attached to the choice (chaos layer) are applied first, in
    /// order: drops remove buffered messages, duplicates clone them,
    /// corruptions/equivocations rewrite them in place with forged ids
    /// and Byzantine-mutated payloads (extending the effective plan's
    /// ByzantineSpecs), and crash injections extend the effective
    /// FailurePlan so the victim's next step is its final one.  Throws
    /// UsageError if the choice is illegal (crashed/dead process, message
    /// id not in the buffer, plan exhausted, conflicting fault).
    void apply_choice(const StepChoice& choice);

    /// The StepChoice that delivers the first `count` buffered messages
    /// of `p`.  The explorer's delivery modes are always buffer
    /// prefixes, so the out-of-core store (src/store/) records only the
    /// prefix LENGTH per node and rebuilds the concrete choice --
    /// message ids included -- from the live parent buffer when a node
    /// is re-forked from its delta record.
    StepChoice prefix_choice(ProcessId p, std::size_t count) const;

    /// Records the scheduler label into the run metadata (System::execute
    /// does this automatically; step-wise drivers replaying a recorded
    /// run set it from Run::scheduler to keep replays byte-identical).
    void set_scheduler_label(std::string label);

    /// Runs `scheduler` until it stops or `limits.max_steps` is reached,
    /// then finalizes and returns the recorded Run.  The System is spent
    /// afterwards.
    Run execute(Scheduler& scheduler, ExecutionLimits limits = {});

    /// Finalizes the record without a scheduler (step-wise mode).
    Run finish(StopReason reason);

    /// Decision of p so far, if any.
    std::optional<Value> decision_of(ProcessId p) const;

private:
    /// Tag + constructor backing fork(): copies everything except the
    /// behaviors, which the caller clones one by one.
    struct ForkTag {};
    System(ForkTag, const System& other);

    void check_pid(ProcessId p, const char* who) const;
    void apply_fault(const FaultAction& action, StepRecord& rec);
    /// Charges a realized Byzantine fault event to `sender` in both the
    /// live plan and the run record (FailurePlan::note_byzantine).
    void note_byzantine(ProcessId sender, int corruptions, int equivocations);
    /// Locates a buffered message by id; returns the owning buffer or
    /// nullptr.  `out_it` receives the message's position on success.
    std::deque<Message>* find_buffered(MessageId id,
                                       std::deque<Message>::iterator* out_it);

    int n_;
    std::string algo_name_;
    bool uses_fd_;
    std::vector<Value> inputs_;
    FailurePlan plan_;
    FdOracle* oracle_;

    std::vector<std::unique_ptr<Behavior>> behaviors_;  // index p-1
    std::vector<std::deque<Message>> buffers_;          // index p-1
    std::vector<int> step_counts_;                      // index p-1
    std::vector<bool> crashed_;                         // index p-1
    std::vector<std::optional<Value>> decisions_;       // index p-1

    Time now_ = 1;
    MessageId next_msg_id_ = 1;
    std::map<MessageId, int> duplicate_counts_;  ///< clones per source id
    Run run_;
    bool finished_ = false;
    bool recording_ = true;
};

/// Convenience wrapper: build a System and execute it in one call.
Run execute_run(const Algorithm& algorithm, int n, std::vector<Value> inputs,
                FailurePlan plan, Scheduler& scheduler,
                FdOracle* oracle = nullptr, ExecutionLimits limits = {});

/// Convenience: inputs 1..n as distinct proposal values (the paper's
/// all-distinct assumption, |V| > n).
std::vector<Value> distinct_inputs(int n);

/// Convenience: all processes propose `v`.
std::vector<Value> uniform_inputs(int n, Value v);

}  // namespace ksa
