#pragma once
// Communication-closed rounds: the Heard-Of model.
//
// The paper's Discussion section conjectures that Theorem 1 "can also be
// used to establish impossibility results in round models like [8]
// (Charron-Bost & Schiper's Heard-Of model), [15] (Gafni's round-by-
// round fault detectors)".  This module implements that substrate so the
// conjecture can be exercised (see core/ho_argument.hpp):
//
//   * computation proceeds in rounds r = 1, 2, ...;
//   * in round r, every process emits one message (a function of its
//     state) addressed to all;
//   * it then receives the round-r messages of exactly the processes in
//     its *heard-of set* HO(p, r), chosen by the adversary, and makes a
//     state transition;
//   * rounds are communication-closed: a round-r message is delivered in
//     round r or never.
//
// Crash failures are modelled as HO behaviour (a crashed process simply
// stops being heard; in its crashing round it may be heard by only a
// subset of receivers), which is exactly the benign-fault reading of the
// HO model.

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/payload.hpp"
#include "sim/types.hpp"

namespace ksa::ho {

/// Per-process state machine of a round-based algorithm.
class RoundBehavior {
public:
    virtual ~RoundBehavior() = default;

    /// The message this process sends to everybody in round `round`.
    virtual Payload message(int round) = 0;

    /// State transition at the end of round `round`, given the messages
    /// heard (sender -> payload).  May return a decision (write-once).
    virtual std::optional<Value> transition(
            int round, const std::map<ProcessId, Payload>& heard) = 0;

    /// Canonical state digest (same contract as Behavior).
    virtual std::string state_digest() const = 0;

    /// Deep copy (same contract as Behavior::clone): the clone must be
    /// digest- and transition-identical to the original from here on.
    virtual std::unique_ptr<RoundBehavior> clone() const = 0;
};

/// A round-based algorithm.
class RoundAlgorithm {
public:
    virtual ~RoundAlgorithm() = default;
    virtual std::unique_ptr<RoundBehavior> make_behavior(ProcessId id, int n,
                                                         Value input) const = 0;
    virtual std::string name() const = 0;
};

/// The adversary: assigns heard-of sets.  A process p is *alive* in
/// round r if it is scheduled to send (appears in someone's potential
/// HO); the executor asks for each (p, r) pair.
class HoAdversary {
public:
    virtual ~HoAdversary() = default;

    /// HO(p, r): the processes whose round-r messages p receives.
    /// Must be a subset of 1..n.  p itself may or may not be included.
    virtual std::vector<ProcessId> heard_of(ProcessId p, int round,
                                            int n) = 0;

    /// True iff p takes round r at all (false models a crashed process).
    virtual bool alive(ProcessId p, int round) { return p != 0 && round >= 0; }

    virtual std::string name() const = 0;
};

/// Record of one process in one round.
struct HoRecord {
    int round = 0;
    ProcessId process = 0;
    std::vector<ProcessId> heard_of;    ///< HO(p, r)
    std::optional<Value> decision;
    std::string digest_after;
};

/// A recorded round-model run.
struct HoRun {
    int n = 0;
    std::string algorithm;
    std::vector<Value> inputs;
    int rounds_executed = 0;
    std::vector<HoRecord> records;

    std::optional<Value> decision_of(ProcessId p) const;
    std::set<Value> distinct_decisions() const;
    bool all_decided(const std::vector<ProcessId>& group) const;
    /// Digest sequence of p per executed round (until decision when
    /// `until_decision`), for indistinguishability arguments.
    std::vector<std::string> digest_sequence(ProcessId p,
                                             bool until_decision = true) const;
};

/// Runs `algorithm` for up to `max_rounds` rounds (stops early when all
/// alive processes decided).
HoRun execute_ho(const RoundAlgorithm& algorithm, int n,
                 std::vector<Value> inputs, HoAdversary& adversary,
                 int max_rounds);

// ------------------------------------------------------------ adversaries

/// The benign assignment: everybody hears everybody, forever.
class FullHo final : public HoAdversary {
public:
    std::vector<ProcessId> heard_of(ProcessId, int, int n) override;
    std::string name() const override { return "full"; }
};

/// Synchronous crash faults: each faulty process has a crash round; in
/// that round it is heard only by a prescribed subset of receivers, and
/// from the next round on by nobody.  This is the classic synchronous
/// f-crash adversary expressed in HO terms.
class CrashHo final : public HoAdversary {
public:
    struct Crash {
        int round = 1;                      ///< the crashing round
        std::set<ProcessId> heard_by;       ///< receivers in that round
    };
    CrashHo() = default;
    explicit CrashHo(std::map<ProcessId, Crash> crashes)
        : crashes_(std::move(crashes)) {}

    void set_crash(ProcessId p, Crash crash) { crashes_[p] = crash; }

    std::vector<ProcessId> heard_of(ProcessId p, int round, int n) override;
    bool alive(ProcessId p, int round) override;
    std::string name() const override { return "sync-crash"; }

private:
    std::map<ProcessId, Crash> crashes_;
};

/// The partitioning assignment: disjoint blocks hear only themselves for
/// the first `isolation_rounds` rounds (forever when 0), then everybody
/// hears everybody.  The HO-model incarnation of the paper's central
/// adversary.
class PartitionHo final : public HoAdversary {
public:
    PartitionHo(std::vector<std::vector<ProcessId>> blocks,
                int isolation_rounds);

    std::vector<ProcessId> heard_of(ProcessId p, int round, int n) override;
    std::string name() const override { return "partition"; }

private:
    std::vector<std::vector<ProcessId>> blocks_;
    std::vector<int> block_of_;  // lazily sized
    int isolation_rounds_;
};

}  // namespace ksa::ho
