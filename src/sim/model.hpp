#pragma once
// Model descriptors: the Dolev-Dwork-Stockmeyer parameter space.
//
// The paper adopts the DDS'87 framework in which 32 message-passing
// models arise from five binary parameters, each either favourable (F)
// or unfavourable (U) for the algorithm, and adds a sixth dimension:
// availability of failure detectors.  A ModelDescriptor names one such
// model; core/bounds.hpp uses descriptors to state which theorem of the
// paper applies to which model, and the Theorem-1 engine uses the DDS
// consensus classification to discharge condition (C) ("there is no
// algorithm that solves consensus in M'").

#include <string>

#include "sim/types.hpp"

namespace ksa {

/// Dimension 1: processes take steps at bounded relative speeds (F) or
/// arbitrarily slowly (U).
enum class ProcessSync { kSynchronous, kAsynchronous };

/// Dimension 2: message delay is bounded (F) or unbounded (U).
enum class CommSync { kSynchronous, kAsynchronous };

/// Dimension 3: messages are received in the order sent (F) or in
/// arbitrary order (U).
enum class MessageOrder { kOrdered, kUnordered };

/// Dimension 4: a process can send to all processes in one atomic step
/// (F) or only point-to-point (U).
enum class Transmission { kBroadcast, kPointToPoint };

/// Dimension 5: a process can receive and send in the same atomic step
/// (F) or not (U).
enum class SendReceive { kAtomic, kSeparate };

/// Dimension 6 (the paper's extension): failure detectors available (F)
/// or not (U).
enum class FdDim { kNone, kAvailable };

/// One point of the (extended) DDS model space.
struct ModelDescriptor {
    ProcessSync processes = ProcessSync::kAsynchronous;
    CommSync communication = CommSync::kAsynchronous;
    MessageOrder order = MessageOrder::kUnordered;
    Transmission transmission = Transmission::kPointToPoint;
    SendReceive send_receive = SendReceive::kSeparate;
    FdDim fd = FdDim::kNone;

    friend bool operator==(const ModelDescriptor&,
                           const ModelDescriptor&) = default;

    /// The FLP model MASYNC: every parameter unfavourable.
    static ModelDescriptor asynchronous();

    /// The model of Theorem 2: synchronous processes, asynchronous
    /// communication, atomic broadcast steps, receive+send atomicity.
    static ModelDescriptor theorem2();

    /// MASYNC augmented with a failure detector (Sections II-C, VII).
    static ModelDescriptor asynchronous_with_fd();

    /// Rendering like "P:sync C:async O:unord T:bcast SR:atomic FD:none".
    std::string to_string() const;
};

/// The DDS'87 Table I classification specialized to what the paper needs:
/// is consensus solvable in `m` when at least one process may crash
/// (and no failure detector is available)?  Per DDS, it is solvable iff
/// the model dominates one of the four minimal favourable combinations:
///   (1) synchronous processes + synchronous communication,
///   (2) synchronous processes + ordered messages,
///   (3) broadcast transmission + ordered messages,
///   (4) synchronous communication + broadcast + send/receive atomicity.
/// Requires m.fd == FdDim::kNone (the classification predates detectors).
bool consensus_solvable_with_one_crash(const ModelDescriptor& m);

}  // namespace ksa
