#pragma once
// Run statistics: the measurement layer the benches report from.
//
// Aggregates per-run and per-process metrics from a recorded Run:
// message counts, decision latencies (in own-steps and in global time),
// buffer high-water marks, and the communication matrix.  Everything is
// derived from the record -- no instrumentation in the protocols.

#include <string>
#include <vector>

#include "sim/run.hpp"

namespace ksa {

/// Per-process metrics.
struct ProcessStats {
    ProcessId process = 0;
    int steps = 0;              ///< own steps taken
    int messages_sent = 0;
    int messages_received = 0;
    Time decision_time = kNever;    ///< global time of the deciding step
    int decision_own_steps = -1;    ///< own steps until decision (-1: none)
};

/// Whole-run metrics.
struct RunStats {
    int n = 0;
    std::size_t total_steps = 0;
    std::size_t total_messages = 0;
    std::size_t total_omitted = 0;
    Time last_decision_time = 0;        ///< when the slowest decider decided
    double mean_decision_own_steps = 0;  ///< over deciders
    std::vector<ProcessStats> per_process;
    /// traffic[i][j]: messages sent by p_{i+1} to p_{j+1} (delivered or
    /// still buffered; omitted sends excluded).
    std::vector<std::vector<int>> traffic;

    /// One-line rendering for bench tables.
    std::string summary() const;
};

/// Computes the statistics of a recorded run.
RunStats compute_stats(const Run& run);

}  // namespace ksa
