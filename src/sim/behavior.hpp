#pragma once
// The process state-machine interface.
//
// Every process is a deterministic state machine (Section II).  One
// atomic step consumes: the current local state, a (possibly empty)
// subset L of the process's message buffer chosen by the scheduler, and
// -- in models with failure detectors -- the value of a failure-detector
// query made at the beginning of the step.  The step yields a new local
// state and a set of messages to send, and may irrevocably set the
// write-once output y_p (the decision).
//
// An Algorithm is a factory creating one Behavior per process.  Behaviors
// must be deterministic: the same sequence of StepInputs from the same
// initial (id, n, input) must produce the same outputs and the same
// state digests.  The digest is the substrate's view of the local state
// and is what indistinguishability-until-decision (Definition 2) compares.

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/digest.hpp"
#include "sim/message.hpp"
#include "sim/payload.hpp"
#include "sim/types.hpp"

namespace ksa {

/// Output of a failure-detector query, made at the beginning of a step.
/// The two fields cover the detector classes used in the paper: `quorum`
/// is the trusted set output by Sigma-family detectors, `leaders` the
/// candidate set output by Omega-family detectors.  Detectors that lack a
/// component leave it empty.
struct FdSample {
    std::vector<ProcessId> quorum;   ///< Sigma-family output (sorted)
    std::vector<ProcessId> leaders;  ///< Omega-family output (sorted)

    friend bool operator==(const FdSample&, const FdSample&) = default;

    /// Canonical rendering `Q{..}L{..}` for digests and traces.
    std::string to_string() const;
};

/// Everything a process observes in one atomic step.
struct StepInput {
    /// Messages delivered in this step (the subset L of the buffer chosen
    /// by the scheduler; possibly empty).
    std::vector<Message> delivered;
    /// Failure-detector sample, present iff the model provides one.
    std::optional<FdSample> fd;
};

/// Everything a process emits in one atomic step.
struct StepOutput {
    /// Messages to send: (destination, payload) pairs.  Destinations must
    /// be in 1..n.  Self-sends are allowed.
    std::vector<std::pair<ProcessId, Payload>> sends;
    /// If set, the process irrevocably decides this value.  Deciding a
    /// second time is a protocol bug and aborts the simulation.
    std::optional<Value> decision;

    /// Appends a send of `payload` to process `to`.
    void send(ProcessId to, Payload payload) {
        sends.emplace_back(to, std::move(payload));
    }
    /// Appends a send of `payload` to every process in 1..n (a broadcast,
    /// which the model of Theorem 2 performs in one atomic step).
    void broadcast(int n, const Payload& payload) {
        for (ProcessId q = 1; q <= n; ++q) sends.emplace_back(q, payload);
    }
};

/// A process renaming for symmetry reduction: `ren[p-1]` is the new
/// name of process p.  Always a permutation of 1..n.
using ProcessRenaming = std::vector<ProcessId>;

/// What the reduction layer (core/reduction.hpp) may assume about an
/// algorithm's treatment of process ids.  Declaring anything other than
/// kNone is a *soundness claim* (doc/extending.md): for every renaming
/// pi the symmetry group admits, running the renamed configuration must
/// produce the pi-renamed run -- same decision values, renamed ids.
enum class SymmetryKind {
    /// No claim; the symmetry group is forced trivial (identity only).
    kNone,
    /// Fully id-symmetric: equivariant under EVERY renaming that fixes
    /// the inputs vector (decisions depend on ids only through values,
    /// e.g. flooding's min-value rule).
    kFull,
    /// Id-symmetric only under renamings that additionally keep every
    /// equal-input class a contiguous id block (algorithms that break
    /// ties by smallest id, e.g. the initial-clique source-component
    /// rule, stay value-equivariant exactly on such block renamings).
    kBlockSymmetric,
};

/// Deterministic per-process state machine.
class Behavior {
public:
    virtual ~Behavior() = default;

    /// Executes one atomic step.  Called by the System only.
    virtual StepOutput on_step(const StepInput& input) = 0;

    /// Canonical rendering of the complete local state.  Two behaviors of
    /// the same algorithm are in the same state iff their digests are
    /// equal; this is what run indistinguishability compares.
    virtual std::string state_digest() const = 0;

    /// Folds the complete local state into `h` WITHOUT materializing the
    /// digest string.  Contract: fold_state must distinguish exactly the
    /// states state_digest distinguishes -- two behaviors of the same
    /// algorithm feed identical byte streams iff their state_digest()s
    /// are equal.  The default implementation hashes the digest string
    /// and is always correct; hot algorithms override it to fold their
    /// raw fields directly, because the fast explorer calls this once
    /// per candidate child (core/explorer.cpp ghost stepping) and the
    /// string rendering dominates its profile otherwise.  The golden
    /// equivalence suite cross-checks fast (fold_state-keyed) against
    /// reference (state_digest-keyed) exploration, so an override that
    /// drifts from its state_digest shows up as a state-count mismatch.
    virtual void fold_state(StateHasher& h) const { h.str(state_digest()); }

    /// Folds the local state as it would look after renaming every
    /// process id through `ren` -- the symmetry-reduction counterpart of
    /// fold_state.  Contract: the byte stream must equal what
    /// fold_state would produce on the behavior that the *renamed*
    /// execution reaches in this state (ids mapped, id-keyed containers
    /// re-sorted under the new ids, values untouched).  Returns false
    /// (and must fold nothing) when the behavior does not support
    /// renaming; the reduction layer then forces the symmetry group
    /// trivial.  Only algorithms declaring a SymmetryKind other than
    /// kNone need to override this (doc/extending.md).
    virtual bool fold_state_renamed(StateHasher& h,
                                    const ProcessRenaming& ren) const {
        (void)h;
        (void)ren;
        return false;
    }

    /// Conservative send-quiescence claim for partial-order reduction
    /// (core/reduction.hpp).  Returning false asserts: from the current
    /// local state, NO future step of this behavior will ever emit a
    /// send, no matter what inputs are delivered.  The claim must be
    /// monotone (once false, every successor state must also answer
    /// false).  The reduced explorer prioritizes a process only when
    /// every *other* live process is send-quiescent -- the condition
    /// under which the process's receive-only moves commute with every
    /// future move of the rest of the system (doc/performance.md has
    /// the argument, doc/extending.md the override checklist).  The
    /// default is the always-safe "may still send", which simply makes
    /// the reduction find nothing to prioritize.
    virtual bool may_send() const { return true; }

    /// Absorption claim for the reduced explorer's observational
    /// quotient (core/reduction.hpp).  Returning true asserts: from the
    /// current local state onward, delivering this message -- now or at
    /// any future step, in any batch -- changes NOTHING: no future
    /// StepOutput, and no future fold_state/state_digest (the ingest
    /// must discard it without a trace).  Like may_send, the claim must
    /// be monotone: once a message is inert for this behavior it stays
    /// inert in every successor state.  The reduced engine deletes
    /// inert messages from its dedup keys and quiescence checks
    /// wherever they sit in the buffer: delivering a prefix that spans
    /// inert messages is observation-equivalent to delivering its live
    /// subsequence, and the one delivery-granularity gap the deletion
    /// opens is bridged by empty-delivery steps, which are in every
    /// process's menu at every state (doc/performance.md has the full
    /// stutter argument).  The default "nothing is inert" simply makes
    /// the quotient the identity.
    virtual bool message_inert(ProcessId from, const Payload& payload) const {
        (void)from;
        (void)payload;
        return false;
    }

    /// Deep copy of the complete local state.  The clone must be
    /// behaviorally indistinguishable from the original: identical
    /// state_digest() now, and identical outputs/digests under any
    /// identical sequence of future StepInputs.  Behaviors are value
    /// types (no hidden global state is allowed -- see the determinism
    /// contract above), so implementations are one line:
    ///
    ///     std::unique_ptr<Behavior> clone() const override {
    ///         return std::make_unique<MyBehavior>(*this);
    ///     }
    ///
    /// This is what makes configurations snapshot-able: System::fork()
    /// clones every behavior so the explorer (core/explorer.hpp) can
    /// expand children from a live parent state instead of replaying the
    /// whole schedule prefix from the initial configuration.
    virtual std::unique_ptr<Behavior> clone() const = 0;
};

/// A distributed algorithm: a recipe producing the initial Behavior of
/// each process.  `n` is the size the algorithm *believes* the system has
/// -- under restriction A|D (Definition 1) the real process set can be
/// smaller, but the code must keep using n.
class Algorithm {
public:
    virtual ~Algorithm() = default;

    /// Creates the state machine of process `id` (1-based) in a system
    /// the algorithm believes to have `n` processes, with proposal value
    /// `input`.
    virtual std::unique_ptr<Behavior> make_behavior(ProcessId id, int n,
                                                    Value input) const = 0;

    /// Human-readable algorithm name for traces and reports.
    virtual std::string name() const = 0;

    /// True if behaviors of this algorithm query a failure detector each
    /// step and therefore need the System to be given an oracle.
    virtual bool needs_failure_detector() const { return false; }

    /// The algorithm's symmetry claim (see SymmetryKind).  kNone -- the
    /// default -- keeps the reduction layer's symmetry group trivial;
    /// declaring more requires overriding fold_state_renamed on every
    /// behavior and rename_payload_ids here, and asserts the
    /// equivariance contract documented in doc/extending.md.
    virtual SymmetryKind symmetry() const { return SymmetryKind::kNone; }

    /// Rewrites every process id carried inside `payload` through `ren`
    /// (the algorithm knows which payload fields are ids; values are
    /// untouched).  Contract: the result must equal the payload the
    /// renamed execution would have sent, including canonical field
    /// ordering (e.g. sorted heard-lists stay sorted under the new
    /// ids).  Returns false when the algorithm cannot rename its
    /// payloads; the reduction layer then forces the symmetry group
    /// trivial.
    virtual bool rename_payload_ids(Payload& payload,
                                    const ProcessRenaming& ren) const {
        (void)payload;
        (void)ren;
        return false;
    }

    /// Finality claim for the reduced explorer's observational quotient
    /// (core/reduction.hpp).  Returning true asserts: once a behavior of
    /// this algorithm has decided, NO future step of it emits any send
    /// or further decision, under any delivered inputs.  (Internal
    /// bookkeeping may still change -- the claim is about outputs only.)
    /// The reduced engine then treats decided processes as drained: it
    /// keys them on the decision value alone, ignores their buffers and
    /// crash flags, and skips their step choices -- collapsing the
    /// drain-and-crash tails of runs whose decisions are already fixed.
    /// The default false keeps the collapse off.
    virtual bool decided_is_final() const { return false; }
};

}  // namespace ksa
