#pragma once
// The process state-machine interface.
//
// Every process is a deterministic state machine (Section II).  One
// atomic step consumes: the current local state, a (possibly empty)
// subset L of the process's message buffer chosen by the scheduler, and
// -- in models with failure detectors -- the value of a failure-detector
// query made at the beginning of the step.  The step yields a new local
// state and a set of messages to send, and may irrevocably set the
// write-once output y_p (the decision).
//
// An Algorithm is a factory creating one Behavior per process.  Behaviors
// must be deterministic: the same sequence of StepInputs from the same
// initial (id, n, input) must produce the same outputs and the same
// state digests.  The digest is the substrate's view of the local state
// and is what indistinguishability-until-decision (Definition 2) compares.

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/digest.hpp"
#include "sim/message.hpp"
#include "sim/payload.hpp"
#include "sim/types.hpp"

namespace ksa {

/// Output of a failure-detector query, made at the beginning of a step.
/// The two fields cover the detector classes used in the paper: `quorum`
/// is the trusted set output by Sigma-family detectors, `leaders` the
/// candidate set output by Omega-family detectors.  Detectors that lack a
/// component leave it empty.
struct FdSample {
    std::vector<ProcessId> quorum;   ///< Sigma-family output (sorted)
    std::vector<ProcessId> leaders;  ///< Omega-family output (sorted)

    friend bool operator==(const FdSample&, const FdSample&) = default;

    /// Canonical rendering `Q{..}L{..}` for digests and traces.
    std::string to_string() const;
};

/// Everything a process observes in one atomic step.
struct StepInput {
    /// Messages delivered in this step (the subset L of the buffer chosen
    /// by the scheduler; possibly empty).
    std::vector<Message> delivered;
    /// Failure-detector sample, present iff the model provides one.
    std::optional<FdSample> fd;
};

/// Everything a process emits in one atomic step.
struct StepOutput {
    /// Messages to send: (destination, payload) pairs.  Destinations must
    /// be in 1..n.  Self-sends are allowed.
    std::vector<std::pair<ProcessId, Payload>> sends;
    /// If set, the process irrevocably decides this value.  Deciding a
    /// second time is a protocol bug and aborts the simulation.
    std::optional<Value> decision;

    /// Appends a send of `payload` to process `to`.
    void send(ProcessId to, Payload payload) {
        sends.emplace_back(to, std::move(payload));
    }
    /// Appends a send of `payload` to every process in 1..n (a broadcast,
    /// which the model of Theorem 2 performs in one atomic step).
    void broadcast(int n, const Payload& payload) {
        for (ProcessId q = 1; q <= n; ++q) sends.emplace_back(q, payload);
    }
};

/// Deterministic per-process state machine.
class Behavior {
public:
    virtual ~Behavior() = default;

    /// Executes one atomic step.  Called by the System only.
    virtual StepOutput on_step(const StepInput& input) = 0;

    /// Canonical rendering of the complete local state.  Two behaviors of
    /// the same algorithm are in the same state iff their digests are
    /// equal; this is what run indistinguishability compares.
    virtual std::string state_digest() const = 0;

    /// Folds the complete local state into `h` WITHOUT materializing the
    /// digest string.  Contract: fold_state must distinguish exactly the
    /// states state_digest distinguishes -- two behaviors of the same
    /// algorithm feed identical byte streams iff their state_digest()s
    /// are equal.  The default implementation hashes the digest string
    /// and is always correct; hot algorithms override it to fold their
    /// raw fields directly, because the fast explorer calls this once
    /// per candidate child (core/explorer.cpp ghost stepping) and the
    /// string rendering dominates its profile otherwise.  The golden
    /// equivalence suite cross-checks fast (fold_state-keyed) against
    /// reference (state_digest-keyed) exploration, so an override that
    /// drifts from its state_digest shows up as a state-count mismatch.
    virtual void fold_state(StateHasher& h) const { h.str(state_digest()); }

    /// Deep copy of the complete local state.  The clone must be
    /// behaviorally indistinguishable from the original: identical
    /// state_digest() now, and identical outputs/digests under any
    /// identical sequence of future StepInputs.  Behaviors are value
    /// types (no hidden global state is allowed -- see the determinism
    /// contract above), so implementations are one line:
    ///
    ///     std::unique_ptr<Behavior> clone() const override {
    ///         return std::make_unique<MyBehavior>(*this);
    ///     }
    ///
    /// This is what makes configurations snapshot-able: System::fork()
    /// clones every behavior so the explorer (core/explorer.hpp) can
    /// expand children from a live parent state instead of replaying the
    /// whole schedule prefix from the initial configuration.
    virtual std::unique_ptr<Behavior> clone() const = 0;
};

/// A distributed algorithm: a recipe producing the initial Behavior of
/// each process.  `n` is the size the algorithm *believes* the system has
/// -- under restriction A|D (Definition 1) the real process set can be
/// smaller, but the code must keep using n.
class Algorithm {
public:
    virtual ~Algorithm() = default;

    /// Creates the state machine of process `id` (1-based) in a system
    /// the algorithm believes to have `n` processes, with proposal value
    /// `input`.
    virtual std::unique_ptr<Behavior> make_behavior(ProcessId id, int n,
                                                    Value input) const = 0;

    /// Human-readable algorithm name for traces and reports.
    virtual std::string name() const = 0;

    /// True if behaviors of this algorithm query a failure detector each
    /// step and therefore need the System to be given an oracle.
    virtual bool needs_failure_detector() const { return false; }
};

}  // namespace ksa
