#include "sim/dot_export.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

namespace ksa {

namespace {

std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    return out;
}

}  // namespace

void run_to_dot(std::ostream& out, const Run& run, const DotOptions& options) {
    out << "digraph run {\n";
    out << "  rankdir=LR;\n  node [shape=circle, fontsize=9];\n";
    out << "  label=\"" << escape(run.algorithm) << " (n=" << run.n
        << ")\";\n";

    const std::size_t limit = std::min(options.max_steps, run.steps.size());

    // Lane anchors.
    for (ProcessId p = 1; p <= run.n; ++p) {
        out << "  p" << p << "_0 [label=\"p" << p << "\", shape=plaintext];\n";
    }

    // Step nodes per process, chained along the lane.
    std::map<ProcessId, int> last_index;  // per process: last node index
    std::map<MessageId, std::string> send_node;
    for (std::size_t i = 0; i < limit; ++i) {
        const StepRecord& s = run.steps[i];
        const int idx = ++last_index[s.process];
        std::ostringstream node;
        node << 'p' << s.process << '_' << idx;

        std::ostringstream label;
        label << 't' << s.time;
        if (s.decision) label << "\\nD=" << *s.decision;
        if (options.show_digests) label << "\\n" << s.digest_after;

        out << "  " << node.str() << " [label=\"" << escape(label.str())
            << '"';
        if (s.decision) out << ", style=filled, fillcolor=palegreen";
        if (s.final_crash_step) out << ", style=filled, fillcolor=lightcoral";
        out << "];\n";
        out << "  p" << s.process << '_' << idx - 1 << " -> " << node.str()
            << " [style=dotted, arrowhead=none];\n";

        for (const Message& m : s.sent) send_node[m.id] = node.str();
        for (const Message& m : s.delivered) {
            auto it = send_node.find(m.id);
            if (it == send_node.end()) continue;  // sent beyond the cut
            out << "  " << it->second << " -> " << node.str();
            if (options.show_payloads)
                out << " [label=\"" << escape(m.payload.to_string())
                    << "\", fontsize=8]";
            out << ";\n";
        }
    }
    out << "}\n";
}

std::string run_to_dot(const Run& run, const DotOptions& options) {
    std::ostringstream out;
    run_to_dot(out, run, options);
    return out.str();
}

}  // namespace ksa
