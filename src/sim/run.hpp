#pragma once
// Run records.
//
// A run is an infinite sequence of configurations in the paper; the
// simulator executes and records a finite prefix that is long enough to
// be decisive for decision tasks (every correct process has decided and
// the communication among correct processes has quiesced).  The record
// keeps, per step: who stepped, what was delivered, what was sent,
// whether a decision was made, the failure-detector sample (if any) and
// the canonical state digest after the step.  This is sufficient to
// evaluate every predicate the paper defines on runs: k-agreement /
// validity / termination, indistinguishability-until-decision
// (Definition 2), compatibility (Definition 3), the (dec-D) conditions of
// Theorem 1, and failure-detector history admissibility.

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/failure_plan.hpp"
#include "sim/fd_oracle.hpp"
#include "sim/message.hpp"
#include "sim/scheduler.hpp"
#include "sim/types.hpp"

namespace ksa {

/// The record of a single atomic step.
struct StepRecord {
    Time time = 0;                     ///< global time of this step
    ProcessId process = 0;             ///< the process that stepped
    std::vector<Message> delivered;    ///< subset L received in this step
    std::vector<Message> sent;         ///< messages placed into buffers
    std::vector<Message> omitted;      ///< sends dropped by a final crashing step
    std::vector<FaultAction> faults;   ///< injected fault events applied before
                                       ///< this step's deliveries, in order
    std::vector<Message> dropped;      ///< messages removed by kDropMessage
    std::vector<Message> injected;     ///< clones added by kDuplicateMessage
    std::vector<Message> tampered;     ///< originals replaced by a Byzantine
                                       ///< forgery (kCorruptMessage /
                                       ///< kEquivocate), as they were sent
    std::vector<Message> forged;       ///< the Byzantine replacements, with
                                       ///< forged ids and mutated payloads
    std::optional<FdSample> fd;        ///< failure-detector sample, if queried
    std::optional<Value> decision;     ///< decision made in this step, if any
    std::string digest_after;          ///< state digest after the step
    bool final_crash_step = false;     ///< true iff the process crashed at the
                                       ///< end of this step
};

/// Why the executor stopped extending the run prefix.
enum class StopReason {
    kQuiescent,       ///< all correct processes decided and drained
    kSchedulerEnded,  ///< the scheduler declined to pick another step
    kStepLimit,       ///< the hard step cap was reached (likely non-termination)
};

/// Renders a StopReason for reports.
std::string to_string(StopReason r);

/// A recorded (finite prefix of a) run.
struct Run {
    int n = 0;                          ///< system size the algorithm believes
    std::string algorithm;              ///< algorithm name
    std::string scheduler;              ///< scheduler label (seed and all: a
                                        ///< run is replayable from its record
                                        ///< alone; empty in step-wise mode)
    std::vector<Value> inputs;          ///< proposal x_p, index p-1
    FailurePlan plan;                   ///< the *effective* crash plan: the
                                        ///< static plan extended by every
                                        ///< injected kCrashProcess fault
    std::vector<StepRecord> steps;      ///< the executed step sequence
    FdHistory fd_history;               ///< all failure-detector samples
    StopReason stop = StopReason::kSchedulerEnded;

    /// Decision of p, if p decided in this prefix.
    std::optional<Value> decision_of(ProcessId p) const;

    /// Time of p's deciding step, or kNever.
    Time decision_time_of(ProcessId p) const;

    /// The set of distinct values decided by any process in this prefix.
    std::set<Value> distinct_decisions() const;

    /// The set of distinct values decided by processes in `group`.
    std::set<Value> distinct_decisions(const std::vector<ProcessId>& group) const;

    /// True iff every process in `group` that is correct under the plan
    /// decided in this prefix.
    bool all_correct_decided(const std::vector<ProcessId>& group) const;

    /// True iff every correct process (1..n) decided in this prefix.
    bool all_correct_decided() const;

    /// Realized crash time of p: the time of its final step + 1, 1 for an
    /// initially dead process, or kNever if p never crashed in this
    /// prefix.  Matches the paper's F(t): p in F(t) iff p takes no step
    /// at any time >= t.
    Time crash_time_of(ProcessId p) const;

    /// Realized faulty set of this prefix.
    std::set<ProcessId> crashed() const;

    /// Number of own steps p executed.
    int steps_of(ProcessId p) const;

    /// The sequence of state digests of p, one per own step, truncated
    /// just after p's deciding step when `until_decision` is true.  This
    /// is the object Definition 2 compares.
    std::vector<std::string> digest_sequence(ProcessId p,
                                             bool until_decision = true) const;

    /// Times of all steps in which p received at least one message sent
    /// by a member of `senders`.
    std::vector<Time> receptions_from(ProcessId p,
                                      const std::vector<ProcessId>& senders) const;

    /// True iff p received no message from any process in `senders`
    /// strictly before time `deadline`.
    bool silent_from_until(ProcessId p, const std::vector<ProcessId>& senders,
                           Time deadline) const;

    /// Total number of messages sent in this prefix.
    std::size_t messages_sent() const;

    /// Message ids sent to `p` (duplicate injections included) that were
    /// never delivered in this prefix.  Messages removed by an injected
    /// drop stay listed: a drop to a correct receiver is exactly the
    /// eventual-delivery violation admissibility checking must flag.
    std::vector<MessageId> undelivered_to(ProcessId p) const;

    // -- chaos-layer accessors ---------------------------------------

    /// All injected fault events in step order, paired with the 0-based
    /// index of the step they were applied in.
    std::vector<std::pair<std::size_t, FaultAction>> fault_events() const;

    /// Number of injected fault events in this prefix.
    std::size_t num_fault_events() const;

    /// Victims of injected kCrashProcess faults.
    std::set<ProcessId> injected_crash_victims() const;

    /// Senders charged with at least one Byzantine fault event
    /// (kCorruptMessage / kEquivocate) in this prefix.  Matches
    /// `plan.byzantine()` on a finalized record.
    std::set<ProcessId> byzantine_senders() const;

    /// The *static* crash plan: `plan` with every injected-crash victim
    /// removed and every ByzantineSpec stripped (Byzantine specs are
    /// realized bookkeeping; replaying the recorded fault stream rebuilds
    /// them).  This is the plan a from-scratch re-execution of the
    /// recorded choice sequence (faults included) must start from.
    FailurePlan static_plan() const;
};

/// Indistinguishability until decision (Definition 2): process p has the
/// same sequence of states in `a` and `b` until p decides.  Both runs
/// must be runs of the same algorithm from p's perspective.
bool indistinguishable_for(const Run& a, const Run& b, ProcessId p);

/// Definition 2's  a ~_D b : indistinguishable-until-decision for every
/// process in D.
bool indistinguishable_for_all(const Run& a, const Run& b,
                               const std::vector<ProcessId>& group);

/// Compatibility of run sets (Definition 3): R' is compatible with R for
/// the processes in `group` (written R' 4_group R) iff every run of R'
/// has a group-indistinguishable counterpart in R.  On success returns
/// the index into `r` chosen for each member of `r_prime`; on failure
/// returns std::nullopt (and, if `out_witness` is non-null, the index of
/// the first run of R' without a counterpart).
std::optional<std::vector<std::size_t>> compatible_for(
        const std::vector<Run>& r_prime, const std::vector<Run>& r,
        const std::vector<ProcessId>& group,
        std::size_t* out_witness = nullptr);

}  // namespace ksa
