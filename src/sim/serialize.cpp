#include "sim/serialize.hpp"

#include <sstream>

namespace ksa {

namespace {

/// Percent-encodes spaces, newlines and '%' so every token is
/// whitespace-free.
std::string encode(const std::string& s) {
    std::string out;
    for (char c : s) {
        switch (c) {
            case ' ': out += "%20"; break;
            case '\n': out += "%0A"; break;
            case '%': out += "%25"; break;
            default: out += c;
        }
    }
    return out.empty() ? "%00" : out;
}

std::string decode(const std::string& s) {
    if (s == "%00") return "";
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '%' && i + 2 < s.size()) {
            const std::string hex = s.substr(i + 1, 2);
            if (hex == "20") out += ' ';
            else if (hex == "0A") out += '\n';
            else if (hex == "25") out += '%';
            else throw UsageError("read_run: bad escape %" + hex);
            i += 2;
        } else {
            out += s[i];
        }
    }
    return out;
}

void write_sample(std::ostream& out, const FdSample& s) {
    out << ' ' << s.quorum.size();
    for (ProcessId q : s.quorum) out << ' ' << q;
    out << ' ' << s.leaders.size();
    for (ProcessId l : s.leaders) out << ' ' << l;
}

FdSample read_sample(std::istringstream& in) {
    FdSample s;
    std::size_t nq = 0, nl = 0;
    in >> nq;
    s.quorum.resize(nq);
    for (auto& q : s.quorum) in >> q;
    in >> nl;
    s.leaders.resize(nl);
    for (auto& l : s.leaders) in >> l;
    return s;
}

void write_message(std::ostream& out, char kind, const Message& m) {
    out << kind << ' ' << m.id << ' ' << m.from << ' ' << m.to << ' '
        << m.sent_at << ' ' << encode(m.payload.tag) << ' '
        << m.payload.ints.size();
    for (int v : m.payload.ints) out << ' ' << v;
    out << ' ' << m.payload.lists.size();
    for (const auto& list : m.payload.lists) {
        out << ' ' << list.size();
        for (int v : list) out << ' ' << v;
    }
    out << '\n';
}

Message read_message(std::istringstream& in) {
    Message m;
    std::string tag;
    std::size_t ni = 0, nl = 0;
    in >> m.id >> m.from >> m.to >> m.sent_at >> tag >> ni;
    m.payload.tag = decode(tag);
    m.payload.ints.resize(ni);
    for (auto& v : m.payload.ints) in >> v;
    in >> nl;
    m.payload.lists.resize(nl);
    for (auto& list : m.payload.lists) {
        std::size_t len = 0;
        in >> len;
        list.resize(len);
        for (auto& v : list) in >> v;
    }
    if (!in) throw UsageError("read_run: malformed message line");
    return m;
}

void write_fault(std::ostream& out, const FaultAction& a) {
    out << "fault ";
    switch (a.kind) {
        case FaultAction::Kind::kDropMessage:
            out << "d " << a.message;
            break;
        case FaultAction::Kind::kDuplicateMessage:
            out << "u " << a.message;
            break;
        case FaultAction::Kind::kCrashProcess:
            out << "c " << a.process << ' ' << a.omit_to.size();
            for (ProcessId q : a.omit_to) out << ' ' << q;
            break;
        case FaultAction::Kind::kCorruptMessage:
            out << "m " << a.message << ' ' << a.corrupt_seed;
            break;
        case FaultAction::Kind::kEquivocate:
            out << "e " << a.message << ' ' << a.corrupt_seed;
            break;
    }
    out << '\n';
}

FaultAction read_fault(std::istringstream& in) {
    FaultAction a;
    std::string sub;
    in >> sub;
    if (sub == "d") {
        a.kind = FaultAction::Kind::kDropMessage;
        in >> a.message;
    } else if (sub == "u") {
        a.kind = FaultAction::Kind::kDuplicateMessage;
        in >> a.message;
    } else if (sub == "c") {
        a.kind = FaultAction::Kind::kCrashProcess;
        std::size_t omits = 0;
        in >> a.process >> omits;
        for (std::size_t i = 0; i < omits; ++i) {
            ProcessId q = 0;
            in >> q;
            a.omit_to.insert(q);
        }
    } else if (sub == "m") {
        a.kind = FaultAction::Kind::kCorruptMessage;
        in >> a.message >> a.corrupt_seed;
    } else if (sub == "e") {
        a.kind = FaultAction::Kind::kEquivocate;
        in >> a.message >> a.corrupt_seed;
    } else {
        throw UsageError("read_run: unknown fault subkind '" + sub + "'");
    }
    if (!in) throw UsageError("read_run: malformed fault line");
    return a;
}

}  // namespace

void write_run(std::ostream& out, const Run& run) {
    out << "KSARUN 1\n";
    out << "n " << run.n << '\n';
    out << "algo " << encode(run.algorithm) << '\n';
    if (!run.scheduler.empty())
        out << "sched " << encode(run.scheduler) << '\n';
    out << "stop " << static_cast<int>(run.stop) << '\n';
    out << "inputs";
    for (Value v : run.inputs) out << ' ' << v;
    out << '\n';
    for (ProcessId p = 1; p <= run.n; ++p) {
        if (!run.plan.is_faulty(p)) continue;
        const CrashSpec& spec = run.plan.spec(p);
        out << "crash " << p << ' ' << spec.after_own_steps << ' '
            << spec.omit_to.size();
        for (ProcessId q : spec.omit_to) out << ' ' << q;
        out << '\n';
    }
    for (ProcessId p : run.plan.byzantine()) {
        const ByzantineSpec& spec = run.plan.byzantine_spec(p);
        out << "byz " << p << ' ' << spec.corruptions << ' '
            << spec.equivocations << '\n';
    }
    for (const FdEvent& e : run.fd_history) {
        out << "fdev " << e.time << ' ' << e.process;
        write_sample(out, e.sample);
        out << '\n';
    }
    for (const StepRecord& s : run.steps) {
        out << "step " << s.time << ' ' << s.process << ' ';
        if (s.decision)
            out << *s.decision;
        else
            out << '-';
        out << ' ' << (s.final_crash_step ? 1 : 0) << ' '
            << (s.fd ? 1 : 0);
        if (s.fd) write_sample(out, *s.fd);
        out << ' ' << encode(s.digest_after) << '\n';
        for (const FaultAction& a : s.faults) write_fault(out, a);
        for (const Message& m : s.delivered) write_message(out, 'd', m);
        for (const Message& m : s.sent) write_message(out, 's', m);
        for (const Message& m : s.omitted) write_message(out, 'o', m);
        for (const Message& m : s.dropped) write_message(out, 'x', m);
        for (const Message& m : s.injected) write_message(out, 'i', m);
        for (const Message& m : s.tampered) write_message(out, 't', m);
        for (const Message& m : s.forged) write_message(out, 'f', m);
    }
    out << "end\n";
}

std::string run_to_string(const Run& run) {
    std::ostringstream out;
    write_run(out, run);
    return out.str();
}

Run read_run(std::istream& in) {
    std::string line;
    if (!std::getline(in, line) || line != "KSARUN 1")
        throw UsageError("read_run: missing KSARUN 1 header");

    Run run;
    bool done = false;
    while (!done && std::getline(in, line)) {
        if (line.empty()) continue;
        std::istringstream ls(line);
        std::string kind;
        ls >> kind;
        if (kind == "end") {
            done = true;
        } else if (kind == "n") {
            ls >> run.n;
        } else if (kind == "algo") {
            std::string enc;
            ls >> enc;
            run.algorithm = decode(enc);
        } else if (kind == "sched") {
            std::string enc;
            ls >> enc;
            run.scheduler = decode(enc);
        } else if (kind == "stop") {
            int v = 0;
            ls >> v;
            run.stop = static_cast<StopReason>(v);
        } else if (kind == "inputs") {
            Value v;
            while (ls >> v) run.inputs.push_back(v);
        } else if (kind == "crash") {
            ProcessId p = 0;
            CrashSpec spec;
            std::size_t omits = 0;
            ls >> p >> spec.after_own_steps >> omits;
            for (std::size_t i = 0; i < omits; ++i) {
                ProcessId q = 0;
                ls >> q;
                spec.omit_to.insert(q);
            }
            run.plan.set_crash(p, spec);
        } else if (kind == "byz") {
            ProcessId p = 0;
            int corruptions = 0, equivocations = 0;
            ls >> p >> corruptions >> equivocations;
            run.plan.note_byzantine(p, corruptions, equivocations);
        } else if (kind == "fdev") {
            FdEvent e;
            ls >> e.time >> e.process;
            e.sample = read_sample(ls);
            run.fd_history.push_back(std::move(e));
        } else if (kind == "step") {
            StepRecord s;
            std::string dec;
            int final_step = 0, has_fd = 0;
            ls >> s.time >> s.process >> dec >> final_step >> has_fd;
            if (dec != "-") s.decision = std::stoi(dec);
            s.final_crash_step = final_step != 0;
            if (has_fd != 0) s.fd = read_sample(ls);
            std::string digest;
            ls >> digest;
            s.digest_after = decode(digest);
            run.steps.push_back(std::move(s));
        } else if (kind == "fault") {
            if (run.steps.empty())
                throw UsageError("read_run: fault line before any step");
            run.steps.back().faults.push_back(read_fault(ls));
        } else if (kind == "d" || kind == "s" || kind == "o" || kind == "x" ||
                   kind == "i" || kind == "t" || kind == "f") {
            if (run.steps.empty())
                throw UsageError("read_run: message line before any step");
            Message m = read_message(ls);
            if (kind == "d")
                run.steps.back().delivered.push_back(std::move(m));
            else if (kind == "s")
                run.steps.back().sent.push_back(std::move(m));
            else if (kind == "o")
                run.steps.back().omitted.push_back(std::move(m));
            else if (kind == "x")
                run.steps.back().dropped.push_back(std::move(m));
            else if (kind == "i")
                run.steps.back().injected.push_back(std::move(m));
            else if (kind == "t")
                run.steps.back().tampered.push_back(std::move(m));
            else
                run.steps.back().forged.push_back(std::move(m));
        } else {
            throw UsageError("read_run: unknown record '" + kind + "'");
        }
    }
    if (!done) throw UsageError("read_run: missing end record");
    return run;
}

Run run_from_string(const std::string& text) {
    std::istringstream in(text);
    return read_run(in);
}

std::vector<StepChoice> schedule_of(const Run& run) {
    std::vector<StepChoice> out;
    for (const StepRecord& s : run.steps) {
        StepChoice c;
        c.process = s.process;
        c.faults = s.faults;
        for (const Message& m : s.delivered) c.deliver.push_back(m.id);
        out.push_back(std::move(c));
    }
    return out;
}

}  // namespace ksa
