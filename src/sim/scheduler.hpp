#pragma once
// Scheduler interface.
//
// In the paper's model, asynchrony is an adversary: it picks which
// process takes the next step and which subset of that process's buffer
// is delivered in the step.  The simulator makes the adversary an
// explicit object.  A Scheduler observes the public execution state
// through a SystemView and returns StepChoices; every impossibility
// argument in the paper corresponds to a concrete Scheduler in
// sim/schedulers.hpp or an orchestration of several in core/.

#include <deque>
#include <optional>
#include <set>
#include <vector>

#include "sim/failure_plan.hpp"
#include "sim/message.hpp"
#include "sim/types.hpp"

namespace ksa {

/// One adversarial fault event, executed by the System *before* the
/// deliveries of the step it is attached to.  Fault events extend the
/// crash-only adversary of FailurePlan with the message-channel faults
/// of the chaos layer (src/chaos/): permanent message loss, duplication
/// and staggered crashes decided mid-run.  Every applied action is
/// recorded into the StepRecord, serialized in the KSARUN format and
/// re-applied on replay, so faulty runs stay bit-identically replayable.
struct FaultAction {
    enum class Kind {
        /// Removes `message` from its destination buffer permanently: the
        /// lossy-channel fault.  Dropping a message addressed to a
        /// correct process makes the run inadmissible (eventual delivery
        /// is violated), which sim/admissibility.cpp reports.
        kDropMessage,
        /// Clones `message` (same sender, receiver, payload and send
        /// time; fresh id from the injected-id space) into its
        /// destination buffer: the duplicating-channel fault.
        kDuplicateMessage,
        /// Crashes `process` -- which must be correct so far -- after its
        /// *next* own step, with the sends of that final step omitted to
        /// `omit_to`.  The effective FailurePlan of the run (and its
        /// record) is extended accordingly, so admissibility and
        /// failure-detector validation see the realized failure pattern.
        kCrashProcess,
        /// Byzantine channel corruption: rewrites buffered message
        /// `message` in place through the seeded deterministic mutator of
        /// sim/byzantine.hpp (`corrupt_seed` drives it) and renames it
        /// into the corruption id space of sim/message.hpp.  The sender
        /// is marked Byzantine in the effective FailurePlan
        /// (ByzantineSpec), so admissibility and classification see the
        /// realized fault pattern.
        kCorruptMessage,
        /// Byzantine equivocation: treats buffered message `message` as
        /// the anchor of a broadcast and rewrites every still-buffered
        /// sibling (same sender, send time and payload) into a
        /// receiver-specific divergent variant -- the sender now appears
        /// to have told every receiver a different story.  Forged ids
        /// come from the equivocation id space; the sender is marked
        /// Byzantine in the effective plan.
        kEquivocate,
    };

    Kind kind = Kind::kDropMessage;
    MessageId message = 0;        ///< target of the message faults
    ProcessId process = 0;        ///< victim of kCrashProcess
    std::set<ProcessId> omit_to;  ///< kCrashProcess: final-step omissions
    /// Mutator seed of kCorruptMessage / kEquivocate (serialized, so
    /// Byzantine runs replay byte-identically).
    std::uint64_t corrupt_seed = 0;

    friend bool operator==(const FaultAction&, const FaultAction&) = default;
};

/// One scheduling decision: which process steps next and which messages
/// from its buffer are delivered to it in that step.
struct StepChoice {
    ProcessId process = 0;
    /// Ids of messages to deliver, all of which must currently sit in the
    /// buffer of `process`.  May be empty (a step with L = {}).
    std::vector<MessageId> deliver;
    /// Convenience flag: deliver everything currently buffered for
    /// `process` (overrides `deliver`).
    bool deliver_all = false;
    /// Fault events applied before the deliveries of this step, in
    /// order.  A message dropped here must not also appear in `deliver`.
    std::vector<FaultAction> faults;
};

/// Read-only view of the execution state, offered to schedulers.
class SystemView {
public:
    virtual ~SystemView() = default;

    virtual int n() const = 0;
    /// Global time of the *next* step (1 for the first).
    virtual Time now() const = 0;
    /// The pending buffer of `p` in arrival order.
    virtual const std::deque<Message>& buffer(ProcessId p) const = 0;
    /// True iff p has crashed already (realized, not just planned).
    virtual bool crashed(ProcessId p) const = 0;
    /// True iff p has decided already.
    virtual bool decided(ProcessId p) const = 0;
    /// Number of own steps p has executed so far.
    virtual int steps_of(ProcessId p) const = 0;
    /// The crash plan in force.
    virtual const FailurePlan& plan() const = 0;

    /// True iff p may still take a step under the plan.
    bool can_step(ProcessId p) const {
        if (crashed(p)) return false;
        int allowed = plan().allowed_steps(p);
        return allowed < 0 || steps_of(p) < allowed;
    }

    /// True iff every process that is correct under the plan has decided.
    bool all_correct_decided() const {
        for (ProcessId p = 1; p <= n(); ++p)
            if (!plan().is_faulty(p) && !decided(p)) return false;
        return true;
    }

    /// True iff the buffers of all correct processes are empty.
    bool correct_buffers_empty() const {
        for (ProcessId p = 1; p <= n(); ++p)
            if (!plan().is_faulty(p) && !buffer(p).empty()) return false;
        return true;
    }
};

/// The adversary: picks the next step, or std::nullopt to end the run
/// prefix.
class Scheduler {
public:
    virtual ~Scheduler() = default;

    /// Returns the next step to execute, or std::nullopt to stop.
    virtual std::optional<StepChoice> next(const SystemView& view) = 0;

    /// Scheduler name for traces.
    virtual std::string name() const = 0;
};

}  // namespace ksa
