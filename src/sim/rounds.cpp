#include "sim/rounds.hpp"

#include <algorithm>

namespace ksa::ho {

std::optional<Value> HoRun::decision_of(ProcessId p) const {
    for (const HoRecord& r : records)
        if (r.process == p && r.decision) return r.decision;
    return std::nullopt;
}

std::set<Value> HoRun::distinct_decisions() const {
    std::set<Value> out;
    for (const HoRecord& r : records)
        if (r.decision) out.insert(*r.decision);
    return out;
}

bool HoRun::all_decided(const std::vector<ProcessId>& group) const {
    for (ProcessId p : group)
        if (!decision_of(p)) return false;
    return true;
}

std::vector<std::string> HoRun::digest_sequence(ProcessId p,
                                                bool until_decision) const {
    std::vector<std::string> out;
    for (const HoRecord& r : records) {
        if (r.process != p) continue;
        out.push_back(r.digest_after);
        if (until_decision && r.decision) break;
    }
    return out;
}

HoRun execute_ho(const RoundAlgorithm& algorithm, int n,
                 std::vector<Value> inputs, HoAdversary& adversary,
                 int max_rounds) {
    require(n >= 1, "execute_ho: n must be >= 1");
    require(static_cast<int>(inputs.size()) == n, "execute_ho: need n inputs");

    HoRun run;
    run.n = n;
    run.algorithm = algorithm.name();
    run.inputs = inputs;

    std::vector<std::unique_ptr<RoundBehavior>> behaviors;
    std::vector<bool> decided(n, false);
    for (ProcessId p = 1; p <= n; ++p)
        behaviors.push_back(algorithm.make_behavior(p, n, inputs[p - 1]));

    for (int round = 1; round <= max_rounds; ++round) {
        // Collect the round's messages from every alive process.
        std::map<ProcessId, Payload> sent;
        for (ProcessId p = 1; p <= n; ++p)
            if (adversary.alive(p, round))
                sent.emplace(p, behaviors[p - 1]->message(round));

        // Deliver per heard-of set and transition.
        bool anyone_alive = false;
        for (ProcessId p = 1; p <= n; ++p) {
            if (!adversary.alive(p, round)) continue;
            anyone_alive = true;
            std::map<ProcessId, Payload> heard;
            HoRecord rec;
            rec.round = round;
            rec.process = p;
            for (ProcessId q : adversary.heard_of(p, round, n)) {
                require(q >= 1 && q <= n, "execute_ho: HO member out of range");
                auto it = sent.find(q);
                if (it != sent.end()) {
                    heard.emplace(q, it->second);
                    rec.heard_of.push_back(q);
                }
            }
            std::optional<Value> decision =
                behaviors[p - 1]->transition(round, heard);
            if (decision) {
                require(!decided[p - 1],
                        "protocol bug: round process decided twice");
                decided[p - 1] = true;
                rec.decision = decision;
            }
            rec.digest_after = behaviors[p - 1]->state_digest();
            run.records.push_back(std::move(rec));
        }
        run.rounds_executed = round;

        bool all_done = true;
        for (ProcessId p = 1; p <= n; ++p)
            if (adversary.alive(p, round + 1) && !decided[p - 1])
                all_done = false;
        if (all_done || !anyone_alive) break;
    }
    return run;
}

std::vector<ProcessId> FullHo::heard_of(ProcessId, int, int n) {
    std::vector<ProcessId> all(n);
    for (int i = 0; i < n; ++i) all[i] = i + 1;
    return all;
}

std::vector<ProcessId> CrashHo::heard_of(ProcessId p, int round, int n) {
    std::vector<ProcessId> out;
    for (ProcessId q = 1; q <= n; ++q) {
        auto it = crashes_.find(q);
        if (it == crashes_.end()) {
            out.push_back(q);  // correct: always heard
            continue;
        }
        if (round < it->second.round) {
            out.push_back(q);
        } else if (round == it->second.round &&
                   it->second.heard_by.count(p) != 0) {
            out.push_back(q);  // partial delivery in the crashing round
        }
    }
    return out;
}

bool CrashHo::alive(ProcessId p, int round) {
    auto it = crashes_.find(p);
    return it == crashes_.end() || round <= it->second.round;
}

PartitionHo::PartitionHo(std::vector<std::vector<ProcessId>> blocks,
                         int isolation_rounds)
    : blocks_(std::move(blocks)), isolation_rounds_(isolation_rounds) {
    for (const auto& b : blocks_)
        require(!b.empty(), "PartitionHo: empty block");
}

std::vector<ProcessId> PartitionHo::heard_of(ProcessId p, int round, int n) {
    const bool isolated =
        isolation_rounds_ == 0 || round <= isolation_rounds_;
    if (!isolated) {
        std::vector<ProcessId> all(n);
        for (int i = 0; i < n; ++i) all[i] = i + 1;
        return all;
    }
    for (const auto& b : blocks_)
        if (std::find(b.begin(), b.end(), p) != b.end()) return b;
    return {p};  // unblocked processes hear only themselves while isolated
}

}  // namespace ksa::ho
