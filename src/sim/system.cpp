#include "sim/system.hpp"

#include <algorithm>
#include <sstream>

#include "check/contract.hpp"
#include "sim/byzantine.hpp"

namespace ksa {

System::System(const Algorithm& algorithm, int n, std::vector<Value> inputs,
               FailurePlan plan, FdOracle* oracle)
    : n_(n),
      algo_name_(algorithm.name()),
      uses_fd_(algorithm.needs_failure_detector()),
      inputs_(std::move(inputs)),
      plan_(std::move(plan)),
      oracle_(oracle) {
    require(n_ >= 1, "System: n must be >= 1");
    require(static_cast<int>(inputs_.size()) == n_,
            "System: need exactly n inputs");
    require(!uses_fd_ || oracle_ != nullptr,
            "System: algorithm queries a failure detector but no oracle given");
    behaviors_.reserve(n_);
    for (ProcessId p = 1; p <= n_; ++p)
        behaviors_.push_back(algorithm.make_behavior(p, n_, inputs_[p - 1]));
    buffers_.resize(n_);
    step_counts_.assign(n_, 0);
    crashed_.assign(n_, false);
    decisions_.assign(n_, std::nullopt);

    run_.n = n_;
    run_.algorithm = algo_name_;
    run_.inputs = inputs_;
    run_.plan = plan_;
}

System::System(ForkTag, const System& other)
    : n_(other.n_),
      algo_name_(other.algo_name_),
      uses_fd_(other.uses_fd_),
      inputs_(other.inputs_),
      plan_(other.plan_),
      oracle_(other.oracle_),  // borrowed in both systems, see fork() doc
      buffers_(other.buffers_),
      step_counts_(other.step_counts_),
      crashed_(other.crashed_),
      decisions_(other.decisions_),
      now_(other.now_),
      next_msg_id_(other.next_msg_id_),
      duplicate_counts_(other.duplicate_counts_),
      finished_(other.finished_),
      recording_(other.recording_) {
    if (recording_) run_ = other.run_;
    behaviors_.reserve(static_cast<std::size_t>(n_));
}

std::unique_ptr<System> System::fork(bool verify_digests) const {
    KSA_REQUIRE(!finished_, "System::fork: run already finalized");
    // make_unique cannot reach the private constructor; plain new can.
    std::unique_ptr<System> copy(new System(ForkTag{}, *this));
    if (!recording_) {
        // Header-only Run for the non-recording fork (finish() promises
        // exactly these fields).
        copy->run_.n = n_;
        copy->run_.algorithm = algo_name_;
        copy->run_.inputs = inputs_;
        copy->run_.plan = plan_;
    }
    for (ProcessId p = 1; p <= n_; ++p) {
        copy->behaviors_.push_back(behaviors_[p - 1]->clone());
        if (verify_digests) {
            KSA_REQUIRE(copy->behaviors_[p - 1]->state_digest() ==
                            behaviors_[p - 1]->state_digest(),
                        "System::fork: Behavior::clone broke the digest "
                        "round-trip contract");
        }
    }
    return copy;
}

std::string System::last_digest(ProcessId p) const {
    check_pid(p, "System::last_digest");
    return behaviors_[p - 1]->state_digest();
}

std::unique_ptr<Behavior> System::clone_behavior(ProcessId p) const {
    check_pid(p, "System::clone_behavior");
    return behaviors_[p - 1]->clone();
}

const Behavior& System::behavior_of(ProcessId p) const {
    check_pid(p, "System::behavior_of");
    return *behaviors_[p - 1];
}

void System::deliver_prefix(ProcessId p, std::size_t count,
                            StepInput& scratch) const {
    check_pid(p, "System::deliver_prefix");
    const auto& buf = buffers_[p - 1];
    KSA_REQUIRE(count <= buf.size(),
                "System::deliver_prefix: prefix longer than the buffer");
    scratch.delivered.assign(buf.begin(),
                             buf.begin() + static_cast<std::ptrdiff_t>(
                                     std::min(count, buf.size())));
}

void System::check_pid(ProcessId p, const char* who) const {
    if (p < 1 || p > n_) {
        std::ostringstream out;
        out << who << ": process id " << p << " out of range 1.." << n_;
        throw UsageError(out.str());
    }
}

const std::deque<Message>& System::buffer(ProcessId p) const {
    check_pid(p, "System::buffer");
    return buffers_[p - 1];
}

bool System::crashed(ProcessId p) const {
    check_pid(p, "System::crashed");
    return crashed_[p - 1] || plan_.is_initially_dead(p);
}

bool System::decided(ProcessId p) const {
    check_pid(p, "System::decided");
    return decisions_[p - 1].has_value();
}

int System::steps_of(ProcessId p) const {
    check_pid(p, "System::steps_of");
    return step_counts_[p - 1];
}

std::optional<Value> System::decision_of(ProcessId p) const {
    check_pid(p, "System::decision_of");
    return decisions_[p - 1];
}

std::deque<Message>* System::find_buffered(
        MessageId id, std::deque<Message>::iterator* out_it) {
    for (auto& buf : buffers_) {
        auto it = std::find_if(buf.begin(), buf.end(),
                               [id](const Message& m) { return m.id == id; });
        if (it != buf.end()) {
            *out_it = it;
            return &buf;
        }
    }
    return nullptr;
}

void System::apply_fault(const FaultAction& action, StepRecord& rec) {
    switch (action.kind) {
        case FaultAction::Kind::kDropMessage: {
            std::deque<Message>::iterator it;
            std::deque<Message>* buf = find_buffered(action.message, &it);
            KSA_REQUIRE(buf != nullptr,
                        "System::apply_fault: dropped message not buffered");
            if (buf == nullptr) return;  // Policy::kCount: stay memory-safe
            rec.dropped.push_back(*it);
            buf->erase(it);
            return;
        }
        case FaultAction::Kind::kDuplicateMessage: {
            std::deque<Message>::iterator it;
            std::deque<Message>* buf = find_buffered(action.message, &it);
            KSA_REQUIRE(buf != nullptr,
                        "System::apply_fault: duplicated message not buffered");
            if (buf == nullptr) return;
            // Cloning a clone would nest the derived-id scheme of
            // message.hpp; the chaos layer only duplicates originals.
            KSA_REQUIRE(!is_injected_message_id(it->id),
                        "System::apply_fault: cannot duplicate an injected "
                        "duplicate");
            int& count = duplicate_counts_[it->id];
            KSA_REQUIRE(count + 1 < static_cast<int>(kMaxDuplicatesPerMessage),
                        "System::apply_fault: per-message duplication bound "
                        "exhausted");
            Message clone = *it;
            clone.id = kInjectedMessageIdBase +
                       it->id * kMaxDuplicatesPerMessage +
                       static_cast<MessageId>(++count);
            rec.injected.push_back(clone);
            buffers_[clone.to - 1].push_back(std::move(clone));
            return;
        }
        case FaultAction::Kind::kCrashProcess: {
            const ProcessId q = action.process;
            check_pid(q, "System::apply_fault (crash victim)");
            KSA_REQUIRE(!crashed(q),
                        "System::apply_fault: victim already crashed");
            CrashSpec spec;
            spec.after_own_steps = step_counts_[q - 1] + 1;
            spec.omit_to = action.omit_to;
            if (plan_.is_faulty(q)) {
                // Replaying a recorded run: the effective plan already
                // carries this injection.  Accept iff it matches exactly.
                KSA_REQUIRE(plan_.spec(q) == spec,
                            "System::apply_fault: crash injection conflicts "
                            "with the crash plan in force");
                return;
            }
            plan_.set_crash(q, spec);
            run_.plan.set_crash(q, std::move(spec));
            return;
        }
        case FaultAction::Kind::kCorruptMessage: {
            std::deque<Message>::iterator it;
            std::deque<Message>* buf = find_buffered(action.message, &it);
            KSA_REQUIRE(buf != nullptr,
                        "System::apply_fault: corrupted message not buffered");
            if (buf == nullptr) return;
            // Forgeries of forgeries would nest the derived-id schemes of
            // message.hpp; the chaos layer only corrupts originals.
            KSA_REQUIRE(!is_injected_message_id(it->id),
                        "System::apply_fault: cannot corrupt an injected "
                        "message");
            const Message original = *it;
            // In-place rewrite: same buffer slot (arrival order is
            // preserved), forged id, mutated payload.
            it->id = corrupted_message_id(original.id);
            it->payload = corrupt_payload(original.payload,
                                          action.corrupt_seed, n_);
            rec.tampered.push_back(original);
            rec.forged.push_back(*it);
            note_byzantine(original.from, 1, 0);
            return;
        }
        case FaultAction::Kind::kEquivocate: {
            std::deque<Message>::iterator it;
            std::deque<Message>* buf = find_buffered(action.message, &it);
            KSA_REQUIRE(buf != nullptr,
                        "System::apply_fault: equivocation anchor not "
                        "buffered");
            if (buf == nullptr) return;
            KSA_REQUIRE(!is_injected_message_id(it->id),
                        "System::apply_fault: cannot equivocate an injected "
                        "message");
            KSA_REQUIRE(static_cast<MessageId>(n_) < kEquivocationFanout,
                        "System::apply_fault: n exceeds the equivocation id "
                        "fanout");
            const Message anchor = *it;
            // Rewrite every still-buffered sibling of the anchor's
            // broadcast -- same sender, send time and payload -- into a
            // receiver-specific variant.  At most one sibling per
            // receiver is rewritten (the forged id embeds the receiver,
            // so a second rewrite would collide).
            for (ProcessId q = 1; q <= n_; ++q) {
                for (Message& m : buffers_[q - 1]) {
                    if (is_injected_message_id(m.id)) continue;
                    if (m.from != anchor.from || m.sent_at != anchor.sent_at ||
                        !(m.payload == anchor.payload))
                        continue;
                    const Message original = m;
                    m.id = equivocated_message_id(anchor.id, q);
                    m.payload = equivocate_payload(original.payload,
                                                   action.corrupt_seed, q, n_);
                    rec.tampered.push_back(original);
                    rec.forged.push_back(m);
                    break;
                }
            }
            note_byzantine(anchor.from, 0, 1);
            return;
        }
    }
    KSA_REQUIRE(false, "System::apply_fault: unknown fault kind");
}

void System::note_byzantine(ProcessId sender, int corruptions,
                            int equivocations) {
    // Both the live plan and the run record accumulate the realized
    // Byzantine pattern; replay from Run::static_plan() re-applies the
    // same fault stream, so the counts converge byte-identically.
    plan_.note_byzantine(sender, corruptions, equivocations);
    run_.plan.note_byzantine(sender, corruptions, equivocations);
}

StepChoice System::prefix_choice(ProcessId p, std::size_t count) const {
    check_pid(p, "System::prefix_choice");
    const std::deque<Message>& buf = buffer(p);
    KSA_REQUIRE(count <= buf.size(),
                "System::prefix_choice: prefix longer than buffer");
    StepChoice choice;
    choice.process = p;
    choice.deliver.reserve(count);
    for (std::size_t m = 0; m < count; ++m) choice.deliver.push_back(buf[m].id);
    return choice;
}

void System::apply_choice(const StepChoice& choice) {
    KSA_REQUIRE(!finished_, "System::apply_choice: run already finalized");
    const ProcessId p = choice.process;
    check_pid(p, "System::apply_choice");
    // The model never delivers a step to a crashed process: a crashed
    // process takes no step at any time >= its crash time (the paper's
    // F(t)).  A scheduler violating this produces an inadmissible run.
    KSA_REQUIRE(!crashed(p), "System::apply_choice: process already crashed");

    StepRecord rec;
    rec.time = now_;
    rec.process = p;

    // Fault events first: they perturb the buffers (and possibly the
    // plan) that the remainder of the step observes.  An injected crash
    // of `p` itself makes *this* step its final one.
    for (const FaultAction& action : choice.faults) apply_fault(action, rec);
    rec.faults = choice.faults;

    const int allowed = plan_.allowed_steps(p);
    KSA_REQUIRE(allowed < 0 || step_counts_[p - 1] < allowed,
                "System::apply_choice: crash plan exhausted for this process");

    // Collect the delivered subset L from p's buffer.
    auto& buf = buffers_[p - 1];
    if (choice.deliver_all) {
        rec.delivered.assign(buf.begin(), buf.end());
        buf.clear();
    } else {
        for (MessageId id : choice.deliver) {
            auto it = std::find_if(buf.begin(), buf.end(),
                                   [id](const Message& m) { return m.id == id; });
            KSA_REQUIRE(it != buf.end(),
                        "System::apply_choice: message id not in buffer");
            rec.delivered.push_back(*it);
            buf.erase(it);
        }
    }
    // Buffer integrity: everything the buffer of p holds was addressed
    // to p and sent strictly before this step.
    for (const Message& m : rec.delivered) {
        KSA_INVARIANT(m.to == p,
                      "System::apply_choice: buffered message addressed to "
                      "a different process");
        KSA_INVARIANT(m.sent_at < now_,
                      "System::apply_choice: message delivered no later "
                      "than it was sent");
    }

    // Failure-detector query at the beginning of the step.
    StepInput input;
    input.delivered = rec.delivered;
    if (uses_fd_) {
        QueryContext ctx;
        ctx.now = now_;
        ctx.querier = p;
        for (ProcessId q = 1; q <= n_; ++q)
            if (crashed(q)) ctx.crashed_so_far.push_back(q);
        FdSample sample = oracle_->query(ctx);
        if (recording_) run_.fd_history.push_back(FdEvent{now_, p, sample});
        rec.fd = sample;
        input.fd = std::move(sample);
    }

    // The atomic state transition.
    StepOutput out = behaviors_[p - 1]->on_step(input);

    // Is this the final step of a crashing process?
    const bool final_step =
        allowed >= 0 && step_counts_[p - 1] + 1 == allowed;
    const std::set<ProcessId>* omit =
        final_step ? &plan_.spec(p).omit_to : nullptr;

    for (auto& [dest, payload] : out.sends) {
        check_pid(dest, "System::apply_choice (send destination)");
        Message m;
        m.id = next_msg_id_++;
        m.from = p;
        m.to = dest;
        m.sent_at = now_;
        m.payload = std::move(payload);
        if (omit != nullptr && omit->count(dest) != 0) {
            rec.omitted.push_back(std::move(m));
        } else {
            rec.sent.push_back(m);
            buffers_[dest - 1].push_back(std::move(m));
        }
    }

    if (out.decision) {
        // A REQUIRE, not an ENSURE: the Behavior is caller-supplied code,
        // so a second decision is API misuse (UsageError), exactly as the
        // write-once doc on StepOutput::decision promises.
        KSA_REQUIRE(!decisions_[p - 1].has_value(),
                    "protocol bug: process decided twice (output is "
                    "write-once)");
        decisions_[p - 1] = out.decision;
        rec.decision = out.decision;
    }

    rec.final_crash_step = final_step;

    if (final_step) crashed_[p - 1] = true;
    ++step_counts_[p - 1];
    if (recording_) {
        // The digest rendering is the single most expensive part of a
        // recorded step (an ostringstream pass over the whole local
        // state); non-recording mode skips it along with the record.
        rec.digest_after = behaviors_[p - 1]->state_digest();
        run_.steps.push_back(std::move(rec));
    }
    ++now_;
}

void System::set_scheduler_label(std::string label) {
    run_.scheduler = std::move(label);
}

Run System::execute(Scheduler& scheduler, ExecutionLimits limits) {
    require(!finished_, "System::execute: run already finalized");
    run_.scheduler = scheduler.name();
    bool hit_limit = false;
    while (true) {
        if (now_ > limits.max_steps) {
            hit_limit = true;
            break;
        }
        std::optional<StepChoice> choice = scheduler.next(*this);
        if (!choice) break;
        apply_choice(*choice);
    }
    StopReason reason;
    if (hit_limit)
        reason = StopReason::kStepLimit;
    else if (all_correct_decided() && correct_buffers_empty())
        reason = StopReason::kQuiescent;
    else
        reason = StopReason::kSchedulerEnded;
    return finish(reason);
}

Run System::finish(StopReason reason) {
    KSA_REQUIRE(!finished_, "System::finish: run already finalized");
    if (!recording_) {
        // Header-only record (see set_recording): there is no step
        // history whose shape could be checked.
        finished_ = true;
        run_.stop = reason;
        return std::move(run_);
    }
    // FD-history consistency: an FD-using algorithm queries the oracle
    // exactly once per step, at the beginning of the step; an FD-free
    // algorithm never does.  The fd/ validators rely on this shape.
    if (uses_fd_) {
        KSA_ENSURE(run_.fd_history.size() == run_.steps.size(),
                   "System::finish: failure-detector history out of sync "
                   "with the step record");
        for (std::size_t i = 0; i < run_.steps.size(); ++i) {
            KSA_ENSURE(run_.fd_history[i].time == run_.steps[i].time &&
                           run_.fd_history[i].process == run_.steps[i].process,
                       "System::finish: failure-detector event does not "
                       "match its step");
        }
    } else {
        KSA_ENSURE(run_.fd_history.empty(),
                   "System::finish: failure-detector history recorded for "
                   "an algorithm that queries no detector");
    }
    // Step record integrity: times are the consecutive global times
    // 1..|steps| (the paper's discrete time axis).
    KSA_ENSURE(static_cast<Time>(run_.steps.size()) == now_ - 1,
               "System::finish: step record does not match global time");
    finished_ = true;
    run_.stop = reason;
    return std::move(run_);
}

Run execute_run(const Algorithm& algorithm, int n, std::vector<Value> inputs,
                FailurePlan plan, Scheduler& scheduler, FdOracle* oracle,
                ExecutionLimits limits) {
    System system(algorithm, n, std::move(inputs), std::move(plan), oracle);
    return system.execute(scheduler, limits);
}

std::vector<Value> distinct_inputs(int n) {
    std::vector<Value> out(n);
    for (int i = 0; i < n; ++i) out[i] = i + 1;
    return out;
}

std::vector<Value> uniform_inputs(int n, Value v) {
    return std::vector<Value>(static_cast<std::size_t>(n), v);
}

}  // namespace ksa
