#include "sim/run.hpp"

#include <algorithm>

namespace ksa {

std::string to_string(StopReason r) {
    switch (r) {
        case StopReason::kQuiescent: return "quiescent";
        case StopReason::kSchedulerEnded: return "scheduler-ended";
        case StopReason::kStepLimit: return "step-limit";
    }
    return "unknown";
}

std::optional<Value> Run::decision_of(ProcessId p) const {
    for (const StepRecord& s : steps)
        if (s.process == p && s.decision) return s.decision;
    return std::nullopt;
}

Time Run::decision_time_of(ProcessId p) const {
    for (const StepRecord& s : steps)
        if (s.process == p && s.decision) return s.time;
    return kNever;
}

std::set<Value> Run::distinct_decisions() const {
    std::set<Value> out;
    for (const StepRecord& s : steps)
        if (s.decision) out.insert(*s.decision);
    return out;
}

std::set<Value> Run::distinct_decisions(const std::vector<ProcessId>& group) const {
    std::set<Value> out;
    for (const StepRecord& s : steps)
        if (s.decision &&
            std::find(group.begin(), group.end(), s.process) != group.end())
            out.insert(*s.decision);
    return out;
}

bool Run::all_correct_decided(const std::vector<ProcessId>& group) const {
    for (ProcessId p : group)
        if (!plan.is_faulty(p) && !decision_of(p)) return false;
    return true;
}

bool Run::all_correct_decided() const {
    for (ProcessId p = 1; p <= n; ++p)
        if (!plan.is_faulty(p) && !decision_of(p)) return false;
    return true;
}

Time Run::crash_time_of(ProcessId p) const {
    if (!plan.is_faulty(p)) return kNever;
    if (plan.is_initially_dead(p)) return 1;
    Time last = 0;
    bool crashed_seen = false;
    for (const StepRecord& s : steps) {
        if (s.process == p) {
            last = s.time;
            if (s.final_crash_step) crashed_seen = true;
        }
    }
    if (!crashed_seen) return kNever;  // plan says faulty but crash not realized
    return last + 1;
}

std::set<ProcessId> Run::crashed() const {
    std::set<ProcessId> out;
    for (ProcessId p = 1; p <= n; ++p)
        if (crash_time_of(p) != kNever) out.insert(p);
    return out;
}

int Run::steps_of(ProcessId p) const {
    int c = 0;
    for (const StepRecord& s : steps)
        if (s.process == p) ++c;
    return c;
}

std::vector<std::string> Run::digest_sequence(ProcessId p,
                                              bool until_decision) const {
    std::vector<std::string> out;
    for (const StepRecord& s : steps) {
        if (s.process != p) continue;
        out.push_back(s.digest_after);
        if (until_decision && s.decision) break;
    }
    return out;
}

std::vector<Time> Run::receptions_from(
        ProcessId p, const std::vector<ProcessId>& senders) const {
    std::vector<Time> out;
    for (const StepRecord& s : steps) {
        if (s.process != p) continue;
        for (const Message& m : s.delivered) {
            if (std::find(senders.begin(), senders.end(), m.from) !=
                senders.end()) {
                out.push_back(s.time);
                break;
            }
        }
    }
    return out;
}

bool Run::silent_from_until(ProcessId p, const std::vector<ProcessId>& senders,
                            Time deadline) const {
    for (Time t : receptions_from(p, senders))
        if (t < deadline) return false;
    return true;
}

std::size_t Run::messages_sent() const {
    std::size_t c = 0;
    for (const StepRecord& s : steps) c += s.sent.size();
    return c;
}

std::vector<MessageId> Run::undelivered_to(ProcessId p) const {
    std::set<MessageId> sent_ids;
    for (const StepRecord& s : steps) {
        for (const Message& m : s.sent)
            if (m.to == p) sent_ids.insert(m.id);
        // Injected duplicates are in-flight messages like any other:
        // leaving a clone addressed to a correct process undelivered
        // violates eventual delivery exactly as losing the original does.
        for (const Message& m : s.injected)
            if (m.to == p) sent_ids.insert(m.id);
        // A Byzantine forgery *replaces* its original in flight: the
        // forged id inherits the original's delivery obligation.
        for (const Message& m : s.forged)
            if (m.to == p) sent_ids.insert(m.id);
    }
    for (const StepRecord& s : steps) {
        for (const Message& m : s.tampered)
            if (m.to == p) sent_ids.erase(m.id);
        if (s.process == p)
            for (const Message& m : s.delivered) sent_ids.erase(m.id);
    }
    return {sent_ids.begin(), sent_ids.end()};
}

std::vector<std::pair<std::size_t, FaultAction>> Run::fault_events() const {
    std::vector<std::pair<std::size_t, FaultAction>> out;
    for (std::size_t i = 0; i < steps.size(); ++i)
        for (const FaultAction& a : steps[i].faults) out.emplace_back(i, a);
    return out;
}

std::size_t Run::num_fault_events() const {
    std::size_t c = 0;
    for (const StepRecord& s : steps) c += s.faults.size();
    return c;
}

std::set<ProcessId> Run::injected_crash_victims() const {
    std::set<ProcessId> out;
    for (const StepRecord& s : steps)
        for (const FaultAction& a : s.faults)
            if (a.kind == FaultAction::Kind::kCrashProcess)
                out.insert(a.process);
    return out;
}

std::set<ProcessId> Run::byzantine_senders() const {
    std::set<ProcessId> out;
    for (const StepRecord& s : steps)
        for (const Message& m : s.tampered) out.insert(m.from);
    return out;
}

FailurePlan Run::static_plan() const {
    const std::set<ProcessId> injected = injected_crash_victims();
    // ByzantineSpecs are stripped implicitly: only crash specs are
    // copied, and re-applying the recorded fault stream rebuilds the
    // Byzantine counts (System::note_byzantine).
    FailurePlan out;
    for (ProcessId p : plan.faulty())
        if (injected.count(p) == 0) out.set_crash(p, plan.spec(p));
    return out;
}

bool indistinguishable_for(const Run& a, const Run& b, ProcessId p) {
    return a.digest_sequence(p) == b.digest_sequence(p);
}

bool indistinguishable_for_all(const Run& a, const Run& b,
                               const std::vector<ProcessId>& group) {
    for (ProcessId p : group)
        if (!indistinguishable_for(a, b, p)) return false;
    return true;
}

std::optional<std::vector<std::size_t>> compatible_for(
        const std::vector<Run>& r_prime, const std::vector<Run>& r,
        const std::vector<ProcessId>& group, std::size_t* out_witness) {
    std::vector<std::size_t> choice;
    for (std::size_t i = 0; i < r_prime.size(); ++i) {
        bool found = false;
        for (std::size_t j = 0; j < r.size() && !found; ++j) {
            if (indistinguishable_for_all(r_prime[i], r[j], group)) {
                choice.push_back(j);
                found = true;
            }
        }
        if (!found) {
            if (out_witness != nullptr) *out_witness = i;
            return std::nullopt;
        }
    }
    return choice;
}

}  // namespace ksa
