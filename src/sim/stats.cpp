#include "sim/stats.hpp"

#include <sstream>

namespace ksa {

std::string RunStats::summary() const {
    std::ostringstream out;
    out << "steps=" << total_steps << " msgs=" << total_messages
        << " omitted=" << total_omitted
        << " last_decision_t=" << last_decision_time
        << " mean_decision_steps=" << mean_decision_own_steps;
    return out.str();
}

RunStats compute_stats(const Run& run) {
    RunStats stats;
    stats.n = run.n;
    stats.total_steps = run.steps.size();
    stats.per_process.resize(run.n);
    stats.traffic.assign(run.n, std::vector<int>(run.n, 0));
    for (ProcessId p = 1; p <= run.n; ++p)
        stats.per_process[p - 1].process = p;

    for (const StepRecord& s : run.steps) {
        ProcessStats& ps = stats.per_process[s.process - 1];
        ++ps.steps;
        ps.messages_received += static_cast<int>(s.delivered.size());
        ps.messages_sent += static_cast<int>(s.sent.size());
        stats.total_messages += s.sent.size();
        stats.total_omitted += s.omitted.size();
        for (const Message& m : s.sent)
            ++stats.traffic[m.from - 1][m.to - 1];
        if (s.decision) {
            ps.decision_time = s.time;
            ps.decision_own_steps = ps.steps;
            stats.last_decision_time =
                std::max(stats.last_decision_time, s.time);
        }
    }

    int deciders = 0;
    long long step_sum = 0;
    for (const ProcessStats& ps : stats.per_process) {
        if (ps.decision_own_steps >= 0) {
            ++deciders;
            step_sum += ps.decision_own_steps;
        }
    }
    stats.mean_decision_own_steps =
        deciders == 0 ? 0.0 : static_cast<double>(step_sum) / deciders;
    return stats;
}

}  // namespace ksa
