#pragma once
// Structured message payloads.
//
// The model allows messages from an arbitrary universe M.  All protocols
// in this library get by with a small structured record: a tag naming the
// message kind, a vector of integers, and a vector of integer lists (used
// e.g. for the "heard-from" lists of the FLP-style two-stage protocols).
// Keeping payloads as a concrete value type (rather than type-erased
// blobs) makes runs trivially comparable, hashable and printable, which
// the indistinguishability machinery of core/ relies on.

#include <string>
#include <vector>

#include "sim/digest.hpp"
#include "sim/types.hpp"

namespace ksa {

/// A structured message payload: `tag` names the message kind, `ints`
/// carries scalar fields, `lists` carries list-valued fields.
struct Payload {
    std::string tag;
    std::vector<int> ints;
    std::vector<std::vector<int>> lists;

    friend bool operator==(const Payload&, const Payload&) = default;

    /// Canonical single-line rendering, e.g. `ECHO(3,7|[1,2],[4])`.
    /// Stable across runs; used for digests and traces.
    std::string to_string() const;

    /// Folds the payload into `h` without materializing any string:
    /// tag, then length-prefixed ints, then length-prefixed lists.  The
    /// explorer's per-message digests are built from exactly this byte
    /// stream, so every keying path (fast ghost hashing, the reduction
    /// layer's renamed hashing) shares one definition of "same payload".
    void fold(StateHasher& h) const;
};

/// Convenience factory for a payload with scalar fields only.
Payload make_payload(std::string tag, std::vector<int> ints = {});

/// Convenience factory for a payload with scalar and list fields.
Payload make_payload(std::string tag, std::vector<int> ints,
                     std::vector<std::vector<int>> lists);

}  // namespace ksa
