#pragma once
// Graphviz export: space-time diagrams of runs and heard-from graphs.
//
// `run_to_dot` renders a recorded run as the classic space-time diagram
// (one horizontal lane per process, one node per step, message arrows
// between steps, decision/crash annotations) -- the picture one draws by
// hand when walking through a partitioning argument.  The companion
// graph/dot.hpp renders heard-from graphs.
//
//   dot -Tsvg run.dot -o run.svg

#include <iosfwd>
#include <string>

#include "sim/run.hpp"

namespace ksa {

/// Options for the space-time rendering.
struct DotOptions {
    bool show_digests = false;   ///< annotate nodes with state digests
    bool show_payloads = true;   ///< label message arrows with payloads
    std::size_t max_steps = 400;  ///< truncate very long runs
};

/// Writes the space-time diagram of `run` to `out`.
void run_to_dot(std::ostream& out, const Run& run, const DotOptions& options = {});

/// The same, as a string.
std::string run_to_dot(const Run& run, const DotOptions& options = {});

}  // namespace ksa
