#pragma once
// Failure-detector oracle interface.
//
// A failure detector (Chandra & Toueg) is an oracle that a process may
// query at the beginning of each step.  The value returned depends on the
// failure pattern F(.) of the run through the detector's history function
// H(p, t).  In the simulator, the adversary supplies an oracle object;
// the System calls it once per step of an FD-using algorithm, records the
// sample into the run's FdHistory, and the validators in fd/ re-check the
// recorded history against the detector class definitions afterwards --
// an incorrectly implemented oracle therefore cannot silently launder an
// inadmissible run.
//
// Oracles see (a) the planned faulty set up front (via their
// constructors, as the adversary knows the plan) and (b) the realized
// crash status so far through the QueryContext.  This is enough to
// implement every detector used in the paper, including the partition
// detector of Definition 7.

#include <functional>
#include <vector>

#include "sim/behavior.hpp"
#include "sim/types.hpp"

namespace ksa {

/// Runtime information available to an oracle when answering a query.
struct QueryContext {
    Time now = 0;                         ///< global time of the querying step
    ProcessId querier = 0;                ///< process performing the step
    std::vector<ProcessId> crashed_so_far;  ///< processes that have already crashed
};

/// Oracle producing failure-detector samples.  Implementations live in
/// fd/; the simulator only needs the query entry point.
class FdOracle {
public:
    virtual ~FdOracle() = default;

    /// H(querier, now): the sample handed to the querying process.
    virtual FdSample query(const QueryContext& ctx) = 0;

    /// Detector class name for traces, e.g. "(Sigma_k,Omega_k)".
    virtual std::string name() const = 0;
};

/// One recorded failure-detector query.
struct FdEvent {
    Time time = 0;
    ProcessId process = 0;
    FdSample sample;
};

/// The recorded failure-detector history of a run: the sequence of all
/// queries in step order.  fd/ validators consume this.
using FdHistory = std::vector<FdEvent>;

}  // namespace ksa
