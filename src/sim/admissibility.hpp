#pragma once
// Admissibility checking for recorded run prefixes.
//
// The asynchronous model MASYNC (Section II, following FLP) admits a run
// iff (1) every correct process takes an infinite number of steps,
// (2) faulty processes take only finitely many steps and may omit sends
// to a subset of receivers in their very last step, and (3) every message
// sent to a correct receiver is eventually received.  On a finite
// decisive prefix these conditions become checkable:
//
//   (1') every correct process took steps until it decided (termination
//        itself is a problem-level property checked in core/),
//   (2') every planned crash was realized exactly (the System enforces
//        the "at most" direction; the checker verifies "exactly"),
//   (3') at quiescence, no message addressed to a correct process is
//        still buffered.
//
// A run that stopped at the step limit is reported as inconclusive
// rather than inadmissible: it is the finite signature of a termination
// violation, which the callers in core/ treat as such.

#include <string>
#include <vector>

#include "sim/run.hpp"

namespace ksa {

/// Result of an admissibility check.
struct AdmissibilityReport {
    bool admissible = true;    ///< no violation found
    bool conclusive = true;    ///< false iff the prefix hit the step limit
    std::vector<std::string> violations;

    /// Appends a violation and clears `admissible`.
    void fail(std::string what) {
        admissible = false;
        violations.push_back(std::move(what));
    }
};

/// Checks conditions (1')-(3') above on a recorded prefix.
AdmissibilityReport check_admissibility(const Run& run);

}  // namespace ksa
