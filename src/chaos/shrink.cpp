#include "chaos/shrink.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "check/contract.hpp"
#include "sim/message.hpp"

namespace ksa::chaos {

namespace {

/// Replays a candidate and evaluates the predicate.  An illegal replay
/// (the System throws) means "does not reproduce".
std::optional<Run> try_candidate(const Algorithm& algorithm,
                                 const ChaosTrace& trace,
                                 const RunPredicate& still_violates,
                                 int& tried) {
    ++tried;
    try {
        Run run = replay_chaos_trace(algorithm, trace);
        if (still_violates(run)) return run;
    } catch (const Error&) {
        // Candidate is not a legal run -- discard.
    }
    return std::nullopt;
}

ChaosTrace truncated(const ChaosTrace& trace, std::size_t len) {
    ChaosTrace out = trace;
    out.choices.assign(trace.choices.begin(),
                       trace.choices.begin() + static_cast<std::ptrdiff_t>(len));
    if (len != trace.choices.size()) out.stop = StopReason::kSchedulerEnded;
    return out;
}

/// After fault events were removed, deliveries of injected ids whose
/// minting fault no longer exists must go too.  The id schemes of
/// sim/message.hpp make this local: clone d of source s has id
/// base + s*16 + d (System hands out indices 1..count in order, so a
/// delivery of clone d is satisfiable iff the candidate still
/// duplicates s at least d times); a corrupted forgery is base + s and
/// needs its kCorruptMessage on s; an equivocation variant is
/// base + anchor*64 + receiver and needs its kEquivocate on the anchor.
void sanitize_clone_deliveries(ChaosTrace& trace) {
    std::map<MessageId, int> dups_per_source;
    std::set<MessageId> corrupted, equivocated;
    for (const StepChoice& c : trace.choices)
        for (const FaultAction& a : c.faults) {
            if (a.kind == FaultAction::Kind::kDuplicateMessage)
                ++dups_per_source[a.message];
            else if (a.kind == FaultAction::Kind::kCorruptMessage)
                corrupted.insert(a.message);
            else if (a.kind == FaultAction::Kind::kEquivocate)
                equivocated.insert(a.message);
        }
    for (StepChoice& c : trace.choices) {
        std::erase_if(c.deliver, [&](MessageId id) {
            if (!is_injected_message_id(id)) return false;
            // Every injected-id scheme is locally invertible, so a
            // forged delivery can be traced back to the fault that
            // would mint it.  Check the highest base first.
            if (is_equivocation_id(id)) {
                const MessageId anchor =
                    (id - kEquivocationIdBase) / kEquivocationFanout;
                return equivocated.count(anchor) == 0;
            }
            if (is_corruption_id(id)) {
                const MessageId src = id - kCorruptionIdBase;
                return corrupted.count(src) == 0;
            }
            const MessageId rel = id - kInjectedMessageIdBase;
            const MessageId src = rel / kMaxDuplicatesPerMessage;
            const int d = static_cast<int>(rel % kMaxDuplicatesPerMessage);
            const auto it = dups_per_source.find(src);
            const int avail = it == dups_per_source.end() ? 0 : it->second;
            return d > avail;
        });
    }
}

/// Flat positions of all fault events: (choice index, fault index).
std::vector<std::pair<std::size_t, std::size_t>> fault_positions(
        const ChaosTrace& trace) {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    for (std::size_t i = 0; i < trace.choices.size(); ++i)
        for (std::size_t j = 0; j < trace.choices[i].faults.size(); ++j)
            out.emplace_back(i, j);
    return out;
}

/// The trace with the fault events at positions [begin, end) removed.
ChaosTrace without_faults(
        const ChaosTrace& trace,
        const std::vector<std::pair<std::size_t, std::size_t>>& positions,
        std::size_t begin, std::size_t end) {
    std::set<std::pair<std::size_t, std::size_t>> removed(
        positions.begin() + static_cast<std::ptrdiff_t>(begin),
        positions.begin() + static_cast<std::ptrdiff_t>(end));
    ChaosTrace out = trace;
    for (std::size_t i = 0; i < out.choices.size(); ++i) {
        std::vector<FaultAction> kept;
        for (std::size_t j = 0; j < out.choices[i].faults.size(); ++j)
            if (removed.count({i, j}) == 0)
                kept.push_back(out.choices[i].faults[j]);
        out.choices[i].faults = std::move(kept);
    }
    sanitize_clone_deliveries(out);
    return out;
}

/// One greedy ddmin sweep over the fault events: repeatedly try to
/// remove chunks, halving the chunk size, restarting after every
/// successful removal.  Returns true iff anything was removed.
bool ddmin_faults(const Algorithm& algorithm, ChaosTrace& best,
                  const RunPredicate& still_violates, int& tried) {
    bool any = false;
    for (;;) {
        const auto positions = fault_positions(best);
        if (positions.empty()) return any;
        bool removed = false;
        for (std::size_t chunk = positions.size(); chunk >= 1 && !removed;
             chunk /= 2) {
            for (std::size_t start = 0; start < positions.size() && !removed;
                 start += chunk) {
                const std::size_t end =
                    std::min(start + chunk, positions.size());
                ChaosTrace candidate =
                    without_faults(best, positions, start, end);
                if (try_candidate(algorithm, candidate, still_violates,
                                  tried)) {
                    best = std::move(candidate);
                    removed = true;
                    any = true;
                }
            }
            if (chunk == 1) break;
        }
        if (!removed) return any;
    }
}

/// Backward greedy pass deleting single choices.  Returns true iff
/// anything was removed.
bool remove_single_choices(const Algorithm& algorithm, ChaosTrace& best,
                           const RunPredicate& still_violates, int& tried) {
    bool any = false;
    for (std::size_t i = best.choices.size(); i-- > 0;) {
        if (best.choices.size() <= 1) break;
        ChaosTrace candidate = best;
        candidate.choices.erase(candidate.choices.begin() +
                                static_cast<std::ptrdiff_t>(i));
        candidate.stop = StopReason::kSchedulerEnded;
        sanitize_clone_deliveries(candidate);
        if (try_candidate(algorithm, candidate, still_violates, tried)) {
            best = std::move(candidate);
            any = true;
        }
    }
    return any;
}

}  // namespace

std::string ShrinkResult::to_string() const {
    std::ostringstream out;
    out << "shrunk faults " << original_faults << " -> " << shrunk_faults
        << ", steps " << original_steps << " -> " << shrunk_steps << " ("
        << candidates_tried << " candidates tried)";
    return out.str();
}

ShrinkResult shrink_chaos_trace(const Algorithm& algorithm,
                                const ChaosTrace& trace,
                                const RunPredicate& still_violates,
                                ShrinkOptions options) {
    require(static_cast<bool>(still_violates),
            "shrink_chaos_trace: null predicate");
    require(!trace.choices.empty(), "shrink_chaos_trace: empty trace");

    ShrinkResult result;
    result.original_faults = trace.num_faults();
    result.original_steps = trace.num_steps();

    // The input must reproduce, otherwise there is nothing to minimize.
    Run initial = replay_chaos_trace(algorithm, trace);
    require(still_violates(initial),
            "shrink_chaos_trace: the initial trace does not violate the "
            "predicate");

    ChaosTrace best = trace;
    int tried = 0;

    // Pass 1: shortest violating prefix.  Decisions are irrevocable, so
    // "prefix of length L violates" is monotone in L and binary search
    // applies.
    if (options.truncate_tail) {
        std::size_t lo = 1, hi = best.choices.size();
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (try_candidate(algorithm, truncated(best, mid), still_violates,
                              tried))
                hi = mid;
            else
                lo = mid + 1;
        }
        if (hi < best.choices.size()) best = truncated(best, hi);
    }

    // Passes 2+3, iterated to a fixpoint.
    for (int round = 0; round < options.max_rounds; ++round) {
        bool progress = false;
        if (options.remove_faults)
            progress |= ddmin_faults(algorithm, best, still_violates, tried);
        if (options.remove_choices)
            progress |=
                remove_single_choices(algorithm, best, still_violates, tried);
        if (!progress) break;
    }

    result.trace = best;
    result.run = replay_chaos_trace(algorithm, best);
    KSA_ENSURE(still_violates(result.run),
               "shrink_chaos_trace: minimized trace stopped violating");
    result.shrunk_faults = best.num_faults();
    result.shrunk_steps = best.num_steps();
    result.candidates_tried = tried;
    return result;
}

RunPredicate violates_k_agreement(int k) {
    return [k](const Run& run) {
        return static_cast<int>(run.distinct_decisions().size()) > k;
    };
}

RunPredicate violates_validity() {
    return [](const Run& run) {
        const std::set<Value> proposed(run.inputs.begin(), run.inputs.end());
        for (Value v : run.distinct_decisions())
            if (proposed.count(v) == 0) return true;
        return false;
    };
}

}  // namespace ksa::chaos
