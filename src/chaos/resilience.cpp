#include "chaos/resilience.hpp"

#include <random>
#include <sstream>
#include <utility>

#include <optional>
#include <set>

#include "algo/initial_clique.hpp"
#include "check/contract.hpp"
#include "exec/clock.hpp"
#include "exec/parallel_map.hpp"
#include "core/bounds.hpp"
#include "core/kset_spec.hpp"
#include "sim/admissibility.hpp"
#include "sim/schedulers.hpp"

namespace ksa::chaos {

namespace {

/// splitmix64: mixes trial coordinates into independent seeds, so
/// neighboring cells do not share schedules.
std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t trial_seed_for(std::uint64_t base, int n, int k, int f,
                             int trial) {
    std::uint64_t s = mix(base);
    s = mix(s ^ static_cast<std::uint64_t>(n));
    s = mix(s ^ (static_cast<std::uint64_t>(k) << 8));
    s = mix(s ^ (static_cast<std::uint64_t>(f) << 16));
    s = mix(s ^ (static_cast<std::uint64_t>(trial) << 24));
    return s;
}

/// Scheduler decorator enforcing a per-trial wall-clock budget: once the
/// deadline passes it stops proposing steps, so the trial ends truncated
/// and classifies as kInconclusive instead of stalling the sweep.  A
/// zero budget makes it fully transparent (no clock reads at all), which
/// is what keeps budget-free reports byte-identical across machines.
class DeadlineScheduler final : public Scheduler {
public:
    DeadlineScheduler(Scheduler& inner, std::int64_t budget_ms)
        : inner_(&inner),
          budget_ms_(budget_ms),
          start_ms_(budget_ms > 0 ? exec::steady_now_ms() : 0) {}

    std::optional<StepChoice> next(const SystemView& view) override {
        if (budget_ms_ > 0 &&
            exec::steady_now_ms() - start_ms_ >= budget_ms_) {
            expired_ = true;
            return std::nullopt;
        }
        return inner_->next(view);
    }

    /// Transparent: archived runs keep the inner scheduler's name.
    std::string name() const override { return inner_->name(); }

    bool expired() const { return expired_; }

private:
    Scheduler* inner_;
    std::int64_t budget_ms_;
    std::int64_t start_ms_;
    bool expired_ = false;
};

/// The retry profile for inconclusive trials: every dice rate halved and
/// delays shortened, so a pathological parameterization gets a second,
/// gentler chance before the trial is recorded as inconclusive.  Budgets
/// stay put, so the profile remains valid under ChaosProfile::validate.
ChaosProfile tighter_profile(ChaosProfile p) {
    p.drop_per_mille /= 2;
    p.duplicate_per_mille /= 2;
    p.delay_per_mille /= 2;
    p.corrupt_per_mille /= 2;
    p.equivocate_per_mille /= 2;
    p.burst_per_mille /= 2;
    p.crash_per_mille /= 2;
    if (p.max_delay > 1) p.max_delay /= 2;
    return p;
}

}  // namespace

std::string to_string(Outcome outcome) {
    switch (outcome) {
        case Outcome::kDecidedCorrectly: return "decided-correctly";
        case Outcome::kAgreementViolated: return "agreement-violated";
        case Outcome::kValidityViolated: return "validity-violated";
        case Outcome::kTimedOut: return "timed-out";
        case Outcome::kInadmissible: return "inadmissible";
        case Outcome::kInconclusive: return "inconclusive";
    }
    return "unknown";
}

Outcome classify_run(const Run& run, int k) {
    if (run.stop == StopReason::kStepLimit) return Outcome::kTimedOut;
    const AdmissibilityReport adm = check_admissibility(run);
    if (!adm.admissible) return Outcome::kInadmissible;

    const std::set<ProcessId>& byz = run.plan.byzantine();
    if (byz.empty()) {
        const core::KSetCheck check = core::check_kset_agreement(run, k);
        if (!check.k_agreement) return Outcome::kAgreementViolated;
        if (!check.validity) return Outcome::kValidityViolated;
        if (!check.termination) return Outcome::kTimedOut;
        return Outcome::kDecidedCorrectly;
    }

    // Byzantine-aware path: the spec's obligations bind honest processes
    // only (crash-faulty ones included, as in the crash path), because a
    // Byzantine process's decision is as untrustworthy as its messages.
    std::vector<ProcessId> honest;
    for (ProcessId p = 1; p <= run.n; ++p)
        if (byz.count(p) == 0) honest.push_back(p);
    if (static_cast<int>(run.distinct_decisions(honest).size()) > k)
        return Outcome::kAgreementViolated;
    const std::set<Value> proposed(run.inputs.begin(), run.inputs.end());
    for (ProcessId p : honest) {
        const std::optional<Value> d = run.decision_of(p);
        if (d && proposed.count(*d) == 0) return Outcome::kValidityViolated;
    }
    for (ProcessId p : honest)
        if (!run.plan.is_faulty(p) && !run.decision_of(p))
            return Outcome::kTimedOut;
    return Outcome::kDecidedCorrectly;
}

TrialResult chaos_trial(int n, int k, int f, const ChaosProfile& profile,
                        std::uint64_t trial_seed, ExecutionLimits limits,
                        std::int64_t wall_budget_ms) {
    require(n >= 2, "chaos_trial: n must be >= 2");
    require(k >= 1, "chaos_trial: k must be >= 1");
    require(f >= 0 && f <= n - 1, "chaos_trial: need 0 <= f <= n-1");

    const std::unique_ptr<Algorithm> algorithm = algo::make_flp_kset(n, f);

    // Seeded failure pattern: up to f initial deaths, sampled with a
    // hand-rolled partial Fisher-Yates (std::shuffle's output is
    // implementation-defined; replayability wants ours fixed).
    std::mt19937_64 rng(trial_seed);
    const int dead =
        f > 0 ? static_cast<int>(rng() % static_cast<std::uint64_t>(f + 1))
              : 0;
    std::vector<ProcessId> pids(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pids[static_cast<std::size_t>(i)] = i + 1;
    FailurePlan plan;
    for (int i = 0; i < dead; ++i) {
        const std::size_t j =
            static_cast<std::size_t>(i) +
            static_cast<std::size_t>(rng() %
                                     static_cast<std::uint64_t>(n - i));
        std::swap(pids[static_cast<std::size_t>(i)], pids[j]);
        plan.set_initially_dead(pids[static_cast<std::size_t>(i)]);
    }

    ChaosProfile trial_profile = profile;
    trial_profile.seed = mix(trial_seed ^ 0xc2b2ae3d27d4eb4full);

    RandomScheduler base(trial_seed);
    FaultInjector injector(base, trial_profile);
    DeadlineScheduler deadline(injector, wall_budget_ms);

    TrialResult result;
    result.run = execute_run(*algorithm, n, distinct_inputs(n),
                             std::move(plan), deadline, nullptr, limits);
    result.stats = injector.stats();
    result.outcome = deadline.expired() ? Outcome::kInconclusive
                                        : classify_run(result.run, k);
    return result;
}

TrialResult byzantine_trial(int n, int k, int f, const ChaosProfile& profile,
                            std::uint64_t trial_seed, ExecutionLimits limits,
                            std::int64_t wall_budget_ms) {
    require(n >= 2, "byzantine_trial: n must be >= 2");
    require(k >= 1, "byzantine_trial: k must be >= 1");
    require(f >= 0 && f <= n - 1, "byzantine_trial: need 0 <= f <= n-1");

    const std::unique_ptr<Algorithm> algorithm = algo::make_flp_kset(n, f);

    // No initial deaths: the adversary's whole budget is value faults.
    // The victim cap is forced to the cell's f; f = 0 additionally
    // zeroes the Byzantine dice so the profile stays valid.
    ChaosProfile trial_profile = profile;
    trial_profile.seed = mix(trial_seed ^ 0x8ebc6af09c88c6e3ull);
    trial_profile.max_byzantine = f;
    if (f == 0) {
        trial_profile.corrupt_per_mille = 0;
        trial_profile.equivocate_per_mille = 0;
    }

    RandomScheduler base(trial_seed);
    FaultInjector injector(base, trial_profile);
    DeadlineScheduler deadline(injector, wall_budget_ms);

    TrialResult result;
    result.run = execute_run(*algorithm, n, distinct_inputs(n), FailurePlan{},
                             deadline, nullptr, limits);
    result.stats = injector.stats();
    result.outcome = classify_run(result.run, k);
    // Under value faults a step-limit stop is indistinguishable from
    // "needed a larger budget" -- a lied-to receiver may merely be slow
    // to reach closure -- so budget exhaustion of either kind degrades
    // to inconclusive rather than claiming a termination violation.
    if (deadline.expired() || result.run.stop == StopReason::kStepLimit)
        result.outcome = Outcome::kInconclusive;
    return result;
}

int SweepReport::total_trials() const {
    int c = 0;
    for (const CellResult& cell : cells) c += cell.trials;
    return c;
}

bool SweepReport::boundary_clean() const {
    for (const CellResult& cell : cells)
        if (cell.solvable && !cell.clean()) return false;
    return true;
}

bool SweepReport::complete() const {
    for (const CellResult& cell : cells) {
        const int classified = cell.decided + cell.agreement_violations +
                               cell.validity_violations + cell.timeouts +
                               cell.inadmissible + cell.inconclusive;
        if (cell.trials != config.seeds_per_cell ||
            classified != cell.trials)
            return false;
    }
    return true;
}

SweepReport resilience_sweep(const SweepConfig& config) {
    require(config.min_n >= 2, "resilience_sweep: min_n must be >= 2");
    require(config.max_n >= config.min_n,
            "resilience_sweep: max_n must be >= min_n");
    require(config.seeds_per_cell >= 1,
            "resilience_sweep: seeds_per_cell must be >= 1");
    config.profile.validate();

    SweepReport report;
    report.config = config;

    // Step 1 of the parallel-sweep recipe (exec/parallel_map.hpp):
    // materialize the iteration space.  Every trial's seed is derived
    // from its cell coordinates alone, so cells are independent work
    // items and the cell-parallel report is byte-identical to the
    // sequential one.
    struct CellCoord {
        int n, k, f;
    };
    std::vector<CellCoord> coords;
    for (int n = config.min_n; n <= config.max_n; ++n)
        for (int k = 1; k <= n - 1; ++k)
            for (int f = 0; f <= n - 1; ++f) coords.push_back({n, k, f});

    const bool byzantine =
        config.model == SweepConfig::FaultModel::kByzantine;
    const auto run_trial = [&](int n, int k, int f,
                               const ChaosProfile& profile,
                               std::uint64_t seed) {
        return byzantine
                   ? byzantine_trial(n, k, f, profile, seed, config.limits,
                                     config.trial_wall_budget_ms)
                   : chaos_trial(n, k, f, profile, seed, config.limits,
                                 config.trial_wall_budget_ms);
    };

    // Cells are few and wildly uneven (cost grows with n, and the
    // retry pass is per-cell), so they go through the work-stealing
    // scheduler at grain 1: a worker stuck on an expensive high-n cell
    // sheds the rest of its share to idle peers instead of serializing
    // it behind the static-partition barrier (the pre-stealing sweep
    // measured 0.979x "speedup" at 4 threads on exactly this skew).
    exec::TaskScheduler sched(config.threads);
    report.cells = exec::parallel_map_grained(
            sched, coords.size(), /*grain=*/1, [&](std::size_t i, int) {
                const auto [n, k, f] = coords[i];
                CellResult cell;
                cell.n = n;
                cell.k = k;
                cell.f = f;
                cell.solvable = byzantine
                                    ? core::byzantine_kset_necessary(n, f, k)
                                    : core::theorem8_solvable(n, f, k);
                for (int t = 0; t < config.seeds_per_cell; ++t) {
                    const std::uint64_t seed =
                        trial_seed_for(config.base_seed, n, k, f, t);
                    TrialResult trial =
                        run_trial(n, k, f, config.profile, seed);
                    if (trial.outcome == Outcome::kInconclusive &&
                        config.retry_inconclusive) {
                        // One tighter-profile retry, salted seed.  Local
                        // to the trial, so cell parallelism stays
                        // deterministic.
                        ++cell.retries;
                        trial = run_trial(n, k, f,
                                          tighter_profile(config.profile),
                                          mix(seed ^ 0x5bf03635aca33d2aull));
                    }
                    ++cell.trials;
                    cell.faults_injected += trial.stats.total_faults();
                    switch (trial.outcome) {
                        case Outcome::kDecidedCorrectly: ++cell.decided; break;
                        case Outcome::kAgreementViolated:
                            ++cell.agreement_violations;
                            break;
                        case Outcome::kValidityViolated:
                            ++cell.validity_violations;
                            break;
                        case Outcome::kTimedOut: ++cell.timeouts; break;
                        case Outcome::kInadmissible:
                            ++cell.inadmissible;
                            break;
                        case Outcome::kInconclusive:
                            ++cell.inconclusive;
                            break;
                    }
                }
                return cell;
            });
    return report;
}

std::string SweepReport::to_json() const {
    std::ostringstream out;
    out << "{\n";
    out << "  \"config\": {\"min_n\": " << config.min_n
        << ", \"max_n\": " << config.max_n
        << ", \"seeds_per_cell\": " << config.seeds_per_cell
        << ", \"base_seed\": " << config.base_seed << ", \"model\": \""
        << (config.model == SweepConfig::FaultModel::kByzantine
                ? "byzantine"
                : "crash")
        << "\", \"trial_wall_budget_ms\": " << config.trial_wall_budget_ms
        << ", \"profile\": \"" << config.profile.describe() << "\"},\n";
    out << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellResult& c = cells[i];
        out << "    {\"n\": " << c.n << ", \"k\": " << c.k
            << ", \"f\": " << c.f
            << ", \"solvable\": " << (c.solvable ? "true" : "false")
            << ", \"trials\": " << c.trials << ", \"decided\": " << c.decided
            << ", \"agreement_violations\": " << c.agreement_violations
            << ", \"validity_violations\": " << c.validity_violations
            << ", \"timeouts\": " << c.timeouts
            << ", \"inadmissible\": " << c.inadmissible
            << ", \"inconclusive\": " << c.inconclusive
            << ", \"retries\": " << c.retries
            << ", \"faults_injected\": " << c.faults_injected << "}"
            << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"summary\": {\"total_trials\": " << total_trials()
        << ", \"boundary_clean\": " << (boundary_clean() ? "true" : "false")
        << ", \"complete\": " << (complete() ? "true" : "false") << "}\n";
    out << "}\n";
    return out.str();
}

std::string SweepReport::to_markdown() const {
    const bool byz = config.model == SweepConfig::FaultModel::kByzantine;
    std::ostringstream out;
    out << (byz ? "# Byzantine resilience sweep (Bouzid-Imbs-Raynal "
                  "boundary under value faults)\n\n"
                : "# Resilience sweep (Theorem 8 boundary under chaos)\n\n");
    out << "Profile: `" << config.profile.describe() << "`, "
        << config.seeds_per_cell << " seeds/cell, n in [" << config.min_n
        << ", " << config.max_n << "].\n\n";
    if (byz)
        out << "`solvable` marks cells satisfying the *necessary* "
               "condition k*n > (2k+1)*f; the initial-clique algorithm "
               "under test makes no Byzantine tolerance claim, so "
               "violations on either side are reports, not verdicts.\n\n";
    out << "| n | k | f | solvable | decided | agreement | validity | "
           "timeout | inadmissible | inconclusive | faults |\n";
    out << "|---|---|---|----------|---------|-----------|----------|"
           "---------|--------------|--------------|--------|\n";
    for (const CellResult& c : cells) {
        out << "| " << c.n << " | " << c.k << " | " << c.f << " | "
            << (c.solvable ? "yes" : "no") << " | " << c.decided << " | "
            << c.agreement_violations << " | " << c.validity_violations
            << " | " << c.timeouts << " | " << c.inadmissible << " | "
            << c.inconclusive << " | " << c.faults_injected << " |\n";
    }
    if (byz) {
        out << "\nTotal trials: " << total_trials() << ".  "
            << (complete() ? "COMPLETE: every trial was classified; "
                             "budget-exhausted trials degraded to "
                             "inconclusive instead of hanging."
                           : "INCOMPLETE: some trial went unaccounted -- "
                             "investigate before trusting the grid.")
            << "\n";
    } else {
        out << "\nTotal trials: " << total_trials() << ".  Solvable side "
            << (boundary_clean()
                    ? "CLEAN: every guarded-chaos trial decided "
                      "correctly, matching Theorem 8."
                    : "NOT CLEAN: some solvable cell shows a "
                      "violation -- investigate before trusting "
                      "the engine.")
            << "\n";
    }
    return out.str();
}

}  // namespace ksa::chaos
