#include "chaos/resilience.hpp"

#include <random>
#include <sstream>
#include <utility>

#include "algo/initial_clique.hpp"
#include "check/contract.hpp"
#include "exec/parallel_map.hpp"
#include "core/bounds.hpp"
#include "core/kset_spec.hpp"
#include "sim/admissibility.hpp"
#include "sim/schedulers.hpp"

namespace ksa::chaos {

namespace {

/// splitmix64: mixes trial coordinates into independent seeds, so
/// neighboring cells do not share schedules.
std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t trial_seed_for(std::uint64_t base, int n, int k, int f,
                             int trial) {
    std::uint64_t s = mix(base);
    s = mix(s ^ static_cast<std::uint64_t>(n));
    s = mix(s ^ (static_cast<std::uint64_t>(k) << 8));
    s = mix(s ^ (static_cast<std::uint64_t>(f) << 16));
    s = mix(s ^ (static_cast<std::uint64_t>(trial) << 24));
    return s;
}

}  // namespace

std::string to_string(Outcome outcome) {
    switch (outcome) {
        case Outcome::kDecidedCorrectly: return "decided-correctly";
        case Outcome::kAgreementViolated: return "agreement-violated";
        case Outcome::kValidityViolated: return "validity-violated";
        case Outcome::kTimedOut: return "timed-out";
        case Outcome::kInadmissible: return "inadmissible";
    }
    return "unknown";
}

Outcome classify_run(const Run& run, int k) {
    if (run.stop == StopReason::kStepLimit) return Outcome::kTimedOut;
    const AdmissibilityReport adm = check_admissibility(run);
    if (!adm.admissible) return Outcome::kInadmissible;
    const core::KSetCheck check = core::check_kset_agreement(run, k);
    if (!check.k_agreement) return Outcome::kAgreementViolated;
    if (!check.validity) return Outcome::kValidityViolated;
    if (!check.termination) return Outcome::kTimedOut;
    return Outcome::kDecidedCorrectly;
}

TrialResult chaos_trial(int n, int k, int f, const ChaosProfile& profile,
                        std::uint64_t trial_seed, ExecutionLimits limits) {
    require(n >= 2, "chaos_trial: n must be >= 2");
    require(k >= 1, "chaos_trial: k must be >= 1");
    require(f >= 0 && f <= n - 1, "chaos_trial: need 0 <= f <= n-1");

    const std::unique_ptr<Algorithm> algorithm = algo::make_flp_kset(n, f);

    // Seeded failure pattern: up to f initial deaths, sampled with a
    // hand-rolled partial Fisher-Yates (std::shuffle's output is
    // implementation-defined; replayability wants ours fixed).
    std::mt19937_64 rng(trial_seed);
    const int dead =
        f > 0 ? static_cast<int>(rng() % static_cast<std::uint64_t>(f + 1))
              : 0;
    std::vector<ProcessId> pids(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pids[static_cast<std::size_t>(i)] = i + 1;
    FailurePlan plan;
    for (int i = 0; i < dead; ++i) {
        const std::size_t j =
            static_cast<std::size_t>(i) +
            static_cast<std::size_t>(rng() %
                                     static_cast<std::uint64_t>(n - i));
        std::swap(pids[static_cast<std::size_t>(i)], pids[j]);
        plan.set_initially_dead(pids[static_cast<std::size_t>(i)]);
    }

    ChaosProfile trial_profile = profile;
    trial_profile.seed = mix(trial_seed ^ 0xc2b2ae3d27d4eb4full);

    RandomScheduler base(trial_seed);
    FaultInjector injector(base, trial_profile);

    TrialResult result;
    result.run = execute_run(*algorithm, n, distinct_inputs(n),
                             std::move(plan), injector, nullptr, limits);
    result.stats = injector.stats();
    result.outcome = classify_run(result.run, k);
    return result;
}

int SweepReport::total_trials() const {
    int c = 0;
    for (const CellResult& cell : cells) c += cell.trials;
    return c;
}

bool SweepReport::boundary_clean() const {
    for (const CellResult& cell : cells)
        if (cell.solvable && !cell.clean()) return false;
    return true;
}

SweepReport resilience_sweep(const SweepConfig& config) {
    require(config.min_n >= 2, "resilience_sweep: min_n must be >= 2");
    require(config.max_n >= config.min_n,
            "resilience_sweep: max_n must be >= min_n");
    require(config.seeds_per_cell >= 1,
            "resilience_sweep: seeds_per_cell must be >= 1");
    config.profile.validate();

    SweepReport report;
    report.config = config;

    // Step 1 of the parallel-sweep recipe (exec/parallel_map.hpp):
    // materialize the iteration space.  Every trial's seed is derived
    // from its cell coordinates alone, so cells are independent work
    // items and the cell-parallel report is byte-identical to the
    // sequential one.
    struct CellCoord {
        int n, k, f;
    };
    std::vector<CellCoord> coords;
    for (int n = config.min_n; n <= config.max_n; ++n)
        for (int k = 1; k <= n - 1; ++k)
            for (int f = 0; f <= n - 1; ++f) coords.push_back({n, k, f});

    report.cells = exec::parallel_map_deterministic(
            config.threads, coords.size(), [&](std::size_t i) {
                const auto [n, k, f] = coords[i];
                CellResult cell;
                cell.n = n;
                cell.k = k;
                cell.f = f;
                cell.solvable = core::theorem8_solvable(n, f, k);
                for (int t = 0; t < config.seeds_per_cell; ++t) {
                    const std::uint64_t seed =
                        trial_seed_for(config.base_seed, n, k, f, t);
                    TrialResult trial = chaos_trial(n, k, f, config.profile,
                                                    seed, config.limits);
                    ++cell.trials;
                    cell.faults_injected += trial.stats.total_faults();
                    switch (trial.outcome) {
                        case Outcome::kDecidedCorrectly: ++cell.decided; break;
                        case Outcome::kAgreementViolated:
                            ++cell.agreement_violations;
                            break;
                        case Outcome::kValidityViolated:
                            ++cell.validity_violations;
                            break;
                        case Outcome::kTimedOut: ++cell.timeouts; break;
                        case Outcome::kInadmissible:
                            ++cell.inadmissible;
                            break;
                    }
                }
                return cell;
            });
    return report;
}

std::string SweepReport::to_json() const {
    std::ostringstream out;
    out << "{\n";
    out << "  \"config\": {\"min_n\": " << config.min_n
        << ", \"max_n\": " << config.max_n
        << ", \"seeds_per_cell\": " << config.seeds_per_cell
        << ", \"base_seed\": " << config.base_seed << ", \"profile\": \""
        << config.profile.describe() << "\"},\n";
    out << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellResult& c = cells[i];
        out << "    {\"n\": " << c.n << ", \"k\": " << c.k
            << ", \"f\": " << c.f
            << ", \"solvable\": " << (c.solvable ? "true" : "false")
            << ", \"trials\": " << c.trials << ", \"decided\": " << c.decided
            << ", \"agreement_violations\": " << c.agreement_violations
            << ", \"validity_violations\": " << c.validity_violations
            << ", \"timeouts\": " << c.timeouts
            << ", \"inadmissible\": " << c.inadmissible
            << ", \"faults_injected\": " << c.faults_injected << "}"
            << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"summary\": {\"total_trials\": " << total_trials()
        << ", \"boundary_clean\": " << (boundary_clean() ? "true" : "false")
        << "}\n";
    out << "}\n";
    return out.str();
}

std::string SweepReport::to_markdown() const {
    std::ostringstream out;
    out << "# Resilience sweep (Theorem 8 boundary under chaos)\n\n";
    out << "Profile: `" << config.profile.describe() << "`, "
        << config.seeds_per_cell << " seeds/cell, n in [" << config.min_n
        << ", " << config.max_n << "].\n\n";
    out << "| n | k | f | solvable | decided | agreement | validity | "
           "timeout | inadmissible | faults |\n";
    out << "|---|---|---|----------|---------|-----------|----------|"
           "---------|--------------|--------|\n";
    for (const CellResult& c : cells) {
        out << "| " << c.n << " | " << c.k << " | " << c.f << " | "
            << (c.solvable ? "yes" : "no") << " | " << c.decided << " | "
            << c.agreement_violations << " | " << c.validity_violations
            << " | " << c.timeouts << " | " << c.inadmissible << " | "
            << c.faults_injected << " |\n";
    }
    out << "\nTotal trials: " << total_trials() << ".  Solvable side "
        << (boundary_clean() ? "CLEAN: every guarded-chaos trial decided "
                               "correctly, matching Theorem 8."
                             : "NOT CLEAN: some solvable cell shows a "
                               "violation -- investigate before trusting "
                               "the engine.")
        << "\n";
    return out.str();
}

}  // namespace ksa::chaos
