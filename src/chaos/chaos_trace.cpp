#include "chaos/chaos_trace.hpp"

#include "sim/serialize.hpp"

namespace ksa::chaos {

std::size_t ChaosTrace::num_faults() const {
    std::size_t c = 0;
    for (const StepChoice& choice : choices) c += choice.faults.size();
    return c;
}

ChaosTrace extract_chaos_trace(const Run& run) {
    ChaosTrace trace;
    trace.n = run.n;
    trace.inputs = run.inputs;
    trace.plan = run.static_plan();
    trace.choices = schedule_of(run);
    trace.scheduler = run.scheduler;
    trace.stop = run.stop;
    return trace;
}

Run replay_chaos_trace(const Algorithm& algorithm, const ChaosTrace& trace) {
    System system(algorithm, trace.n, trace.inputs, trace.plan);
    system.set_scheduler_label(trace.scheduler);
    for (const StepChoice& choice : trace.choices) system.apply_choice(choice);
    return system.finish(trace.stop);
}

}  // namespace ksa::chaos
