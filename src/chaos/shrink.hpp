#pragma once
// Counterexample shrinking for chaos runs.
//
// A resilience sweep that finds a violating run usually finds a *messy*
// one: dozens of injected faults and hundreds of steps, most of them
// irrelevant to the violation.  The shrinker reduces such a run to a
// minimal reproducer with greedy delta debugging over its ChaosTrace:
//
//   1. tail truncation -- decisions are irrevocable, so if a prefix of
//      the choice sequence already exhibits the violation, every longer
//      prefix does too; binary search finds the shortest violating
//      prefix;
//   2. fault-event ddmin -- repeatedly try removing chunks of the
//      injected fault events (halving the chunk size down to single
//      events), keeping a removal whenever the replay is still legal
//      and still violating;
//   3. choice removal -- a backward greedy pass deleting single step
//      choices whose absence preserves the violation.
//
// A candidate whose replay the System rejects (e.g. deleting a
// duplication fault whose clone a later step delivers) simply does not
// reproduce and is discarded; the Error is the signal, not a failure.
// The result is replayable bit-for-bit through replay_chaos_trace and
// serializable for archiving.

#include <cstddef>
#include <functional>

#include "chaos/chaos_trace.hpp"

namespace ksa::chaos {

/// True iff the reconstructed run still exhibits the violation being
/// minimized.  Must be deterministic.
using RunPredicate = std::function<bool(const Run&)>;

struct ShrinkOptions {
    bool truncate_tail = true;   ///< pass 1
    bool remove_faults = true;   ///< pass 2
    bool remove_choices = true;  ///< pass 3
    /// Maximum number of full (2)+(3) rounds; each round only runs if
    /// the previous one made progress.
    int max_rounds = 8;
};

struct ShrinkResult {
    ChaosTrace trace;  ///< the minimized trace
    Run run;           ///< its replay (still violating)

    std::size_t original_faults = 0;
    std::size_t shrunk_faults = 0;
    std::size_t original_steps = 0;
    std::size_t shrunk_steps = 0;
    int candidates_tried = 0;  ///< replays attempted during the search

    std::string to_string() const;
};

/// Minimizes `trace` while `still_violates` holds on its replay.
/// Throws UsageError if the initial trace does not violate (nothing to
/// shrink) or does not replay.
ShrinkResult shrink_chaos_trace(const Algorithm& algorithm,
                                const ChaosTrace& trace,
                                const RunPredicate& still_violates,
                                ShrinkOptions options = {});

/// Predicate: the run decides more than k distinct values (k-agreement
/// violated, Section II-A).
RunPredicate violates_k_agreement(int k);

/// Predicate: some decision was never proposed (validity violated).
RunPredicate violates_validity();

}  // namespace ksa::chaos
