#pragma once
// Chaos traces: the replayable essence of a chaos run.
//
// A recorded Run carries everything (messages, digests, detector
// samples); what the shrinker needs to *mutate* is much smaller -- the
// initial configuration plus the exact StepChoice sequence, fault
// events included.  A ChaosTrace is that projection.  Replaying a trace
// through the step-wise System API reconstructs the full Run; replaying
// the trace extracted from a run reproduces the run bit for bit (the
// DeterminismAuditor's promise, extended to fault events).
//
// The shrinker in chaos/shrink.hpp works entirely on ChaosTraces: every
// shrink candidate is "the same trace with fewer fault events or fewer
// choices", and a candidate is valid iff its replay is legal and the
// violation predicate still holds on the reconstructed run.

#include <vector>

#include "sim/behavior.hpp"
#include "sim/failure_plan.hpp"
#include "sim/run.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"

namespace ksa::chaos {

/// See file comment.
struct ChaosTrace {
    int n = 0;
    std::vector<Value> inputs;
    /// The *static* crash plan (Run::static_plan()): injected crashes
    /// re-enter through the fault events in `choices`.
    FailurePlan plan;
    /// The exact step sequence, fault events included.
    std::vector<StepChoice> choices;
    /// Scheduler label of the original run, copied onto replays so the
    /// serialized forms stay byte-identical.
    std::string scheduler;
    /// Stop reason of the original run, stamped onto full replays.
    StopReason stop = StopReason::kSchedulerEnded;

    std::size_t num_steps() const { return choices.size(); }
    std::size_t num_faults() const;
};

/// Projects a recorded run onto its trace.
ChaosTrace extract_chaos_trace(const Run& run);

/// Replays `trace` step by step against a fresh System.  Throws (as the
/// System does) if the trace is not a legal run of the algorithm --
/// shrink candidates rely on that signal.
Run replay_chaos_trace(const Algorithm& algorithm, const ChaosTrace& trace);

}  // namespace ksa::chaos
