#pragma once
// The resilience harness: sweeping the Theorem 8 boundary under chaos.
//
// Theorem 8 says k-set agreement with up to f initial crashes among n
// processes is solvable iff k*n > (k+1)*f, and the constructive side is
// the initial-clique algorithm with threshold L = n - f (algo/
// initial_clique.hpp).  The harness turns that statement into an
// empirical grid: for every (n, k, f) cell it runs many seeded trials
// of the algorithm under a chaos-perturbed random schedule -- duplicated
// and delayed messages, delivery bursts, up to f seeded initial deaths
// -- and classifies each recorded run:
//
//   kDecidedCorrectly  -- admissible, decided, spec satisfied;
//   kAgreementViolated -- more than k distinct decisions;
//   kValidityViolated  -- a decision nobody proposed;
//   kTimedOut          -- hit the step limit (termination suspect);
//   kInadmissible      -- the run violates MASYNC admissibility (only
//                         expected from havoc-mode profiles).
//
// On the solvable side of the boundary every cell must be 100%
// kDecidedCorrectly -- guard-mode chaos is exactly the adversary the
// possibility proof quantifies over.  On the impossible side the grid
// reports whatever the trials observe; the *reliable* violations there
// come from the partition adversary (core/theorem8.cpp), and the chaos
// layer's role is producing messy violating runs for the shrinker.

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault_injector.hpp"
#include "chaos/profile.hpp"
#include "sim/run.hpp"
#include "sim/system.hpp"

namespace ksa::chaos {

/// Classification of one chaos trial (see file comment).
enum class Outcome {
    kDecidedCorrectly,
    kAgreementViolated,
    kValidityViolated,
    kTimedOut,
    kInadmissible,
};

std::string to_string(Outcome outcome);

/// Classifies a recorded run against k-set agreement + admissibility.
Outcome classify_run(const Run& run, int k);

/// One chaos trial of the Theorem 8 algorithm (L = n - f) on n
/// processes: seeds a FailurePlan with up to f initial deaths, wraps a
/// RandomScheduler in a FaultInjector with `profile`, executes and
/// classifies.  `trial_seed` drives the death sampling and the base
/// schedule; the profile's own seed drives the injector.
struct TrialResult {
    Outcome outcome = Outcome::kDecidedCorrectly;
    Run run;
    ChaosStats stats;
};

TrialResult chaos_trial(int n, int k, int f, const ChaosProfile& profile,
                        std::uint64_t trial_seed, ExecutionLimits limits = {});

/// Aggregated outcomes of one (n, k, f) cell.
struct CellResult {
    int n = 0, k = 0, f = 0;
    bool solvable = false;  ///< theorem8_solvable(n, f, k)
    int trials = 0;
    int decided = 0;
    int agreement_violations = 0;
    int validity_violations = 0;
    int timeouts = 0;
    int inadmissible = 0;
    int faults_injected = 0;  ///< sum of injector fault events

    /// A solvable cell is clean iff every trial decided correctly.
    bool clean() const {
        return agreement_violations == 0 && validity_violations == 0 &&
               timeouts == 0 && inadmissible == 0;
    }
};

/// Sweep configuration; defaults match the CI smoke bounds.
struct SweepConfig {
    int min_n = 2;
    int max_n = 7;
    int seeds_per_cell = 20;
    std::uint64_t base_seed = 1;
    /// Template profile; its seed is re-derived per trial.
    ChaosProfile profile;
    ExecutionLimits limits;
    /// Worker threads for cell-parallel execution (1 = sequential).
    /// Every trial's seed is derived from its (n, k, f, trial)
    /// coordinates, never from shared state, so the report --
    /// including its JSON and markdown renderings, which deliberately
    /// do not mention the thread count -- is byte-identical for every
    /// value (tests/test_exec.cpp holds the sweep to this).
    int threads = 1;
};

/// The full grid report.
struct SweepReport {
    SweepConfig config;
    std::vector<CellResult> cells;

    int total_trials() const;
    /// True iff every solvable-side cell is clean (the Theorem 8
    /// possibility statement, empirically).
    bool boundary_clean() const;

    /// Machine-readable rendering (stable key order, no dependencies).
    std::string to_json() const;
    /// Human-readable rendering: one markdown table over the grid plus a
    /// verdict line.
    std::string to_markdown() const;
};

/// Runs trials for every cell n in [min_n, max_n], k in [1, n-1],
/// f in [0, n-1].
SweepReport resilience_sweep(const SweepConfig& config);

}  // namespace ksa::chaos
