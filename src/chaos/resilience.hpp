#pragma once
// The resilience harness: sweeping the Theorem 8 boundary under chaos.
//
// Theorem 8 says k-set agreement with up to f initial crashes among n
// processes is solvable iff k*n > (k+1)*f, and the constructive side is
// the initial-clique algorithm with threshold L = n - f (algo/
// initial_clique.hpp).  The harness turns that statement into an
// empirical grid: for every (n, k, f) cell it runs many seeded trials
// of the algorithm under a chaos-perturbed random schedule -- duplicated
// and delayed messages, delivery bursts, up to f seeded initial deaths
// -- and classifies each recorded run:
//
//   kDecidedCorrectly  -- admissible, decided, spec satisfied;
//   kAgreementViolated -- more than k distinct decisions;
//   kValidityViolated  -- a decision nobody proposed;
//   kTimedOut          -- hit the step limit (termination suspect);
//   kInadmissible      -- the run violates MASYNC admissibility (only
//                         expected from havoc-mode profiles);
//   kInconclusive      -- a per-trial state/time budget was exhausted
//                         before the trial could be classified (the
//                         graceful-degradation outcome: a pathological
//                         profile degrades here instead of hanging).
//
// On the solvable side of the boundary every cell must be 100%
// kDecidedCorrectly -- guard-mode chaos is exactly the adversary the
// possibility proof quantifies over.  On the impossible side the grid
// reports whatever the trials observe; the *reliable* violations there
// come from the partition adversary (core/theorem8.cpp), and the chaos
// layer's role is producing messy violating runs for the shrinker.
//
// The Byzantine mode (SweepConfig::FaultModel::kByzantine) replaces the
// initial-death adversary with up to f Byzantine victim *senders* whose
// channels corrupt and equivocate (sim/byzantine.hpp), and labels each
// (n, k, f) cell with the Bouzid-Imbs-Raynal *necessary* condition
// k*n > (2k+1)*f (core/bounds.hpp).  The condition is necessary only,
// and the initial-clique algorithm makes no Byzantine tolerance claim,
// so the Byzantine report never asserts solvability; it records where
// violations were actually witnessed.  Trials that exhaust their step
// budget under Byzantine perturbation are kInconclusive, not kTimedOut:
// a lied-to receiver may merely be waiting for a closure that a larger
// budget would reach, so "did not finish in budget" is the honest label.

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault_injector.hpp"
#include "chaos/profile.hpp"
#include "sim/run.hpp"
#include "sim/system.hpp"

namespace ksa::chaos {

/// Classification of one chaos trial (see file comment).
enum class Outcome {
    kDecidedCorrectly,
    kAgreementViolated,
    kValidityViolated,
    kTimedOut,
    kInadmissible,
    kInconclusive,
};

std::string to_string(Outcome outcome);

/// Classifies a recorded run against k-set agreement + admissibility.
/// Byzantine-aware: processes the run's FailurePlan marks Byzantine
/// (senders whose channels were corrupted or equivocated) are excluded
/// from the agreement, validity and termination obligations -- the
/// classical definitions only bind correct processes, and a Byzantine
/// process's "decision" is as untrustworthy as its messages.  When the
/// plan has no Byzantine processes this is exactly the crash-model
/// classification.
// ksa: thread_safe -- pure function of its arguments.
Outcome classify_run(const Run& run, int k);

/// One chaos trial of the Theorem 8 algorithm (L = n - f) on n
/// processes: seeds a FailurePlan with up to f initial deaths, wraps a
/// RandomScheduler in a FaultInjector with `profile`, executes and
/// classifies.  `trial_seed` drives the death sampling and the base
/// schedule; the profile's own seed drives the injector.
struct TrialResult {
    Outcome outcome = Outcome::kDecidedCorrectly;
    Run run;
    ChaosStats stats;
};

/// `wall_budget_ms` is the per-trial wall-clock budget (0 disables it;
/// the default keeps trials byte-identical across machines).  A trial
/// that exhausts the budget stops scheduling and classifies as
/// kInconclusive instead of stalling the sweep.
// ksa: thread_safe -- all state is local to the call.
TrialResult chaos_trial(int n, int k, int f, const ChaosProfile& profile,
                        std::uint64_t trial_seed, ExecutionLimits limits = {},
                        std::int64_t wall_budget_ms = 0);

/// One Byzantine trial: no initial deaths; instead the injector may turn
/// up to f senders Byzantine (profile rates, victim cap forced to f) and
/// forge their in-flight messages via corruption and equivocation.  The
/// algorithm under test stays the Theorem 8 initial-clique algorithm
/// with L = n - f -- it makes no Byzantine tolerance claim, which is the
/// point: the sweep records where value faults actually break it.
/// Step-limit exhaustion classifies as kInconclusive (see file comment),
/// as does wall-budget exhaustion.
// ksa: thread_safe -- all state is local to the call.
TrialResult byzantine_trial(int n, int k, int f, const ChaosProfile& profile,
                            std::uint64_t trial_seed,
                            ExecutionLimits limits = {},
                            std::int64_t wall_budget_ms = 0);

/// Aggregated outcomes of one (n, k, f) cell.
struct CellResult {
    int n = 0, k = 0, f = 0;
    /// Crash model: theorem8_solvable(n, f, k).  Byzantine model: the
    /// Bouzid-Imbs-Raynal necessary condition byzantine_kset_necessary.
    bool solvable = false;
    int trials = 0;
    int decided = 0;
    int agreement_violations = 0;
    int validity_violations = 0;
    int timeouts = 0;
    int inadmissible = 0;
    int inconclusive = 0;  ///< budget-exhausted trials (after retries)
    int retries = 0;       ///< tighter-profile retries of inconclusive trials
    int faults_injected = 0;  ///< sum of injector fault events

    /// A solvable cell is clean iff every trial decided correctly.
    bool clean() const {
        return agreement_violations == 0 && validity_violations == 0 &&
               timeouts == 0 && inadmissible == 0 && inconclusive == 0;
    }
};

/// Sweep configuration; defaults match the CI smoke bounds.
struct SweepConfig {
    /// Which fault adversary the grid runs against (see file comment).
    enum class FaultModel {
        kCrash,      ///< up to f seeded initial deaths (Theorem 8 grid)
        kByzantine,  ///< up to f corrupting/equivocating senders (BIR grid)
    };

    int min_n = 2;
    int max_n = 7;
    int seeds_per_cell = 20;
    std::uint64_t base_seed = 1;
    FaultModel model = FaultModel::kCrash;
    /// Template profile; its seed is re-derived per trial.
    ChaosProfile profile;
    ExecutionLimits limits;
    /// Per-trial wall-clock budget in milliseconds; 0 disables the
    /// budget entirely (the default, keeping reports byte-identical
    /// across machines).  With a budget, a pathological profile degrades
    /// each stuck trial to kInconclusive instead of stalling the sweep.
    std::int64_t trial_wall_budget_ms = 0;
    /// Retry each inconclusive trial once with a tighter (halved-rate)
    /// profile and a salted seed before recording it; the retry is local
    /// to the trial so cell parallelism stays deterministic.
    bool retry_inconclusive = true;
    /// Worker threads for cell-parallel execution (1 = sequential).
    /// Every trial's seed is derived from its (n, k, f, trial)
    /// coordinates, never from shared state, so the report --
    /// including its JSON and markdown renderings, which deliberately
    /// do not mention the thread count -- is byte-identical for every
    /// value (tests/test_exec.cpp holds the sweep to this).
    int threads = 1;
};

/// The full grid report.
struct SweepReport {
    SweepConfig config;
    std::vector<CellResult> cells;

    int total_trials() const;
    /// True iff every solvable-side cell is clean (the Theorem 8
    /// possibility statement, empirically).  Crash-model semantics; a
    /// Byzantine sweep gates on complete() instead.
    bool boundary_clean() const;
    /// True iff every trial of every cell was classified -- i.e. the
    /// outcome counts add up to `trials` and nothing hung or aborted.
    /// This is the Byzantine sweep's gate: graceful degradation may
    /// yield kInconclusive cells, but never unaccounted trials.
    bool complete() const;

    /// Machine-readable rendering (stable key order, no dependencies).
    std::string to_json() const;
    /// Human-readable rendering: one markdown table over the grid plus a
    /// verdict line.
    std::string to_markdown() const;
};

/// Runs trials for every cell n in [min_n, max_n], k in [1, n-1],
/// f in [0, n-1].
SweepReport resilience_sweep(const SweepConfig& config);

}  // namespace ksa::chaos
