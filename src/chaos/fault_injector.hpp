#pragma once
// The fault-injection adversary: a Scheduler decorator.
//
// A FaultInjector wraps any base Scheduler (round-robin, random,
// partition, lockstep, ...) and perturbs its choices with the channel
// and process faults described by a ChaosProfile:
//
//   * drop      -- a buffered message is removed permanently
//                  (FaultAction::kDropMessage);
//   * duplicate -- a buffered message is cloned into its destination
//                  buffer (FaultAction::kDuplicateMessage), to be
//                  re-delivered stale at some later step;
//   * delay     -- a message the base scheduler wanted delivered now is
//                  withheld for a bounded number of steps (no fault
//                  event: withholding is ordinary asynchrony);
//   * burst     -- for a few consecutive steps nothing is delivered at
//                  all (a transient partition of everyone);
//   * crash     -- a staggered mid-run crash of a so-far-correct
//                  process, with per-destination send omissions on its
//                  final step (FaultAction::kCrashProcess extends the
//                  effective FailurePlan);
//   * corrupt   -- a buffered message is rewritten in place through the
//                  seeded Byzantine mutator (FaultAction::kCorruptMessage)
//                  and delivered as its forged self;
//   * equivocate - a buffered broadcast is forked into per-receiver
//                  divergent variants (FaultAction::kEquivocate): the
//                  sender becomes a Byzantine equivocator.
//
// Byzantine injection is budgeted per victim *sender*: the profile caps
// the number of distinct Byzantine senders (max_byzantine, the f of the
// Bouzid-Imbs-Raynal grid; -1 = n-1 so at least one process stays
// honest) and the fault events charged to each (max_faults_per_victim).
//
// All decisions derive from the profile's seed; iteration is over
// buffer order and process-id order only.  The injected fault events
// ride inside the StepChoice, are recorded into the Run and are
// serialized by sim/serialize.cpp, so a chaos run replays bit-
// identically through the ordinary ksa-verify DeterminismAuditor.
//
// In guard mode (ChaosProfile::Mode::kAdmissible) the injector promises
// an admissible run: drops aimed at correct destinations are converted
// into bounded delays, and once the base scheduler stops, a fair
// round-robin drain delivers everything still buffered and realizes
// every pending planned crash.  In havoc mode the drops are real; the
// resulting run violates eventual delivery and check_admissibility
// reports exactly that.

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>

#include "chaos/profile.hpp"
#include "sim/scheduler.hpp"
#include "sim/schedulers.hpp"

namespace ksa::chaos {

/// What the injector actually did; reported next to sweep results and
/// used by tests to confirm the dice were live.
struct ChaosStats {
    int drops = 0;          ///< kDropMessage faults issued
    int duplicates = 0;     ///< kDuplicateMessage faults issued
    int delays = 0;         ///< messages withheld (incl. guard-converted drops)
    int bursts = 0;         ///< delay bursts started
    int crashes = 0;        ///< kCrashProcess faults issued
    int corruptions = 0;    ///< kCorruptMessage faults issued
    int equivocations = 0;  ///< kEquivocate faults issued

    int total_faults() const {
        return drops + duplicates + crashes + corruptions + equivocations;
    }
    std::string to_string() const;
};

/// See file comment.
class FaultInjector final : public Scheduler {
public:
    /// Wraps `inner` (borrowed; must outlive the injector).  Validates
    /// the profile.
    FaultInjector(Scheduler& inner, ChaosProfile profile);

    std::optional<StepChoice> next(const SystemView& view) override;

    /// `<inner>+chaos(<profile>)`, so archived runs name their chaos
    /// configuration.
    std::string name() const override;

    const ChaosStats& stats() const { return stats_; }
    const ChaosProfile& profile() const { return profile_; }

private:
    /// Rolls a per-mille chance deterministically.
    bool chance(int per_mille);
    /// A uniform draw in [0, bound); bound >= 1.
    std::uint64_t draw(std::uint64_t bound);

    /// Perturbs one base-scheduler choice (see file comment).
    void perturb(StepChoice& choice, const SystemView& view);
    /// Possibly appends a staggered-crash fault to `choice`.
    void maybe_inject_crash(StepChoice& choice, const SystemView& view);
    /// True iff `sender` may be charged another Byzantine fault event
    /// under the victim-cap and per-victim budgets.
    bool may_victimize(ProcessId sender, int n) const;

    Scheduler* inner_;
    ChaosProfile profile_;
    std::mt19937_64 rng_;

    std::set<MessageId> dropped_;        ///< ids removed permanently
    std::map<MessageId, Time> held_;     ///< id -> earliest delivery time
    std::map<MessageId, int> dup_done_;  ///< clones issued per source id
    std::map<ProcessId, int> byz_victims_;  ///< Byzantine events per victim
    int burst_left_ = 0;                 ///< steps left in the active burst
    bool draining_ = false;              ///< base scheduler has stopped
    ChaosStats stats_;
    RoundRobinScheduler drain_;  ///< guard-mode completion schedule
};

}  // namespace ksa::chaos
