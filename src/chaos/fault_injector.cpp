#include "chaos/fault_injector.hpp"

#include <sstream>
#include <vector>

#include "check/contract.hpp"

namespace ksa::chaos {

std::string ChaosStats::to_string() const {
    std::ostringstream out;
    out << "drops=" << drops << " duplicates=" << duplicates
        << " delays=" << delays << " bursts=" << bursts
        << " crashes=" << crashes << " corruptions=" << corruptions
        << " equivocations=" << equivocations;
    return out.str();
}

FaultInjector::FaultInjector(Scheduler& inner, ChaosProfile profile)
    : inner_(&inner), profile_(profile), rng_(profile.seed) {
    profile_.validate();
}

std::string FaultInjector::name() const {
    return inner_->name() + "+chaos(" + profile_.describe() + ")";
}

bool FaultInjector::chance(int per_mille) {
    if (per_mille <= 0) return false;
    return static_cast<int>(rng_() % 1000) < per_mille;
}

std::uint64_t FaultInjector::draw(std::uint64_t bound) {
    KSA_REQUIRE(bound >= 1, "FaultInjector::draw: empty range");
    return rng_() % bound;
}

std::optional<StepChoice> FaultInjector::next(const SystemView& view) {
    if (!draining_) {
        std::optional<StepChoice> choice = inner_->next(view);
        if (choice) {
            perturb(*choice, view);
            return choice;
        }
        // The base adversary is done.  Guard or havoc, we finish with a
        // fair round-robin drain: it delivers everything still buffered
        // to correct processes (including messages this injector
        // withheld) and steps every process whose planned or injected
        // crash is not yet realized.  Messages *dropped* earlier are
        // gone from the buffers, so in havoc mode the drain does not
        // repair the damage -- the run ends inadmissible, as intended.
        draining_ = true;
    }
    return drain_.next(view);
}

void FaultInjector::perturb(StepChoice& choice, const SystemView& view) {
    const ProcessId p = choice.process;
    const Time now = view.now();

    // Per-step burst bookkeeping: during a burst nothing is delivered
    // (a transient total partition), modelled as per-message delays.
    if (burst_left_ == 0 && chance(profile_.burst_per_mille)) {
        burst_left_ = profile_.burst_len;
        ++stats_.bursts;
    }
    const bool burst = burst_left_ > 0;
    if (burst) --burst_left_;

    // The ids the base scheduler wants delivered in this step.
    std::vector<MessageId> candidates;
    if (choice.deliver_all) {
        for (const Message& m : view.buffer(p)) candidates.push_back(m.id);
    } else {
        candidates = choice.deliver;
    }
    choice.deliver_all = false;
    choice.deliver.clear();

    // Destinations already faulty under the effective plan may lose
    // messages without violating eventual delivery (admissibility binds
    // correct receivers only), so guard mode allows real drops to them.
    const bool dest_faulty = view.plan().is_faulty(p);

    for (MessageId id : candidates) {
        // Stale references to messages dropped in earlier steps (the
        // base scheduler cannot know) are silently skipped.
        if (dropped_.count(id) != 0) continue;

        // Withheld messages: still held, or due for release.  A released
        // message is delivered unconditionally -- re-rolling the dice on
        // it could chain delays unboundedly.
        auto held = held_.find(id);
        if (held != held_.end()) {
            if (now < held->second) continue;
            held_.erase(held);
            choice.deliver.push_back(id);
            continue;
        }

        // -- Byzantine corruption / equivocation ----------------------
        // Only originals are forged (nesting derived-id schemes is
        // banned by the System), and only senders within the victim-cap
        // budgets.  The sender is looked up in the live buffer of p.
        if (!is_injected_message_id(id) &&
            (stats_.corruptions < profile_.max_corruptions ||
             stats_.equivocations < profile_.max_equivocations)) {
            ProcessId sender = 0;
            for (const Message& m : view.buffer(p))
                if (m.id == id) {
                    sender = m.from;
                    break;
                }
            if (sender != 0 && may_victimize(sender, view.n())) {
                if (stats_.corruptions < profile_.max_corruptions &&
                    chance(profile_.corrupt_per_mille)) {
                    FaultAction a;
                    a.kind = FaultAction::Kind::kCorruptMessage;
                    a.message = id;
                    a.corrupt_seed = rng_();
                    choice.faults.push_back(a);
                    ++byz_victims_[sender];
                    ++stats_.corruptions;
                    // The forgery replaces the original in place;
                    // deliver it under its forged id right away.
                    choice.deliver.push_back(corrupted_message_id(id));
                    continue;
                }
                if (stats_.equivocations < profile_.max_equivocations &&
                    chance(profile_.equivocate_per_mille)) {
                    FaultAction a;
                    a.kind = FaultAction::Kind::kEquivocate;
                    a.message = id;
                    a.corrupt_seed = rng_();
                    choice.faults.push_back(a);
                    ++byz_victims_[sender];
                    ++stats_.equivocations;
                    // p receives its own divergent variant; the other
                    // receivers' variants sit in their buffers and are
                    // delivered by later steps (or the drain).
                    choice.deliver.push_back(equivocated_message_id(id, p));
                    continue;
                }
            }
        }

        // -- drop ------------------------------------------------------
        if (stats_.drops < profile_.max_drops &&
            chance(profile_.drop_per_mille)) {
            if (profile_.mode == ChaosProfile::Mode::kHavoc || dest_faulty) {
                FaultAction a;
                a.kind = FaultAction::Kind::kDropMessage;
                a.message = id;
                choice.faults.push_back(a);
                dropped_.insert(id);
                ++stats_.drops;
                continue;
            }
            // Guard: a loss aimed at a correct destination becomes a
            // bounded delay instead.
            held_[id] = now + 1 + static_cast<Time>(draw(
                                      static_cast<std::uint64_t>(
                                          profile_.max_delay)));
            ++stats_.delays;
            continue;
        }

        // -- duplicate (the original is still deliverable below) -------
        if (stats_.duplicates < profile_.max_duplicates &&
            !is_injected_message_id(id) &&
            dup_done_[id] + 1 < static_cast<int>(kMaxDuplicatesPerMessage) &&
            chance(profile_.duplicate_per_mille)) {
            FaultAction a;
            a.kind = FaultAction::Kind::kDuplicateMessage;
            a.message = id;
            choice.faults.push_back(a);
            ++dup_done_[id];
            ++stats_.duplicates;
        }

        // -- delay -----------------------------------------------------
        if (burst || chance(profile_.delay_per_mille)) {
            held_[id] = now + 1 + static_cast<Time>(draw(
                                      static_cast<std::uint64_t>(
                                          profile_.max_delay)));
            ++stats_.delays;
            continue;
        }

        choice.deliver.push_back(id);
    }

    maybe_inject_crash(choice, view);
}

bool FaultInjector::may_victimize(ProcessId sender, int n) const {
    const auto it = byz_victims_.find(sender);
    if (it != byz_victims_.end())
        return it->second < profile_.max_faults_per_victim;
    const int cap =
        profile_.max_byzantine < 0 ? n - 1 : profile_.max_byzantine;
    return static_cast<int>(byz_victims_.size()) < cap;
}

void FaultInjector::maybe_inject_crash(StepChoice& choice,
                                       const SystemView& view) {
    if (stats_.crashes >= profile_.max_injected_crashes) return;
    if (!chance(profile_.crash_per_mille)) return;

    const int n = view.n();
    const int cap = profile_.max_total_faulty < 0 ? n - 1
                                                  : profile_.max_total_faulty;
    if (static_cast<int>(view.plan().faulty().size()) >= cap) return;

    // Victims: correct so far under the effective plan.  (A process that
    // is planned-faulty cannot be crashed again; System::apply_fault
    // enforces this.)
    std::vector<ProcessId> victims;
    for (ProcessId q = 1; q <= n; ++q)
        if (!view.plan().is_faulty(q) && !view.crashed(q)) victims.push_back(q);
    if (victims.empty()) return;

    FaultAction a;
    a.kind = FaultAction::Kind::kCrashProcess;
    a.process = victims[draw(victims.size())];
    for (ProcessId q = 1; q <= n; ++q)
        if (q != a.process && chance(profile_.crash_omission_per_mille))
            a.omit_to.insert(q);
    choice.faults.push_back(a);
    ++stats_.crashes;
}

}  // namespace ksa::chaos
