#include "chaos/profile.hpp"

#include <sstream>

#include "check/contract.hpp"

namespace ksa::chaos {

namespace {

void check_per_mille(int v, const char* what) {
    if (v < 0 || v > 1000) {
        std::ostringstream out;
        out << "ChaosProfile: " << what << " = " << v
            << " is not a per-mille value in [0, 1000]";
        throw UsageError(out.str());
    }
}

}  // namespace

void ChaosProfile::validate() const {
    check_per_mille(drop_per_mille, "drop_per_mille");
    check_per_mille(duplicate_per_mille, "duplicate_per_mille");
    check_per_mille(delay_per_mille, "delay_per_mille");
    check_per_mille(corrupt_per_mille, "corrupt_per_mille");
    check_per_mille(equivocate_per_mille, "equivocate_per_mille");
    check_per_mille(burst_per_mille, "burst_per_mille");
    check_per_mille(crash_per_mille, "crash_per_mille");
    check_per_mille(crash_omission_per_mille, "crash_omission_per_mille");
    require(max_delay >= 1, "ChaosProfile: max_delay must be >= 1");
    require(burst_len >= 1, "ChaosProfile: burst_len must be >= 1");
    require(max_drops >= 0, "ChaosProfile: max_drops must be >= 0");
    require(max_duplicates >= 0, "ChaosProfile: max_duplicates must be >= 0");
    require(max_injected_crashes >= 0,
            "ChaosProfile: max_injected_crashes must be >= 0");
    require(max_total_faulty >= -1,
            "ChaosProfile: max_total_faulty must be >= -1");
    require(crash_per_mille == 0 || max_injected_crashes > 0,
            "ChaosProfile: crash_per_mille > 0 needs max_injected_crashes > 0");
    require(max_corruptions >= 0, "ChaosProfile: max_corruptions must be >= 0");
    require(max_equivocations >= 0,
            "ChaosProfile: max_equivocations must be >= 0");
    require(max_byzantine >= -1, "ChaosProfile: max_byzantine must be >= -1");
    require(max_faults_per_victim >= 1,
            "ChaosProfile: max_faults_per_victim must be >= 1");
    require(corrupt_per_mille == 0 || max_corruptions > 0,
            "ChaosProfile: corrupt_per_mille > 0 needs max_corruptions > 0");
    require(equivocate_per_mille == 0 || max_equivocations > 0,
            "ChaosProfile: equivocate_per_mille > 0 needs "
            "max_equivocations > 0");
    require((corrupt_per_mille == 0 && equivocate_per_mille == 0) ||
                max_byzantine != 0,
            "ChaosProfile: Byzantine rates > 0 need max_byzantine != 0");
}

std::string to_string(ChaosProfile::Mode mode) {
    return mode == ChaosProfile::Mode::kAdmissible ? "guard" : "havoc";
}

std::string ChaosProfile::describe() const {
    std::ostringstream out;
    out << "seed=" << seed << ",mode=" << to_string(mode)
        << ",drop=" << drop_per_mille << ",dup=" << duplicate_per_mille
        << ",delay=" << delay_per_mille;
    if (burst_per_mille > 0) out << ",burst=" << burst_per_mille;
    if (crash_per_mille > 0)
        out << ",crash=" << crash_per_mille << "x" << max_injected_crashes;
    if (corrupt_per_mille > 0 || equivocate_per_mille > 0)
        out << ",corrupt=" << corrupt_per_mille
            << ",equiv=" << equivocate_per_mille << ",byz=" << max_byzantine;
    return out.str();
}

ChaosProfile guarded_profile(std::uint64_t seed) {
    ChaosProfile p;
    p.seed = seed;
    p.mode = ChaosProfile::Mode::kAdmissible;
    p.drop_per_mille = 60;
    p.duplicate_per_mille = 60;
    p.delay_per_mille = 150;
    p.burst_per_mille = 15;
    return p;
}

ChaosProfile havoc_profile(std::uint64_t seed) {
    ChaosProfile p;
    p.seed = seed;
    p.mode = ChaosProfile::Mode::kHavoc;
    p.drop_per_mille = 250;
    p.duplicate_per_mille = 60;
    p.delay_per_mille = 100;
    p.burst_per_mille = 10;
    return p;
}

ChaosProfile byzantine_profile(std::uint64_t seed, int max_victims) {
    ChaosProfile p;
    p.seed = seed;
    p.mode = ChaosProfile::Mode::kAdmissible;
    p.drop_per_mille = 0;
    p.duplicate_per_mille = 40;
    p.delay_per_mille = 120;
    p.burst_per_mille = 10;
    p.max_byzantine = max_victims;
    if (max_victims != 0) {
        p.corrupt_per_mille = 180;
        p.equivocate_per_mille = 120;
        p.max_corruptions = 12;
        p.max_equivocations = 8;
    }
    return p;
}

}  // namespace ksa::chaos
