#pragma once
// Chaos profiles: the knobs of the fault-injection adversary.
//
// A ChaosProfile is a small, fully seeded description of *how much* and
// *what kind of* channel/process misbehavior the FaultInjector layers on
// top of a base schedule.  Profiles are value types: the same profile
// over the same base scheduler yields bit-identical runs, which is what
// makes chaos runs first-class citizens of the ksa-verify determinism
// audits.
//
// Two guard modes (Section II's MASYNC admissibility is the dividing
// line):
//
//   * kAdmissible -- injection is constrained so the produced run stays
//     admissible: message "drops" aimed at correct destinations are
//     converted into bounded delays, duplicates are delivered
//     eventually, and injected crashes realize their (extended) crash
//     plan exactly.  Used to stress possibility results: a correct
//     algorithm must shrug all of it off.
//   * kHavoc -- injection is unconstrained: permanent losses to correct
//     destinations are allowed.  The produced runs are deliberately
//     inadmissible; the point is verifying that the admissibility
//     checker and the failure-detector validators *flag* them rather
//     than silently accepting garbage executions.
//
// All probabilities are integer per-mille values (0..1000) drawn against
// a seeded std::mt19937_64; no floating point is involved, so profiles
// hash/compare/replay identically everywhere.

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace ksa::chaos {

/// See file comment.
struct ChaosProfile {
    enum class Mode {
        kAdmissible,  ///< guard on: injected faults keep the run admissible
        kHavoc,       ///< guard off: permanent losses allowed
    };

    /// RNG seed; every random decision of the injector derives from it.
    std::uint64_t seed = 1;
    Mode mode = Mode::kAdmissible;

    // -- per-message dice (per-mille, rolled per buffered message) ----
    int drop_per_mille = 40;       ///< permanent loss (guard: see above)
    int duplicate_per_mille = 40;  ///< clone into the destination buffer
    int delay_per_mille = 120;     ///< withhold for a bounded time
    int corrupt_per_mille = 0;     ///< Byzantine in-place payload rewrite
    int equivocate_per_mille = 0;  ///< Byzantine per-receiver divergence

    // -- per-step dice ------------------------------------------------
    int burst_per_mille = 10;  ///< start a delay burst (nothing delivered)
    int crash_per_mille = 0;   ///< inject a staggered mid-run crash

    /// Per-destination chance that the final step of an injected crash
    /// omits its send (building the paper's send-omission failure mode).
    int crash_omission_per_mille = 300;

    // -- bounds (keep every chaos run finite and replayable) ----------
    Time max_delay = 12;   ///< longest withholding of a single message
    int burst_len = 4;     ///< steps a delay burst lasts
    int max_drops = 16;    ///< total kDropMessage budget
    int max_duplicates = 8;  ///< total kDuplicateMessage budget
    int max_injected_crashes = 0;  ///< staggered crashes beyond the plan
    /// Cap on |faulty| (planned + injected).  -1 means n-1 (at least one
    /// process stays correct, as every model in the paper requires).
    int max_total_faulty = -1;

    // -- Byzantine budgets (keep the realized victim pattern bounded) --
    int max_corruptions = 0;    ///< total kCorruptMessage budget
    int max_equivocations = 0;  ///< total kEquivocate budget
    /// Cap on the number of *distinct* Byzantine victim senders -- the f
    /// of the Bouzid-Imbs-Raynal grid.  -1 means n-1 (at least one
    /// process stays honest); 0 disables Byzantine injection entirely.
    int max_byzantine = 0;
    /// Per-victim cap on Byzantine fault events: once a sender is chosen
    /// as a victim, at most this many corruptions + equivocations are
    /// charged to it.
    int max_faults_per_victim = 4;

    /// Throws UsageError when a knob is out of range (negative rate, a
    /// per-mille above 1000, a non-positive bound with a positive rate).
    void validate() const;

    /// Compact one-line rendering used in scheduler names and reports,
    /// e.g. `seed=7,mode=guard,drop=40,dup=40,delay=120`.
    std::string describe() const;
};

/// A profile that exercises every admissible fault class with moderate
/// rates; the workhorse of the resilience sweep.
ChaosProfile guarded_profile(std::uint64_t seed);

/// An unconstrained profile (kHavoc) with aggressive drop rates, used to
/// verify the admissibility checker flags the damage.
ChaosProfile havoc_profile(std::uint64_t seed);

/// A guard-mode profile with Byzantine corruption/equivocation enabled
/// on top of moderate duplication and delays, capped at `max_victims`
/// distinct Byzantine senders (-1 = n-1, 0 = none).  Drops are disabled:
/// the Byzantine adversary lies on live channels rather than cutting
/// them, which keeps its runs admissible and squarely about the value
/// faults.
// ksa: thread_safe -- pure value construction, no shared state.
ChaosProfile byzantine_profile(std::uint64_t seed, int max_victims);

std::string to_string(ChaosProfile::Mode mode);

}  // namespace ksa::chaos
