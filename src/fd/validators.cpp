#include "fd/validators.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace ksa::fd {

namespace {

bool disjoint(const std::vector<ProcessId>& a, const std::vector<ProcessId>& b) {
    for (ProcessId x : a)
        if (std::find(b.begin(), b.end(), x) != b.end()) return false;
    return true;
}

/// Distinct quorum outputs per process, in event order.
std::map<ProcessId, std::vector<std::vector<ProcessId>>> quorums_by_process(
        const Run& run) {
    std::map<ProcessId, std::vector<std::vector<ProcessId>>> out;
    for (const FdEvent& e : run.fd_history) {
        auto& v = out[e.process];
        if (std::find(v.begin(), v.end(), e.sample.quorum) == v.end())
            v.push_back(e.sample.quorum);
    }
    return out;
}

/// Searches for k+1 pairwise-disjoint quorum outputs at k+1 distinct
/// processes (an Intersection violation).  Returns the witness processes
/// or empty if none exists.
std::vector<ProcessId> find_disjoint_family(
        const std::map<ProcessId, std::vector<std::vector<ProcessId>>>& by_proc,
        int family_size) {
    std::vector<ProcessId> procs;
    for (const auto& [p, _] : by_proc) procs.push_back(p);

    std::vector<ProcessId> chosen_procs;
    std::vector<const std::vector<ProcessId>*> chosen_quorums;

    std::function<bool(std::size_t)> rec = [&](std::size_t start) -> bool {
        if (static_cast<int>(chosen_procs.size()) == family_size) return true;
        // Prune: not enough processes left.
        if (procs.size() - start <
            static_cast<std::size_t>(family_size) - chosen_procs.size())
            return false;
        for (std::size_t i = start; i < procs.size(); ++i) {
            ProcessId p = procs[i];
            for (const auto& q : by_proc.at(p)) {
                bool ok = true;
                for (const auto* prev : chosen_quorums)
                    if (!disjoint(*prev, q)) {
                        ok = false;
                        break;
                    }
                if (!ok) continue;
                chosen_procs.push_back(p);
                chosen_quorums.push_back(&q);
                if (rec(i + 1)) return true;
                chosen_procs.pop_back();
                chosen_quorums.pop_back();
            }
        }
        return false;
    };
    if (rec(0)) return chosen_procs;
    return {};
}

/// Last recorded sample of each process.
std::map<ProcessId, FdSample> final_samples(const Run& run) {
    std::map<ProcessId, FdSample> out;
    for (const FdEvent& e : run.fd_history) out[e.process] = e.sample;
    return out;
}

std::string render_set(const std::vector<ProcessId>& s) {
    std::ostringstream out;
    out << '{';
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (i > 0) out << ',';
        out << s[i];
    }
    out << '}';
    return out.str();
}

}  // namespace

void FdValidation::merge(const FdValidation& other) {
    if (!other.ok) ok = false;
    violations.insert(violations.end(), other.violations.begin(),
                      other.violations.end());
}

FdValidation validate_sigma_k(const Run& run, int k) {
    FdValidation v;
    require(k >= 1, "validate_sigma_k: k must be >= 1");

    // Quorums must never be empty (an empty quorum trivially breaks
    // Intersection and can never satisfy a quorum-based algorithm).
    for (const FdEvent& e : run.fd_history)
        if (e.sample.quorum.empty()) {
            std::ostringstream out;
            out << "empty quorum at p" << e.process << " t=" << e.time;
            v.fail(out.str());
            return v;
        }

    // Intersection.
    auto by_proc = quorums_by_process(run);
    if (static_cast<int>(by_proc.size()) >= k + 1) {
        auto witness = find_disjoint_family(by_proc, k + 1);
        if (!witness.empty()) {
            std::ostringstream out;
            out << "Sigma_" << k << " Intersection violated: " << k + 1
                << " pairwise-disjoint quorums at processes "
                << render_set(witness);
            v.fail(out.str());
        }
    }

    // Liveness (finite proxy): final sample of each correct querying
    // process excludes the planned faulty set.
    const std::set<ProcessId> faulty = run.plan.faulty();
    for (const auto& [p, sample] : final_samples(run)) {
        if (run.plan.is_faulty(p)) continue;
        for (ProcessId q : sample.quorum)
            if (faulty.count(q) != 0) {
                std::ostringstream out;
                out << "Sigma_" << k << " Liveness violated: final quorum of p"
                    << p << " contains faulty p" << q;
                v.fail(out.str());
            }
    }
    return v;
}

FdValidation validate_omega_k(const Run& run, int k) {
    FdValidation v;
    require(k >= 1, "validate_omega_k: k must be >= 1");

    // Validity: size-k output at all processes and times.
    for (const FdEvent& e : run.fd_history)
        if (static_cast<int>(e.sample.leaders.size()) != k) {
            std::ostringstream out;
            out << "Omega_" << k << " Validity violated: |leaders|="
                << e.sample.leaders.size() << " at p" << e.process
                << " t=" << e.time;
            v.fail(out.str());
            return v;
        }

    // Eventual leadership (finite proxy): every correct querying process
    // has a constant suffix; suffixes agree; LD intersects correct set.
    std::map<ProcessId, std::vector<ProcessId>> last;
    for (const FdEvent& e : run.fd_history)
        if (!run.plan.is_faulty(e.process)) last[e.process] = e.sample.leaders;
    if (last.empty()) return v;  // vacuous: nobody correct ever queried

    const std::vector<ProcessId>& ld = last.begin()->second;
    for (const auto& [p, leaders] : last)
        if (leaders != ld) {
            std::ostringstream out;
            out << "Omega_" << k
                << " Eventual Leadership violated: final outputs differ, p"
                << last.begin()->first << "=" << render_set(ld) << " vs p" << p
                << "=" << render_set(leaders);
            v.fail(out.str());
            return v;
        }
    bool hits_correct = false;
    for (ProcessId p : ld)
        if (!run.plan.is_faulty(p)) hits_correct = true;
    if (!hits_correct) {
        std::ostringstream out;
        out << "Omega_" << k << " Eventual Leadership violated: LD "
            << render_set(ld) << " contains no correct process";
        v.fail(out.str());
    }
    return v;
}

FdValidation validate_sigma_omega_k(const Run& run, int k) {
    FdValidation v = validate_sigma_k(run, k);
    v.merge(validate_omega_k(run, k));
    return v;
}

FdValidation validate_partition_detector(
        const Run& run, const std::vector<std::vector<ProcessId>>& blocks,
        int k) {
    FdValidation v;
    require(static_cast<int>(blocks.size()) == k,
            "validate_partition_detector: need exactly k blocks");

    std::vector<int> block_of(run.n, -1);
    for (std::size_t b = 0; b < blocks.size(); ++b)
        for (ProcessId p : blocks[b]) block_of[p - 1] = static_cast<int>(b);

    const std::set<ProcessId> faulty = run.plan.faulty();

    // Per-block Sigma (= Sigma_1 inside <D_i>) conditions.
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        // Containment: live members only see members of their own block.
        std::vector<FdEvent> events;
        for (const FdEvent& e : run.fd_history)
            if (block_of[e.process - 1] == static_cast<int>(b))
                events.push_back(e);
        for (const FdEvent& e : events)
            for (ProcessId q : e.sample.quorum)
                if (block_of[q - 1] != static_cast<int>(b)) {
                    std::ostringstream out;
                    out << "Sigma'_k: quorum of p" << e.process << " (block "
                        << b << ") contains outsider p" << q;
                    v.fail(out.str());
                }
        // Intersection inside the block: every pair of samples at
        // distinct member processes intersects.
        for (std::size_t i = 0; i < events.size(); ++i)
            for (std::size_t j = i + 1; j < events.size(); ++j) {
                if (events[i].process == events[j].process) continue;
                if (disjoint(events[i].sample.quorum, events[j].sample.quorum)) {
                    std::ostringstream out;
                    out << "Sigma'_k: disjoint quorums inside block " << b
                        << " at p" << events[i].process << " and p"
                        << events[j].process;
                    v.fail(out.str());
                }
            }
        // Per-block liveness proxy.
        std::map<ProcessId, FdSample> last;
        for (const FdEvent& e : events) last[e.process] = e.sample;
        for (const auto& [p, sample] : last) {
            if (run.plan.is_faulty(p)) continue;
            for (ProcessId q : sample.quorum)
                if (faulty.count(q) != 0) {
                    std::ostringstream out;
                    out << "Sigma'_k: final quorum of correct p" << p
                        << " contains faulty p" << q;
                    v.fail(out.str());
                }
        }
    }

    // Omega'_k = Omega_k.
    v.merge(validate_omega_k(run, k));
    return v;
}

FdValidation lemma9_check(const Run& run,
                          const std::vector<std::vector<ProcessId>>& blocks,
                          int k) {
    FdValidation partition = validate_partition_detector(run, blocks, k);
    require(partition.ok,
            "lemma9_check: history is not a valid partition-detector history");
    return validate_sigma_omega_k(run, k);
}

}  // namespace ksa::fd
