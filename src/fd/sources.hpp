#pragma once
// Failure-detector building blocks.
//
// An FdSample has a quorum component (Sigma family, Definition 4) and a
// leader component (Omega family, Definition 5).  Oracles are composed
// from a QuorumSource and a LeaderSource so that the adversaries of the
// paper -- in particular the partition detector (Sigma'_k, Omega'_k) of
// Definition 7 -- can mix and match behaviours.  All sources are
// deterministic given the plan and the query context, so runs stay
// replayable.
//
// The validators in fd/validators.hpp re-check every recorded history
// against the class definitions, so a source that violated its class
// would be caught rather than silently producing an inadmissible run.

#include <functional>
#include <memory>
#include <vector>

#include "sim/failure_plan.hpp"
#include "sim/fd_oracle.hpp"
#include "sim/types.hpp"

namespace ksa::fd {

/// Produces the Sigma-family component of a sample.
class QuorumSource {
public:
    virtual ~QuorumSource() = default;
    virtual std::vector<ProcessId> quorum(const QueryContext& ctx) = 0;
    virtual std::string name() const = 0;
};

/// Produces the Omega-family component of a sample.
class LeaderSource {
public:
    virtual ~LeaderSource() = default;
    virtual std::vector<ProcessId> leaders(const QueryContext& ctx) = 0;
    virtual std::string name() const = 0;
};

/// The benign Sigma oracle: always outputs the planned correct set.
/// Trivially satisfies Intersection (all outputs are equal and
/// non-empty) and Liveness for every Sigma_k.
class CorrectSetQuorum final : public QuorumSource {
public:
    CorrectSetQuorum(int n, const FailurePlan& plan);
    std::vector<ProcessId> quorum(const QueryContext&) override {
        return correct_;
    }
    std::string name() const override { return "Sigma(correct-set)"; }

private:
    std::vector<ProcessId> correct_;
};

/// A realistic Sigma oracle without plan knowledge of the future: outputs
/// all processes that have not crashed *yet*.  Outputs form a decreasing
/// chain, hence pairwise intersect as long as one process is correct, and
/// liveness holds from the last realized crash on.
class AliveSetQuorum final : public QuorumSource {
public:
    explicit AliveSetQuorum(int n) : n_(n) {}
    std::vector<ProcessId> quorum(const QueryContext& ctx) override;
    std::string name() const override { return "Sigma(alive-set)"; }

private:
    int n_;
};

/// The Sigma'_k component of the partition detector (Definition 7):
/// given a partitioning {D_1, ..., D_k} of Pi, the output at a live
/// process p in D_i is a valid Sigma history *inside* <D_i> (we output
/// the planned-correct members of D_i, or the not-yet-crashed members of
/// D_i while it still contains faulty-but-live processes); a crashed
/// querier receives the whole set Pi, as the definition stipulates.
class BlockQuorum final : public QuorumSource {
public:
    BlockQuorum(int n, std::vector<std::vector<ProcessId>> blocks,
                const FailurePlan& plan);
    std::vector<ProcessId> quorum(const QueryContext& ctx) override;
    std::string name() const override { return "Sigma'_k(partition)"; }

private:
    int n_;
    std::vector<std::vector<ProcessId>> blocks_;
    std::vector<int> block_of_;  // index p-1 -> block index, -1 if none
    FailurePlan plan_;
};

/// An Omega_k source with explicit stabilization: before `gst` the output
/// is taken from the `pre` function (the adversary's choice; defaults to
/// the stable set), from `gst` on it is the fixed set `stable`.
/// `stable` must have size k and, for admissibility, intersect the
/// correct set; the validators check both.
class StableLeaders final : public LeaderSource {
public:
    using PreFn = std::function<std::vector<ProcessId>(const QueryContext&)>;

    StableLeaders(std::vector<ProcessId> stable, Time gst, PreFn pre = {});
    std::vector<ProcessId> leaders(const QueryContext& ctx) override;
    std::string name() const override { return "Omega_k(stable)"; }

private:
    std::vector<ProcessId> stable_;
    Time gst_;
    PreFn pre_;
};

/// The Omega'_k behaviour used in the Theorem 10 construction: before
/// gst, a process in block D_i sees a size-k leader set whose member
/// relevant to it lies inside D_i (so each block can make progress in
/// isolation, exactly like in the runs alpha_i of Lemma 12); from gst on
/// everybody sees the same stable set LD.
class BlockLeaders final : public LeaderSource {
public:
    BlockLeaders(int n, int k, std::vector<std::vector<ProcessId>> blocks,
                 const FailurePlan& plan, std::vector<ProcessId> stable,
                 Time gst);
    std::vector<ProcessId> leaders(const QueryContext& ctx) override;
    std::string name() const override { return "Omega'_k(partition)"; }

private:
    int n_;
    int k_;
    std::vector<std::vector<ProcessId>> blocks_;
    std::vector<int> block_of_;
    FailurePlan plan_;
    std::vector<ProcessId> stable_;
    Time gst_;
};

/// Glues a QuorumSource and a LeaderSource into one oracle.  Either may
/// be null, producing an empty component (for algorithms that use only
/// one family).
class ComposedOracle final : public FdOracle {
public:
    ComposedOracle(std::unique_ptr<QuorumSource> q,
                   std::unique_ptr<LeaderSource> l)
        : q_(std::move(q)), l_(std::move(l)) {}

    FdSample query(const QueryContext& ctx) override;
    std::string name() const override;

private:
    std::unique_ptr<QuorumSource> q_;
    std::unique_ptr<LeaderSource> l_;
};

/// Convenience factory: the benign (Sigma_k, Omega_k) oracle -- correct
/// set quorums, leaders stabilized on `stable` from the start.
std::unique_ptr<FdOracle> make_benign_sigma_omega(
        int n, const FailurePlan& plan, std::vector<ProcessId> stable_leaders);

/// Convenience factory: the partition detector (Sigma'_k, Omega'_k) of
/// Definition 7 for the given partitioning D_1..D_k, with leader
/// stabilization at `gst` on `stable`.
std::unique_ptr<FdOracle> make_partition_detector(
        int n, int k, std::vector<std::vector<ProcessId>> blocks,
        const FailurePlan& plan, std::vector<ProcessId> stable, Time gst);

}  // namespace ksa::fd
