#pragma once
// Failure-detector history validators.
//
// The simulator records every query into the run's FdHistory; these
// validators re-check the recorded history against the class definitions
// of the paper (Definitions 4, 5 and 7).  This is the safety net that
// makes the impossibility constructions trustworthy: a run produced by
// the Theorem 10 adversary is only accepted as a counterexample if its
// detector history is independently admissible for (Sigma_k, Omega_k).
//
// Eventual ("there exists a time t such that forever after...")
// properties are checked with their standard finite-prefix proxies, which
// are documented per check:
//   * Sigma liveness  -> the final sample of every correct querying
//     process excludes the realized faulty set;
//   * Omega eventual leadership -> every correct querying process has a
//     constant suffix of leader samples, all suffixes agree on one set
//     LD, and LD intersects the correct set.
// A run that is extended far enough past stabilization satisfies the
// proxy iff the infinite extension satisfies the definition.

#include <string>
#include <vector>

#include "sim/run.hpp"

namespace ksa::fd {

/// Outcome of a history validation.
struct FdValidation {
    bool ok = true;
    std::vector<std::string> violations;

    void fail(std::string what) {
        ok = false;
        violations.push_back(std::move(what));
    }
    /// Merges another validation into this one.
    void merge(const FdValidation& other);
};

/// Definition 4 (Sigma_k): Intersection -- among any k+1 recorded samples
/// at k+1 distinct processes some pair of quorums intersects -- and
/// Liveness (finite proxy above).  Exact Intersection checking is
/// exponential in k+1 and meant for the small systems the constructions
/// use (the search is pruned; distinct quorum outputs per process are
/// deduplicated first).
FdValidation validate_sigma_k(const Run& run, int k);

/// Definition 5 (Omega_k): Validity -- every sample's leader set has size
/// exactly k -- and Eventual Leadership (finite proxy above).
FdValidation validate_omega_k(const Run& run, int k);

/// Both components of (Sigma_k, Omega_k).
FdValidation validate_sigma_omega_k(const Run& run, int k);

/// Definition 7 (the partition detector (Sigma'_k, Omega'_k)) for the
/// given partitioning D_1..D_k of Pi: per block, quorum outputs of live
/// members stay inside the block, pairwise intersect across members, and
/// satisfy per-block liveness; the leader component must satisfy
/// Definition 5 (Omega'_k = Omega_k).
FdValidation validate_partition_detector(
        const Run& run, const std::vector<std::vector<ProcessId>>& blocks,
        int k);

/// Lemma 9, checked constructively: a history that validates as a
/// partition detector history for `blocks` must also validate as a
/// (Sigma_k, Omega_k) history.  Returns the (Sigma_k, Omega_k) validation
/// after asserting the partition validation holds.
FdValidation lemma9_check(const Run& run,
                          const std::vector<std::vector<ProcessId>>& blocks,
                          int k);

}  // namespace ksa::fd
