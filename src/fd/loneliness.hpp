#pragma once
// The loneliness failure detector L and its equivalence with
// Sigma_{n-1}.
//
// The related-work section points at the authors' companion paper [2]
// (Biely, Robinson, Schmid, OPODIS'09), which introduced the generalized
// loneliness detector L(k) and proved it tight for k-set agreement; for
// k = n-1, L is equivalent to Sigma_{n-1} (Bonnet & Raynal [3]).  This
// module makes the equivalence executable:
//
//   L outputs a boolean "alone" per process and time with
//     (L1) some process never outputs true, and
//     (L2) if exactly one process is correct, it eventually outputs
//          true for ever;
//
//   * from a Sigma_{n-1} history, `alone := (quorum == {self})`
//     emulates L: n processes outputting singletons would be n pairwise
//     disjoint quorums at n processes, violating Intersection, so (L1)
//     holds; Liveness of Sigma shrinks the lone survivor's quorum to
//     {self}, so (L2) holds;
//   * from an L history, `quorum := alone ? {self} : Pi` emulates
//     Sigma_{n-1}: among any n quorum choices, either two are Pi-typed
//     (intersect), or one is Pi (intersects everything), or all n are
//     singletons -- impossible by (L1).
//
// Loneliness samples ride in FdSample.quorum: {self} encodes true,
// anything else false.  The validators below check (L1)/(L2) on
// recorded histories with the same finite-prefix proxies used in
// fd/validators.hpp.

#include "fd/transform.hpp"
#include "fd/validators.hpp"
#include "sim/run.hpp"

namespace ksa::fd {

/// Is this sample an "alone" output for `querier`?
bool is_alone_sample(const FdSample& sample, ProcessId querier);

/// Validates a history as a loneliness (L) history: (L1) at least one
/// process never output alone; (L2, finite proxy) if exactly one process
/// is correct and it queried, its final sample is alone.
FdValidation validate_loneliness(const Run& run);

/// Rewrite implementing L from Sigma_{n-1}: singleton-self quorums stay,
/// everything else is normalized to the full set (so downstream
/// consumers see a clean alone/not-alone signal).
SampleRewrite loneliness_from_sigma(int n);

/// Rewrite implementing Sigma_{n-1} from L: alone -> {self},
/// not-alone -> Pi.
SampleRewrite sigma_from_loneliness(int n);

/// Executable equivalence check: given a run whose history validates for
/// Sigma_{n-1}, the loneliness rewrite must validate as L, and rewriting
/// back must validate as Sigma_{n-1} again.  Returns the merged verdict.
FdValidation check_sigma_loneliness_equivalence(const Run& run);

}  // namespace ksa::fd
