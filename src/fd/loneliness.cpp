#include "fd/loneliness.hpp"

#include <map>
#include <set>
#include <sstream>

namespace ksa::fd {

bool is_alone_sample(const FdSample& sample, ProcessId querier) {
    return sample.quorum.size() == 1 && sample.quorum.front() == querier;
}

FdValidation validate_loneliness(const Run& run) {
    FdValidation v;

    // (L1): at least one process never output alone.
    std::set<ProcessId> ever_alone;
    for (const FdEvent& e : run.fd_history)
        if (is_alone_sample(e.sample, e.process)) ever_alone.insert(e.process);
    if (static_cast<int>(ever_alone.size()) >= run.n) {
        std::ostringstream out;
        out << "L1 violated: all " << run.n
            << " processes output alone at some time";
        v.fail(out.str());
    }

    // (L2, finite proxy): a sole correct process ends up alone.
    std::vector<ProcessId> correct = run.plan.correct(run.n);
    if (correct.size() == 1) {
        const ProcessId survivor = correct.front();
        const FdEvent* last = nullptr;
        for (const FdEvent& e : run.fd_history)
            if (e.process == survivor) last = &e;
        if (last != nullptr && !is_alone_sample(last->sample, survivor)) {
            std::ostringstream out;
            out << "L2 violated: sole correct p" << survivor
                << " not alone in its final sample";
            v.fail(out.str());
        }
    }
    return v;
}

SampleRewrite loneliness_from_sigma(int n) {
    return [n](const FdEvent& e) {
        FdSample s = e.sample;
        if (!is_alone_sample(s, e.process)) {
            s.quorum.resize(n);
            for (int i = 0; i < n; ++i) s.quorum[i] = i + 1;
        }
        return s;
    };
}

SampleRewrite sigma_from_loneliness(int n) {
    return [n](const FdEvent& e) {
        FdSample s = e.sample;
        if (is_alone_sample(s, e.process)) return s;  // alone -> {self}
        s.quorum.resize(n);
        for (int i = 0; i < n; ++i) s.quorum[i] = i + 1;
        return s;
    };
}

FdValidation check_sigma_loneliness_equivalence(const Run& run) {
    FdValidation v = validate_sigma_k(run, run.n - 1);
    require(v.ok,
            "check_sigma_loneliness_equivalence: input history is not a "
            "valid Sigma_{n-1} history");

    Run as_l = transform_history(run, loneliness_from_sigma(run.n));
    v.merge(validate_loneliness(as_l));

    Run back = transform_history(as_l, sigma_from_loneliness(run.n));
    v.merge(validate_sigma_k(back, run.n - 1));
    return v;
}

}  // namespace ksa::fd
