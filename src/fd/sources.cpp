#include "fd/sources.hpp"

#include <algorithm>

namespace ksa::fd {

namespace {

std::vector<int> index_blocks(int n,
                              const std::vector<std::vector<ProcessId>>& blocks,
                              const char* who) {
    std::vector<int> block_of(n, -1);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        for (ProcessId p : blocks[b]) {
            require(p >= 1 && p <= n,
                    std::string(who) + ": process id out of range");
            require(block_of[p - 1] == -1,
                    std::string(who) + ": blocks must be disjoint");
            block_of[p - 1] = static_cast<int>(b);
        }
    }
    return block_of;
}

}  // namespace

CorrectSetQuorum::CorrectSetQuorum(int n, const FailurePlan& plan)
    : correct_(plan.correct(n)) {
    require(!correct_.empty(),
            "CorrectSetQuorum: at least one process must be correct");
}

std::vector<ProcessId> AliveSetQuorum::quorum(const QueryContext& ctx) {
    std::vector<ProcessId> out;
    for (ProcessId p = 1; p <= n_; ++p)
        if (std::find(ctx.crashed_so_far.begin(), ctx.crashed_so_far.end(),
                      p) == ctx.crashed_so_far.end())
            out.push_back(p);
    return out;
}

BlockQuorum::BlockQuorum(int n, std::vector<std::vector<ProcessId>> blocks,
                         const FailurePlan& plan)
    : n_(n), blocks_(std::move(blocks)), plan_(plan) {
    block_of_ = index_blocks(n, blocks_, "BlockQuorum");
}

std::vector<ProcessId> BlockQuorum::quorum(const QueryContext& ctx) {
    // A crashed querier gets Pi (Definition 7); in practice a crashed
    // process never queries, but the branch keeps the oracle total.
    if (std::find(ctx.crashed_so_far.begin(), ctx.crashed_so_far.end(),
                  ctx.querier) != ctx.crashed_so_far.end()) {
        std::vector<ProcessId> all(n_);
        for (int i = 0; i < n_; ++i) all[i] = i + 1;
        return all;
    }
    const int b = block_of_[ctx.querier - 1];
    require(b >= 0, "BlockQuorum: querier belongs to no block");
    // Valid Sigma history inside <D_b>: the planned-correct members of
    // the block if any exist; otherwise (all members faulty) the members
    // that have not crashed yet -- outputs then form a decreasing chain,
    // which still pairwise intersects while anybody in the block is live.
    std::vector<ProcessId> out;
    for (ProcessId p : blocks_[b])
        if (!plan_.is_faulty(p)) out.push_back(p);
    if (out.empty()) {
        for (ProcessId p : blocks_[b])
            if (std::find(ctx.crashed_so_far.begin(),
                          ctx.crashed_so_far.end(),
                          p) == ctx.crashed_so_far.end())
                out.push_back(p);
    }
    std::sort(out.begin(), out.end());
    return out;
}

StableLeaders::StableLeaders(std::vector<ProcessId> stable, Time gst, PreFn pre)
    : stable_(std::move(stable)), gst_(gst), pre_(std::move(pre)) {
    require(!stable_.empty(), "StableLeaders: stable set must be non-empty");
    std::sort(stable_.begin(), stable_.end());
}

std::vector<ProcessId> StableLeaders::leaders(const QueryContext& ctx) {
    if (ctx.now >= gst_ || !pre_) return stable_;
    std::vector<ProcessId> out = pre_(ctx);
    std::sort(out.begin(), out.end());
    return out;
}

BlockLeaders::BlockLeaders(int n, int k,
                           std::vector<std::vector<ProcessId>> blocks,
                           const FailurePlan& plan,
                           std::vector<ProcessId> stable, Time gst)
    : n_(n),
      k_(k),
      blocks_(std::move(blocks)),
      plan_(plan),
      stable_(std::move(stable)),
      gst_(gst) {
    require(static_cast<int>(stable_.size()) == k_,
            "BlockLeaders: stable set must have size k (Omega_k validity)");
    block_of_ = index_blocks(n, blocks_, "BlockLeaders");
    std::sort(stable_.begin(), stable_.end());
}

std::vector<ProcessId> BlockLeaders::leaders(const QueryContext& ctx) {
    if (ctx.now >= gst_) return stable_;
    const int b = block_of_[ctx.querier - 1];
    if (b < 0) return stable_;
    // Before stabilization: the querier's block sees one leader inside
    // its own block (the smallest live member), padded with the smallest
    // member of every other block to keep the size-k validity property.
    std::vector<ProcessId> out;
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        ProcessId lead = 0;
        for (ProcessId p : blocks_[i]) {
            const bool crashed =
                std::find(ctx.crashed_so_far.begin(),
                          ctx.crashed_so_far.end(), p) !=
                ctx.crashed_so_far.end();
            if (!crashed) {
                lead = p;
                break;
            }
        }
        if (lead == 0) lead = blocks_[i].front();
        out.push_back(lead);
        if (static_cast<int>(out.size()) == k_) break;
    }
    while (static_cast<int>(out.size()) < k_)
        out.push_back(stable_[out.size() % stable_.size()]);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    // Re-pad after dedup with arbitrary further ids to keep |output| = k.
    for (ProcessId p = 1; static_cast<int>(out.size()) < k_ && p <= n_; ++p)
        if (!std::binary_search(out.begin(), out.end(), p)) {
            out.insert(std::lower_bound(out.begin(), out.end(), p), p);
        }
    return out;
}

FdSample ComposedOracle::query(const QueryContext& ctx) {
    FdSample s;
    if (q_) s.quorum = q_->quorum(ctx);
    if (l_) s.leaders = l_->leaders(ctx);
    return s;
}

std::string ComposedOracle::name() const {
    std::string out = "(";
    out += q_ ? q_->name() : "-";
    out += ",";
    out += l_ ? l_->name() : "-";
    out += ")";
    return out;
}

std::unique_ptr<FdOracle> make_benign_sigma_omega(
        int n, const FailurePlan& plan, std::vector<ProcessId> stable_leaders) {
    return std::make_unique<ComposedOracle>(
        std::make_unique<CorrectSetQuorum>(n, plan),
        std::make_unique<StableLeaders>(std::move(stable_leaders), 0));
}

std::unique_ptr<FdOracle> make_partition_detector(
        int n, int k, std::vector<std::vector<ProcessId>> blocks,
        const FailurePlan& plan, std::vector<ProcessId> stable, Time gst) {
    auto quorums = std::make_unique<BlockQuorum>(n, blocks, plan);
    auto leaders = std::make_unique<BlockLeaders>(n, k, std::move(blocks), plan,
                                                  std::move(stable), gst);
    return std::make_unique<ComposedOracle>(std::move(quorums),
                                            std::move(leaders));
}

}  // namespace ksa::fd
