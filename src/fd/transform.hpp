#pragma once
// Failure-detector transformations and comparison (Section II-C).
//
// A detector D' is *weaker* than D when an algorithm can maintain output
// variables emulating admissible D' histories from D queries.  All the
// transformations the paper needs are stateless sample rewrites, so the
// framework here is a history-rewriting functional plus validators-based
// admissibility checks:
//
//   * Lemma 9 -- (Sigma_k, Omega_k) is weaker than (Sigma'_k, Omega'_k) --
//     is witnessed by the identity rewrite: fd/validators.hpp's
//     lemma9_check() verifies every recorded partition history directly
//     against Definitions 4 and 5.
//   * The Theorem 10, condition (C) step -- from the constrained leader
//     oracle Gamma (whose stabilized set intersects the block D in
//     exactly two processes) one implements Omega_2 in the subsystem <D>
//     -- is witnessed by restrict_leaders_to().

#include <functional>

#include "sim/run.hpp"

namespace ksa::fd {

/// A stateless sample rewrite.
using SampleRewrite = std::function<FdSample(const FdEvent&)>;

/// Returns a copy of `run` whose failure-detector history (both the
/// FdHistory and the per-step records) is rewritten by `rewrite`.
/// Used to validate that the rewritten history is admissible for a
/// weaker class -- the executable form of "D transforms to D'".
Run transform_history(const Run& run, const SampleRewrite& rewrite);

/// Rewrite: keep only leaders inside `group`, then pad with the smallest
/// members of `group` up to size `k` (keeping Omega_k validity inside the
/// subsystem <group>).  With Gamma's guarantee that the stabilized leader
/// set intersects `group` in exactly two processes, this emulates Omega_2
/// in <group>.
SampleRewrite restrict_leaders_to(std::vector<ProcessId> group, int k);

/// Rewrite: replace the quorum component by its intersection with
/// `group` (Sigma restricted to a subsystem).
SampleRewrite restrict_quorums_to(std::vector<ProcessId> group);

}  // namespace ksa::fd
