#include "fd/transform.hpp"

#include <algorithm>

namespace ksa::fd {

Run transform_history(const Run& run, const SampleRewrite& rewrite) {
    Run out = run;
    for (FdEvent& e : out.fd_history) e.sample = rewrite(e);
    std::size_t idx = 0;
    for (StepRecord& s : out.steps) {
        if (!s.fd) continue;
        invariant(idx < out.fd_history.size(),
                  "transform_history: step/history mismatch");
        s.fd = out.fd_history[idx++].sample;
    }
    return out;
}

SampleRewrite restrict_leaders_to(std::vector<ProcessId> group, int k) {
    std::sort(group.begin(), group.end());
    return [group, k](const FdEvent& e) {
        FdSample s = e.sample;
        std::vector<ProcessId> kept;
        for (ProcessId p : s.leaders)
            if (std::binary_search(group.begin(), group.end(), p))
                kept.push_back(p);
        for (ProcessId p : group) {
            if (static_cast<int>(kept.size()) >= k) break;
            if (std::find(kept.begin(), kept.end(), p) == kept.end())
                kept.push_back(p);
        }
        std::sort(kept.begin(), kept.end());
        if (static_cast<int>(kept.size()) > k) kept.resize(k);
        s.leaders = std::move(kept);
        return s;
    };
}

SampleRewrite restrict_quorums_to(std::vector<ProcessId> group) {
    std::sort(group.begin(), group.end());
    return [group](const FdEvent& e) {
        FdSample s = e.sample;
        std::vector<ProcessId> kept;
        for (ProcessId p : s.quorum)
            if (std::binary_search(group.begin(), group.end(), p))
                kept.push_back(p);
        s.quorum = std::move(kept);
        return s;
    };
}

}  // namespace ksa::fd
