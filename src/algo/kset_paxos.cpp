#include "algo/kset_paxos.hpp"

#include <map>
#include <set>

#include "algo/common.hpp"

namespace ksa::algo {

namespace {

// Message tags (all carry the instance id as the first int field):
//   KPREP(j, b)                 driver -> all    phase-1 request
//   KPROM(j, b, has, ab, av)    acceptor -> drv  phase-1 promise
//   KACC(j, b, v)               driver -> all    phase-2 request
//   KACCD(j, b)                 acceptor -> drv  phase-2 acknowledgment
//   KNACK(j, b, pb)             acceptor -> drv  ballot too small
//   DEC(v)                      anyone -> all    decision announcement
class KSetPaxosBehavior final : public BehaviorBase {
public:
    KSetPaxosBehavior(ProcessId id, int n, Value input, int k)
        : BehaviorBase(id, n, input), k_(k) {
        require(k_ >= 1, "KSetPaxos: k must be >= 1");
        acceptor_.resize(k_);
        driver_.resize(k_);
    }

    StepOutput on_step(const StepInput& in) override {
        StepOutput out;
        ingest(in, out);
        if (has_decided()) return out;

        invariant(in.fd.has_value(), "KSetPaxos: step without FD sample");
        const auto& leaders = in.fd->leaders;  // sorted by the oracle
        const auto& quorum = in.fd->quorum;

        for (int j = 0; j < k_; ++j) {
            const bool drives =
                j < static_cast<int>(leaders.size()) && leaders[j] == id();
            Driver& d = driver_[j];
            if (drives && d.ballot == 0) start_ballot(j, out);
            if (d.ballot == 0) continue;

            if (d.phase == 1 && covers(keys(d.promises), quorum)) {
                int best_ab = 0;
                Value v = input();
                for (const auto& [q, p] : d.promises) {
                    (void)q;
                    if (p.first > best_ab) best_ab = p.first, v = p.second;
                }
                d.proposal = v;
                d.phase = 2;
                // Self-accept.
                Acceptor& self = acceptor_[j];
                self.promised = std::max(self.promised, d.ballot);
                self.accepted_ballot = d.ballot;
                self.accepted_value = d.proposal;
                d.accepts.insert(id());
                broadcast_others(out,
                                 make_payload("KACC", {j, d.ballot, d.proposal}));
            }
            if (d.phase == 2 && covers(d.accepts, quorum)) {
                decide(out, d.proposal);
                broadcast_others(out, make_payload("DEC", {d.proposal}));
                return out;
            }
        }
        return out;
    }

    std::unique_ptr<Behavior> clone() const override {
        return std::make_unique<KSetPaxosBehavior>(*this);
    }

    std::string state_digest() const override {
        std::ostringstream out;
        out << "KP(p" << id() << ",x=" << input() << ",dec=" << has_decided();
        for (int j = 0; j < k_; ++j) {
            const Acceptor& a = acceptor_[j];
            const Driver& d = driver_[j];
            out << ";i" << j << ":pb=" << a.promised
                << ",ab=" << a.accepted_ballot << ",av=" << a.accepted_value
                << ",b=" << d.ballot << ",ph=" << d.phase
                << ",#pr=" << d.promises.size() << ",#ac=" << d.accepts.size();
        }
        out << ')';
        return out.str();
    }

private:
    struct Acceptor {
        int promised = 0;
        int accepted_ballot = 0;
        Value accepted_value = 0;
    };
    struct Driver {
        int round = 0;
        int ballot = 0;  // 0 = idle
        int phase = 0;
        Value proposal = 0;
        std::map<ProcessId, std::pair<int, Value>> promises;
        std::set<ProcessId> accepts;
    };

    void ingest(const StepInput& in, StepOutput& out) {
        for (const Message& m : in.delivered) {
            const auto& tag = m.payload.tag;
            const auto& f = m.payload.ints;
            if (tag == "DEC") {
                if (!has_decided()) {
                    decide(out, f.at(0));
                    broadcast_others(out, make_payload("DEC", {f.at(0)}));
                }
                continue;
            }
            if (tag.rfind("K", 0) != 0) continue;
            const int j = f.at(0);
            if (j < 0 || j >= k_) continue;
            Acceptor& a = acceptor_[j];
            Driver& d = driver_[j];
            if (tag == "KPREP") {
                const int b = f.at(1);
                if (b > a.promised) {
                    a.promised = b;
                    out.send(m.from,
                             make_payload("KPROM",
                                          {j, b, a.accepted_ballot != 0,
                                           a.accepted_ballot,
                                           a.accepted_value}));
                } else {
                    out.send(m.from, make_payload("KNACK", {j, b, a.promised}));
                }
            } else if (tag == "KPROM") {
                if (f.at(1) == d.ballot && d.phase == 1)
                    d.promises[m.from] =
                        f.at(2) != 0
                            ? std::pair<int, Value>{f.at(3), f.at(4)}
                            : std::pair<int, Value>{0, input()};
            } else if (tag == "KACC") {
                const int b = f.at(1);
                if (b >= a.promised) {
                    a.promised = b;
                    a.accepted_ballot = b;
                    a.accepted_value = f.at(2);
                    out.send(m.from, make_payload("KACCD", {j, b}));
                } else {
                    out.send(m.from, make_payload("KNACK", {j, b, a.promised}));
                }
            } else if (tag == "KACCD") {
                if (f.at(1) == d.ballot && d.phase == 2)
                    d.accepts.insert(m.from);
            } else if (tag == "KNACK") {
                if (f.at(1) == d.ballot) {
                    d.round = std::max(d.round, (f.at(2) + n() - 1) / n());
                    d.ballot = 0;
                    d.phase = 0;
                    d.promises.clear();
                    d.accepts.clear();
                }
            }
        }
    }

    void start_ballot(int j, StepOutput& out) {
        Driver& d = driver_[j];
        Acceptor& a = acceptor_[j];
        ++d.round;
        d.ballot = d.round * n() + id();
        d.phase = 1;
        d.promises.clear();
        d.accepts.clear();
        a.promised = std::max(a.promised, d.ballot);
        d.promises[id()] =
            a.accepted_ballot != 0
                ? std::pair<int, Value>{a.accepted_ballot, a.accepted_value}
                : std::pair<int, Value>{0, input()};
        broadcast_others(out, make_payload("KPREP", {j, d.ballot}));
    }

    static std::set<ProcessId> keys(
            const std::map<ProcessId, std::pair<int, Value>>& m) {
        std::set<ProcessId> out;
        for (const auto& [q, _] : m) out.insert(q);
        return out;
    }

    static bool covers(const std::set<ProcessId>& have,
                       const std::vector<ProcessId>& quorum) {
        for (ProcessId q : quorum)
            if (have.count(q) == 0) return false;
        return !quorum.empty();
    }

    int k_;
    std::vector<Acceptor> acceptor_;
    std::vector<Driver> driver_;
};

}  // namespace

std::unique_ptr<Behavior> KSetPaxos::make_behavior(ProcessId id, int n,
                                                   Value input) const {
    return std::make_unique<KSetPaxosBehavior>(id, n, input, k_);
}

}  // namespace ksa::algo
