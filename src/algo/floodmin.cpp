#include "algo/floodmin.hpp"

#include <sstream>

namespace ksa::algo {

namespace {

class FloodMinBehavior final : public ho::RoundBehavior {
public:
    FloodMinBehavior(ProcessId id, Value input, int rounds)
        : id_(id), est_(input), rounds_(rounds) {
        require(rounds_ >= 1, "FloodMin: need at least one round");
    }

    Payload message(int) override { return make_payload("EST", {est_}); }

    std::optional<Value> transition(
            int round, const std::map<ProcessId, Payload>& heard) override {
        for (const auto& [q, payload] : heard) {
            (void)q;
            est_ = std::min(est_, payload.ints.at(0));
        }
        if (round >= rounds_ && !decided_) {
            decided_ = true;
            return est_;
        }
        return std::nullopt;
    }

    std::string state_digest() const override {
        std::ostringstream out;
        out << "FM(p" << id_ << ",est=" << est_ << ",dec=" << decided_ << ')';
        return out.str();
    }

    std::unique_ptr<ho::RoundBehavior> clone() const override {
        return std::make_unique<FloodMinBehavior>(*this);
    }

private:
    ProcessId id_;
    Value est_;
    int rounds_;
    bool decided_ = false;
};

}  // namespace

std::unique_ptr<ho::RoundBehavior> FloodMin::make_behavior(ProcessId id, int,
                                                           Value input) const {
    return std::make_unique<FloodMinBehavior>(id, input, rounds_);
}

std::string FloodMin::name() const {
    return "floodmin(R=" + std::to_string(rounds_) + ")";
}

}  // namespace ksa::algo
