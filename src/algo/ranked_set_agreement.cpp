#include "algo/ranked_set_agreement.hpp"

#include "algo/common.hpp"

namespace ksa::algo {

namespace {

class RankedBehavior final : public BehaviorBase {
public:
    using BehaviorBase::BehaviorBase;

    StepOutput on_step(const StepInput& in) override {
        StepOutput out;
        for (const Message& m : in.delivered) {
            if (has_decided()) break;
            if (m.payload.tag == "VAL" && m.payload.ints.at(0) < id()) {
                decide_and_announce(out, m.payload.ints.at(1));
            } else if (m.payload.tag == "DEC") {
                decide_and_announce(out, m.payload.ints.at(0));
            }
        }
        if (has_decided()) return out;
        if (!announced_) {
            broadcast_others(out, make_payload("VAL", {id(), input()}));
            announced_ = true;
        }
        invariant(in.fd.has_value(),
                  "RankedSetAgreement: step without FD sample");
        if (in.fd->quorum.size() == 1 && in.fd->quorum.front() == id())
            decide_and_announce(out, input());  // lonely decision
        return out;
    }

    std::unique_ptr<Behavior> clone() const override {
        return std::make_unique<RankedBehavior>(*this);
    }

    std::string state_digest() const override {
        std::ostringstream d;
        d << "RK(p" << id() << ",x=" << input() << ",ann=" << announced_
          << ",dec=" << has_decided() << ')';
        return d.str();
    }

private:
    void decide_and_announce(StepOutput& out, Value v) {
        decide(out, v);
        broadcast_others(out, make_payload("DEC", {v}));
    }

    bool announced_ = false;
};

}  // namespace

std::unique_ptr<Behavior> RankedSetAgreement::make_behavior(ProcessId id, int n,
                                                            Value input) const {
    return std::make_unique<RankedBehavior>(id, n, input);
}

}  // namespace ksa::algo
