#pragma once
// Shared helpers for protocol implementations.

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sim/behavior.hpp"
#include "sim/types.hpp"

namespace ksa::algo {

/// Base class for protocol state machines: stores identity, carries the
/// write-once decision flag and provides digest-rendering helpers.
class BehaviorBase : public Behavior {
public:
    BehaviorBase(ProcessId id, int n, Value input)
        : id_(id), n_(n), input_(input) {}

protected:
    ProcessId id() const { return id_; }
    int n() const { return n_; }
    Value input() const { return input_; }
    bool has_decided() const { return decided_; }

    /// Marks the decision in `out`; enforces write-once locally too.
    void decide(StepOutput& out, Value v) {
        require(!decided_, "BehaviorBase::decide: already decided");
        decided_ = true;
        out.decision = v;
    }

    /// Sends `payload` to every process except self.
    void broadcast_others(StepOutput& out, const Payload& payload) const {
        for (ProcessId q = 1; q <= n_; ++q)
            if (q != id_) out.send(q, payload);
    }

    /// Digest fragment for a set of ids/values.
    template <typename Container>
    static std::string render(const Container& xs) {
        std::ostringstream out;
        out << '{';
        bool first = true;
        for (const auto& x : xs) {
            if (!first) out << ',';
            first = false;
            out << x;
        }
        out << '}';
        return out.str();
    }

private:
    ProcessId id_;
    int n_;
    Value input_;
    bool decided_ = false;
};

/// Inserts into a sorted vector, keeping it sorted and duplicate-free.
inline void insert_sorted_unique(std::vector<int>& v, int x) {
    auto it = std::lower_bound(v.begin(), v.end(), x);
    if (it == v.end() || *it != x) v.insert(it, x);
}

}  // namespace ksa::algo
