#include "algo/flooding.hpp"

namespace ksa::algo {

namespace {

class FloodingBehavior final : public BehaviorBase {
public:
    FloodingBehavior(ProcessId id, int n, Value input, int threshold)
        : BehaviorBase(id, n, input), threshold_(threshold) {
        require(threshold_ >= 1 && threshold_ <= n,
                "FloodingKSet: need 1 <= threshold <= n");
        seen_[id] = input;
    }

    StepOutput on_step(const StepInput& in) override {
        StepOutput out;
        for (const Message& m : in.delivered)
            if (m.payload.tag == "VAL")
                seen_.emplace(m.payload.ints.at(0), m.payload.ints.at(1));
        if (has_decided()) return out;
        if (!announced_) {
            broadcast_others(out, make_payload("VAL", {id(), input()}));
            announced_ = true;
        }
        if (static_cast<int>(seen_.size()) >= threshold_) {
            Value best = input();
            for (const auto& [_, v] : seen_) best = std::min(best, v);
            decide(out, best);
        }
        return out;
    }

    /// Flooding sends exactly once (the announce step); afterwards every
    /// step only ingests.  Monotone: announced_ never resets.
    bool may_send() const override { return !announced_; }

    /// A VAL from a sender already in seen_ re-emplaces an existing key:
    /// no state change, no output change.  seen_ only grows, so the
    /// claim is monotone as Behavior::message_inert requires.
    bool message_inert(ProcessId /*from*/,
                       const Payload& payload) const override {
        return payload.tag == "VAL" && !payload.ints.empty() &&
               seen_.count(payload.ints.front()) != 0;
    }

    std::unique_ptr<Behavior> clone() const override {
        return std::make_unique<FloodingBehavior>(*this);
    }

    std::string state_digest() const override {
        std::ostringstream d;
        d << "FL(p" << id() << ",x=" << input() << ",ann=" << announced_
          << ",seen={";
        bool first = true;
        for (const auto& [q, v] : seen_) {
            if (!first) d << ',';
            first = false;
            d << q << ':' << v;
        }
        d << "})";
        return d.str();
    }

    /// Same fields as state_digest, folded directly (no string).
    void fold_state(StateHasher& h) const override {
        h.str("FL");
        h.i64(id());
        h.i64(input());
        h.u64(announced_ ? 1 : 0);
        h.u64(seen_.size());
        for (const auto& [q, v] : seen_) {
            h.i64(q);
            h.i64(v);
        }
    }

    /// fold_state with every id mapped through `ren`: the renamed
    /// execution's behavior at position ren(id) holds seen-entries keyed
    /// by renamed senders, iterated in renamed-id order.
    bool fold_state_renamed(StateHasher& h,
                            const ProcessRenaming& ren) const override {
        h.str("FL");
        h.i64(ren[static_cast<std::size_t>(id()) - 1]);
        h.i64(input());
        h.u64(announced_ ? 1 : 0);
        h.u64(seen_.size());
        std::vector<std::pair<ProcessId, Value>> renamed;
        renamed.reserve(seen_.size());
        for (const auto& [q, v] : seen_)
            renamed.emplace_back(ren[static_cast<std::size_t>(q) - 1], v);
        std::sort(renamed.begin(), renamed.end());
        for (const auto& [q, v] : renamed) {
            h.i64(q);
            h.i64(v);
        }
        return true;
    }

private:
    int threshold_;
    bool announced_ = false;
    std::map<ProcessId, Value> seen_;
};

class TrivialBehavior final : public BehaviorBase {
public:
    using BehaviorBase::BehaviorBase;

    StepOutput on_step(const StepInput&) override {
        StepOutput out;
        if (!has_decided()) decide(out, input());
        return out;
    }

    /// Never communicates, in any state.
    bool may_send() const override { return false; }

    std::unique_ptr<Behavior> clone() const override {
        return std::make_unique<TrivialBehavior>(*this);
    }

    std::string state_digest() const override {
        std::ostringstream d;
        d << "TR(p" << id() << ",x=" << input() << ",dec=" << has_decided()
          << ')';
        return d.str();
    }

    /// Same fields as state_digest, folded directly (no string).
    void fold_state(StateHasher& h) const override {
        h.str("TR");
        h.i64(id());
        h.i64(input());
        h.u64(has_decided() ? 1 : 0);
    }

    bool fold_state_renamed(StateHasher& h,
                            const ProcessRenaming& ren) const override {
        h.str("TR");
        h.i64(ren[static_cast<std::size_t>(id()) - 1]);
        h.i64(input());
        h.u64(has_decided() ? 1 : 0);
        return true;
    }
};

}  // namespace

std::unique_ptr<Behavior> FloodingKSet::make_behavior(ProcessId id, int n,
                                                      Value input) const {
    return std::make_unique<FloodingBehavior>(id, n, input, threshold_);
}

std::string FloodingKSet::name() const {
    return "flooding(th=" + std::to_string(threshold_) + ")";
}

bool FloodingKSet::rename_payload_ids(Payload& payload,
                                      const ProcessRenaming& ren) const {
    // VAL carries (sender id, proposal value): only the id is renamed.
    if (payload.tag == "VAL" && !payload.ints.empty())
        payload.ints[0] =
                ren[static_cast<std::size_t>(payload.ints[0]) - 1];
    return true;
}

std::unique_ptr<Behavior> TrivialWaitFree::make_behavior(ProcessId id, int n,
                                                         Value input) const {
    return std::make_unique<TrivialBehavior>(id, n, input);
}

std::unique_ptr<Algorithm> make_flooding(int n, int f) {
    require(f >= 0 && f < n, "make_flooding: need 0 <= f < n");
    return std::make_unique<FloodingKSet>(n - f);
}

}  // namespace ksa::algo
