#pragma once
// k-set agreement from (Sigma, Omega_k): k parallel Paxos instances.
//
// The paper's Discussion distills Theorem 10 into a design rule: Sigma_k
// is necessary for k-set agreement but tolerates a fatal k-way
// partitioning, so "whatever one adds to Sigma_k, it has to allow
// solving consensus in each partition".  This protocol is the
// constructive counterpart: strengthen the quorum component from
// Sigma_k to Sigma (= Sigma_1, globally intersecting quorums) and k-set
// agreement becomes solvable with the same leader family Omega_k:
//
//   * there are k single-decree Paxos instances, j = 1..k;
//   * a process drives instance j iff its id is the j-th smallest in its
//     current Omega_k sample (so at most one stable driver per instance
//     after stabilization, and however chaotic the samples are before,
//     instance-j safety is classic Paxos safety with Sigma quorums);
//   * drivers propose their own input; a committed instance floods a
//     decision announcement; everybody decides the first one they see.
//
// Safety: each instance commits at most one value (ballots + quorum
// intersection -- this needs Sigma_1: two quorums of the SAME instance
// must intersect even when the adversary partitions the system), so at
// most k distinct values are decided.  Termination: after stabilization
// some correct leader drives its instance with quorums that are
// eventually correct-only.
//
// The contrast test (tests/test_kset_paxos.cpp) runs the very adversary
// that defeats the (Sigma_k, Omega_k) candidate of Theorem 10 against
// this protocol: with globally intersecting quorums the singleton blocks
// cannot assemble quorums in isolation, condition (A)/(dec-Dbar) of
// Theorem 1 fails, and the trap does not spring -- exactly the
// Discussion's point, executable.

#include <memory>

#include "sim/behavior.hpp"

namespace ksa::algo {

/// See file comment.
class KSetPaxos final : public Algorithm {
public:
    explicit KSetPaxos(int k) : k_(k) {}

    std::unique_ptr<Behavior> make_behavior(ProcessId id, int n,
                                            Value input) const override;
    std::string name() const override {
        return "kset-paxos(k=" + std::to_string(k_) + ")";
    }
    bool needs_failure_detector() const override { return true; }

    int k() const { return k_; }

private:
    int k_;
};

}  // namespace ksa::algo
