#include "algo/one_third_rule.hpp"

#include <map>
#include <sstream>

namespace ksa::algo {

namespace {

class OneThirdBehavior final : public ho::RoundBehavior {
public:
    OneThirdBehavior(ProcessId id, int n, Value input)
        : id_(id), n_(n), est_(input) {}

    Payload message(int) override { return make_payload("EST", {est_}); }

    std::optional<Value> transition(
            int, const std::map<ProcessId, Payload>& heard) override {
        if (3 * static_cast<int>(heard.size()) > 2 * n_) {
            // Adopt the smallest most frequent value.
            std::map<Value, int> freq;
            for (const auto& [q, payload] : heard) {
                (void)q;
                ++freq[payload.ints.at(0)];
            }
            int best = 0;
            for (const auto& [v, c] : freq)
                if (c > best) best = c, est_ = v;  // map order: smallest wins ties
            // Decide a value heard from more than 2n/3 processes.
            for (const auto& [v, c] : freq) {
                if (3 * c > 2 * n_ && !decided_) {
                    decided_ = true;
                    return v;
                }
            }
        }
        return std::nullopt;
    }

    std::string state_digest() const override {
        std::ostringstream out;
        out << "OTR(p" << id_ << ",est=" << est_ << ",dec=" << decided_ << ')';
        return out.str();
    }

    std::unique_ptr<ho::RoundBehavior> clone() const override {
        return std::make_unique<OneThirdBehavior>(*this);
    }

private:
    ProcessId id_;
    int n_;
    Value est_;
    bool decided_ = false;
};

}  // namespace

std::unique_ptr<ho::RoundBehavior> OneThirdRule::make_behavior(
        ProcessId id, int n, Value input) const {
    return std::make_unique<OneThirdBehavior>(id, n, input);
}

}  // namespace ksa::algo
