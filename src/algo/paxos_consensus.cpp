#include "algo/paxos_consensus.hpp"

#include <map>
#include <set>

#include "algo/common.hpp"

namespace ksa::algo {

namespace {

// Message tags:
//   PREP(b)               leader -> all     phase-1 request
//   PROM(b, has, ab, av)  acceptor -> lead  phase-1 promise
//   ACC(b, v)             leader -> all     phase-2 request
//   ACCD(b)               acceptor -> lead  phase-2 acknowledgment
//   NACK(b, pb)           acceptor -> lead  ballot too small
//   DEC(v)                anyone -> all     decision announcement
class PaxosBehavior final : public BehaviorBase {
public:
    PaxosBehavior(ProcessId id, int n, Value input)
        : BehaviorBase(id, n, input), est_(input) {}

    StepOutput on_step(const StepInput& in) override {
        StepOutput out;
        ingest(in, out);
        if (has_decided()) return out;

        invariant(in.fd.has_value(), "PaxosConsensus: step without FD sample");
        const auto& leaders = in.fd->leaders;
        const auto& quorum = in.fd->quorum;
        const bool am_leader =
            std::find(leaders.begin(), leaders.end(), id()) != leaders.end();

        if (am_leader && ballot_ == 0) start_ballot(out);

        if (ballot_ != 0 && phase_ == 1 && covers(promises_keys(), quorum)) {
            // Adopt the value of the highest accepted ballot among the
            // promising quorum, or our estimate if none accepted yet.
            int best_ab = 0;
            Value v = est_;
            for (const auto& [q, p] : promises_) {
                (void)q;
                if (p.first > best_ab) best_ab = p.first, v = p.second;
            }
            proposal_ = v;
            phase_ = 2;
            // Self-accept, then ask the others.
            promised_ = ballot_;
            accepted_ballot_ = ballot_;
            accepted_value_ = proposal_;
            accepts_.insert(id());
            broadcast_others(out, make_payload("ACC", {ballot_, proposal_}));
        }
        if (ballot_ != 0 && phase_ == 2 && covers(accepts_, quorum)) {
            decide(out, proposal_);
            broadcast_others(out, make_payload("DEC", {proposal_}));
        }
        return out;
    }

    std::unique_ptr<Behavior> clone() const override {
        return std::make_unique<PaxosBehavior>(*this);
    }

    std::string state_digest() const override {
        std::ostringstream d;
        d << "PX(p" << id() << ",x=" << input() << ",est=" << est_
          << ",pb=" << promised_ << ",ab=" << accepted_ballot_
          << ",av=" << accepted_value_ << ",b=" << ballot_ << ",ph=" << phase_
          << ",prop=" << proposal_ << ",#prom=" << promises_.size()
          << ",#acc=" << accepts_.size() << ",dec=" << has_decided() << ')';
        return d.str();
    }

private:
    void ingest(const StepInput& in, StepOutput& out) {
        for (const Message& m : in.delivered) {
            const auto& tag = m.payload.tag;
            const auto& f = m.payload.ints;
            if (tag == "PREP") {
                const int b = f.at(0);
                if (b > promised_) {
                    promised_ = b;
                    out.send(m.from,
                             make_payload("PROM",
                                          {b, accepted_ballot_ != 0,
                                           accepted_ballot_, accepted_value_}));
                } else {
                    out.send(m.from, make_payload("NACK", {b, promised_}));
                }
            } else if (tag == "PROM") {
                if (f.at(0) == ballot_ && phase_ == 1)
                    promises_[m.from] = f.at(1) != 0
                                            ? std::pair<int, Value>{f.at(2),
                                                                    f.at(3)}
                                            : std::pair<int, Value>{0, est_};
            } else if (tag == "ACC") {
                const int b = f.at(0);
                if (b >= promised_) {
                    promised_ = b;
                    accepted_ballot_ = b;
                    accepted_value_ = f.at(1);
                    out.send(m.from, make_payload("ACCD", {b}));
                } else {
                    out.send(m.from, make_payload("NACK", {b, promised_}));
                }
            } else if (tag == "ACCD") {
                if (f.at(0) == ballot_ && phase_ == 2) accepts_.insert(m.from);
            } else if (tag == "NACK") {
                if (f.at(0) == ballot_) {
                    // Preempted: remember the round and retire the ballot;
                    // a later step restarts with a higher one if we still
                    // lead.
                    round_ = std::max(round_, (f.at(1) + n() - 1) / n());
                    ballot_ = 0;
                    phase_ = 0;
                    promises_.clear();
                    accepts_.clear();
                }
            } else if (tag == "DEC") {
                if (!has_decided()) {
                    decide(out, f.at(0));
                    broadcast_others(out, make_payload("DEC", {f.at(0)}));
                }
            }
        }
    }

    void start_ballot(StepOutput& out) {
        ++round_;
        ballot_ = round_ * n() + id();
        phase_ = 1;
        promises_.clear();
        accepts_.clear();
        // Self-promise.
        promised_ = std::max(promised_, ballot_);
        promises_[id()] = accepted_ballot_ != 0
                              ? std::pair<int, Value>{accepted_ballot_,
                                                      accepted_value_}
                              : std::pair<int, Value>{0, est_};
        broadcast_others(out, make_payload("PREP", {ballot_}));
    }

    std::set<ProcessId> promises_keys() const {
        std::set<ProcessId> out;
        for (const auto& [q, _] : promises_) out.insert(q);
        return out;
    }

    /// True iff every member of `quorum` is in `have`.
    static bool covers(const std::set<ProcessId>& have,
                       const std::vector<ProcessId>& quorum) {
        for (ProcessId q : quorum)
            if (have.count(q) == 0) return false;
        return !quorum.empty();
    }

    Value est_;
    int promised_ = 0;
    int accepted_ballot_ = 0;
    Value accepted_value_ = 0;
    int round_ = 0;
    int ballot_ = 0;  // 0 = not leading
    int phase_ = 0;
    Value proposal_ = 0;
    std::map<ProcessId, std::pair<int, Value>> promises_;
    std::set<ProcessId> accepts_;
};

}  // namespace

std::unique_ptr<Behavior> PaxosConsensus::make_behavior(ProcessId id, int n,
                                                        Value input) const {
    return std::make_unique<PaxosBehavior>(id, n, input);
}

}  // namespace ksa::algo
