#pragma once
// (Sigma, Omega)-based consensus.
//
// The possibility half of Corollary 13 for k = 1: (Sigma_1, Omega_1) is
// sufficient for consensus (Delporte-Gallet, Fauconnier, Guerraoui).  The
// protocol here is single-decree Paxos adapted to the Sigma interface:
// instead of counting majorities, a leader considers a phase complete
// when the responders cover its *current* Sigma quorum output -- the
// Intersection property of Sigma is exactly what makes any two completed
// phases share a responder, which is all the classic Paxos safety
// argument needs; Liveness of Sigma plus Eventual Leadership of Omega
// give termination.
//
// Contrast with quorum_leader_kset.hpp: this protocol carries ballots
// and the promise/accept arbitration; the candidate there does not, and
// that difference is precisely what the Theorem 10 adversary exploits.

#include <memory>

#include "sim/behavior.hpp"

namespace ksa::algo {

/// Single-decree, Sigma/Omega-driven Paxos.  Queries the failure
/// detector every step; the sample's `quorum` is the Sigma output and
/// `leaders` the Omega output (the process acts as a proposer iff its
/// own id is in `leaders`).
class PaxosConsensus final : public Algorithm {
public:
    std::unique_ptr<Behavior> make_behavior(ProcessId id, int n,
                                            Value input) const override;
    std::string name() const override { return "paxos(Sigma,Omega)"; }
    bool needs_failure_detector() const override { return true; }
};

}  // namespace ksa::algo
