#pragma once
// Flooding-style baselines and strawmen.
//
// FloodingKSet is the classic f-resilient baseline: broadcast your
// proposal, wait for proposals from n-f processes (counting yourself),
// decide the minimum seen.  It solves (f+1)-set agreement in the
// asynchronous model with up to f crashes (each decided minimum can
// "miss" at most f smaller proposals), and nothing better: the paper's
// Theorem 2 adversary constructs runs with exactly min(f+1, ...) distinct
// decisions.  It is also the "seemingly promising candidate" on which the
// remark after Theorem 1 is demonstrated: condition (dec-D) is satisfied
// in partitioned runs, so the algorithm cannot solve k-set agreement for
// small k.
//
// TrivialWaitFree decides its own proposal immediately: the degenerate
// wait-free protocol that solves only n-set agreement, used by the
// T-independence demonstrations of Section IV (it is strongly
// 2^Pi-independent).

#include <map>
#include <memory>

#include "algo/common.hpp"
#include "sim/behavior.hpp"

namespace ksa::algo {

/// Broadcast-and-wait-for-(n-f) baseline; decides the minimum proposal
/// among the first `threshold` proposals seen (its own included).
class FloodingKSet final : public Algorithm {
public:
    /// `threshold` is the number of proposals (self included) to wait
    /// for; the f-resilient instance uses threshold = n - f.
    explicit FloodingKSet(int threshold) : threshold_(threshold) {}

    std::unique_ptr<Behavior> make_behavior(ProcessId id, int n,
                                            Value input) const override;
    std::string name() const override;

    /// Decisions are minimum *values* over seen proposals -- no id
    /// tie-breaks -- so flooding is equivariant under every renaming
    /// that fixes the inputs vector.
    SymmetryKind symmetry() const override { return SymmetryKind::kFull; }
    bool rename_payload_ids(Payload& payload,
                            const ProcessRenaming& ren) const override;

    /// A decided flooding behavior only ingests (on_step returns before
    /// any announce/decide once has_decided()) -- it never sends or
    /// decides again.
    bool decided_is_final() const override { return true; }

    int threshold() const { return threshold_; }

private:
    int threshold_;
};

/// Decides its own proposal in its first step; never communicates.
class TrivialWaitFree final : public Algorithm {
public:
    std::unique_ptr<Behavior> make_behavior(ProcessId id, int n,
                                            Value input) const override;
    std::string name() const override { return "trivial-wait-free"; }

    /// Never communicates and decides its own input: trivially
    /// equivariant.
    SymmetryKind symmetry() const override { return SymmetryKind::kFull; }
    bool rename_payload_ids(Payload& payload,
                            const ProcessRenaming& ren) const override {
        (void)payload;
        (void)ren;
        return true;  // no messages exist to rename
    }

    /// Decides once, never communicates: trivially final.
    bool decided_is_final() const override { return true; }
};

/// The f-resilient flooding instance (threshold n - f).
std::unique_ptr<Algorithm> make_flooding(int n, int f);

}  // namespace ksa::algo
