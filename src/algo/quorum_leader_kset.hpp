#pragma once
// The (Sigma_k, Omega_k) candidate that Theorem 10 defeats.
//
// A natural attempt at k-set agreement from (Sigma_k, Omega_k): every
// process whose id appears in its Omega_k output proposes its estimate;
// everybody acknowledges every proposal (Sigma_k quorums have no ballot
// arbitration here -- that is the flaw); a proposer whose acknowledgers
// cover its current Sigma_k quorum decides its estimate and floods the
// decision; non-proposers decide on the first decision announcement.
//
// Why it *looks* promising: in benign runs at most k processes ever
// propose (the k stabilized leaders), so at most k values are decided;
// Liveness of Sigma_k and Eventual Leadership of Omega_k give
// termination.
//
// Why it fails, per the paper: the partition detector (Sigma'_k,
// Omega'_k) of Definition 7 -- whose histories are admissible for
// (Sigma_k, Omega_k) by Lemma 9 -- lets the adversary (i) make each of
// the k-1 singleton blocks D_i decide its own value in isolation
// (condition (dec-D-bar) of Theorem 1 is satisfiable, which the remark
// after Theorem 1 already flags as fatal), and (ii) stabilize the leader
// set so it intersects the remaining block D in *two* processes; both
// gather quorum acknowledgments (quorums inside D intersect, but without
// ballots an acknowledger happily serves both), decide their distinct
// estimates, and the run ends with k+1 distinct decisions.  The engine
// in core/theorem10.hpp constructs that run mechanically.

#include <memory>

#include "sim/behavior.hpp"

namespace ksa::algo {

/// See file comment.
class QuorumLeaderKSet final : public Algorithm {
public:
    std::unique_ptr<Behavior> make_behavior(ProcessId id, int n,
                                            Value input) const override;
    std::string name() const override { return "quorum-leader-kset"; }
    bool needs_failure_detector() const override { return true; }
};

}  // namespace ksa::algo
