#include "algo/initial_clique.hpp"

#include <algorithm>

#include "graph/clique.hpp"
#include "graph/digraph.hpp"
#include "graph/scc.hpp"

namespace ksa::algo {

namespace {

/// Per-process state machine of the two-stage protocol.
class InitialCliqueBehavior final : public BehaviorBase {
public:
    InitialCliqueBehavior(ProcessId id, int n, Value input, int l)
        : BehaviorBase(id, n, input), l_(l) {
        require(l_ >= 1 && l_ <= n, "InitialCliqueKSet: need 1 <= L <= n");
    }

    StepOutput on_step(const StepInput& in) override {
        StepOutput out;
        ingest(in);
        if (has_decided()) return out;

        if (phase_ == 0) {
            // Stage 1: announce ourselves.
            broadcast_others(out, make_payload("S1", {id()}));
            phase_ = 1;
        }
        if (phase_ == 1 && static_cast<int>(heard_.size()) == l_ - 1) {
            // Stage 2: publish proposal and heard-list.
            broadcast_others(out,
                             make_payload("S2", {id(), input()}, {heard_}));
            for (int q : heard_) insert_sorted_unique(required_, q);
            phase_ = 2;
        }
        if (phase_ == 2 && closure_complete()) {
            decide(out, compute_decision());
            phase_ = 3;
        }
        return out;
    }

    /// All sends happen in the stage-1 announce (phase 0 -> 1) and the
    /// stage-2 publish (phase 1 -> 2) steps; from phase 2 on, steps only
    /// collect stage-2 messages and decide.  Monotone: phase_ only grows.
    bool may_send() const override { return phase_ < 2; }

    /// Once the stage-1 quota is full, further S1 messages are dropped
    /// by ingest() without any state change -- heard_ never shrinks, so
    /// the claim is monotone as Behavior::message_inert requires.
    bool message_inert(ProcessId /*from*/,
                       const Payload& payload) const override {
        return payload.tag == "S1" &&
               static_cast<int>(heard_.size()) >= l_ - 1;
    }

    std::unique_ptr<Behavior> clone() const override {
        return std::make_unique<InitialCliqueBehavior>(*this);
    }

    std::string state_digest() const override {
        std::ostringstream d;
        d << "IC(p" << id() << ",x=" << input() << ",ph=" << phase_
          << ",heard=" << render(heard_) << ",req=" << render(required_)
          << ",known=";
        d << '{';
        bool first = true;
        for (const auto& [q, info] : known_) {
            if (!first) d << ';';
            first = false;
            d << q << ":" << info.first << ":" << render(info.second);
        }
        d << "})";
        return d.str();
    }

    /// Same fields as state_digest, folded directly (no string).
    void fold_state(StateHasher& h) const override {
        h.str("IC");
        h.i64(id());
        h.i64(input());
        h.i64(phase_);
        h.u64(heard_.size());
        for (int q : heard_) h.i64(q);
        h.u64(required_.size());
        for (int q : required_) h.i64(q);
        h.u64(known_.size());
        for (const auto& [q, info] : known_) {
            h.i64(q);
            h.i64(info.first);
            h.u64(info.second.size());
            for (int u : info.second) h.i64(u);
        }
    }

    /// fold_state under renaming: every id-valued field is mapped
    /// through `ren` and every id-sorted container re-sorted under the
    /// new names, exactly as the renamed execution would store it.
    bool fold_state_renamed(StateHasher& h,
                            const ProcessRenaming& ren) const override {
        auto renamed_sorted = [&ren](const std::vector<int>& ids) {
            std::vector<int> out;
            out.reserve(ids.size());
            for (int q : ids)
                out.push_back(ren[static_cast<std::size_t>(q) - 1]);
            std::sort(out.begin(), out.end());
            return out;
        };
        h.str("IC");
        h.i64(ren[static_cast<std::size_t>(id()) - 1]);
        h.i64(input());
        h.i64(phase_);
        const std::vector<int> heard = renamed_sorted(heard_);
        h.u64(heard.size());
        for (int q : heard) h.i64(q);
        const std::vector<int> required = renamed_sorted(required_);
        h.u64(required.size());
        for (int q : required) h.i64(q);
        h.u64(known_.size());
        std::vector<std::pair<int, std::pair<Value, std::vector<int>>>> known;
        known.reserve(known_.size());
        for (const auto& [q, info] : known_)
            known.emplace_back(
                    ren[static_cast<std::size_t>(q) - 1],
                    std::make_pair(info.first, renamed_sorted(info.second)));
        std::sort(known.begin(), known.end());
        for (const auto& [q, info] : known) {
            h.i64(q);
            h.i64(info.first);
            h.u64(info.second.size());
            for (int u : info.second) h.i64(u);
        }
        return true;
    }

private:
    void ingest(const StepInput& in) {
        for (const Message& m : in.delivered) {
            if (m.payload.tag == "S1") {
                // Only the first L-1 senders become in-neighbours; later
                // stage-1 messages are ignored (the graph edge exists only
                // if the receiver *counted* the message).  A claim naming
                // the receiver itself is discarded: no correct process
                // sends itself a stage-1 message, so such a payload can
                // only be forged (it would be a self-loop in the
                // heard-from graph).
                const int v = m.payload.ints.at(0);
                if (v == id()) continue;
                if (static_cast<int>(heard_.size()) < l_ - 1)
                    insert_sorted_unique(heard_, v);
            } else if (m.payload.tag == "S2") {
                // Likewise, a stage-2 report *about ourselves* is
                // discarded -- we know our own input and in-neighbours,
                // and only a forgery would claim to report them.
                const int q = m.payload.ints.at(0);
                if (q == id()) continue;
                const Value x = m.payload.ints.at(1);
                const std::vector<int>& list = m.payload.lists.at(0);
                known_[q] = {x, list};
                for (int u : list) insert_sorted_unique(required_, u);
            }
        }
    }

    /// True when a stage-2 message from every required process arrived.
    bool closure_complete() const {
        for (int q : required_)
            if (q != id() && known_.count(q) == 0) return false;
        return true;
    }

    /// Builds the known (in-closed) part of the heard-from graph and
    /// applies the source-component decision rule.
    Value compute_decision() const {
        // Participating vertices: self plus every sender of a stage-2
        // message we hold.  (0-based for the graph library.)
        std::vector<int> participants{id() - 1};
        for (const auto& [q, _] : known_)
            insert_sorted_unique(participants, q - 1);

        graph::Digraph g(n());
        for (int u : heard_) g.add_edge(u - 1, id() - 1);
        for (const auto& [q, info] : known_)
            for (int u : info.second)
                if (u != q) g.add_edge(u - 1, q - 1);

        std::vector<int> labels;
        graph::Digraph sub = g.induced(participants, &labels);

        // Source components of the known subgraph; find those from which
        // we are reachable and pick the one with the smallest member.
        auto sources = graph::source_components(sub);
        invariant(!sources.empty(), "InitialCliqueKSet: no source component");
        int self_local = -1;
        for (std::size_t i = 0; i < labels.size(); ++i)
            if (labels[i] == id() - 1) self_local = static_cast<int>(i);
        invariant(self_local >= 0, "InitialCliqueKSet: self not a participant");

        int best_member = -1;  // 0-based global id of chosen representative
        for (const auto& sc : sources) {
            auto reach = graph::reachable_from(sub, sc);
            if (!std::binary_search(reach.begin(), reach.end(), self_local))
                continue;
            const int member = labels[sc.front()];  // smallest: sc sorted
            if (best_member == -1 || member < best_member) best_member = member;
        }
        invariant(best_member >= 0,
                  "InitialCliqueKSet: no source component reaches this process");

        const ProcessId rep = best_member + 1;
        if (rep == id()) return input();
        auto it = known_.find(rep);
        invariant(it != known_.end(),
                  "InitialCliqueKSet: representative's proposal unknown");
        return it->second.first;
    }

    int l_;
    int phase_ = 0;                 // 0 start, 1 stage-1 wait, 2 closure, 3 done
    std::vector<int> heard_;        // stage-1 in-neighbours (sorted)
    std::vector<int> required_;     // processes whose stage-2 msg we await
    std::map<int, std::pair<Value, std::vector<int>>> known_;  // S2 contents
};

}  // namespace

std::unique_ptr<Behavior> InitialCliqueKSet::make_behavior(ProcessId id, int n,
                                                           Value input) const {
    return std::make_unique<InitialCliqueBehavior>(id, n, input, l_);
}

std::string InitialCliqueKSet::name() const {
    return "initial-clique(L=" + std::to_string(l_) + ")";
}

bool InitialCliqueKSet::rename_payload_ids(Payload& payload,
                                           const ProcessRenaming& ren) const {
    auto rename_id = [&ren](int& q) {
        q = ren[static_cast<std::size_t>(q) - 1];
    };
    if (payload.tag == "S1" && !payload.ints.empty()) {
        rename_id(payload.ints[0]);
    } else if (payload.tag == "S2" && !payload.ints.empty()) {
        rename_id(payload.ints[0]);  // ints[1] is the proposal value
        // The heard-list is a sorted id set in the sender's state; the
        // renamed execution sends it sorted under the new names.
        for (std::vector<int>& list : payload.lists) {
            for (int& q : list) rename_id(q);
            std::sort(list.begin(), list.end());
        }
    }
    return true;
}

std::unique_ptr<Algorithm> make_flp_consensus(int n) {
    return std::make_unique<InitialCliqueKSet>((n + 2) / 2);  // ceil((n+1)/2)
}

std::unique_ptr<Algorithm> make_flp_kset(int n, int f) {
    require(f >= 0 && f < n, "make_flp_kset: need 0 <= f < n");
    return std::make_unique<InitialCliqueKSet>(n - f);
}

}  // namespace ksa::algo
