#pragma once
// (n-1)-set agreement from Sigma_{n-1}.
//
// The possibility half of Corollary 13 for k = n-1: Sigma_{n-1} is
// sufficient for (n-1)-set agreement (Bonnet & Raynal).  The protocol is
// the loneliness-style algorithm:
//
//   * broadcast your proposal once;
//   * if your Sigma_{n-1} quorum output is the singleton {self}, decide
//     your own proposal ("lonely" decision);
//   * upon first receiving the proposal of a process with a *smaller id*,
//     decide that proposal ("ranked" decision);
//   * upon receiving any decision announcement, copy it (relay once).
//
// Safety (at most n-1 distinct decisions): a relayed decision never adds
// a distinct value, so n distinct decisions would require n *original*
// deciders.  A ranked decider p_i decides x_j with j < i; a lonely
// decider decides its own x_i.  Distinctness makes i -> (index decided)
// injective with sigma(i) <= i and sigma(i) = i exactly for lonely
// deciders -- an injective map with sigma(i) <= i is the identity, so all
// n processes must have decided lonely.  That needs n singleton quorums
// {1}, ..., {n} at n distinct processes, which are pairwise disjoint and
// violate the Intersection property of Sigma_{n-1}.  Hence at most n-1
// processes decide lonely and at most n-1 distinct values occur.
//
// Termination: let c be the smallest correct id.  Every correct p_j with
// j > c eventually receives x_c and decides; if some such j exists its
// decision announcement reaches p_c.  If p_c is the only correct process,
// Liveness of Sigma_{n-1} eventually outputs a quorum of correct
// processes only, i.e. the singleton {c}, and p_c decides lonely.

#include <memory>

#include "sim/behavior.hpp"

namespace ksa::algo {

/// See file comment.  Uses only the quorum component of the detector.
class RankedSetAgreement final : public Algorithm {
public:
    std::unique_ptr<Behavior> make_behavior(ProcessId id, int n,
                                            Value input) const override;
    std::string name() const override { return "ranked-set(Sigma_{n-1})"; }
    bool needs_failure_detector() const override { return true; }
};

}  // namespace ksa::algo
