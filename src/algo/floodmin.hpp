#pragma once
// FloodMin: the classic synchronous k-set agreement protocol, expressed
// in the Heard-Of model.
//
// Every process keeps an estimate (initially its proposal); each round
// it sends the estimate to all, adopts the minimum heard, and decides
// after floor(f/k) + 1 rounds.  Under the synchronous f-crash adversary
// (sim/rounds.hpp's CrashHo) at most k distinct values survive: each
// round that fails to "clean" (i.e. in which estimates still diverge)
// consumes at least k crashes, so f crashes sustain divergence above k
// for at most floor(f/k) rounds -- the classic bound, which bench E9
// regenerates as a table.
//
// Under the *partitioning* HO adversary the protocol fails for exactly
// the reason Theorem 1 predicts: isolated blocks keep their own minima
// for ever, so k+1 blocks yield k+1 decisions (see core/ho_argument.hpp).

#include <memory>

#include "sim/rounds.hpp"

namespace ksa::algo {

/// FloodMin with a fixed number of rounds.  Use rounds = f/k + 1 for the
/// f-crash synchronous setting.
class FloodMin final : public ho::RoundAlgorithm {
public:
    explicit FloodMin(int rounds) : rounds_(rounds) {}

    std::unique_ptr<ho::RoundBehavior> make_behavior(ProcessId id, int n,
                                                     Value input) const override;
    std::string name() const override;

    int rounds() const { return rounds_; }

    /// The round count sufficient for k-set agreement under f crashes.
    static int rounds_for(int f, int k) { return f / k + 1; }

private:
    int rounds_;
};

}  // namespace ksa::algo
