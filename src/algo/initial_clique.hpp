#pragma once
// The two-stage initial-crash protocol of FLP, generalized to k-set
// agreement exactly as in Section VI of the paper.
//
// Stage 1: every process broadcasts a stage-1 message carrying its id,
// then waits until it has received stage-1 messages from L-1 distinct
// other processes (its in-neighbours in the "heard-from" graph G).
//
// Stage 2: every process broadcasts (id, proposal, heard-list) and waits
// for a stage-2 message from every process in its heard-list and,
// transitively, from every process mentioned in any received list.  The
// knowledge a process ends up with is therefore *in-closed*: it knows
// every in-edge of every vertex it knows.  Consequently the source
// components it computes locally are true source components of G, and
// the source component(s) reaching it are known completely.
//
// Decision rule: among the source components of the known subgraph from
// which the process is reachable, pick the one with the smallest member
// id and decide the proposal of that smallest member.  Since G has min
// in-degree L-1 on the live processes, G has at most floor(n_live / L)
// source components (Lemmas 6 and 7), which bounds the number of
// distinct decisions; with L-1 >= a majority the source component is
// unique and the protocol solves consensus -- this is the FLP protocol.
//
// The protocol tolerates up to f = n - L *initial* crashes: every live
// process finds L-1 live senders to hear from, and every process
// mentioned in a list is live (it sent a stage-1 message).  It is not
// resilient to crashes at arbitrary times -- exactly the gap that
// Theorem 2 proves is unavoidable.

#include <map>
#include <memory>

#include "algo/common.hpp"
#include "sim/behavior.hpp"

namespace ksa::algo {

/// The Section VI protocol, parameterized by the stage-1 threshold L.
class InitialCliqueKSet final : public Algorithm {
public:
    /// `l` is the paper's L: a process waits for L-1 stage-1 messages.
    /// Requires 1 <= l <= n (checked when behaviors are created).
    explicit InitialCliqueKSet(int l) : l_(l) {}

    std::unique_ptr<Behavior> make_behavior(ProcessId id, int n,
                                            Value input) const override;
    std::string name() const override;

    /// The decision rule breaks ties by smallest member *id*, so the
    /// protocol is value-equivariant only under renamings that keep
    /// every equal-input class a contiguous id block (the reduction
    /// layer enforces the block condition; doc/extending.md has the
    /// argument).
    SymmetryKind symmetry() const override {
        return SymmetryKind::kBlockSymmetric;
    }
    bool rename_payload_ids(Payload& payload,
                            const ProcessRenaming& ren) const override;

    /// A decided behavior returns from on_step before any broadcast or
    /// decide (phase_ == 3 is absorbing): decisions are final and
    /// silent.
    bool decided_is_final() const override { return true; }

    int l() const { return l_; }

    /// Upper bound floor(n/L) on the number of distinct decisions when
    /// all processes are live; with d initial deaths the live count
    /// drops to n-d and the bound becomes floor((n-d)/L).
    static int max_decisions(int live, int l) { return live / l; }

private:
    int l_;
};

/// The FLP consensus instance: L = ceil((n+1)/2), tolerating f < n/2
/// initial crashes.
std::unique_ptr<Algorithm> make_flp_consensus(int n);

/// The Theorem 8 instance: L = n - f, solving k-set agreement with up to
/// f initial crashes whenever k*n > (k+1)*f.
std::unique_ptr<Algorithm> make_flp_kset(int n, int f);

}  // namespace ksa::algo
