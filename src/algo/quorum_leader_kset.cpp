#include "algo/quorum_leader_kset.hpp"

#include <set>

#include "algo/common.hpp"

namespace ksa::algo {

namespace {

// Message tags:
//   PROP(leader, v)   proposer -> all    proposal
//   ACK(leader, v)    acker -> proposer  acknowledgment
//   DEC(v)            anyone -> all      decision announcement
class QuorumLeaderBehavior final : public BehaviorBase {
public:
    QuorumLeaderBehavior(ProcessId id, int n, Value input)
        : BehaviorBase(id, n, input), est_(input) {}

    StepOutput on_step(const StepInput& in) override {
        StepOutput out;
        for (const Message& m : in.delivered) {
            const auto& tag = m.payload.tag;
            const auto& f = m.payload.ints;
            if (tag == "PROP") {
                // No arbitration: acknowledge every proposal.  (This is
                // the exploitable flaw; see header comment.)
                out.send(m.from, make_payload("ACK", {f.at(0), f.at(1)}));
            } else if (tag == "ACK") {
                if (proposed_ && f.at(0) == id() && f.at(1) == est_)
                    ackers_.insert(m.from);
            } else if (tag == "DEC") {
                if (!has_decided()) {
                    decide(out, f.at(0));
                    broadcast_others(out, make_payload("DEC", {f.at(0)}));
                }
            }
        }
        if (has_decided()) return out;

        invariant(in.fd.has_value(),
                  "QuorumLeaderKSet: step without FD sample");
        const auto& leaders = in.fd->leaders;
        const bool am_leader =
            std::find(leaders.begin(), leaders.end(), id()) != leaders.end();

        if (am_leader && !proposed_) {
            proposed_ = true;
            ackers_.insert(id());  // a proposer acknowledges itself
            broadcast_others(out, make_payload("PROP", {id(), est_}));
        }
        if (proposed_) {
            bool covered = !in.fd->quorum.empty();
            for (ProcessId q : in.fd->quorum)
                if (ackers_.count(q) == 0) covered = false;
            if (covered) {
                decide(out, est_);
                broadcast_others(out, make_payload("DEC", {est_}));
            }
        }
        return out;
    }

    std::unique_ptr<Behavior> clone() const override {
        return std::make_unique<QuorumLeaderBehavior>(*this);
    }

    std::string state_digest() const override {
        std::ostringstream d;
        d << "QL(p" << id() << ",x=" << input() << ",est=" << est_
          << ",prop=" << proposed_ << ",acks=" << render(ackers_)
          << ",dec=" << has_decided() << ')';
        return d.str();
    }

private:
    Value est_;
    bool proposed_ = false;
    std::set<ProcessId> ackers_;
};

}  // namespace

std::unique_ptr<Behavior> QuorumLeaderKSet::make_behavior(ProcessId id, int n,
                                                          Value input) const {
    return std::make_unique<QuorumLeaderBehavior>(id, n, input);
}

}  // namespace ksa::algo
