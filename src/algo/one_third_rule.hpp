#pragma once
// The One-Third-Rule consensus algorithm of the Heard-Of model
// (Charron-Bost & Schiper, "The Heard-Of model", cited as [8]).
//
// Every round, each process sends its estimate to all and then:
//   * if it heard more than 2n/3 processes, it adopts the smallest
//     value occurring most often among the heard estimates;
//   * if additionally some value was heard from more than 2n/3
//     processes, it decides that value.
//
// Safety holds under ANY heard-of assignment (no communication
// predicate needed): two decided values would each need > 2n/3
// supporters in their rounds, and the adoption rule preserves a value
// once > 2n/3 of the processes hold it.  Termination needs eventually
// "good" rounds (e.g. two consecutive uniform rounds where everybody
// hears the same > 2n/3 set), which FullHo provides immediately.
//
// In this library the algorithm plays two roles: (i) a second,
// structurally different consensus protocol exercising the HO substrate
// and (ii) another demonstration of the paper's Discussion claim -- the
// partitioning adversary cannot make 1/3-rule *disagree* (blocks smaller
// than 2n/3 never decide), so the Theorem-1-style violation manifests as
// a termination failure instead: the conditions of Theorem 1 fail at
// (dec-Dbar), which is exactly how a sound algorithm escapes the trap.

#include <memory>

#include "sim/rounds.hpp"

namespace ksa::algo {

/// See file comment.
class OneThirdRule final : public ho::RoundAlgorithm {
public:
    /// `max_rounds` bounds how long a behavior keeps trying (the HO
    /// executor stops earlier once everybody alive decided).
    std::unique_ptr<ho::RoundBehavior> make_behavior(ProcessId id, int n,
                                                     Value input) const override;
    std::string name() const override { return "one-third-rule"; }
};

}  // namespace ksa::algo
