#include "exec/task_scheduler.hpp"

// src/exec/ is the one layer allowed to use threading primitives; the
// ksa_lint rule `threading-outside-exec` enforces the boundary.
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "check/contract.hpp"
#include "exec/steal_deque.hpp"

namespace ksa::exec {

int hardware_threads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

namespace {

/// splitmix64 mix step (same finalizer family as sim/digest.hpp and
/// chaos/resilience.cpp): drives victim selection from a per-worker
/// seed instead of wall clocks or std::random_device, so the lint
/// raw-random rule keeps holding.  Steal order is timing-dependent
/// anyway; the mixer only decorrelates the victim sweep across
/// workers so they do not all hammer deque 0.
std::uint64_t mix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

}  // namespace

struct TaskScheduler::Impl {
    // Scheduler configuration --------------------------------------------
    int slots = 1;                     ///< effective parallelism (>= 1)
    int requested = 1;                 ///< pre-clamp logical parallelism
    std::vector<std::thread> workers;  ///< slots - 1 OS threads

    // Region handoff state, guarded by `mu` ------------------------------
    std::mutex mu;
    std::condition_variable work_cv;   ///< workers wait for a new region
    std::condition_variable done_cv;   ///< the caller waits for the workers
    std::uint64_t generation = 0;  ///< bumped per region // ksa: guarded_by(mu)
    bool shutting_down = false;    // ksa: guarded_by(mu)
    int active = 0;  ///< workers still inside drain() // ksa: guarded_by(mu)

    // Region work state, published by the generation handshake: written
    // under `mu` BEFORE the generation bump, read by workers only AFTER
    // they observed the new generation under `mu`, never written while
    // a region is in flight (the caller waits for active == 0 before
    // touching it again) -- so drain/run_chunk may read it lock-free.
    std::size_t count = 0;   ///< items of the current region
    std::size_t grain = 1;   ///< items per chunk
    std::size_t n_chunks = 0;
    const std::function<void(std::size_t, int)>* fn = nullptr;
    std::vector<std::exception_ptr> chunk_errors;  ///< slot per chunk
    std::unique_ptr<StealDeque[]> deques;          ///< one per worker slot

    // Cross-thread region progress: how many chunks have not finished
    // executing.  Decremented exactly once per chunk (by whoever ran
    // it); drain() terminates on 0 because chunks are only ever
    // created during region setup -- an empty sweep with chunks still
    // outstanding means they are in flight elsewhere, not lost.
    std::atomic<std::size_t> chunks_left{0};
    std::atomic<std::uint64_t> steals{0};  ///< cumulative, observability only

    /// Chunk c covers [c*grain, min(count, (c+1)*grain)): pure
    /// arithmetic on (count, grain), independent of timing and of who
    /// runs it, so the work partition is deterministic.
    // ksa: wait_free -- runs outside any lock; it must never block, or
    // stealing convoys behind it.
    void run_chunk(std::size_t c, int w) noexcept {
        const std::size_t begin = c * grain;
        std::size_t end = begin + grain;
        if (end > count) end = count;
        try {
            for (std::size_t i = begin; i < end; ++i) (*fn)(i, w);
        } catch (...) {
            // First throw wins inside a chunk (the rest is skipped);
            // the caller re-throws the lowest chunk's slot, which
            // together select the lowest throwing item index overall.
            chunk_errors[c] = std::current_exception();
        }
        chunks_left.fetch_sub(1, std::memory_order_acq_rel);
    }

    /// Worker slot w's share of the region: drain the own deque LIFO,
    /// then steal the oldest chunk of pseudo-random victims until every
    /// chunk of the region has finished executing.
    void drain(int w) {
        std::uint64_t rng =
            0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(w + 1);
        std::size_t c = 0;
        while (true) {
            if (deques[w].pop_bottom(c)) {
                run_chunk(c, w);
                continue;
            }
            if (chunks_left.load(std::memory_order_acquire) == 0) return;
            bool stole = false;
            for (int attempt = 0; attempt < slots && !stole; ++attempt) {
                const int victim = static_cast<int>(
                    mix64(rng) % static_cast<std::uint64_t>(slots));
                if (victim == w || deques[victim].looks_empty()) continue;
                if (deques[victim].steal_top(c)) {
                    steals.fetch_add(1, std::memory_order_relaxed);
                    run_chunk(c, w);
                    stole = true;
                }
            }
            if (!stole) {
                // Nothing visibly stealable but chunks still
                // outstanding: they are in flight (or a CAS was lost
                // to a peer).  Yield and re-sweep; no new chunks can
                // appear, so this loop is bounded by region progress.
                if (chunks_left.load(std::memory_order_acquire) == 0) return;
                std::this_thread::yield();
            }
        }
    }

    void worker_loop(int w) {
        std::uint64_t seen = 0;
        while (true) {
            {
                std::unique_lock<std::mutex> lock(mu);
                work_cv.wait(lock, [&] {
                    return shutting_down || generation != seen;
                });
                if (shutting_down) return;
                seen = generation;
            }
            drain(w);
            {
                std::lock_guard<std::mutex> lock(mu);
                // The caller may not recycle region state until every
                // worker left drain(), even ones that woke late and
                // found nothing: `active` counts them all out.
                if (--active == 0) done_cv.notify_all();
            }
        }
    }
};

TaskScheduler::TaskScheduler(int threads)
    : TaskScheduler(threads, /*oversubscribe=*/false) {}

TaskScheduler::TaskScheduler(int threads, bool oversubscribe)
    : impl_(std::make_unique<Impl>()) {
    const int requested = threads < 1 ? 1 : threads;
    int slots = requested;
    if (!oversubscribe && slots > hardware_threads())
        slots = hardware_threads();
    impl_->requested = requested;
    impl_->slots = slots;
    impl_->deques = std::make_unique<StealDeque[]>(
        static_cast<std::size_t>(slots));
    // Worker w owns deque w; the caller's thread owns deque slots - 1.
    for (int w = 0; w + 1 < slots; ++w)
        impl_->workers.emplace_back([this, w] { impl_->worker_loop(w); });
}

TaskScheduler::~TaskScheduler() {
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->shutting_down = true;
    }
    impl_->work_cv.notify_all();
    for (std::thread& t : impl_->workers) t.join();
}

int TaskScheduler::size() const { return impl_->slots; }

int TaskScheduler::requested() const { return impl_->requested; }

std::uint64_t TaskScheduler::steal_count() const {
    return impl_->steals.load(std::memory_order_relaxed);
}

// ksa: guarded_by(mu)
void TaskScheduler::run_chunked(
        std::size_t count, std::size_t grain,
        const std::function<void(std::size_t, int)>& fn) {
    KSA_REQUIRE(fn != nullptr, "TaskScheduler::run_chunked: null function");
    if (count == 0) return;
    Impl& im = *impl_;
    if (grain == 0) grain = auto_grain(count, im.slots);
    const std::size_t n_chunks = (count + grain - 1) / grain;
    if (im.slots == 1 || n_chunks == 1) {
        // Reference path: inline, in index order, first error wins --
        // the behavior every parallel region reproduces byte-for-byte.
        for (std::size_t i = 0; i < count; ++i) fn(i, 0);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(im.mu);
        im.count = count;
        im.grain = grain;
        im.n_chunks = n_chunks;
        im.fn = &fn;
        im.chunk_errors.assign(n_chunks, nullptr);
        im.chunks_left.store(n_chunks, std::memory_order_relaxed);
        im.active = im.slots - 1;
        // Deal chunks to deques in index order: worker w gets the
        // contiguous block [n_chunks*w/slots, n_chunks*(w+1)/slots),
        // pushed in reverse so the owner pops it in ascending order
        // (cache-warm, and matching the sequential visit order) while
        // thieves take from the far end of the block.
        const std::size_t s = static_cast<std::size_t>(im.slots);
        for (std::size_t w = 0; w < s; ++w) {
            const std::size_t begin = n_chunks * w / s;
            const std::size_t end = n_chunks * (w + 1) / s;
            im.deques[w].reset(end > begin ? end - begin : 1);
            for (std::size_t c = end; c > begin; --c)
                im.deques[w].push_bottom(c - 1);
        }
        ++im.generation;
    }
    im.work_cv.notify_all();

    // The caller participates as the last worker slot, then waits for
    // every worker to leave the region before recycling its state.
    im.drain(im.slots - 1);
    {
        std::unique_lock<std::mutex> lock(im.mu);
        if (im.active != 0)
            im.done_cv.wait(lock, [&] { return im.active == 0; });
        im.fn = nullptr;
    }

    // Deterministic error reporting: the lowest chunk's exception,
    // which is the lowest throwing item's (chunks are index-ordered
    // and each stores its first throw).
    for (const std::exception_ptr& e : im.chunk_errors)
        if (e) std::rethrow_exception(e);
}

}  // namespace ksa::exec
