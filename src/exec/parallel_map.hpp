#pragma once
// Order-preserving parallel combinators (see thread_pool.hpp for the
// determinism discipline this layer enforces).
//
// parallel_map_deterministic is the repository's one idiom for "make a
// sweep parallel": evaluate fn(0..count-1) on a pool, return the
// results *in input order*.  Because each invocation writes only its
// own pre-allocated slot and the caller consumes slots sequentially,
// the returned vector is byte-identical for every thread count --
// which is exactly the property the sweep reports
// (chaos::resilience_sweep, core::border_map, the theorem benches) and
// the layer-parallel explorer BFS are tested for.
//
// Recipe for parallelizing a new sweep (doc/performance.md §"Adding a
// parallel sweep" walks through a full example):
//
//   1. materialize the iteration space into an index-addressable list
//      of *independent* work items (no shared mutable state; seeds and
//      parameters derived from the item, never from a shared counter);
//   2. results = parallel_map_deterministic(threads, items.size(), fn);
//   3. fold `results` into the report sequentially, in input order;
//   4. add a 1-thread-vs-N-thread byte-identity test.

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"

namespace ksa::exec {

/// Evaluates fn(i) for i in [0, count) on `pool` and returns the
/// results in input order.  R must be default-constructible and
/// move-assignable.  fn is invoked concurrently on distinct indices;
/// it must not touch shared mutable state.
///
/// `min_parallel` is the adaptive sequential fallback: when count is
/// below it (or the pool has a single worker), the map runs inline on
/// the calling thread -- for tiny batches the per-task handoff costs
/// more than the work (the explorer's sub-millisecond layers showed
/// fast_mt_ms > fast_ms before this).  The fallback runs the same fn
/// over the same indices into the same slots, so results stay
/// byte-identical to the parallel path.  0 keeps the old
/// always-dispatch behavior.
// ksa: thread_safe -- stateless; all shared state is the caller's pool.
template <typename Fn>
auto parallel_map_deterministic(ThreadPool& pool, std::size_t count, Fn&& fn,
                                std::size_t min_parallel = 0)
        -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    std::vector<R> out(count);
    if (pool.size() <= 1 || count < min_parallel) {
        for (std::size_t i = 0; i < count; ++i) out[i] = fn(i);
        return out;
    }
    pool.run_indexed(count, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
}

/// Convenience overload owning a throwaway pool: the usual entry point
/// for one-shot sweeps.  `threads <= 1` runs inline on the caller's
/// thread (the reference behavior).
// ksa: thread_safe -- owns its pool for the duration of the call.
template <typename Fn>
auto parallel_map_deterministic(int threads, std::size_t count, Fn&& fn)
        -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
    ThreadPool pool(threads);
    return parallel_map_deterministic(pool, count, std::forward<Fn>(fn));
}

}  // namespace ksa::exec
