#pragma once
// Order-preserving parallel combinators (see task_scheduler.hpp for
// the determinism discipline this layer enforces).
//
// parallel_map_grained is the repository's idiom for "make a sweep
// parallel": evaluate fn(0..count-1, worker) on a work-stealing
// scheduler, return the results *in input order*.  Because each
// invocation writes only its own pre-allocated slot and the caller
// consumes slots sequentially, the returned vector is byte-identical
// for every thread count and every grain -- which is exactly the
// property the sweep reports (chaos::resilience_sweep,
// core::border_map, the theorem benches) and the layer-parallel
// explorer BFS are tested for.  The worker argument (in
// [0, sched.size())) exists for per-worker scratch reuse: index a
// scratch array with it, never a shared object.
//
// Recipe for parallelizing a new sweep (doc/performance.md §"Adding a
// parallel sweep" walks through a full example):
//
//   1. materialize the iteration space into an index-addressable list
//      of *independent* work items (no shared mutable state; seeds and
//      parameters derived from the item, never from a shared counter);
//   2. results = parallel_map_grained(sched, items.size(), grain, fn);
//      grain 0 = auto; grain 1 when items are few and individually
//      expensive (a sweep of model-checking cells);
//   3. fold `results` into the report sequentially, in input order;
//   4. add a 1-thread-vs-N-thread byte-identity test.
//
// parallel_map_deterministic is the legacy ThreadPool-surface
// equivalent, kept as a compatibility shim for call sites and analyses
// written against it.

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/task_scheduler.hpp"
#include "exec/thread_pool.hpp"

namespace ksa::exec {

/// Evaluates fn(i, worker) for i in [0, count) on `sched` and returns
/// the results in input order.  R must be default-constructible and
/// move-assignable.  fn is invoked concurrently on distinct indices;
/// it must not touch shared mutable state (per-worker scratch indexed
/// by the worker argument is the sanctioned exception).
///
/// `grain` is the chunk size handed to TaskScheduler::run_chunked
/// (0 = auto_grain).  `min_parallel` is the sequential fallback: when
/// count is below it (or the scheduler has a single slot), the map
/// runs inline on the calling thread as worker 0 -- for tiny batches
/// the per-region handoff costs more than the work.  The fallback runs
/// the same fn over the same indices into the same slots, so results
/// stay byte-identical to the parallel path.  Pass
/// TaskScheduler::sequential_threshold(sched.size()) unless you have a
/// measured reason not to.
// ksa: thread_safe -- stateless; all shared state is the caller's
// scheduler.
template <typename Fn>
auto parallel_map_grained(TaskScheduler& sched, std::size_t count,
                          std::size_t grain, Fn&& fn,
                          std::size_t min_parallel = 0)
        -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t, int>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t, int>>;
    std::vector<R> out(count);
    if (sched.size() <= 1 || count < min_parallel) {
        for (std::size_t i = 0; i < count; ++i) out[i] = fn(i, 0);
        return out;
    }
    sched.run_chunked(count, grain, [&out, &fn](std::size_t i, int w) {
        out[i] = fn(i, w);
    });
    return out;
}

/// Legacy surface: evaluates fn(i) for i in [0, count) on `pool` and
/// returns the results in input order.  `min_parallel` as above; 0
/// keeps the old always-dispatch behavior.
// ksa: thread_safe -- stateless; all shared state is the caller's pool.
template <typename Fn>
auto parallel_map_deterministic(ThreadPool& pool, std::size_t count, Fn&& fn,
                                std::size_t min_parallel = 0)
        -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    std::vector<R> out(count);
    if (pool.size() <= 1 || count < min_parallel) {
        for (std::size_t i = 0; i < count; ++i) out[i] = fn(i);
        return out;
    }
    pool.run_indexed(count, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
}

/// Convenience overload owning a throwaway pool: the legacy entry
/// point for one-shot sweeps.  `threads <= 1` runs inline on the
/// caller's thread (the reference behavior).
// ksa: thread_safe -- owns its pool for the duration of the call.
template <typename Fn>
auto parallel_map_deterministic(int threads, std::size_t count, Fn&& fn)
        -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
    ThreadPool pool(threads);
    return parallel_map_deterministic(pool, count, std::forward<Fn>(fn));
}

}  // namespace ksa::exec
