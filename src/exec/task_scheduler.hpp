#pragma once
// Work-stealing task scheduler: the execution core behind every
// parallel path in the repository (explorer layer-parallel BFS,
// resilience sweeps, border maps, theorem benches).
//
// Why work stealing.  The previous ThreadPool partitioned [0, count)
// into exactly `threads` static chunks, so one expensive item -- a
// skewed BFS layer, an uneven sweep cell -- serialized its whole
// thread's share while the other cores idled at the barrier
// (BENCH_sweep.json recorded a 0.979x "speedup" at 4 threads).  Here a
// region is split into many grain-sized chunks, dealt to per-worker
// Chase-Lev deques (steal_deque.hpp); each worker drains its own deque
// LIFO and, when empty, steals the oldest chunk of a pseudo-randomly
// chosen victim.  Load imbalance is repaired at chunk granularity
// instead of being baked in at region start.
//
// The determinism contract (PR-1) survives unchanged, because stealing
// moves WORK between workers, never RESULTS between slots:
//
//   * the chunk -> index-range map is pure arithmetic on
//     (count, grain): chunk c covers [c*grain, min(count, (c+1)*grain));
//   * work items are independent and each writes only its own output
//     slot; the caller consumes slots in input order;
//   * an exception escaping an item is stored in its chunk's slot and,
//     after the region completes, the lowest chunk index is re-thrown
//     -- which is the lowest throwing item index, for every grain and
//     every thread count;
//   * the one timing-dependent quantity, who stole what, is surfaced
//     only through steal_count() and must never reach a report.
//
// So N-thread output is byte-identical to 1-thread output at any
// grain, any thread count, on any machine -- tests/test_exec.cpp and
// the TSan preset hold the implementation to it.
//
// Oversubscription: requested parallelism is clamped to
// hardware_threads() by default.  Running 4 workers on 1 core is pure
// overhead (the pre-clamp flagship bench measured fast_mt_ms > fast_ms
// for exactly this reason); callers keep asking for N "logical"
// threads and the scheduler spends only what the machine has.  Tests
// that need real contention on small machines pass oversubscribe.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace ksa::exec {

/// Best-effort hardware concurrency, never less than 1.
int hardware_threads();  // ksa: thread_safe

/// A fixed-size pool of persistent workers executing grain-chunked
/// index regions with work stealing.  Construction with an effective
/// size of 1 creates no workers; run_chunked then executes inline on
/// the caller's thread (the reference behavior every parallel run must
/// reproduce byte-for-byte).
class TaskScheduler {
public:
    /// Grain bounds for auto_grain / sequential_threshold.  kMinGrain
    /// keeps per-chunk handoff amortized over at least a few items;
    /// kMaxGrain caps a chunk so stealing can still repair imbalance
    /// inside very large regions.
    static constexpr std::size_t kMinGrain = 4;
    static constexpr std::size_t kMaxGrain = 1024;

    /// Spawns min(threads, hardware_threads()) - 1 workers; the
    /// caller's thread participates in every region, so the effective
    /// size() CPUs are busy.  threads < 1 is treated as 1.
    // ksa: thread_safe -- construction happens-before any worker runs.
    explicit TaskScheduler(int threads);

    /// Test entry: oversubscribe = true skips the hardware clamp so a
    /// 1-core CI box can still exercise real cross-thread stealing.
    // ksa: thread_safe -- construction happens-before any worker runs.
    TaskScheduler(int threads, bool oversubscribe);

    ~TaskScheduler();

    TaskScheduler(const TaskScheduler&) = delete;
    TaskScheduler& operator=(const TaskScheduler&) = delete;

    /// Effective worker slots (>= 1, after the hardware clamp).  This
    /// is the bound for per-worker scratch arrays: the worker id
    /// passed to run_chunked's fn is always in [0, size()).
    int size() const;  // ksa: thread_safe -- immutable after construction

    /// The parallelism the caller asked for, before the clamp.
    int requested() const;  // ksa: thread_safe -- immutable after construction

    /// Cumulative count of successful steals across all regions run on
    /// this scheduler.  Timing-dependent by design: observability
    /// only, never report material.
    std::uint64_t steal_count() const;  // ksa: thread_safe -- relaxed atomic

    // ksa: guarded_by(mu) -- region handoff state lives behind
    // Impl::mu; the definition in task_scheduler.cpp is verified to
    // take the lock (lint rule lock-discipline).
    /// Runs fn(i, w) for every i in [0, count) exactly once, where w
    /// in [0, size()) identifies the executing worker slot (stable for
    /// the duration of one item -- index per-worker scratch with it).
    /// Work is cut into ceil(count/grain) chunks (grain == 0 selects
    /// auto_grain), dealt across the workers' deques in index order
    /// and rebalanced by stealing.  Blocks until every item returned.
    /// fn must be safe to invoke concurrently on distinct indices.  If
    /// items throw, the exception of the lowest item index is
    /// re-thrown after the region completes.
    void run_chunked(std::size_t count, std::size_t grain,
                     const std::function<void(std::size_t, int)>& fn);

    /// The default grain: about 8 chunks per worker, clamped to
    /// [kMinGrain, kMaxGrain].  Pure in (count, threads) -- never
    /// timing-dependent, so a recorded grain is reproducible.
    // ksa: wait_free -- pure arithmetic.
    static std::size_t auto_grain(std::size_t count, int threads) {
        const std::size_t t = threads < 1 ? 1 : static_cast<std::size_t>(threads);
        const std::size_t target = count / (t * 8);
        if (target < kMinGrain) return kMinGrain;
        if (target > kMaxGrain) return kMaxGrain;
        return target;
    }

    /// Below this item count a region is not worth dispatching: with
    /// fewer than kMinGrain items per worker the handoff overhead
    /// exceeds the work (the explorer's sub-millisecond layers showed
    /// fast_mt_ms > fast_ms before this fallback existed).  Callers
    /// use it as the auto value for their sequential-fallback knobs.
    // ksa: wait_free -- pure arithmetic.
    static std::size_t sequential_threshold(int threads) {
        return kMinGrain * static_cast<std::size_t>(threads < 1 ? 1 : threads);
    }

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace ksa::exec
