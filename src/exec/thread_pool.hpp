#pragma once
// The execution layer: deterministic parallelism.
//
// Everything in this repository is bound by the PR-1 determinism
// contract: reports, sweeps and exploration results must be
// byte-identical across runs -- and, since this layer exists, across
// thread counts.  src/exec/ is the ONLY place in src/ where threading
// primitives may appear (ksa_lint rule `threading-outside-exec`).
//
// The execution core is the work-stealing TaskScheduler
// (task_scheduler.hpp, which also states the determinism discipline in
// full).  ThreadPool survives as a thin compatibility shim over it,
// preserving the original barrier-pool surface -- run_indexed over
// `size()` static contiguous chunks -- for call sites and analyses
// written against it: the flow analyzer's sync-point model
// (doc/analysis.md §3) recognizes run_indexed as a parallel entry
// point, and existing tests pin its chunking and error semantics.  New
// parallel code should use TaskScheduler / parallel_map_grained
// directly and say how fine its grain is.

#include <cstddef>
#include <functional>
#include <memory>

#include "exec/task_scheduler.hpp"

namespace ksa::exec {

/// Compatibility shim over TaskScheduler: the legacy fixed-chunk pool
/// surface.  `size()` reports the REQUESTED parallelism (the legacy
/// contract callers and tests rely on); the scheduler underneath still
/// clamps actual workers to the hardware, so an oversized ThreadPool
/// no longer oversubscribes the machine.
class ThreadPool {
public:
    /// A pool of `threads` logical workers (threads < 1 is treated as
    /// 1).  The caller's thread participates in every run.
    // ksa: thread_safe -- construction happens-before any worker runs.
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// The configured (requested) parallelism (>= 1).
    int size() const;  // ksa: thread_safe -- immutable after construction

    /// Runs fn(i) for every i in [0, count) exactly once, partitioned
    /// into at most size() static contiguous chunks in index order,
    /// and blocks until every call returned.  fn must be safe to
    /// invoke from multiple threads on distinct indices.  If calls
    /// throw, the exception of the lowest item index is re-thrown
    /// after all chunks finished (deterministic error reporting).
    // ksa: thread_safe -- delegates to TaskScheduler::run_chunked,
    // which owns the locking.
    void run_indexed(std::size_t count,
                     const std::function<void(std::size_t)>& fn);

private:
    TaskScheduler sched_;
    int requested_;
};

}  // namespace ksa::exec
