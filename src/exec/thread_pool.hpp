#pragma once
// The execution layer: deterministic parallelism.
//
// Everything in this repository is bound by the PR-1 determinism
// contract: reports, sweeps and exploration results must be
// byte-identical across runs -- and, since this layer exists, across
// thread counts.  src/exec/ is the ONLY place in src/ where threading
// primitives may appear (ksa_lint rule `threading-outside-exec`); every
// other layer expresses parallelism through the order-preserving
// combinators of parallel_map.hpp, which confine all nondeterminism
// (OS scheduling) to *when* work happens, never to *what* is produced:
//
//   * work items must be independent (no shared mutable state);
//   * items are partitioned into static, index-ordered contiguous
//     chunks -- the partition depends only on (count, threads), not on
//     timing;
//   * each item writes only its own output slot, and the caller
//     consumes the slots in input order;
//   * an exception escaping an item cancels nothing but is re-thrown
//     deterministically: after all items ran, the one with the lowest
//     index wins.
//
// Under this discipline, N-thread output is byte-identical to 1-thread
// output by construction; tests/test_exec.cpp and the TSan preset hold
// the implementation to it.

#include <cstddef>
#include <functional>
#include <memory>

namespace ksa::exec {

/// Best-effort hardware concurrency, never less than 1.
int hardware_threads();  // ksa: thread_safe

/// A fixed-size pool of worker threads executing index ranges.
/// Construction with `threads <= 1` creates no workers at all; every
/// run_indexed call then executes inline on the caller's thread, which
/// is the reference behavior the parallel path must reproduce.
class ThreadPool {
public:
    /// Spawns `threads - 1` workers (the caller's thread is the last
    /// worker of every run_indexed call, so `threads` CPUs are busy).
    // ksa: thread_safe -- construction happens-before any worker runs.
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// The configured parallelism (>= 1).
    int size() const;  // ksa: thread_safe -- immutable after construction

    // ksa: guarded_by(mu) -- the job handoff state lives behind
    // Impl::mu; the definition in thread_pool.cpp is verified to take
    // the lock (lint rule lock-discipline).
    /// Runs fn(i) for every i in [0, count) exactly once, partitioned
    /// into size() static contiguous chunks in index order, and blocks
    /// until every call returned.  fn must be safe to invoke from
    /// multiple threads on distinct indices.  If calls throw, the
    /// exception of the lowest chunk index is re-thrown after all
    /// chunks finished (deterministic error reporting).
    void run_indexed(std::size_t count,
                     const std::function<void(std::size_t)>& fn);

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace ksa::exec
