#pragma once
// The execution layer's wall clock.
//
// Everything under src/sim and src/chaos is deterministic by decree:
// ksa_lint's `wall-clock-outside-bench` rule bans std::chrono clocks
// there, because a time-dependent branch would break byte-identical
// replay.  Graceful degradation still needs *some* notion of elapsed
// time -- a resilience-sweep trial on a pathological profile must abort
// to `inconclusive` rather than stall ctest.  This header is the one
// sanctioned source of wall time below bench/: it lives in src/exec
// (exempt from the rule, like the threading primitives), and callers are
// expected to use it only to *stop* work, never to influence what a
// run computes.

#include <cstdint>

namespace ksa::exec {

/// Milliseconds on a monotonic clock, for elapsed-time budgets.  The
/// absolute value is meaningless; only differences are.
// ksa: thread_safe -- stateless read of the monotonic clock.
std::int64_t steady_now_ms();

}  // namespace ksa::exec
