#pragma once
// Chase-Lev-style work-stealing deque (exec-layer internal).
//
// One deque per scheduler worker, holding chunk ids of the current
// parallel region.  The OWNER pushes and pops at the bottom (LIFO, so
// it drains its own share in cache-warm order); THIEVES steal from the
// top (FIFO, so a steal takes the chunk the owner would reach last --
// the two ends only collide on the final element, where a CAS on
// `top_` arbitrates).  Capacity is fixed per region: every chunk of a
// region is pushed before the workers are released, so the buffer
// never grows mid-flight and no reclamation protocol is needed.
//
// Determinism note (thread_pool.hpp states the layer's contract): the
// deque only decides WHICH WORKER runs a chunk and WHEN -- never what
// the chunk computes or where its results go.  Chunk ids map to index
// ranges by pure arithmetic on (count, grain), and every index writes
// only its own output slot, so scheduling order is invisible in the
// output.  Stealing order is the one intentionally nondeterministic
// quantity in src/exec/ and is surfaced only as an observability
// counter (TaskScheduler::steal_count).
//
// Memory-order discipline: every cross-thread access goes through a
// std::atomic with acquire/release (seq_cst where the textbook
// algorithm needs the total order) -- no standalone fences, which
// keeps the implementation inside ThreadSanitizer's happens-before
// model (the tsan preset runs the exec suite over it).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "check/contract.hpp"

namespace ksa::exec {

/// Fixed-capacity work-stealing deque of chunk ids.  Single owner
/// (push_bottom/pop_bottom), any number of concurrent thieves
/// (steal_top).  reset() may only be called while no worker touches
/// the deque (the scheduler calls it during region setup, before the
/// generation handshake releases the workers).
class StealDeque {
public:
    /// Re-initializes for a region of up to `capacity` chunks and
    /// empties the deque.  NOT safe concurrently with push/pop/steal;
    /// the caller must be the only thread touching the deque.
    // ksa: thread_safe -- region setup only, sequenced before the
    // worker handshake by the scheduler's mutex.
    void reset(std::size_t capacity) {
        KSA_REQUIRE(capacity > 0, "StealDeque::reset: capacity must be > 0");
        if (slots_.size() < capacity) {
            // vector<atomic> cannot resize through assignment; rebuild.
            std::vector<std::atomic<std::size_t>> fresh(capacity);
            slots_.swap(fresh);
        }
        top_.store(0, std::memory_order_relaxed);
        bottom_.store(0, std::memory_order_relaxed);
    }

    /// Owner only: appends a chunk id at the bottom.  The scheduler
    /// pre-fills every deque during region setup; capacity was sized
    /// for the whole region, so the buffer cannot wrap into live data.
    // ksa: wait_free -- one slot store + one release store.
    void push_bottom(std::size_t v) {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        slots_[index(b)].store(v, std::memory_order_relaxed);
        // Publish the slot before the new bottom becomes visible to
        // thieves (steal_top acquires bottom_).
        bottom_.store(b + 1, std::memory_order_release);
    }

    /// Owner only: takes the most recently pushed chunk.  Returns
    /// false when the deque is empty (or the last element was lost to
    /// a concurrent thief -- the CAS on top_ decides).
    // ksa: wait_free -- bounded sequence of atomic ops, no loop.
    bool pop_bottom(std::size_t& out) {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        // Reserve the bottom slot BEFORE reading top: a thief that
        // observes the old bottom may still take this element, which
        // the t == b CAS below arbitrates.
        bottom_.store(b, std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        if (t > b) {
            // Empty: undo the reservation.
            bottom_.store(b + 1, std::memory_order_relaxed);
            return false;
        }
        out = slots_[index(b)].load(std::memory_order_relaxed);
        if (t == b) {
            // Last element: race the thieves for it.
            const bool won = top_.compare_exchange_strong(
                    t, t + 1, std::memory_order_seq_cst,
                    std::memory_order_seq_cst);
            bottom_.store(b + 1, std::memory_order_relaxed);
            return won;
        }
        return true;
    }

    /// Thief: takes the oldest chunk.  Returns false when empty or
    /// when it lost the top CAS to another thief / the owner's
    /// last-element pop (the caller moves on to the next victim).
    // ksa: wait_free -- one CAS attempt, no retry loop.
    bool steal_top(std::size_t& out) {
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
        if (t >= b) return false;
        out = slots_[index(t)].load(std::memory_order_relaxed);
        return top_.compare_exchange_strong(t, t + 1,
                                            std::memory_order_seq_cst,
                                            std::memory_order_seq_cst);
    }

    /// Racy size hint for victim selection; never used for
    /// correctness decisions.
    // ksa: wait_free -- two relaxed loads.
    bool looks_empty() const {
        return top_.load(std::memory_order_relaxed) >=
               bottom_.load(std::memory_order_relaxed);
    }

private:
    // ksa: wait_free -- pure arithmetic, i never negative in practice
    // (top_/bottom_ start at 0 and only grow within a region).
    std::size_t index(std::int64_t i) const {
        return static_cast<std::size_t>(i) % slots_.size();
    }

    std::vector<std::atomic<std::size_t>> slots_;
    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
};

}  // namespace ksa::exec
