#include "exec/thread_pool.hpp"

#include "check/contract.hpp"

namespace ksa::exec {

ThreadPool::ThreadPool(int threads)
    : sched_(threads), requested_(threads < 1 ? 1 : threads) {}

ThreadPool::~ThreadPool() = default;

int ThreadPool::size() const { return requested_; }

void ThreadPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
    KSA_REQUIRE(fn != nullptr, "ThreadPool::run_indexed: null function");
    if (count == 0) return;
    // Legacy chunking: at most `requested_` contiguous chunks, i.e.
    // grain = ceil(count / requested_).  Going through run_chunked
    // keeps the legacy surface on the exact same execution core (and
    // the same per-chunk error slots) as the grained callers.
    const std::size_t t = static_cast<std::size_t>(requested_);
    const std::size_t grain = (count + t - 1) / t;
    sched_.run_chunked(count, grain,
                       [&fn](std::size_t i, int /*worker*/) { fn(i); });
}

}  // namespace ksa::exec
