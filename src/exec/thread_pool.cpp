#include "exec/thread_pool.hpp"

// src/exec/ is the one layer allowed to use threading primitives; the
// ksa_lint rule `threading-outside-exec` enforces the boundary.
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "check/contract.hpp"

namespace ksa::exec {

int hardware_threads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

struct ThreadPool::Impl {
    // Pool configuration -------------------------------------------------
    int threads = 1;                   ///< logical parallelism (>= 1)
    std::vector<std::thread> workers;  ///< threads - 1 OS threads

    // Job state, guarded by `mu` ----------------------------------------
    std::mutex mu;
    std::condition_variable work_cv;   ///< workers wait for a new job
    std::condition_variable done_cv;   ///< the caller waits for completion
    std::uint64_t generation = 0;  ///< bumped per run_indexed // ksa: guarded_by(mu)
    bool shutting_down = false;    // ksa: guarded_by(mu)

    // count/fn/chunk_errors are published by the generation handshake:
    // written under `mu` BEFORE the generation bump, read by workers
    // only AFTER they observed the new generation under `mu`, never
    // written while a job is in flight -- so run_chunk may read them
    // lock-free.  The handshake, not the mutex, is the hand-off.
    std::size_t count = 0;                          ///< items of current job
    const std::function<void(std::size_t)>* fn = nullptr;
    int chunks_left = 0;  ///< unfinished chunks // ksa: guarded_by(mu)
    std::vector<std::exception_ptr> chunk_errors;   ///< slot per chunk

    /// Static, index-ordered chunking: chunk c of t covers
    /// [c*count/t, (c+1)*count/t) -- a pure function of (count, t, c),
    /// independent of timing, so the work partition is deterministic.
    // ksa: wait_free -- pure arithmetic on the hot path.
    static std::size_t chunk_begin(std::size_t count, int t, int c) {
        return count * static_cast<std::size_t>(c) /
               static_cast<std::size_t>(t);
    }

    // ksa: wait_free -- runs between the generation handshake and the
    // chunks_left decrement; it must never lock or block, or chunks
    // serialize and the pool degrades to a convoy.
    void run_chunk(int chunk) noexcept {
        const std::size_t begin = chunk_begin(count, threads, chunk);
        const std::size_t end = chunk_begin(count, threads, chunk + 1);
        try {
            for (std::size_t i = begin; i < end; ++i) (*fn)(i);
        } catch (...) {
            chunk_errors[static_cast<std::size_t>(chunk)] =
                std::current_exception();
        }
    }

    void worker_loop(int chunk) {
        std::uint64_t seen = 0;
        while (true) {
            {
                std::unique_lock<std::mutex> lock(mu);
                work_cv.wait(lock, [&] {
                    return shutting_down || generation != seen;
                });
                if (shutting_down) return;
                seen = generation;
            }
            run_chunk(chunk);
            {
                std::lock_guard<std::mutex> lock(mu);
                if (--chunks_left == 0) done_cv.notify_all();
            }
        }
    }
};

ThreadPool::ThreadPool(int threads) : impl_(std::make_unique<Impl>()) {
    impl_->threads = threads < 1 ? 1 : threads;
    // Worker w runs chunk w; the caller's thread runs the last chunk.
    for (int w = 0; w + 1 < impl_->threads; ++w)
        impl_->workers.emplace_back([this, w] { impl_->worker_loop(w); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->shutting_down = true;
    }
    impl_->work_cv.notify_all();
    for (std::thread& t : impl_->workers) t.join();
}

int ThreadPool::size() const { return impl_->threads; }

// ksa: guarded_by(mu)
void ThreadPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
    KSA_REQUIRE(fn != nullptr, "ThreadPool::run_indexed: null function");
    if (count == 0) return;
    Impl& im = *impl_;
    if (im.threads == 1) {
        // Reference path: inline, in index order, first error wins.
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(im.mu);
        im.count = count;
        im.fn = &fn;
        im.chunks_left = im.threads;
        im.chunk_errors.assign(static_cast<std::size_t>(im.threads), nullptr);
        ++im.generation;
    }
    im.work_cv.notify_all();

    // The caller participates as the last chunk, then waits.
    im.run_chunk(im.threads - 1);
    {
        std::unique_lock<std::mutex> lock(im.mu);
        if (--im.chunks_left != 0)
            im.done_cv.wait(lock, [&] { return im.chunks_left == 0; });
        im.fn = nullptr;
    }

    // Deterministic error reporting: the lowest chunk's exception.
    for (const std::exception_ptr& e : im.chunk_errors)
        if (e) std::rethrow_exception(e);
}

}  // namespace ksa::exec
