#include "exec/clock.hpp"

#include <chrono>

namespace ksa::exec {

std::int64_t steady_now_ms() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace ksa::exec
