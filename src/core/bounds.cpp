#include "core/bounds.hpp"

namespace ksa::core {

bool theorem2_impossible(int n, int f, int k) {
    require(n >= 1 && k >= 1 && f >= 1 && f <= n,
            "theorem2_impossible: need n >= 1, k >= 1, 1 <= f <= n");
    return k * (n - f) <= n - 1;
}

int theorem2_block_size(int n, int f) { return n - f; }

bool theorem8_solvable(int n, int f, int k) {
    require(n >= 1 && k >= 1 && f >= 0 && f < n,
            "theorem8_solvable: need n >= 1, k >= 1, 0 <= f < n");
    return static_cast<long long>(k) * n > static_cast<long long>(k + 1) * f;
}

int theorem8_min_k(int n, int f) {
    for (int k = 1; k <= n; ++k)
        if (theorem8_solvable(n, f, k)) return k;
    return n;  // unreachable for f < n
}

int theorem8_max_f(int n, int k) {
    int best = 0;
    for (int f = 0; f < n; ++f)
        if (theorem8_solvable(n, f, k)) best = f;
    return best;
}

int source_component_bound(int live, int l) {
    require(l >= 1, "source_component_bound: L must be >= 1");
    return live / l;
}

int max_source_components(int n, int delta) {
    require(delta >= 0, "max_source_components: delta must be >= 0");
    return n / (delta + 1);
}

int flooding_bound(int f) { return f + 1; }

bool byzantine_kset_necessary(int n, int f, int k) {
    require(n >= 1 && k >= 1 && f >= 0 && f < n,
            "byzantine_kset_necessary: need n >= 1, k >= 1, 0 <= f < n");
    return static_cast<long long>(k) * n >
           static_cast<long long>(2 * k + 1) * f;
}

int byzantine_max_f(int n, int k) {
    int best = 0;
    for (int f = 0; f < n; ++f)
        if (byzantine_kset_necessary(n, f, k)) best = f;
    return best;
}

bool corollary13_solvable(int n, int k) {
    require(k >= 1 && k <= n - 1, "corollary13_solvable: need 1 <= k <= n-1");
    return k == 1 || k == n - 1;
}

bool theorem10_applies(int n, int k) { return k >= 2 && k <= n - 2; }

}  // namespace ksa::core
