#pragma once
// FLP-style valence classification, built on the bounded explorer.
//
// The valence of an initial configuration is the set of values decidable
// from it.  FLP's combinatorial core is that a would-be consensus
// algorithm tolerating one crash has a *bivalent* initial configuration.
// For the candidate algorithms in this library the explorer can compute
// valence exactly (small n): the union, over a family of crash plans and
// all schedules, of the decision values reachable at quiescence.
//
// Note the correct reading of bivalence (FLP Lemma 2): every
// non-trivial 1-crash-resilient consensus protocol HAS bivalent initial
// configurations -- different runs may decide differently.  Bivalence is
// not a bug; a reachable *violation* (two values decided in ONE run,
// which the explorer reports separately) is.  The pairing of the two
// measurements is the executable FLP dichotomy: correct protocols are
// bivalent yet violation-free on the plans they tolerate; flawed
// candidates are bivalent and violating.

#include <set>
#include <string>
#include <vector>

#include "core/explorer.hpp"

namespace ksa::core {

/// Valence of one initial configuration under one family of crash plans.
struct ValenceResult {
    std::set<Value> reachable;  ///< decidable values (union over plans)
    bool exhaustive = true;     ///< every exploration was exhaustive
    bool bivalent() const { return reachable.size() >= 2; }
};

/// Classifies the configuration (inputs, plans): explores all schedules
/// for each plan and unions the decision values seen at quiescent
/// states.
ValenceResult classify_valence(const Algorithm& algorithm, int n,
                               const std::vector<Value>& inputs,
                               const std::vector<FailurePlan>& plans,
                               int max_depth = 12,
                               std::size_t max_states = 200000);

/// The classic FLP plan family for "one process may crash": no crash,
/// plus each process initially dead.
std::vector<FailurePlan> one_crash_plans(int n);

/// Sweeps all 2^n binary input vectors (values 0/1) and reports which
/// are bivalent (see the file comment for why correct protocols are
/// bivalent on mixed inputs too -- the adversary chooses who crashes).
struct BivalenceSweep {
    int total = 0;
    int bivalent = 0;
    bool exhaustive = true;
    std::vector<std::pair<std::vector<Value>, ValenceResult>> rows;
    std::string summary() const;
};
BivalenceSweep binary_input_sweep(const Algorithm& algorithm, int n,
                                  const std::vector<FailurePlan>& plans,
                                  int max_depth = 12);

}  // namespace ksa::core
