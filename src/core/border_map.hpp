#pragma once
// The paper's solvability landscape, synthesized.
//
// For a given system size n, classifies every (f, k) pair in three
// settings and marks *which technique* decides it:
//
//   * initial crashes (Section VI): EXACT -- solvable iff k*n > (k+1)*f
//     (Theorem 8; both directions are realized by this library);
//   * general crashes, asynchronous/partially synchronous communication:
//     impossible when k*(n-f) <= n-1 (Theorem 2 -- the "easy" proof),
//     solvable when k >= f+1 (flooding); the band in between is where
//     the easy partitioning technique does not reach and algebraic
//     topology is needed (the true border is k <= f, Borowsky-Gafni /
//     Herlihy-Shavit / Saks-Zaharoglou) -- those cells are classified
//     kImpossibleTopology to make the coverage of the paper's technique
//     visible;
//   * the failure detector family (Sigma_k, Omega_k): exact border at
//     k = 1 and k = n-1 (Theorem 10 + Corollary 13).

#include <string>
#include <vector>

#include "sim/types.hpp"

namespace ksa::core {

/// Classification of one cell, with the deciding technique.
enum class Verdict {
    kSolvable,            ///< an algorithm in this library achieves it
    kImpossibleEasy,      ///< Theorems 2/8/10: the paper's reduction
    kImpossibleTopology,  ///< true border (k <= f) but outside the easy
                          ///< technique's reach
};

/// Renders a verdict as a single map character: S / X / x.
char verdict_char(Verdict v);

/// Initial-crash setting (exact, Theorem 8).
Verdict initial_crash_verdict(int n, int f, int k);

/// General-crash asynchronous setting (Theorem 2 + flooding + the
/// topological bound for the gap).
Verdict async_crash_verdict(int n, int f, int k);

/// (Sigma_k, Omega_k) setting (Theorem 10 + Corollary 13); f plays no
/// role ((n-1)-resilience).
Verdict detector_verdict(int n, int k);

/// One row of the rendered map.
struct BorderRow {
    int f = 0;
    std::string initial;   ///< cell chars for k = 1..n-1
    std::string async_;    ///< cell chars for k = 1..n-1
};

/// The full map for system size n, rows f = 1..n-1.
std::vector<BorderRow> border_map(int n);

/// Row-parallel overload: rows are independent (each cell verdict is a
/// pure function of (n, f, k)), computed via
/// exec::parallel_map_deterministic and returned in row order -- the
/// result is byte-identical to border_map(n) for every thread count.
/// Mostly a minimal worked example of the parallel-sweep recipe
/// (doc/performance.md); it pays off for the large-n bench sweeps.
std::vector<BorderRow> border_map(int n, int threads);

/// The detector line for k = 1..n-1.
std::string detector_line(int n);

}  // namespace ksa::core
