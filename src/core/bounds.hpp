#pragma once
// The arithmetic of every solvability border in the paper, in one place.
// Each predicate is documented with the result it encodes; the benches
// sweep these against the empirical engines to confirm that the borders
// the constructions realize are exactly the borders the theorems state.

#include "sim/model.hpp"
#include "sim/types.hpp"

namespace ksa::core {

/// Theorem 2: k-set agreement is impossible with synchronous processes,
/// asynchronous communication, atomic broadcast and receive+send
/// atomicity whenever k <= (n-1)/(n-f), i.e. k*(n-f) <= n-1 -- even if
/// f-1 of the f faults are initial crashes (Corollary 5 extends this to
/// all weaker models).
bool theorem2_impossible(int n, int f, int k);

/// The partition geometry of Theorem 2's proof: l = n-f, blocks D_1..
/// D_{k-1} of size l each, and |D-bar complement| = n - (k-1)l >= l+1
/// (Lemma 3).  True iff the blocks exist, which is exactly
/// theorem2_impossible.
int theorem2_block_size(int n, int f);

/// Theorem 8: with up to f *initial* crashes, k-set agreement is
/// solvable iff k*n > (k+1)*f (equivalently k > f/(n-f)).
bool theorem8_solvable(int n, int f, int k);

/// The smallest k solvable with f initial crashes among n processes.
int theorem8_min_k(int n, int f);

/// The largest number of initial crashes tolerable for k-set agreement
/// among n processes.
int theorem8_max_f(int n, int k);

/// Section VI: with stage-1 threshold L, the heard-from graph has at
/// most floor(live/L) source components, bounding distinct decisions.
int source_component_bound(int live, int l);

/// Lemma 6: a graph with min in-degree delta has a source component of
/// size >= delta+1, and hence at most floor(n/(delta+1)) of them.
int max_source_components(int n, int delta);

/// The classic baseline: flooding with threshold n-f solves exactly
/// (f+1)-set agreement under up to f crashes.
int flooding_bound(int f);

/// The Bouzid-Imbs-Raynal *necessary* condition for Byzantine k-set
/// agreement in asynchronous message-passing systems with up to f
/// Byzantine processes: solvability requires k*n > (2k+1)*f (for k = 1
/// this is the classic n > 3f).  Necessary only -- a cell satisfying it
/// is merely a candidate; the chaos layer's Byzantine sweeps use the
/// predicate to label the (n, k, f) grid and corroborate the impossible
/// side empirically.
bool byzantine_kset_necessary(int n, int f, int k);

/// The largest f for which the Bouzid-Imbs-Raynal necessary condition
/// still holds for (n, k) -- the Byzantine victim budget a sweep cell on
/// the candidate side may spend.
int byzantine_max_f(int n, int k);

/// Corollary 13: (Sigma_k, Omega_k) solves k-set agreement iff k = 1 or
/// k = n-1 (for 1 <= k <= n-1).
bool corollary13_solvable(int n, int k);

/// Theorem 10 applies (the impossible band): 2 <= k <= n-2.
bool theorem10_applies(int n, int k);

}  // namespace ksa::core
