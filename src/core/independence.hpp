#pragma once
// T-independence (Section IV, Definition 6).
//
// An algorithm A satisfies T-independence in M if for every S in T there
// is a run of A in which the processes of S receive messages only from S
// until every process of S has decided or crashed.  The checker
// constructs exactly that run with the partitioning adversary: S is
// isolated, a step budget bounds the attempt, and the witness run is
// returned.  Strong T-independence ("eventually only from S") is implied
// by the same witness (Observation 1.(a) in the other direction: a
// from-the-start isolation run is in particular an eventual one).
//
// Section IV's catalogue of classic progress conditions is provided as
// family generators:
//   * wait-freedom            -> all non-empty subsets of Pi,
//   * obstruction-freedom     -> all singletons,
//   * f-resilience            -> all S with |S| >= n - f,
//   * wait-freedom of p       -> all S containing p (asymmetric).

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/behavior.hpp"
#include "sim/failure_plan.hpp"
#include "sim/fd_oracle.hpp"
#include "sim/run.hpp"

namespace ksa::core {

/// Result of checking one set S of a family.
struct IndependenceWitness {
    std::vector<ProcessId> set;  ///< the S that was checked
    bool holds = false;          ///< S decided in isolation
    Run run;                     ///< the witness (or the failed attempt)
};

/// Factory for the oracle a run needs (return nullptr when the algorithm
/// uses no detector).  Called once per attempted run with the plan in
/// force, so oracles can be plan-dependent.
using OracleFactory =
    std::function<std::unique_ptr<FdOracle>(const FailurePlan&)>;

/// Checks Definition 6 for a single set S: builds the isolation run and
/// reports whether every correct member of S decided while receiving
/// messages only from S.  The returned witness run also releases the
/// delayed traffic afterwards, so it is an admissible run of M.
IndependenceWitness check_set_independence(
        const Algorithm& algorithm, int n, std::vector<Value> inputs,
        const FailurePlan& plan, std::vector<ProcessId> s,
        const OracleFactory& oracle_factory = {}, int budget = 20000);

/// Checks *strong* T-independence for a single set S (Definition 6's
/// second clause): a run where the processes of S **eventually** receive
/// messages only from S until every member decided or crashed.  The
/// witness runs an open prefix of `prefix_steps` steps with unrestricted
/// delivery (so S genuinely interacts with the outside first), then
/// isolates S.  Observation 1.(a) -- strong implies plain -- is
/// exercised by the tests.
IndependenceWitness check_set_strong_independence(
        const Algorithm& algorithm, int n, std::vector<Value> inputs,
        const FailurePlan& plan, std::vector<ProcessId> s,
        const OracleFactory& oracle_factory = {}, int prefix_steps = 6,
        int budget = 20000);

/// Checks every set of a family; returns the witnesses in order.
/// `holds_for_all` is true iff every set held.
struct FamilyIndependence {
    bool holds_for_all = true;
    std::vector<IndependenceWitness> witnesses;
};
FamilyIndependence check_family_independence(
        const Algorithm& algorithm, int n, std::vector<Value> inputs,
        const FailurePlan& plan,
        const std::vector<std::vector<ProcessId>>& family,
        const OracleFactory& oracle_factory = {}, int budget = 20000);

/// All non-empty subsets of {1..n} (wait-freedom); 2^n - 1 sets, so keep
/// n small.
std::vector<std::vector<ProcessId>> wait_free_family(int n);

/// All singletons (obstruction-freedom's implied family).
std::vector<std::vector<ProcessId>> obstruction_free_family(int n);

/// All S with |S| >= n - f (f-resilience).
std::vector<std::vector<ProcessId>> f_resilient_family(int n, int f);

/// All S containing p (wait-freedom of p; asymmetric progress).
std::vector<std::vector<ProcessId>> asymmetric_family(int n, ProcessId p);

}  // namespace ksa::core
