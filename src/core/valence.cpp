#include "core/valence.hpp"

#include <sstream>

namespace ksa::core {

ValenceResult classify_valence(const Algorithm& algorithm, int n,
                               const std::vector<Value>& inputs,
                               const std::vector<FailurePlan>& plans,
                               int max_depth, std::size_t max_states) {
    require(!plans.empty(), "classify_valence: need at least one plan");
    ValenceResult result;
    for (const FailurePlan& plan : plans) {
        ExploreConfig cfg;
        cfg.n = n;
        cfg.inputs = inputs;
        cfg.plan = plan;
        cfg.k = n;  // we are not hunting violations here
        cfg.max_depth = max_depth;
        cfg.max_states = max_states;
        ExploreResult explored = explore_schedules(algorithm, cfg);
        if (!explored.exhaustive) result.exhaustive = false;
        for (const std::vector<Value>& outcome : explored.quiescent_outcomes)
            for (Value v : outcome)
                if (v != kNoValue) result.reachable.insert(v);
    }
    return result;
}

std::vector<FailurePlan> one_crash_plans(int n) {
    std::vector<FailurePlan> plans(1);  // the crash-free plan
    for (ProcessId p = 1; p <= n; ++p) {
        FailurePlan plan;
        plan.set_initially_dead(p);
        plans.push_back(plan);
    }
    return plans;
}

std::string BivalenceSweep::summary() const {
    std::ostringstream out;
    out << bivalent << "/" << total << " binary input vectors bivalent"
        << (exhaustive ? "" : " (some explorations truncated)");
    return out.str();
}

BivalenceSweep binary_input_sweep(const Algorithm& algorithm, int n,
                                  const std::vector<FailurePlan>& plans,
                                  int max_depth) {
    require(n >= 1 && n <= 16, "binary_input_sweep: n out of range");
    BivalenceSweep sweep;
    for (unsigned mask = 0; mask < (1u << n); ++mask) {
        std::vector<Value> inputs(n);
        for (int i = 0; i < n; ++i) inputs[i] = (mask >> i) & 1u;
        ValenceResult v =
            classify_valence(algorithm, n, inputs, plans, max_depth);
        ++sweep.total;
        if (v.bivalent()) ++sweep.bivalent;
        if (!v.exhaustive) sweep.exhaustive = false;
        sweep.rows.emplace_back(std::move(inputs), std::move(v));
    }
    return sweep;
}

}  // namespace ksa::core
