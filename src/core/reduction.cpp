#include "core/reduction.hpp"

#include <algorithm>

#include "sim/system.hpp"

namespace ksa::core {

namespace {

ProcessRenaming identity_renaming(int n) {
    ProcessRenaming id(static_cast<std::size_t>(n));
    for (int p = 1; p <= n; ++p) id[static_cast<std::size_t>(p) - 1] = p;
    return id;
}

ProcessRenaming invert(const ProcessRenaming& ren) {
    ProcessRenaming inv(ren.size());
    for (std::size_t i = 0; i < ren.size(); ++i)
        inv[static_cast<std::size_t>(ren[i]) - 1] =
                static_cast<ProcessId>(i + 1);
    return inv;
}

/// True iff pi (as `perm`) fixes the inputs vector: the renamed
/// configuration assigns input inputs[p-1] to process perm[p-1], which
/// must equal that position's own input.
bool fixes_inputs(const ProcessRenaming& perm,
                  const std::vector<Value>& inputs) {
    for (std::size_t i = 0; i < perm.size(); ++i)
        if (inputs[static_cast<std::size_t>(perm[i]) - 1] != inputs[i])
            return false;
    return true;
}

/// True iff pi fixes the crash plan: faulty maps to faulty with equal
/// step allowance and pi-consistent omission targets.
bool fixes_plan(const ProcessRenaming& perm, const FailurePlan& plan, int n) {
    for (ProcessId p = 1; p <= n; ++p) {
        const ProcessId image = perm[static_cast<std::size_t>(p) - 1];
        if (plan.is_faulty(p) != plan.is_faulty(image)) return false;
        if (!plan.is_faulty(p)) continue;
        const CrashSpec& a = plan.spec(p);
        const CrashSpec& b = plan.spec(image);
        if (a.after_own_steps != b.after_own_steps) return false;
        std::set<ProcessId> renamed;
        for (ProcessId q : a.omit_to) {
            if (q < 1 || q > n) return false;  // cannot rename out-of-range
            renamed.insert(perm[static_cast<std::size_t>(q) - 1]);
        }
        if (renamed != b.omit_to) return false;
    }
    return true;
}

/// True iff every equal-input class occupies a contiguous id block --
/// the extra admissibility condition of SymmetryKind::kBlockSymmetric
/// (smallest-id tie-breaks stay value-equivariant exactly on block
/// renamings; doc/extending.md).
bool contiguous_input_blocks(const std::vector<Value>& inputs) {
    std::map<Value, std::pair<std::size_t, std::size_t>> span;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        auto [it, fresh] = span.try_emplace(inputs[i], i, i);
        if (!fresh) it->second.second = i;
    }
    for (const auto& [v, range] : span)
        for (std::size_t i = range.first; i <= range.second; ++i)
            if (inputs[i] != v) return false;
    return true;
}

/// Folds one reduced-mode message: sender + interned tag + payload
/// contents.  Shared by the identity and renamed digest paths.
void fold_reduced_message(StateHasher& h, ProcessId from,
                          const Payload& payload) {
    h.i64(from);
    h.u64(intern_tag(payload.tag));
    h.u64(payload.ints.size());
    for (int v : payload.ints) h.i64(v);
    h.u64(payload.lists.size());
    for (const auto& list : payload.lists) {
        h.u64(list.size());
        for (int v : list) h.i64(v);
    }
}

}  // namespace

// ---------------------------------------------------------------------
// SymmetryGroup.

SymmetryGroup SymmetryGroup::trivial(int n) {
    require(n >= 1, "SymmetryGroup::trivial: need n >= 1");
    SymmetryGroup group;
    ProcessRenaming id = identity_renaming(n);
    group.inverses_.push_back(id);
    group.renamings_.push_back(std::move(id));
    return group;
}

SymmetryGroup SymmetryGroup::compute(const Algorithm& algorithm, int n,
                                     const std::vector<Value>& inputs,
                                     const FailurePlan& plan) {
    require(n >= 1, "SymmetryGroup::compute: need n >= 1");
    require(static_cast<int>(inputs.size()) == n,
            "SymmetryGroup::compute: need n inputs");
    if (n < 2 || n > kMaxSymmetryProcesses) return trivial(n);
    const SymmetryKind kind = algorithm.symmetry();
    if (kind == SymmetryKind::kNone) return trivial(n);

    const ProcessRenaming identity = identity_renaming(n);

    // Probe renaming support on a throwaway behavior: under the
    // identity renaming the renamed fold must byte-match fold_state
    // (the anchor that makes cached identity digests comparable with
    // walked renamed digests), and payload renaming must be accepted.
    {
        auto probe = algorithm.make_behavior(1, n, inputs.front());
        StateHasher direct;
        probe->fold_state(direct);
        StateHasher renamed;
        if (!probe->fold_state_renamed(renamed, identity)) return trivial(n);
        if (direct.digest() != renamed.digest()) return trivial(n);
        Payload payload;
        payload.tag = "__symmetry_probe";
        if (!algorithm.rename_payload_ids(payload, identity)) return trivial(n);
    }

    if (kind == SymmetryKind::kBlockSymmetric &&
        !contiguous_input_blocks(inputs))
        return trivial(n);

    // Enumerate the admissible permutations in lexicographic order; the
    // identity is first.  The admissible set is a subgroup (it is the
    // intersection of the stabilizers of the inputs vector and the
    // plan), so no closure step is needed.
    SymmetryGroup group;
    ProcessRenaming perm = identity;
    do {
        if (!fixes_inputs(perm, inputs)) continue;
        if (!fixes_plan(perm, plan, n)) continue;
        group.inverses_.push_back(invert(perm));
        group.renamings_.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
    invariant(!group.renamings_.empty() && group.renamings_[0] == identity,
              "SymmetryGroup::compute: identity must be element 0");
    return group;
}

std::vector<Value> SymmetryGroup::apply_to_outcome(
        std::size_t g, const std::vector<Value>& o) const {
    const ProcessRenaming& ren = renamings_[g];
    invariant(ren.size() == o.size(),
              "SymmetryGroup::apply_to_outcome: size mismatch");
    std::vector<Value> out(o.size());
    for (std::size_t i = 0; i < o.size(); ++i)
        out[static_cast<std::size_t>(ren[i]) - 1] = o[i];
    return out;
}

// ---------------------------------------------------------------------
// Tag interning.

TagInterner& TagInterner::global() {
    static TagInterner interner;
    return interner;
}

std::uint64_t TagInterner::intern(std::string_view tag) {
    // Content-derived id: a hash of the tag bytes, so the id does not
    // depend on which thread or in which order tags are first seen.
    StateHasher h;
    h.str(tag);
    const Digest128 d = h.digest();
    const std::uint64_t id = d.hi ^ (d.lo * 0x9e3779b97f4a7c15ull);

    std::lock_guard<std::mutex> lock(mu_);  // ksa-lint: allow(threading-outside-exec)
    auto it = memo_.find(tag);
    if (it != memo_.end()) return it->second;
    auto [owner, fresh] = owners_.try_emplace(id, std::string(tag));
    invariant(fresh, "TagInterner: 64-bit tag-id collision between '" +
                             owner->second + "' and '" + std::string(tag) +
                             "'");
    memo_.emplace(std::string(tag), id);
    return id;
}

std::size_t TagInterner::size() const {
    std::lock_guard<std::mutex> lock(mu_);  // ksa-lint: allow(threading-outside-exec)
    return memo_.size();
}

std::uint64_t intern_tag(std::string_view tag) {
    // Thread-local front cache: lock-free on every hit after a tag's
    // first sighting on the calling thread.  Content-derived ids make
    // the cache trivially coherent with the global memo.
    thread_local std::map<std::string, std::uint64_t, std::less<>>
            cache;  // ksa-lint: allow(threading-outside-exec)
    auto it = cache.find(tag);
    if (it != cache.end()) return it->second;
    const std::uint64_t id = TagInterner::global().intern(tag);
    cache.emplace(std::string(tag), id);
    return id;
}

// ---------------------------------------------------------------------
// Reduced / renamed hashing.

Digest128 reduced_msg_hash(ProcessId from, const Payload& payload) {
    StateHasher h;
    fold_reduced_message(h, from, payload);
    return h.digest();
}

Digest128 renamed_msg_hash(ProcessId from, const Payload& payload,
                           const Algorithm& algorithm,
                           const ProcessRenaming& ren,
                           RenameScratch& scratch) {
    scratch.payload = payload;
    const bool ok = algorithm.rename_payload_ids(scratch.payload, ren);
    invariant(ok, "renamed_msg_hash: algorithm refused to rename a payload "
                  "after SymmetryGroup::compute probed support");
    scratch.sub.reset();
    fold_reduced_message(scratch.sub,
                         ren[static_cast<std::size_t>(from) - 1],
                         scratch.payload);
    return scratch.sub.digest();
}

Digest128 renamed_behavior_hash(const Behavior& behavior,
                                const ProcessRenaming& ren,
                                StateHasher& sub) {
    sub.reset();
    const bool ok = behavior.fold_state_renamed(sub, ren);
    invariant(ok, "renamed_behavior_hash: behavior refused to fold under a "
                  "renaming after SymmetryGroup::compute probed support");
    return sub.digest();
}

Digest128 reduced_hash_state(const System& sys, int n,
                             const AbsorptionContext& abs) {
    StateHasher h;
    for (ProcessId p = 1; p <= n; ++p) {
        auto d = sys.decision_of(p);
        if (abs.decided_final && d) {
            // Decided processes of a decisions-are-final algorithm fold
            // to their decision alone: buffer, crash flag and internal
            // bookkeeping are observationally dead.  The marker 2 is
            // disjoint from the 0/1 the crashed flag feeds below.
            h.u64(2);
            h.i64(*d);
            continue;
        }
        h.u64(sys.crashed(p) ? 1 : 0);
        h.u64(d ? 1 : 0);
        if (d) h.i64(*d);
        const auto& buf = sys.buffer(p);
        const Behavior& recv = sys.behavior_of(p);
        std::size_t live = 0;
        for (const Message& m : buf)
            if (!dead_message(m.from, m.payload, recv, abs)) ++live;
        h.u64(live);
        for (const Message& m : buf)
            if (!dead_message(m.from, m.payload, recv, abs))
                h.fold(reduced_msg_hash(m.from, m.payload));
    }
    for (ProcessId p = 1; p <= n; ++p) {
        if (abs.decided_final && sys.decision_of(p)) continue;  // collapsed
        const bool stepped = sys.steps_of(p) > 0;
        h.u64(stepped ? 1 : 0);
        if (stepped) {
            StateHasher sub;
            sys.behavior_of(p).fold_state(sub);
            h.fold(sub.digest());
        }
    }
    return h.digest();
}

Digest128 hash_state_renamed(const System& sys, int n,
                             const Algorithm& algorithm,
                             const ProcessRenaming& ren,
                             const ProcessRenaming& inv,
                             RenameScratch& scratch,
                             const AbsorptionContext& abs) {
    StateHasher h;
    // Walk the renamed configuration position by position: position r
    // holds what process inv[r-1] holds in `sys`, with every id mapped
    // through `ren`.  Message arrival order is renaming-invariant (the
    // renamed schedule delivers the renamed messages in the same
    // order), so buffers are walked front to back unchanged.  The
    // absorption quotient is renaming-invariant too (message_inert and
    // decidedness commute with renaming), so applying it before the
    // renamed walk folds the same fields reduced_hash_state folds.
    for (ProcessId r = 1; r <= n; ++r) {
        const ProcessId q = inv[static_cast<std::size_t>(r) - 1];
        auto d = sys.decision_of(q);
        if (abs.decided_final && d) {
            h.u64(2);
            h.i64(*d);
            continue;
        }
        h.u64(sys.crashed(q) ? 1 : 0);
        h.u64(d ? 1 : 0);
        if (d) h.i64(*d);
        const auto& buf = sys.buffer(q);
        const Behavior& recv = sys.behavior_of(q);
        std::size_t live = 0;
        for (const Message& m : buf)
            if (!dead_message(m.from, m.payload, recv, abs)) ++live;
        h.u64(live);
        for (const Message& m : buf)
            if (!dead_message(m.from, m.payload, recv, abs))
                h.fold(renamed_msg_hash(m.from, m.payload, algorithm, ren,
                                        scratch));
    }
    for (ProcessId r = 1; r <= n; ++r) {
        const ProcessId q = inv[static_cast<std::size_t>(r) - 1];
        if (abs.decided_final && sys.decision_of(q)) continue;  // collapsed
        const bool stepped = sys.steps_of(q) > 0;
        h.u64(stepped ? 1 : 0);
        if (stepped)
            h.fold(renamed_behavior_hash(sys.behavior_of(q), ren,
                                         scratch.sub));
    }
    return h.digest();
}

Digest128 hash_child_renamed(const System& sys, int n,
                             const Algorithm& algorithm,
                             const GhostEffects& g,
                             const ProcessRenaming& ren,
                             const ProcessRenaming& inv,
                             RenameScratch& scratch,
                             const AbsorptionContext& abs) {
    invariant(g.sends != nullptr && g.decision != nullptr &&
                      g.behavior_after != nullptr,
              "hash_child_renamed: incomplete GhostEffects");
    StateHasher h;
    for (ProcessId r = 1; r <= n; ++r) {
        const ProcessId q = inv[static_cast<std::size_t>(r) - 1];
        auto d = sys.decision_of(q);
        if (q == g.stepper && *g.decision) d = *g.decision;
        if (abs.decided_final && d) {
            h.u64(2);
            h.i64(*d);
            continue;
        }
        const bool crashed_q =
                q == g.stepper ? g.final_crash : sys.crashed(q);
        h.u64(crashed_q ? 1 : 0);
        h.u64(d ? 1 : 0);
        if (d) h.i64(*d);
        const auto& buf = sys.buffer(q);
        const std::size_t skip = q == g.stepper ? g.delivered : 0;
        // apply_choice appends surviving sends in emission order; the
        // child's buffer of q is buf[skip:] followed by `arriving`.
        scratch.arriving.clear();
        for (const auto& [dest, payload] : *g.sends)
            if (dest == q && g.send_survives(dest))
                scratch.arriving.push_back(&payload);
        // Delete dead messages anywhere in the concatenation, judged
        // by q's behavior in the child state.
        const Behavior& receiver =
                q == g.stepper ? *g.behavior_after : sys.behavior_of(q);
        std::size_t live = 0;
        for (std::size_t i = skip; i < buf.size(); ++i)
            if (!dead_message(buf[i].from, buf[i].payload, receiver, abs))
                ++live;
        for (const Payload* pl : scratch.arriving)
            if (!dead_message(g.stepper, *pl, receiver, abs)) ++live;
        h.u64(live);
        for (std::size_t i = skip; i < buf.size(); ++i)
            if (!dead_message(buf[i].from, buf[i].payload, receiver, abs))
                h.fold(renamed_msg_hash(buf[i].from, buf[i].payload,
                                        algorithm, ren, scratch));
        for (const Payload* pl : scratch.arriving)
            if (!dead_message(g.stepper, *pl, receiver, abs))
                h.fold(renamed_msg_hash(g.stepper, *pl, algorithm, ren,
                                        scratch));
    }
    for (ProcessId r = 1; r <= n; ++r) {
        const ProcessId q = inv[static_cast<std::size_t>(r) - 1];
        if (abs.decided_final) {
            auto d = sys.decision_of(q);
            if (q == g.stepper && *g.decision) d = *g.decision;
            if (d) continue;  // collapsed
        }
        if (q == g.stepper) {
            h.u64(1);
            h.fold(renamed_behavior_hash(*g.behavior_after, ren,
                                         scratch.sub));
        } else {
            const bool stepped = sys.steps_of(q) > 0;
            h.u64(stepped ? 1 : 0);
            if (stepped)
                h.fold(renamed_behavior_hash(sys.behavior_of(q), ren,
                                             scratch.sub));
        }
    }
    return h.digest();
}

Digest128 canonical_state_key(const System& sys, int n,
                              const Algorithm& algorithm,
                              const SymmetryGroup& group,
                              RenameScratch& scratch,
                              const AbsorptionContext& abs) {
    Digest128 key = reduced_hash_state(sys, n, abs);
    for (std::size_t g = 1; g < group.size(); ++g) {
        const Digest128 d = hash_state_renamed(sys, n, algorithm,
                                               group.renaming(g),
                                               group.inverse(g), scratch, abs);
        if (d < key) key = d;
    }
    return key;
}

}  // namespace ksa::core
