#pragma once
// Run pasting (the executable form of Lemmas 11 and 12, and of the
// standard partitioning argument in Section VI).
//
// Given a partitioning B_1, ..., B_m of a subset of Pi, the paster
// produces
//
//   * the isolated runs alpha_i: all processes outside B_i are initially
//     dead, a fair scheduler runs B_i to decision;
//   * the pasted run alpha: nobody is dead beyond the pasted plan's own
//     crashes; the blocks execute one after the other with all
//     cross-block traffic delayed until every correct process has
//     decided, after which the delayed traffic is released (keeping the
//     run admissible);
//   * the verification that alpha is indistinguishable-until-decision
//     from alpha_i for every process of B_i (Definition 2) -- the claim
//     Lemma 12 makes by construction, checked here digest-by-digest.
//
// When the blocks' members carry distinct proposal values and each block
// decides in isolation, the pasted run exhibits >= m distinct decision
// values: with m = k+1 this is precisely the k-agreement violation the
// partition arguments produce.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/behavior.hpp"
#include "sim/failure_plan.hpp"
#include "sim/fd_oracle.hpp"
#include "sim/run.hpp"

namespace ksa::core {

/// Produces the oracle for one execution.  `block` is the index of the
/// isolated block (or -1 for the pasted run); `plan` is the plan of that
/// execution.  Return nullptr when the algorithm uses no detector.
using PasteOracleFactory = std::function<std::unique_ptr<FdOracle>(
        int block, const FailurePlan& plan)>;

/// Everything the paster produced.
struct PasteResult {
    std::vector<Run> isolated;  ///< alpha_i, one per block
    Run pasted;                 ///< alpha
    /// Per block: every member's digest sequence until decision matches
    /// between alpha_i and alpha.
    std::vector<bool> block_indistinguishable;
    bool all_indistinguishable = true;
    /// Blocks whose members failed to all decide in isolation.
    std::vector<int> stalled_blocks;
    std::string summary() const;
};

/// Runs the construction.  `pasted_plan` is the crash plan of the pasted
/// run; the isolated run of block i uses the same plan restricted to
/// B_i's members plus "everyone outside B_i is initially dead".
PasteResult paste_partition_runs(
        const Algorithm& algorithm, int n, const std::vector<Value>& inputs,
        const std::vector<std::vector<ProcessId>>& blocks,
        const FailurePlan& pasted_plan,
        const PasteOracleFactory& oracle_factory = {}, int block_budget = 20000,
        Time max_steps = 200000);

}  // namespace ksa::core
