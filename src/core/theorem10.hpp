#pragma once
// The Theorem 10 driver: (Sigma_k, Omega_k) is too weak for k-set
// agreement for all 2 <= k <= n-2.
//
// The construction follows Section VII exactly.  With n = k-1+j, j >= 3:
//
//   * D_1..D_{k-1} are singletons {p_1}..{p_{k-1}}; D = {p_k..p_n}.
//   * The adversary supplies the *partition detector* (Sigma'_k,
//     Omega'_k) of Definition 7 (fd/sources.hpp): inside each block the
//     quorum outputs form a valid Sigma history of the restricted system,
//     and the leader output eventually stabilizes on a set LD.  By
//     Lemma 9 every such history is admissible for (Sigma_k, Omega_k) --
//     the driver re-validates this with fd/validators.hpp (the
//     executable Lemma 9), so the constructed runs are genuine
//     (Sigma_k, Omega_k) runs.
//   * LD is chosen to intersect D in exactly two processes p_s, p_t
//     (the constrained oracle Gamma of condition (C): with only
//     (Sigma, Omega_2)-power inside <D>, consensus is unsolvable there).
//   * The singleton blocks decide their own values in isolation
//     (Lemma 12's alpha_i, pasted per Lemma 11 -- realized by the staged
//     scheduler + the digest-checked pasting of the Theorem 1 engine).
//   * The split schedule lets both p_s and p_t assemble quorum
//     acknowledgments before either one's decision announcement is
//     delivered (decision messages are held back -- pure asynchrony), so
//     D splits into two values and the assembled admissible run decides
//     k+1 distinct values.

#include <string>

#include "core/theorem1.hpp"
#include "fd/validators.hpp"

namespace ksa::core {

/// Everything the Theorem 10 instantiation produces.
struct Theorem10Result {
    int n = 0, k = 0;
    bool bound_applies = false;  ///< 2 <= k <= n-2
    Theorem1Certificate certificate;
    /// Definition 7 validation of the violating run's detector history.
    fd::FdValidation partition_validation;
    /// Lemma 9, executable: the same history validated against
    /// Definitions 4 and 5 -- i.e. the violating run is a genuine
    /// (Sigma_k, Omega_k) run.
    fd::FdValidation sigma_omega_validation;
    std::string summary() const;
};

/// Runs the full Theorem 10 construction against `candidate` (a
/// (Sigma_k, Omega_k)-based algorithm; see algo/quorum_leader_kset.hpp).
Theorem10Result run_theorem10(const Algorithm& candidate, int n, int k,
                              int stage_budget = 20000);

/// The Definition 7 partitioning used by the driver: k-1 singletons plus
/// D (exposed for tests).
std::vector<std::vector<ProcessId>> theorem10_fd_blocks(int n, int k);

/// The stabilized leader set LD = {p_1..p_{k-2}, p_s, p_t} with
/// p_s = p_k, p_t = p_{k+1} (exposed for tests).
std::vector<ProcessId> theorem10_leader_set(int n, int k);

}  // namespace ksa::core
