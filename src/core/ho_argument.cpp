#include "core/ho_argument.hpp"

#include <algorithm>
#include <random>
#include <sstream>

#include "algo/floodmin.hpp"
#include "sim/system.hpp"

namespace ksa::core {

namespace {

/// Adversary of the isolated runs: only one block's members exist; they
/// hear exactly their block, for ever.
class BlockOnlyHo final : public ho::HoAdversary {
public:
    explicit BlockOnlyHo(std::vector<ProcessId> block)
        : block_(std::move(block)) {}

    std::vector<ProcessId> heard_of(ProcessId, int, int) override {
        return block_;
    }
    bool alive(ProcessId p, int) override {
        return std::find(block_.begin(), block_.end(), p) != block_.end();
    }
    std::string name() const override { return "block-only"; }

private:
    std::vector<ProcessId> block_;
};

}  // namespace

std::string HoPartitionResult::summary() const {
    std::ostringstream out;
    out << "HO-partition[n=" << n << ",k=" << k << "]: " << distinct_decisions
        << " decisions, indist=" << (all_indistinguishable ? "yes" : "NO")
        << ", violation=" << (violation ? "YES" : "no");
    return out.str();
}

HoPartitionResult ho_partition_argument(
        const ho::RoundAlgorithm& algorithm, int n, int k,
        const std::vector<std::vector<ProcessId>>& blocks,
        int isolation_rounds, int max_rounds) {
    HoPartitionResult result;
    result.n = n;
    result.k = k;

    for (const auto& block : blocks) {
        BlockOnlyHo only(block);
        result.isolated.push_back(execute_ho(algorithm, n, distinct_inputs(n),
                                             only, max_rounds));
    }

    ho::PartitionHo partition(blocks, isolation_rounds);
    result.partitioned = execute_ho(algorithm, n, distinct_inputs(n),
                                    partition, max_rounds);

    for (std::size_t i = 0; i < blocks.size(); ++i) {
        for (ProcessId p : blocks[i]) {
            if (result.isolated[i].digest_sequence(p) !=
                result.partitioned.digest_sequence(p))
                result.all_indistinguishable = false;
        }
    }
    result.distinct_decisions =
        static_cast<int>(result.partitioned.distinct_decisions().size());
    result.violation = result.distinct_decisions > k;
    return result;
}

int ho_floodmin_crash_trial(int n, int f, int k,
                            const std::vector<int>& crash_rounds,
                            std::uint64_t seed) {
    require(f >= 0 && f < n, "ho_floodmin_crash_trial: need 0 <= f < n");
    require(static_cast<int>(crash_rounds.size()) == f,
            "ho_floodmin_crash_trial: need one crash round per fault");

    std::mt19937_64 rng(seed);
    ho::CrashHo adversary;
    for (int i = 0; i < f; ++i) {
        ho::CrashHo::Crash crash;
        crash.round = crash_rounds[i];
        // Random subset of receivers sees the crashing round's message.
        for (ProcessId q = 1; q <= n; ++q)
            if (rng() % 2 == 0) crash.heard_by.insert(q);
        adversary.set_crash(static_cast<ProcessId>(i + 1), crash);
    }

    ksa::algo::FloodMin algorithm(ksa::algo::FloodMin::rounds_for(f, k));
    ho::HoRun run = execute_ho(algorithm, n, distinct_inputs(n), adversary,
                               algorithm.rounds() + 2);
    // Every survivor must have decided.
    for (ProcessId p = f + 1; p <= n; ++p)
        invariant(run.decision_of(p).has_value(),
                  "ho_floodmin_crash_trial: survivor did not decide");
    return static_cast<int>(run.distinct_decisions().size());
}

}  // namespace ksa::core
