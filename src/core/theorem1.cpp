#include "core/theorem1.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

#include "sim/system.hpp"

namespace ksa::core {

namespace {

/// Kuhn's bipartite matching: can every block be assigned a distinct
/// decided value?  (Blocks and candidate values are both tiny here.)
bool distinct_assignment(const std::vector<std::set<Value>>& per_block,
                         std::set<Value>* out) {
    std::vector<Value> values;
    for (const auto& s : per_block)
        for (Value v : s)
            if (std::find(values.begin(), values.end(), v) == values.end())
                values.push_back(v);

    std::map<Value, int> matched;  // value -> block
    std::function<bool(int, std::set<Value>&)> try_match =
        [&](int block, std::set<Value>& visited) -> bool {
        for (Value v : per_block[block]) {
            if (visited.count(v) != 0) continue;
            visited.insert(v);
            auto it = matched.find(v);
            if (it == matched.end() || try_match(it->second, visited)) {
                matched[v] = block;
                return true;
            }
        }
        return false;
    };
    for (int b = 0; b < static_cast<int>(per_block.size()); ++b) {
        std::set<Value> visited;
        if (!try_match(b, visited)) return false;
    }
    if (out != nullptr) {
        out->clear();
        for (const auto& [v, _] : matched) out->insert(v);
    }
    return true;
}

/// Time by which every process of D has decided or crashed (kNever if a
/// correct member never decides in the prefix).
Time d_settled_time(const Run& run, const std::vector<ProcessId>& d) {
    Time settled = 0;
    for (ProcessId p : d) {
        Time t = run.decision_time_of(p);
        if (t == kNever && run.plan.is_faulty(p)) t = run.crash_time_of(p);
        if (t == kNever) return kNever;
        settled = std::max(settled, t);
    }
    return settled;
}

}  // namespace

std::vector<ProcessId> PartitionSpec::dbar() const {
    std::vector<ProcessId> out;
    for (const auto& b : blocks) out.insert(out.end(), b.begin(), b.end());
    std::sort(out.begin(), out.end());
    return out;
}

PartitionSpec make_partition_spec(int n, int k,
                                  std::vector<std::vector<ProcessId>> blocks) {
    require(k >= 1, "make_partition_spec: k must be >= 1");
    require(static_cast<int>(blocks.size()) == k - 1,
            "make_partition_spec: need exactly k-1 blocks D_1..D_{k-1}");
    PartitionSpec spec;
    spec.n = n;
    spec.k = k;
    spec.blocks = std::move(blocks);

    std::vector<bool> taken(n, false);
    for (const auto& b : spec.blocks) {
        require(!b.empty(), "make_partition_spec: empty block");
        for (ProcessId p : b) {
            require(p >= 1 && p <= n, "make_partition_spec: pid out of range");
            require(!taken[p - 1], "make_partition_spec: blocks overlap");
            taken[p - 1] = true;
        }
    }
    for (ProcessId p = 1; p <= n; ++p)
        if (!taken[p - 1]) spec.d.push_back(p);
    require(!spec.d.empty(), "make_partition_spec: D must be non-empty");
    return spec;
}

bool dec_dbar_holds(const Run& run,
                    const std::vector<std::vector<ProcessId>>& blocks,
                    std::set<Value>* out_values) {
    // Proposals of D-bar members.
    std::set<Value> dbar_inputs;
    for (const auto& b : blocks)
        for (ProcessId p : b) dbar_inputs.insert(run.inputs[p - 1]);

    std::vector<std::set<Value>> per_block;
    for (const auto& b : blocks) {
        std::set<Value> decided;
        for (ProcessId p : b) {
            auto d = run.decision_of(p);
            if (d && dbar_inputs.count(*d) != 0) decided.insert(*d);
        }
        if (decided.empty()) return false;  // no (eligible) decider in block
        per_block.push_back(std::move(decided));
    }
    return distinct_assignment(per_block, out_values);
}

bool dec_d_holds(const Run& run, const PartitionSpec& spec) {
    const Time settled = d_settled_time(run, spec.d);
    const std::vector<ProcessId> dbar = spec.dbar();
    for (ProcessId p : spec.d) {
        // Receptions from D-bar are allowed only strictly after the last
        // member of D decided (or crashed).
        const Time deadline = settled == kNever ? kNever : settled + 1;
        if (!run.silent_from_until(p, dbar, deadline)) return false;
    }
    return true;
}

std::string Theorem1Certificate::summary() const {
    std::ostringstream out;
    out << "Theorem1[" << spec.n << " procs, k=" << spec.k << ", |D|="
        << spec.d.size() << "]: (A)=" << condition_a << " (B)=" << condition_b
        << " (D)=" << condition_d << " split=" << consensus_split
        << " violation=" << violation;
    if (violation)
        out << " (" << violating_values.size() << " distinct decisions > k="
            << spec.k << ")";
    return out.str();
}

Theorem1Certificate certify_theorem1(const Theorem1Inputs& in) {
    require(in.algorithm != nullptr, "certify_theorem1: algorithm missing");
    const Algorithm& algo = *in.algorithm;
    const PartitionSpec& spec = in.spec;
    require(static_cast<int>(in.inputs.size()) == spec.n,
            "certify_theorem1: need n inputs");

    Theorem1Certificate cert;
    cert.spec = spec;
    const ExecutionLimits limits{in.max_steps};
    auto oracle = [&](CertRun kind, const FailurePlan& plan)
        -> std::unique_ptr<FdOracle> {
        return in.oracle_factory ? in.oracle_factory(kind, plan) : nullptr;
    };

    // ---- (A): alpha, a run in R(D): D isolated until decided. ----------
    {
        StagedScheduler::Stage d_stage{spec.d, {}, {}, in.stage_budget};
        StagedScheduler sched({d_stage});
        auto orc = oracle(CertRun::kAlpha, in.plan);
        System sys(algo, spec.n, in.inputs, in.plan, orc.get());
        cert.alpha = sys.execute(sched, limits);
        cert.condition_a =
            sched.stalled_stages().empty() && dec_d_holds(cert.alpha, spec);
    }

    // ---- (B): beta, in R(D, Dbar), alpha ~_D beta. ----------------------
    {
        std::vector<StagedScheduler::Stage> stages;
        for (const auto& b : spec.blocks)
            stages.push_back({b, {}, {}, in.stage_budget});
        stages.push_back({spec.d, {}, {}, in.stage_budget});
        StagedScheduler sched(std::move(stages));
        auto orc = oracle(CertRun::kBeta, in.plan);
        System sys(algo, spec.n, in.inputs, in.plan, orc.get());
        cert.beta = sys.execute(sched, limits);
        cert.condition_b =
            sched.stalled_stages().empty() &&
            dec_dbar_holds(cert.beta, spec.blocks, &cert.block_values) &&
            dec_d_holds(cert.beta, spec) &&
            indistinguishable_for_all(cert.alpha, cert.beta, spec.d);
    }

    // ---- (D): rho' (A|D in M') ~_D rho (A in M, blocks dead). ------------
    FailurePlan dead_plan = in.plan;
    for (const auto& b : spec.blocks)
        for (ProcessId p : b) dead_plan.set_initially_dead(p);
    {
        RoundRobinScheduler fair;
        auto orc = oracle(CertRun::kRestricted, dead_plan);
        cert.restricted = execute_restricted(algo, spec.n, spec.d, in.inputs,
                                             in.plan, fair, orc.get(), limits);
    }
    {
        RoundRobinScheduler fair;
        auto orc = oracle(CertRun::kFullDead, dead_plan);
        cert.full_dead = execute_run(algo, spec.n, in.inputs, dead_plan, fair,
                                     orc.get(), limits);
    }
    cert.condition_d =
        indistinguishable_for_all(cert.restricted, cert.full_dead, spec.d);

    if (in.split_stages.empty()) return cert;

    // ---- the consensus split inside <D>: A|D under the split schedule. --
    {
        RestrictedAlgorithm restricted(algo, spec.d);
        StagedScheduler sched(in.split_stages);
        auto orc = oracle(CertRun::kSplitOnly, dead_plan);
        System sys(restricted, spec.n, in.inputs, dead_plan, orc.get());
        cert.split_run = sys.execute(sched, limits);
        cert.d_values = cert.split_run.distinct_decisions(spec.d);
        cert.consensus_split = cert.d_values.size() >= 2;
    }

    // ---- the end-to-end violation: blocks + split in one run. -----------
    {
        std::vector<StagedScheduler::Stage> stages;
        for (const auto& b : spec.blocks)
            stages.push_back({b, {}, {}, in.stage_budget});
        for (const auto& s : in.split_stages) stages.push_back(s);
        StagedScheduler sched(std::move(stages));
        auto orc = oracle(CertRun::kViolating, in.plan);
        System sys(algo, spec.n, in.inputs, in.plan, orc.get());
        cert.violating = sys.execute(sched, limits);
        cert.violating_values = cert.violating.distinct_decisions();
        cert.violating_admissibility = check_admissibility(cert.violating);
        cert.violation =
            static_cast<int>(cert.violating_values.size()) > spec.k &&
            cert.violating_admissibility.admissible &&
            cert.violating_admissibility.conclusive;
    }
    return cert;
}

}  // namespace ksa::core
