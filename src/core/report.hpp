#pragma once
// Human-readable certification reports.
//
// Renders the artifacts of the theorem drivers as markdown "proof
// transcripts": which conditions were witnessed, by which runs, with the
// decision tables and (for Theorem 10) the detector-history verdicts.
// Consumed by ksa_cli --report and handy for archiving counterexamples
// next to their serialized runs.

#include <string>

#include "core/theorem1.hpp"
#include "core/theorem10.hpp"
#include "core/theorem2.hpp"
#include "core/theorem8.hpp"

namespace ksa::core {

/// Markdown report of a Theorem 1 certificate (shared core of the
/// theorem-specific reports).
std::string render_certificate_report(const Theorem1Certificate& cert);

/// Markdown report of a full Theorem 2 result.
std::string render_report(const Theorem2Result& result);

/// Markdown report of a Theorem 8 border construction.
std::string render_report(const Theorem8Border& border);

/// Markdown report of a full Theorem 10 result.
std::string render_report(const Theorem10Result& result);

}  // namespace ksa::core
