#pragma once
// State-space reduction for the explorer (core/explorer.hpp).
//
// The reduced exploration mode (ExploreMode::kReduced) shrinks the
// explored configuration space along two orthogonal axes; this module
// holds the machinery shared by both.  doc/performance.md carries the
// full soundness argument; the short form:
//
//   * SYMMETRY.  Process ids are wiring labels: permuting them permutes
//     runs.  For the subgroup G of permutations that fix the inputs
//     vector and the FailurePlan (and that the algorithm declares
//     itself equivariant under -- Algorithm::symmetry), two states in
//     the same G-orbit have renamed-isomorphic futures, so the explorer
//     keeps one representative per orbit.  The dedup key of a state is
//     the MINIMUM over G of the renamed state's 128-bit digest; decision
//     VALUE sets are G-invariant, and per-process quiescent outcome
//     vectors are recovered by orbit-expanding the representatives'
//     outcomes over G.
//
//   * ABSORPTION.  Some of what a configuration records is
//     observationally dead: a decided process of an algorithm whose
//     decisions are final (Algorithm::decided_is_final) never emits
//     anything again, so its internal bookkeeping, buffered messages
//     and crash flag cannot influence any future decision or outcome;
//     and a message the receiver provably ignores forever
//     (Behavior::message_inert) is dead weight wherever it sits --
//     delivering a prefix that spans dead messages is
//     indistinguishable from delivering its live subsequence.  The
//     reduced engine keys decided processes on their decision value
//     alone, deletes dead messages from buffer keys, skips decided
//     processes' step choices, and treats decided processes as
//     drained when classifying quiescence.  States that differ only
//     in dead bookkeeping collapse to one representative whose
//     explored futures cover (up to empty-delivery stutter steps,
//     available everywhere) the futures of them all.
//
//   * PARTIAL ORDER.  Two step choices of different processes commute
//     when neither decides and neither's surviving sends touch the
//     other's buffer or a common destination; interleavings that differ
//     only in the order of commuting steps reach the same state through
//     the same multiset of decision events.  The reduced engine
//     exploits this with a persistent-set style filter (explorer.cpp,
//     expand_reduced): when some process's every delivery-mode move is
//     decision-free and send-free toward live processes, and every
//     OTHER live process is send-quiescent (Behavior::may_send), that
//     process's moves commute with everything the rest of the system
//     can ever do -- so only that process is expanded and the siblings
//     of other processes are skipped (counted as por_skips).
//
// What is preserved: violation_found, reachable_decision_sets and
// quiescent_outcomes -- NOT state or expansion counts (shrinking those
// is the point).  See doc/performance.md for what weakens under
// max_depth / max_states truncation.
//
// This module is also the only place allowed to hold canonicalization /
// interning tables (ksa_lint rule interning-outside-reduction): the
// tag-interning memo below is shared mutable state, which the rest of
// the library bans outside exec/.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/reduction_options.hpp"
#include "sim/behavior.hpp"
#include "sim/digest.hpp"
#include "sim/failure_plan.hpp"
#include "sim/payload.hpp"
#include "sim/types.hpp"

namespace ksa {
class System;
}  // namespace ksa

namespace ksa::core {

// ReductionOptions itself lives in core/reduction_options.hpp (an
// ordinary public header): this header is private to the reduction TU
// and its driver (core/explorer.cpp) -- see src/lint/layers.def.

/// Absorption switches derived once per exploration from
/// ReductionOptions::absorption and the algorithm's declarations; the
/// all-false default is the identity quotient (exactly the fast
/// engine's keys).
struct AbsorptionContext {
    /// Strip maximal inert suffixes of buffers from dedup keys
    /// (Behavior::message_inert; a no-op for behaviors that never
    /// declare anything inert).
    bool strip_inert = false;
    /// Key decided processes on (decided, value) alone -- buffers,
    /// crash flags and internal bookkeeping of decided processes leave
    /// the key; requires Algorithm::decided_is_final().
    bool decided_final = false;
};

/// Permutation-enumeration cap for SymmetryGroup::compute: above this
/// many processes the group is forced trivial (n! enumeration; the
/// explorer itself is only tractable well below this anyway).
inline constexpr int kMaxSymmetryProcesses = 8;

// ---------------------------------------------------------------------
// Symmetry group.

/// The subgroup of process renamings the reduced explorer may quotient
/// by: permutations pi of 1..n such that
///
///   * the algorithm declares equivariance (SymmetryKind != kNone, with
///     fold_state_renamed / rename_payload_ids support probed on a
///     throwaway behavior);
///   * the inputs vector is fixed: inputs[pi(p)-1] == inputs[p-1];
///   * for kBlockSymmetric additionally every equal-input class is a
///     contiguous id block (else the group is forced trivial);
///   * the FailurePlan is fixed: pi maps faulty processes to faulty
///     processes with equal step allowances and pi-consistent omission
///     sets.
///
/// Element 0 is always the identity.  Computed once per exploration.
class SymmetryGroup {
public:
    /// The identity-only group on n processes (n >= 1).
    static SymmetryGroup trivial(int n);

    /// Computes the full admissible subgroup (see class comment).
    /// Falls back to trivial() whenever any precondition fails -- a
    /// missing override degrades performance, never soundness.
    static SymmetryGroup compute(const Algorithm& algorithm, int n,
                                 const std::vector<Value>& inputs,
                                 const FailurePlan& plan);

    bool is_trivial() const { return renamings_.size() <= 1; }
    std::size_t size() const { return renamings_.size(); }

    /// Element g as a renaming: renaming(g)[p-1] is the new name of p.
    /// renaming(0) is the identity.
    const ProcessRenaming& renaming(std::size_t g) const {
        return renamings_[g];
    }

    /// Inverse of element g: inverse(g)[r-1] is the process whose new
    /// name is r.  Precomputed because canonical hashing walks states
    /// in renamed-position order.
    const ProcessRenaming& inverse(std::size_t g) const {
        return inverses_[g];
    }

    /// Applies element g to a per-process outcome vector: the renamed
    /// execution's process renaming(g)[p-1] ends in the state process p
    /// ended in, so out[renaming(g)[p-1]-1] = o[p-1].  Used to
    /// orbit-expand quiescent outcomes.
    std::vector<Value> apply_to_outcome(std::size_t g,
                                        const std::vector<Value>& o) const;

private:
    std::vector<ProcessRenaming> renamings_;  ///< [0] is the identity
    std::vector<ProcessRenaming> inverses_;
};

// ---------------------------------------------------------------------
// Payload-tag interning.
//
// Reduced-mode message digests replace the tag string's byte walk with
// one 64-bit interned id.  Ids are CONTENT-DERIVED (a hash of the tag
// bytes), so they are deterministic across runs, threads and insertion
// orders -- interning changes how fast a key is computed, never which
// states collide.  The memo exists to amortize the hash and to detect
// (vanishingly unlikely) 64-bit id collisions between distinct tags,
// which would otherwise silently merge states.

class TagInterner {
public:
    /// The process-wide interner.  Thread-safe.
    static TagInterner& global();

    /// Returns the interned id of `tag`, registering it on first use.
    /// Aborts (invariant) if a distinct tag already owns the id.
    std::uint64_t intern(std::string_view tag);

    /// Number of distinct tags registered so far (observability/tests).
    std::size_t size() const;

private:
    // Shared mutable memo; confined to this module by the
    // interning-outside-reduction lint rule.  Content-derived ids keep
    // results independent of lock interleaving.
    mutable std::mutex mu_;  // ksa-lint: allow(threading-outside-exec)
    std::map<std::string, std::uint64_t, std::less<>> memo_;
    std::map<std::uint64_t, std::string> owners_;
};

/// Interns through a thread-local cache in front of TagInterner::global()
/// -- the hot path of reduced message hashing takes no lock after the
/// first sighting of a tag on each thread.
std::uint64_t intern_tag(std::string_view tag);

// ---------------------------------------------------------------------
// Renamed / reduced state hashing.
//
// The reduced engine keys states on min over G of the renamed state's
// digest.  The identity element reuses the fast engine's incremental
// caches (explorer.cpp) with the reduced message digest below; the
// non-identity elements re-walk the configuration through the renaming
// (group sizes are tiny -- at most a few dozen elements at explorer
// scales).  All functions fold EXACTLY the same field sequence as the
// fast engine's hash_state/hash_child, so that for the identity
// renaming the cached and walked digests coincide (debug builds assert
// this on every realized child).

/// Reusable scratch for renamed hashing: one per worker, reset-free
/// (every helper overwrites what it uses).  Exists to keep the hot path
/// allocation-lean: payload copies and sub-hashers are recycled across
/// candidates instead of constructed per message.
struct RenameScratch {
    Payload payload;  ///< renamed copy of a message payload
    StateHasher sub;  ///< per-behavior / per-message sub-hasher
    /// Borrowed per-destination arriving-send payloads of one ghost
    /// step (hash_child_renamed); recycled to keep the renamed walk
    /// allocation-free after warm-up.
    std::vector<const Payload*> arriving;
};

/// Reduced digest of one buffered message: sender id + interned tag id
/// + length-prefixed ints/lists.  The reduced-mode counterpart of the
/// fast engine's msg_hash (same partition of messages: two messages
/// collide iff sender, tag and contents are equal).
Digest128 reduced_msg_hash(ProcessId from, const Payload& payload);

/// reduced_msg_hash of the message as the renamed execution would hold
/// it: sender mapped through `ren`, payload ids rewritten by
/// Algorithm::rename_payload_ids.  Aborts (invariant) if the algorithm
/// refuses the payload -- SymmetryGroup::compute probed support, so a
/// refusal mid-run is a contract violation, not a fallback case.
Digest128 renamed_msg_hash(ProcessId from, const Payload& payload,
                           const Algorithm& algorithm,
                           const ProcessRenaming& ren, RenameScratch& scratch);

/// Digest of one behavior's renamed local state (fold_state_renamed in
/// a fresh sub-hasher).  Aborts (invariant) if the behavior refuses.
Digest128 renamed_behavior_hash(const Behavior& behavior,
                                const ProcessRenaming& ren,
                                StateHasher& sub);

/// True iff the absorption quotient deletes this buffered message from
/// dedup keys: the receiver declares it inert (Behavior::message_inert
/// -- delivering it is a behavioral no-op, in this state and every
/// future one).  Dead messages are deleted ANYWHERE in the buffer, not
/// only in a suffix: delivering a prefix that spans dead messages is
/// indistinguishable from delivering its live subsequence, and the
/// one delivery-granularity gap that deletion opens (the quotient
/// peer can single-deliver its first LIVE message while the original
/// state's head is dead) is bridged by empty-delivery steps, which are
/// in every process's menu at every state.  doc/performance.md carries
/// the stuttering argument and what weakens under depth truncation.
inline bool dead_message(ProcessId from, const Payload& payload,
                         const Behavior& receiver,
                         const AbsorptionContext& abs) {
    return abs.strip_inert && receiver.message_inert(from, payload);
}

/// Reduced-mode full-state digest (identity renaming): field-for-field
/// the fast engine's hash_state with reduced_msg_hash as the message
/// digest and the absorption quotient applied (decided processes fold
/// to their decision, inert buffer suffixes are stripped).  Root key
/// and debug cross-check.
Digest128 reduced_hash_state(const System& sys, int n,
                             const AbsorptionContext& abs);

/// Full-state digest of the configuration as renamed by `ren`
/// (inverse `inv` precomputed by SymmetryGroup): position r of the
/// renamed configuration is position inv[r-1] of `sys`.  Applies the
/// same absorption quotient as reduced_hash_state.
Digest128 hash_state_renamed(const System& sys, int n,
                             const Algorithm& algorithm,
                             const ProcessRenaming& ren,
                             const ProcessRenaming& inv,
                             RenameScratch& scratch,
                             const AbsorptionContext& abs);

/// The effects of one ghost step (explorer.cpp) in the shape renamed
/// child hashing needs: everything is borrowed from the ghost-stepping
/// caller, nothing is copied.
struct GhostEffects {
    ProcessId stepper = 0;
    std::size_t delivered = 0;  ///< delivered prefix length of stepper's buffer
    bool final_crash = false;
    const std::set<ProcessId>* omit_to = nullptr;  ///< final-step omissions
    const std::vector<std::pair<ProcessId, Payload>>* sends = nullptr;
    const std::optional<Value>* decision = nullptr;  ///< decision of the step
    const Behavior* behavior_after = nullptr;  ///< stepper's stepped clone

    bool send_survives(ProcessId dest) const {
        return !(final_crash && omit_to != nullptr &&
                 omit_to->count(dest) != 0);
    }
};

/// Digest of the child configuration reached from `sys` by the ghost
/// step, as renamed by `ren`: the renamed-walk counterpart of the fast
/// engine's hash_child (same field sequence, same arrival order of
/// surviving sends).
Digest128 hash_child_renamed(const System& sys, int n,
                             const Algorithm& algorithm,
                             const GhostEffects& g,
                             const ProcessRenaming& ren,
                             const ProcessRenaming& inv,
                             RenameScratch& scratch,
                             const AbsorptionContext& abs);

/// Canonical key of a live System: minimum over the group of the
/// renamed full-state digests (identity via reduced_hash_state), with
/// the absorption quotient applied on every path.  The reduced
/// engine's root key and the debug cross-check of materialized nodes.
Digest128 canonical_state_key(const System& sys, int n,
                              const Algorithm& algorithm,
                              const SymmetryGroup& group,
                              RenameScratch& scratch,
                              const AbsorptionContext& abs);

}  // namespace ksa::core
