#include "core/independence.hpp"

#include <algorithm>

#include "sim/schedulers.hpp"
#include "sim/system.hpp"

namespace ksa::core {

IndependenceWitness check_set_independence(
        const Algorithm& algorithm, int n, std::vector<Value> inputs,
        const FailurePlan& plan, std::vector<ProcessId> s,
        const OracleFactory& oracle_factory, int budget) {
    require(!s.empty(), "check_set_independence: S must be non-empty");
    std::sort(s.begin(), s.end());

    std::unique_ptr<FdOracle> oracle;
    if (oracle_factory) oracle = oracle_factory(plan);

    PartitionScheduler scheduler({s}, budget);
    Run run = execute_run(algorithm, n, std::move(inputs), plan, scheduler,
                          oracle.get());

    IndependenceWitness witness;
    witness.set = s;
    witness.run = std::move(run);

    // S held in isolation iff the isolation phase did not stall and every
    // member of S received nothing from outside S before the release.
    const bool stalled = !scheduler.stalled_blocks().empty();
    bool silent = true;
    std::vector<ProcessId> outsiders;
    for (ProcessId p = 1; p <= n; ++p)
        if (!std::binary_search(s.begin(), s.end(), p)) outsiders.push_back(p);
    for (ProcessId p : s)
        if (!witness.run.silent_from_until(p, outsiders,
                                           scheduler.release_time()))
            silent = false;
    witness.holds = !stalled && silent;
    return witness;
}

IndependenceWitness check_set_strong_independence(
        const Algorithm& algorithm, int n, std::vector<Value> inputs,
        const FailurePlan& plan, std::vector<ProcessId> s,
        const OracleFactory& oracle_factory, int prefix_steps, int budget) {
    require(!s.empty(), "check_set_strong_independence: S must be non-empty");
    std::sort(s.begin(), s.end());

    std::unique_ptr<FdOracle> oracle;
    if (oracle_factory) oracle = oracle_factory(plan);

    // Stage 1: everybody runs with unrestricted delivery for a while (so
    // "eventually" is not vacuous); stage 2 isolates S.
    std::vector<ProcessId> all;
    for (ProcessId p = 1; p <= n; ++p) all.push_back(p);
    StagedScheduler::Stage open;
    open.active = all;
    open.filter = [](const Message&, ProcessId) { return true; };
    open.done = [prefix_steps](const SystemView& view) {
        return view.now() > prefix_steps;
    };
    open.budget = prefix_steps + 1;
    StagedScheduler::Stage isolated;
    isolated.active = s;
    isolated.budget = budget;

    StagedScheduler scheduler({open, isolated});
    Run run = execute_run(algorithm, n, std::move(inputs), plan, scheduler,
                          oracle.get());

    IndependenceWitness witness;
    witness.set = s;
    witness.run = std::move(run);
    // Strong independence held iff the isolation stage (index 1) did not
    // stall: from its start, members of S received only from S (by the
    // stage filter) until every correct member decided.
    bool stage2_stalled = false;
    for (int idx : scheduler.stalled_stages())
        if (idx == 1) stage2_stalled = true;
    witness.holds = !stage2_stalled;
    return witness;
}

FamilyIndependence check_family_independence(
        const Algorithm& algorithm, int n, std::vector<Value> inputs,
        const FailurePlan& plan,
        const std::vector<std::vector<ProcessId>>& family,
        const OracleFactory& oracle_factory, int budget) {
    FamilyIndependence out;
    for (const auto& s : family) {
        out.witnesses.push_back(check_set_independence(
            algorithm, n, inputs, plan, s, oracle_factory, budget));
        if (!out.witnesses.back().holds) out.holds_for_all = false;
    }
    return out;
}

std::vector<std::vector<ProcessId>> wait_free_family(int n) {
    require(n >= 1 && n <= 20, "wait_free_family: n out of sane range");
    std::vector<std::vector<ProcessId>> out;
    for (unsigned mask = 1; mask < (1u << n); ++mask) {
        std::vector<ProcessId> s;
        for (int p = 1; p <= n; ++p)
            if (mask & (1u << (p - 1))) s.push_back(p);
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<std::vector<ProcessId>> obstruction_free_family(int n) {
    std::vector<std::vector<ProcessId>> out;
    for (ProcessId p = 1; p <= n; ++p) out.push_back({p});
    return out;
}

std::vector<std::vector<ProcessId>> f_resilient_family(int n, int f) {
    require(f >= 0 && f < n, "f_resilient_family: need 0 <= f < n");
    std::vector<std::vector<ProcessId>> out;
    for (const auto& s : wait_free_family(n))
        if (static_cast<int>(s.size()) >= n - f) out.push_back(s);
    return out;
}

std::vector<std::vector<ProcessId>> asymmetric_family(int n, ProcessId p) {
    std::vector<std::vector<ProcessId>> out;
    for (const auto& s : wait_free_family(n))
        if (std::find(s.begin(), s.end(), p) != s.end()) out.push_back(s);
    return out;
}

}  // namespace ksa::core
