#include "core/kset_spec.hpp"

#include <algorithm>
#include <sstream>

namespace ksa::core {

KSetCheck check_kset_agreement(const Run& run, int k) {
    require(k >= 1, "check_kset_agreement: k must be >= 1");
    KSetCheck check;

    const auto decided = run.distinct_decisions();
    if (static_cast<int>(decided.size()) > k) {
        check.k_agreement = false;
        std::ostringstream out;
        out << "k-agreement violated: " << decided.size()
            << " distinct decisions, k=" << k;
        check.violations.push_back(out.str());
    }

    for (ProcessId p = 1; p <= run.n; ++p) {
        auto d = run.decision_of(p);
        if (!d) continue;
        if (std::find(run.inputs.begin(), run.inputs.end(), *d) ==
            run.inputs.end()) {
            check.validity = false;
            std::ostringstream out;
            out << "validity violated: p" << p << " decided " << *d
                << ", never proposed";
            check.violations.push_back(out.str());
        }
    }

    for (ProcessId p = 1; p <= run.n; ++p) {
        if (run.plan.is_faulty(p)) continue;
        if (!run.decision_of(p)) {
            check.termination = false;
            std::ostringstream out;
            out << "termination violated: correct p" << p << " never decided"
                << (run.stop == StopReason::kStepLimit ? " (step limit hit)"
                                                       : "");
            check.violations.push_back(out.str());
        }
    }
    return check;
}

void expect_kset_agreement(const Run& run, int k) {
    KSetCheck check = check_kset_agreement(run, k);
    if (check.ok()) return;
    std::ostringstream out;
    out << "k-set agreement check failed for " << run.algorithm << ":";
    for (const std::string& v : check.violations) out << "\n  " << v;
    throw UsageError(out.str());
}

}  // namespace ksa::core
