#include "core/theorem2.hpp"

#include <algorithm>
#include <sstream>

#include "core/bounds.hpp"
#include "sim/admissibility.hpp"

namespace ksa::core {

std::vector<std::vector<ProcessId>> theorem2_blocks(int n, int f, int k) {
    require(theorem2_impossible(n, f, k),
            "theorem2_blocks: bound k*(n-f) <= n-1 does not hold");
    const int l = theorem2_block_size(n, f);
    std::vector<std::vector<ProcessId>> blocks;
    for (int i = 0; i < k - 1; ++i) {
        std::vector<ProcessId> block;
        for (int j = 1; j <= l; ++j) block.push_back(i * l + j);
        blocks.push_back(std::move(block));
    }
    return blocks;
}

std::vector<StagedScheduler::Stage> window_split_stages(
        const std::vector<ProcessId>& d, int window, int budget) {
    require(window >= 1 && window <= static_cast<int>(d.size()),
            "window_split_stages: window out of range");
    // Member d_j may hear only from the `window` consecutive members
    // starting at itself (cyclically).  An f-resilient algorithm decides
    // inside its window; windows starting at different members have
    // different minima, so D splits.
    std::vector<ProcessId> sorted = d;
    std::sort(sorted.begin(), sorted.end());
    const int m = static_cast<int>(sorted.size());
    auto filter = [sorted, window, m](const Message& msg, ProcessId dest) {
        auto pos_of = [&](ProcessId p) {
            auto it = std::lower_bound(sorted.begin(), sorted.end(), p);
            return (it != sorted.end() && *it == p)
                       ? static_cast<int>(it - sorted.begin())
                       : -1;
        };
        const int dpos = pos_of(dest);
        const int spos = pos_of(msg.from);
        if (dpos < 0 || spos < 0) return false;  // traffic from outside D waits
        const int offset = (spos - dpos + m) % m;
        return offset < window;
    };
    StagedScheduler::Stage stage;
    stage.active = sorted;
    stage.filter = filter;
    stage.budget = budget;
    return {stage};
}

std::string Theorem2Result::summary() const {
    std::ostringstream out;
    out << "Theorem2[n=" << n << ",f=" << f << ",k=" << k
        << "]: bound=" << bound_applies << " (C)=" << condition_c_analytic
        << " " << certificate.summary();
    return out.str();
}

std::string Theorem2Lockstep::summary() const {
    std::ostringstream out;
    out << "Theorem2Lockstep[n=" << n << ",f=" << f << ",k=" << k
        << "]: " << values.size() << " decisions, dec-Dbar=" << dec_dbar
        << ", violation=" << (violation ? "YES" : "no");
    return out.str();
}

Theorem2Lockstep run_theorem2_lockstep(const Algorithm& candidate, int n,
                                       int f, int k, Time max_steps) {
    Theorem2Lockstep result;
    result.n = n;
    result.f = f;
    result.k = k;
    const int l = theorem2_block_size(n, f);
    const auto blocks = theorem2_blocks(n, f, k);
    PartitionSpec spec = make_partition_spec(n, k, blocks);

    // Block index per process; -1 for members of D.
    std::vector<int> block_of(n, -1);
    for (std::size_t b = 0; b < blocks.size(); ++b)
        for (ProcessId p : blocks[b]) block_of[p - 1] = static_cast<int>(b);

    std::vector<ProcessId> d = spec.d;  // sorted
    auto window_admits = [d, l](ProcessId from, ProcessId dest) {
        auto pos = [&](ProcessId p) {
            auto it = std::lower_bound(d.begin(), d.end(), p);
            return (it != d.end() && *it == p)
                       ? static_cast<int>(it - d.begin())
                       : -1;
        };
        const int dpos = pos(dest), spos = pos(from);
        if (dpos < 0 || spos < 0) return false;
        const int m = static_cast<int>(d.size());
        return (spos - dpos + m) % m < l;
    };

    LockstepScheduler::Filter filter =
        [block_of, window_admits](const Message& m, ProcessId dest,
                                  const SystemView& view) {
            if (view.all_correct_decided()) return true;  // release phase
            const int bf = block_of[m.from - 1], bd = block_of[dest - 1];
            if (bf >= 0 || bd >= 0) return bf == bd;  // intra-block only
            return window_admits(m.from, dest);       // inside D: windows
        };

    LockstepScheduler scheduler(std::move(filter));
    result.run = execute_run(candidate, n, distinct_inputs(n), FailurePlan{},
                             scheduler, nullptr, {max_steps});
    result.values = result.run.distinct_decisions();
    result.dec_dbar = dec_dbar_holds(result.run, blocks, nullptr);
    AdmissibilityReport adm = check_admissibility(result.run);
    result.violation = static_cast<int>(result.values.size()) > k &&
                       adm.admissible && adm.conclusive;
    return result;
}

Theorem2Result run_theorem2(const Algorithm& candidate, int n, int f, int k,
                            int stage_budget) {
    Theorem2Result result;
    result.n = n;
    result.f = f;
    result.k = k;
    result.bound_applies = theorem2_impossible(n, f, k);
    require(result.bound_applies,
            "run_theorem2: bound k*(n-f) <= n-1 does not hold");
    result.condition_c_analytic =
        !consensus_solvable_with_one_crash(ModelDescriptor::theorem2());

    Theorem1Inputs in;
    in.algorithm = &candidate;
    in.spec = make_partition_spec(n, k, theorem2_blocks(n, f, k));
    in.inputs = distinct_inputs(n);
    in.plan = FailurePlan{};  // the witnesses need no crashes at all
    in.split_stages =
        window_split_stages(in.spec.d, theorem2_block_size(n, f), stage_budget);
    in.stage_budget = stage_budget;
    result.certificate = certify_theorem1(in);
    return result;
}

}  // namespace ksa::core
