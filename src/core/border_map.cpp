#include "core/border_map.hpp"

#include "core/bounds.hpp"

namespace ksa::core {

char verdict_char(Verdict v) {
    switch (v) {
        case Verdict::kSolvable: return 'S';
        case Verdict::kImpossibleEasy: return 'X';
        case Verdict::kImpossibleTopology: return 'x';
    }
    return '?';
}

Verdict initial_crash_verdict(int n, int f, int k) {
    return theorem8_solvable(n, f, k) ? Verdict::kSolvable
                                      : Verdict::kImpossibleEasy;
}

Verdict async_crash_verdict(int n, int f, int k) {
    if (theorem2_impossible(n, f, k)) return Verdict::kImpossibleEasy;
    if (k >= flooding_bound(f)) return Verdict::kSolvable;
    // The gap: truly impossible (k <= f, the topological bound), but the
    // partitioning reduction does not reach it.
    invariant(k <= f, "async_crash_verdict: gap cell above the true border");
    return Verdict::kImpossibleTopology;
}

Verdict detector_verdict(int n, int k) {
    return corollary13_solvable(n, k) ? Verdict::kSolvable
                                      : Verdict::kImpossibleEasy;
}

std::vector<BorderRow> border_map(int n) {
    require(n >= 2, "border_map: n must be >= 2");
    std::vector<BorderRow> rows;
    for (int f = 1; f < n; ++f) {
        BorderRow row;
        row.f = f;
        for (int k = 1; k < n; ++k) {
            row.initial += verdict_char(initial_crash_verdict(n, f, k));
            row.async_ += verdict_char(async_crash_verdict(n, f, k));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

std::string detector_line(int n) {
    std::string out;
    for (int k = 1; k < n; ++k) out += verdict_char(detector_verdict(n, k));
    return out;
}

}  // namespace ksa::core
