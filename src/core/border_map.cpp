#include "core/border_map.hpp"

#include "core/bounds.hpp"
#include "exec/parallel_map.hpp"

namespace ksa::core {

char verdict_char(Verdict v) {
    switch (v) {
        case Verdict::kSolvable: return 'S';
        case Verdict::kImpossibleEasy: return 'X';
        case Verdict::kImpossibleTopology: return 'x';
    }
    return '?';
}

Verdict initial_crash_verdict(int n, int f, int k) {
    return theorem8_solvable(n, f, k) ? Verdict::kSolvable
                                      : Verdict::kImpossibleEasy;
}

Verdict async_crash_verdict(int n, int f, int k) {
    if (theorem2_impossible(n, f, k)) return Verdict::kImpossibleEasy;
    if (k >= flooding_bound(f)) return Verdict::kSolvable;
    // The gap: truly impossible (k <= f, the topological bound), but the
    // partitioning reduction does not reach it.
    invariant(k <= f, "async_crash_verdict: gap cell above the true border");
    return Verdict::kImpossibleTopology;
}

Verdict detector_verdict(int n, int k) {
    return corollary13_solvable(n, k) ? Verdict::kSolvable
                                      : Verdict::kImpossibleEasy;
}

std::vector<BorderRow> border_map(int n) { return border_map(n, 1); }

std::vector<BorderRow> border_map(int n, int threads) {
    require(n >= 2, "border_map: n must be >= 2");
    // Rows f = 1..n-1 are independent work items; each writes only its
    // own slot and the slots come back in row order, so the map is
    // byte-identical across thread counts.  Row cost grows with f (the
    // k-loop does more partitioning work near the border), so rows go
    // through the work-stealing scheduler at grain 1: a thread stuck
    // on an expensive high-f row sheds the rest of its share.
    exec::TaskScheduler sched(threads);
    return exec::parallel_map_grained(
            sched, static_cast<std::size_t>(n - 1), /*grain=*/1,
            [n](std::size_t i, int) {
                BorderRow row;
                row.f = static_cast<int>(i) + 1;
                for (int k = 1; k < n; ++k) {
                    row.initial += verdict_char(initial_crash_verdict(n, row.f, k));
                    row.async_ += verdict_char(async_crash_verdict(n, row.f, k));
                }
                return row;
            });
}

std::string detector_line(int n) {
    std::string out;
    for (int k = 1; k < n; ++k) out += verdict_char(detector_verdict(n, k));
    return out;
}

}  // namespace ksa::core
