#pragma once
// The k-set agreement problem specification as run validators
// (Section II-A):
//
//   k-Agreement:  processes decide on at most k different values
//                 (binding correct *and* faulty processes -- for k = 1
//                 this is uniform consensus);
//   Validity:     every decision was proposed by some process;
//   Termination:  every correct process eventually decides (on a finite
//                 prefix: the prefix is decisive, i.e. did not end at the
//                 step limit with undecided correct processes).

#include <string>
#include <vector>

#include "sim/run.hpp"

namespace ksa::core {

/// Result of validating one run against the k-set agreement spec.
struct KSetCheck {
    bool k_agreement = true;
    bool validity = true;
    bool termination = true;
    std::vector<std::string> violations;

    bool ok() const { return k_agreement && validity && termination; }
};

/// Validates `run` against k-set agreement for the given k.
KSetCheck check_kset_agreement(const Run& run, int k);

/// Convenience for tests/benches: validates and throws UsageError with a
/// readable message on failure.
void expect_kset_agreement(const Run& run, int k);

}  // namespace ksa::core
