#pragma once
// ReductionOptions -- the public switchboard of the reduced exploration
// mode (ExploreMode::kReduced), split out of core/reduction.hpp so that
// configuration surfaces (core/explorer.hpp's ExploreConfig, tools,
// tests) can select reductions WITHOUT seeing the reduction engine's
// internals.  core/reduction.hpp (TagInterner, renamed hashing,
// absorption machinery) is a PRIVATE layer: ksa_analyze admits only
// core/reduction.cpp and core/explorer.cpp as importers
// (src/lint/layers.def).  This header is an ordinary `core` header.
//
// doc/performance.md carries the soundness argument for each switch.

namespace ksa::core {

/// Sub-config of ExploreConfig selecting which reductions kReduced
/// applies.  All default on; switching all off makes kReduced
/// partition states exactly like kFast (the equivalence suite checks
/// bit-identical results for that configuration).
struct ReductionOptions {
    bool symmetry = true;  ///< canonicalize states under the symmetry group
    bool por = true;       ///< persistent-set partial-order reduction
    /// Observational absorption quotient: key decided processes on
    /// their decision alone when Algorithm::decided_is_final, and strip
    /// maximal inert buffer suffixes (Behavior::message_inert).
    bool absorption = true;
};

}  // namespace ksa::core
