#pragma once
// The Theorem 2 driver: impossibility of k-set agreement with
// synchronous processes and asynchronous communication for
// k <= (n-1)/(n-f), instantiating Theorem 1.
//
// Geometry (Lemma 3): l = n-f; blocks D_i = {p_{(i-1)l+1}, ..., p_{il}}
// for 1 <= i < k; D = the remaining >= l+1 processes.  Conditions (A),
// (B), (D) are discharged constructively by the Theorem 1 engine;
// condition (C) is discharged analytically via the DDS'87 classification
// (sim/model.hpp): the model of Theorem 2 -- synchronous processes,
// asynchronous communication, atomic broadcast, receive+send atomicity
// -- does not dominate any of the four minimal favourable combinations,
// so consensus is unsolvable in M' = <D> with one crash.
//
// The empirical teeth against a concrete candidate: the split schedule
// gives every member d_j of D a cyclic *listen window* of l consecutive
// D-members starting at d_j.  An f-resilient candidate cannot wait for
// more than n-f = l proposals, so every member decides inside its
// window; windows have different minima, so D splits into >= 2 decision
// values, and the assembled run -- blocks first, then the windowed D
// schedule, then release -- is an admissible run with >= k+1 distinct
// decisions.  (For candidates that are not window-splittable the
// certificate reports it; the universal statement is Theorem 2 itself,
// which needs no candidate.)

#include <string>

#include "core/theorem1.hpp"
#include "sim/model.hpp"

namespace ksa::core {

/// Everything the Theorem 2 instantiation produces.
struct Theorem2Result {
    int n = 0, f = 0, k = 0;
    bool bound_applies = false;       ///< k*(n-f) <= n-1
    bool condition_c_analytic = false;  ///< DDS: consensus unsolvable in M'
    Theorem1Certificate certificate;
    std::string summary() const;
};

/// Runs the full Theorem 2 instantiation against `candidate` (an
/// algorithm claimed to solve k-set agreement with f faults among n
/// processes).  Requires the bound k*(n-f) <= n-1 to hold.
Theorem2Result run_theorem2(const Algorithm& candidate, int n, int f, int k,
                            int stage_budget = 20000);

/// The block geometry used by the driver (exposed for tests): blocks
/// D_1..D_{k-1} of size l = n-f each.
std::vector<std::vector<ProcessId>> theorem2_blocks(int n, int f, int k);

/// The cyclic listen-window split stages on D (exposed for tests and for
/// composing custom adversaries).
std::vector<StagedScheduler::Stage> window_split_stages(
        const std::vector<ProcessId>& d, int window, int budget = 20000);

/// The same impossibility witness constructed under *literally
/// synchronous processes*: every live process takes exactly one step per
/// cycle (LockstepScheduler); only message delays are adversarial --
/// intra-block traffic flows, D-members hear their cyclic windows, and
/// everything is released once all correct processes decided.  This is
/// the letter of Theorem 2's model, whereas run_theorem2() exercises the
/// weaker-model variant of Corollary 5.
struct Theorem2Lockstep {
    int n = 0, f = 0, k = 0;
    Run run;
    std::set<Value> values;
    bool dec_dbar = false;   ///< blocks decided k-1 distinct values
    bool violation = false;  ///< > k distinct decisions, admissible run
    std::string summary() const;
};
Theorem2Lockstep run_theorem2_lockstep(const Algorithm& candidate, int n,
                                       int f, int k,
                                       Time max_steps = 200000);

}  // namespace ksa::core
