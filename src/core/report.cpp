#include "core/report.hpp"

#include <sstream>

namespace ksa::core {

namespace {

const char* tick(bool b) { return b ? "witnessed" : "**FAILED**"; }

void render_decisions(std::ostringstream& out, const Run& run) {
    out << "| process | input | decision | at |\n";
    out << "| --- | --- | --- | --- |\n";
    for (ProcessId p = 1; p <= run.n; ++p) {
        out << "| p" << p << " | " << run.inputs[p - 1] << " | ";
        auto d = run.decision_of(p);
        if (d)
            out << *d << " | t=" << run.decision_time_of(p) << " |\n";
        else
            out << (run.plan.is_faulty(p) ? "(faulty)" : "-") << " | - |\n";
    }
}

void render_values(std::ostringstream& out, const std::set<Value>& values) {
    out << "{ ";
    for (Value v : values) out << v << ' ';
    out << '}';
}

}  // namespace

std::string render_certificate_report(const Theorem1Certificate& cert) {
    std::ostringstream out;
    out << "### Theorem 1 certificate (n=" << cert.spec.n
        << ", k=" << cert.spec.k << ")\n\n";
    out << "Partition: ";
    for (std::size_t i = 0; i < cert.spec.blocks.size(); ++i) {
        out << "D_" << i + 1 << "={";
        for (ProcessId p : cert.spec.blocks[i]) out << 'p' << p << ' ';
        out << "} ";
    }
    out << " D={";
    for (ProcessId p : cert.spec.d) out << 'p' << p << ' ';
    out << "}\n\n";

    out << "* condition (A) — a run in R(D) exists (D decides while "
           "silent from the blocks): "
        << tick(cert.condition_a) << "\n";
    out << "* condition (B) — alpha ~_D beta with beta in R(D, Dbar): "
        << tick(cert.condition_b) << "; block values ";
    render_values(out, cert.block_values);
    out << "\n";
    out << "* condition (D) — A|D runs match blocks-dead runs for D: "
        << tick(cert.condition_d) << "\n";
    out << "* consensus split inside <D>: " << tick(cert.consensus_split)
        << "; D decided ";
    render_values(out, cert.d_values);
    out << "\n";
    out << "* assembled violation: " << tick(cert.violation) << "; values ";
    render_values(out, cert.violating_values);
    out << " (admissible="
        << (cert.violating_admissibility.admissible ? "yes" : "no") << ")\n\n";

    if (cert.violation) {
        out << "Decisions of the violating run:\n\n";
        render_decisions(out, cert.violating);
    }
    return out.str();
}

std::string render_report(const Theorem2Result& result) {
    std::ostringstream out;
    out << "## Theorem 2 at (n, f, k) = (" << result.n << ", " << result.f
        << ", " << result.k << ")\n\n";
    out << "Bound k*(n-f) <= n-1: " << (result.bound_applies ? "holds" : "no")
        << "; condition (C) via DDS'87 classification: "
        << (result.condition_c_analytic ? "consensus unsolvable in M'"
                                        : "**classification disagrees**")
        << "\n\n";
    out << render_certificate_report(result.certificate);
    return out.str();
}

std::string render_report(const Theorem8Border& border) {
    std::ostringstream out;
    out << "## Theorem 8 border at (n, f, k) = (" << border.n << ", "
        << border.f << ", " << border.k << ")\n\n";
    out << "k+1 = " << border.k + 1 << " groups pasted; distinct decisions: "
        << border.distinct_decisions << "; indistinguishability: "
        << (border.paste.all_indistinguishable ? "verified per Definition 2"
                                               : "**FAILED**")
        << "; violation: " << (border.violation ? "yes" : "no") << "\n\n";
    render_decisions(out, border.paste.pasted);
    return out.str();
}

std::string render_report(const Theorem10Result& result) {
    std::ostringstream out;
    out << "## Theorem 10 at (n, k) = (" << result.n << ", " << result.k
        << ")\n\n";
    out << "Detector history of the violating run: Definition 7 "
        << (result.partition_validation.ok ? "valid" : "**INVALID**")
        << "; (Sigma_k, Omega_k) admissible (Lemma 9): "
        << (result.sigma_omega_validation.ok ? "valid" : "**INVALID**")
        << "\n\n";
    for (const auto& v : result.partition_validation.violations)
        out << "* " << v << "\n";
    for (const auto& v : result.sigma_omega_validation.violations)
        out << "* " << v << "\n";
    out << render_certificate_report(result.certificate);
    return out.str();
}

}  // namespace ksa::core
