#pragma once
// The Theorem 8 driver: with up to f *initial* crashes, k-set agreement
// is solvable iff k*n > (k+1)*f.
//
// Possibility side: trials of the generalized FLP protocol
// (algo/initial_clique.hpp with L = n-f) under arbitrary initial-crash
// sets and random fair schedules, validated against the k-set spec.
//
// Border side (k*n = (k+1)*f): the standard partitioning argument of
// Section VI, executable -- partition Pi into k+1 groups of size
// n-f = n/(k+1); for each group there is an execution eps_i in which the
// others are initially dead and the group decides its own value; pasting
// the eps_i (delaying inter-group traffic) yields an execution eps with
// no crashes at all that is indistinguishable-until-decision from eps_i
// for every group member, hence carries k+1 distinct decisions --
// contradicting k-agreement.  The driver builds eps_i and eps with
// core/pasting.hpp and verifies every claim.

#include <string>

#include "core/kset_spec.hpp"
#include "core/pasting.hpp"
#include "sim/behavior.hpp"

namespace ksa::core {

/// One possibility-side trial.
struct Theorem8Trial {
    int n = 0, f = 0, k = 0;
    int crashed = 0;             ///< how many processes were initially dead
    KSetCheck check;             ///< validation against the k-set spec
    int distinct_decisions = 0;  ///< observed, must be <= k when solvable
    Run run;
};

/// Runs the generalized FLP protocol with the given initially-dead set
/// (must have size <= f) under the seeded random fair schedule and
/// validates it.
Theorem8Trial theorem8_trial(int n, int f, int k,
                             const std::vector<ProcessId>& initially_dead,
                             std::uint64_t seed);

/// The border partition argument for k*n = (k+1)*f (requires n divisible
/// by k+1 and f = k*n/(k+1)).
struct Theorem8Border {
    int n = 0, f = 0, k = 0;
    PasteResult paste;           ///< eps_i and eps with the Def. 2 checks
    int distinct_decisions = 0;  ///< decisions in eps; k+1 on success
    bool violation = false;      ///< eps admissible with > k decisions
    std::string summary() const;
};

/// Builds the border witness against `candidate` (defaults the caller
/// should use: the generalized FLP protocol itself, which is what the
/// section shows cannot be pushed past the border).
Theorem8Border theorem8_border(const Algorithm& candidate, int n, int k);

}  // namespace ksa::core
