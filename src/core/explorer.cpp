#include "core/explorer.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <sstream>
#include <utility>

#include "core/reduction.hpp"
#include "exec/parallel_map.hpp"
#include "exec/task_scheduler.hpp"
#include "sim/digest.hpp"
#include "sim/system.hpp"
#include "store/delta_store.hpp"
#include "store/rematerialize.hpp"
#include "store/visited_store.hpp"

namespace ksa::core {

namespace {

// ---------------------------------------------------------------------
// Shared predicates (identical across all engines).

bool quiescent(const System& sys, const ExploreConfig& cfg) {
    for (ProcessId p = 1; p <= cfg.n; ++p) {
        if (cfg.plan.is_faulty(p)) {
            if (sys.can_step(p)) return false;
        } else {
            if (!sys.decision_of(p) || !sys.buffer(p).empty()) return false;
        }
    }
    return true;
}

std::set<Value> decision_set(const System& sys, int n) {
    std::set<Value> out;
    for (ProcessId p = 1; p <= n; ++p) {
        auto d = sys.decision_of(p);
        if (d) out.insert(*d);
    }
    return out;
}

/// The three delivery modes for process p, in canonical order: deliver
/// nothing, deliver the oldest buffered message, deliver the whole
/// buffer (only when it differs from "oldest").  Every engine enumerates
/// children in exactly this order so that BFS insertion order -- and
/// therefore witness selection and max_states truncation -- is engine-
/// independent.
std::vector<StepChoice> delivery_modes(const System& sys, ProcessId p) {
    std::vector<StepChoice> modes;
    {
        StepChoice none;
        none.process = p;
        modes.push_back(none);
    }
    const auto& buf = sys.buffer(p);
    if (!buf.empty()) {
        StepChoice oldest;
        oldest.process = p;
        oldest.deliver.push_back(buf.front().id);
        modes.push_back(oldest);
        if (buf.size() > 1) {
            StepChoice all;
            all.process = p;
            for (const Message& m : buf) all.deliver.push_back(m.id);
            modes.push_back(all);
        }
    }
    return modes;
}

// ---------------------------------------------------------------------
// State keys.
//
// All engines deduplicate on the same logical state:
//
//   per process: crash flag, decision (if any), buffer contents in
//   arrival order (sender + payload; message ids are simulator
//   bookkeeping and intentionally excluded so content-equal states
//   reached by different schedules deduplicate), and -- iff the process
//   has stepped at least once -- its canonical behavior digest.
//
// "Iff stepped" matters: the pre-snapshot engine recovered behavior
// digests from StepRecord::digest_after, which only exists for
// processes that stepped, so an unstepped process contributed the empty
// string.  The live engines reproduce that convention exactly so that
// all modes partition the state space identically, state counts match,
// and the golden equivalence suite can require bit-identical
// ExploreResults.
//
// Behavior digests are the expensive part of a key (one string
// rendering over the whole local state).  A child configuration differs
// from its parent by exactly one step of one process, so the layered
// engines carry the digest vector alongside each node and re-render
// only the stepped process's entry: n-1 of the n renderings the replay
// baseline pays per candidate disappear.

/// Canonical string key (reference mode).  `digests[p-1]` must be
/// steps_of(p) > 0 ? last_digest(p) : "" -- byte-identical to the
/// pre-snapshot engine's full_digest() of the same configuration.
std::string canonical_state_string(const System& sys, int n,
                                   const std::vector<std::string>& digests) {
    std::ostringstream out;
    for (ProcessId p = 1; p <= n; ++p) {
        out << '|' << (sys.crashed(p) ? "X" : "");
        auto d = sys.decision_of(p);
        if (d) out << "D" << *d;
        out << ';';
        for (const Message& m : sys.buffer(p))
            out << m.from << ':' << m.payload.to_string() << ',';
    }
    out << '#';
    for (const std::string& d : digests) out << d << '|';
    return out.str();
}

/// Folds one buffered message (sender + payload; identity fields
/// excluded, mirroring the canonical rendering).
void hash_message(StateHasher& h, ProcessId from, const Payload& payload) {
    h.i64(from);
    payload.fold(h);
}

/// 128-bit digest of one buffered message.  The fast engine hashes each
/// message ONCE -- when it is sent -- caches the digest alongside the
/// node, and folds the cached 128 bits into every state key the message
/// participates in, instead of re-walking the payload per candidate
/// (profiling shows payload re-walks dominating otherwise: a message
/// sits in a buffer across many layers and each layer hashes 3n
/// candidate children).
Digest128 msg_hash(ProcessId from, const Payload& payload) {
    StateHasher h;
    hash_message(h, from, payload);
    return h.digest();
}

/// 128-bit digest of one behavior's local state (Behavior::fold_state
/// in a fresh hasher).  The fast engine keys behavior state on these
/// instead of digest strings; the fold_state contract ("distinguishes
/// exactly what state_digest distinguishes") makes the partition
/// identical to the reference mode's, modulo hash collisions.
Digest128 behavior_hash(const Behavior& b) {
    StateHasher h;
    b.fold_state(h);
    return h.digest();
}

/// Per-process behavior-state entry and per-node buffered-message
/// digest cache of a hashed key: shared with the out-of-core store
/// (src/store/rematerialize.hpp), whose delta-replay path advances the
/// same caches the in-RAM frontier used to carry per node.
using store::BehaviorMark;
using store::MessageHashes;

void fold_mark(StateHasher& h, const BehaviorMark& m) {
    h.u64(m.stepped ? 1 : 0);
    if (m.stepped) h.fold(m.hash);
}

/// 128-bit hash key (fast mode): folds the same logical fields the
/// canonical string renders -- buffered messages and behavior states
/// via their cached digests -- without materializing any intermediate
/// string.  Variable-length fields are length-prefixed so distinct
/// configurations produce distinct feed sequences.  This version
/// recomputes every per-message and per-behavior digest from the live
/// System; it is used for the root key and for the debug cross-check
/// of the store path's spine caches (an independent recompute that
/// also validates the cache bookkeeping).
Digest128 hash_state(const System& sys, int n) {
    StateHasher h;
    for (ProcessId p = 1; p <= n; ++p) {
        h.u64(sys.crashed(p) ? 1 : 0);
        auto d = sys.decision_of(p);
        h.u64(d ? 1 : 0);
        if (d) h.i64(*d);
        const auto& buf = sys.buffer(p);
        h.u64(buf.size());
        for (const Message& m : buf) h.fold(msg_hash(m.from, m.payload));
    }
    for (ProcessId p = 1; p <= n; ++p) {
        BehaviorMark m;
        m.stepped = sys.steps_of(p) > 0;
        if (m.stepped) m.hash = behavior_hash(sys.behavior_of(p));
        fold_mark(h, m);
    }
    return h.digest();
}

// ---------------------------------------------------------------------
// Ghost stepping (fast + reduced modes).
//
// The profile of the snapshot engine is dominated by materializing and
// destroying forked Systems for candidate children that deduplication
// then rejects (the reachable graph has far more edges than vertices).
// The fast engine therefore computes a child's dedup key WITHOUT
// forking: it clones only the stepping process's behavior, runs the
// step on the clone, and hashes the parent's configuration with the
// step's effects patched in -- p's delivered prefix removed from its
// buffer, the step's surviving sends appended to their destination
// buffers, p's decision/crash flag/behavior digest updated.  Only
// children that survive deduplication are ever realized at all -- and
// on the store path (src/store/) not even then: an accepted child is a
// 16-byte delta record, re-forked from its parent's live state only
// when its own expansion comes up.

/// Effects of one ghost step of `stepper` on a behavior clone.
struct GhostStep {
    StepOutput out;                 ///< sends + decision of the step
    bool final_crash = false;       ///< step count hit the crash plan
    const std::set<ProcessId>* omit_to = nullptr;  ///< final-step omissions
    std::size_t delivered = 0;      ///< length of the delivered buffer prefix
    Digest128 bhash{};              ///< behavior_hash() after the step
    /// The stepped clone, kept alive because the reduced engine folds
    /// it again under every symmetry-group renaming
    /// (fold_state_renamed); the fast engine only reads bhash.
    std::unique_ptr<Behavior> behavior;

    /// True iff the send `(dest)` actually reaches its buffer.
    bool send_survives(ProcessId dest) const {
        return !(final_crash && omit_to != nullptr && omit_to->count(dest) != 0);
    }
};

/// Runs one ghost step.  The delivery modes of the explorer always
/// deliver a *prefix* of the buffer (nothing / the oldest message / the
/// whole buffer), so the delivered set is just a prefix length.
/// `scratch` is a caller-owned StepInput reused across candidates to
/// amortize its allocations (System::deliver_prefix recycles the
/// vector's capacity).
GhostStep ghost_step(const System& sys, ProcessId p, std::size_t delivered,
                     StepInput& scratch) {
    GhostStep g;
    g.delivered = delivered;
    sys.deliver_prefix(p, delivered, scratch);
    g.behavior = sys.clone_behavior(p);
    g.out = g.behavior->on_step(scratch);
    const int allowed = sys.plan().allowed_steps(p);
    g.final_crash = allowed >= 0 && sys.steps_of(p) + 1 == allowed;
    if (g.final_crash) g.omit_to = &sys.plan().spec(p).omit_to;
    g.bhash = behavior_hash(*g.behavior);
    return g;
}

/// One message the ghost step adds to a buffer, pre-hashed.  Kept in
/// emission order.
struct ArrivingSend {
    ProcessId dest = 0;
    Digest128 hash{};
};

/// Fills `arriving` with the ghost step's surviving sends in emission
/// order, digested by `digest_send(stepper, payload)` -- msg_hash for
/// the fast engine, reduced_msg_hash for the reduced engine (both
/// engines share hash_child below; only the message digest differs).
template <typename DigestSendFn>
void fill_arriving(const GhostStep& g, ProcessId stepper,
                   const DigestSendFn& digest_send,
                   std::vector<ArrivingSend>& arriving) {
    arriving.clear();
    for (const auto& [dest, payload] : g.out.sends)
        if (g.send_survives(dest))
            arriving.push_back({dest, digest_send(stepper, payload)});
}

/// Hash of the child configuration reached from `sys` by the ghost
/// step: field-for-field identical to hash_state() of the realized
/// child.  `arriving` must hold the surviving sends in emission order
/// (fill_arriving).
Digest128 hash_child(const System& sys, int n, ProcessId stepper,
                     const GhostStep& g,
                     const std::vector<BehaviorMark>& parent_marks,
                     const MessageHashes& parent_mhash,
                     const std::vector<ArrivingSend>& arriving) {
    StateHasher h;
    for (ProcessId q = 1; q <= n; ++q) {
        const bool crashed_q = q == stepper ? g.final_crash : sys.crashed(q);
        h.u64(crashed_q ? 1 : 0);
        auto d = sys.decision_of(q);
        if (q == stepper && g.out.decision) d = g.out.decision;
        h.u64(d ? 1 : 0);
        if (d) h.i64(*d);
        const auto& mh = parent_mhash[q - 1];
        const std::size_t skip = q == stepper ? g.delivered : 0;
        std::size_t arriving_q = 0;
        for (const ArrivingSend& a : arriving)
            if (a.dest == q) ++arriving_q;
        h.u64(mh.size() - skip + arriving_q);
        for (std::size_t i = skip; i < mh.size(); ++i) h.fold(mh[i]);
        // apply_choice appends sends in emission order, after removing
        // the delivered prefix (self-sends land behind the survivors).
        for (const ArrivingSend& a : arriving)
            if (a.dest == q) h.fold(a.hash);
    }
    for (ProcessId q = 1; q <= n; ++q) {
        if (q == stepper)
            fold_mark(h, BehaviorMark{true, g.bhash});
        else
            fold_mark(h, parent_marks[q - 1]);
    }
    return h.digest();
}

// ---------------------------------------------------------------------
// Layer-parallel plumbing shared by the layered engines.
//
// Each engine owns one work-stealing TaskScheduler for the whole
// exploration; per-worker scratch is sized to sched.size() and reused
// across every layer a worker touches.  Layers (blocks, on the store
// path) below the sequential threshold run inline; dispatched work is
// chunked with the scheduler's auto grain and rebalanced by stealing.
// The chosen grain/threshold and the steal count are recorded into the
// result as observability -- they describe the machine and the timing,
// not the exploration, so they stay out of every report and
// equivalence comparison.

std::size_t resolve_threshold(const ExploreConfig& cfg,
                              const exec::TaskScheduler& sched) {
    return cfg.min_parallel_frontier != 0
                   ? cfg.min_parallel_frontier
                   : exec::TaskScheduler::sequential_threshold(sched.size());
}

void record_parallel_observability(ExploreResult& result,
                                   const exec::TaskScheduler& sched,
                                   std::size_t threshold,
                                   std::size_t max_dispatched) {
    result.parallel_threshold = threshold;
    result.parallel_grain =
            max_dispatched == 0
                    ? 0
                    : exec::TaskScheduler::auto_grain(max_dispatched,
                                                      sched.size());
    result.parallel_steals = sched.steal_count();
}

// ---------------------------------------------------------------------
// Snapshot engine (reference mode).
//
// The frontier holds *live* System snapshots; a child is parent->fork()
// plus one apply_choice.  Recording is off: the schedule script kept
// alongside each node is the record.  Deliberately simple and entirely
// in-RAM: this is the collision-free cross-check the hashed store-path
// engines are validated against, so it shares none of their machinery.
//
// The BFS is layered so that layers can be expanded in parallel:
// expansion (pure, per-node) happens through parallel_map_grained, and
// all mutation of the shared result/visited state happens in a
// sequential merge that consumes the expansions in input order.  The
// merge replays the exact bookkeeping order of the sequential
// pre-snapshot engine -- pop-time max_states check, expansion counting,
// first-in-BFS-order witness, child insertion order -- so the output is
// byte-identical across engines and thread counts.

/// One link of a shared schedule-prefix chain.  Frontier nodes share
/// their prefixes structurally instead of copying O(depth) StepChoices
/// per node; a witness schedule is materialized only when a violation
/// is actually found.  shared_ptr reference counts are atomic, so
/// chains may be extended concurrently from distinct expansions.
struct ScriptLink {
    std::shared_ptr<const ScriptLink> parent;
    StepChoice choice;
};

std::vector<StepChoice> materialize_script(const ScriptLink* tail) {
    std::vector<StepChoice> out;
    for (const ScriptLink* l = tail; l != nullptr; l = l->parent.get())
        out.push_back(l->choice);
    std::reverse(out.begin(), out.end());
    return out;
}

template <typename Key>
struct Child {
    Key key{};
    std::unique_ptr<System> sys;
    std::vector<std::string> digests;  ///< per-process behavior digests
    StepChoice choice;
};

template <typename Key>
struct Expansion {
    std::set<Value> decided;
    bool is_quiescent = false;
    std::vector<Value> outcome;  ///< filled iff is_quiescent
    bool at_depth = false;
    std::vector<Child<Key>> children;
};

template <typename Key>
struct Node {
    std::unique_ptr<System> sys;
    /// steps_of(p) > 0 ? last_digest(p) : "" per process -- see the
    /// state-key comment.
    std::vector<std::string> digests;
    std::shared_ptr<const ScriptLink> script;  ///< nullptr at the root
    int depth = 0;
};

/// Expands one frontier node: classifies it and, unless it is quiescent
/// or at the depth bound, forks one child per (live process, delivery
/// mode).  Touches only the node and freshly forked copies -- safe to
/// run concurrently on distinct nodes.
template <typename Key, typename KeyFn>
Expansion<Key> expand_node(const Node<Key>& node, const ExploreConfig& cfg,
                           const KeyFn& make_key) {
    Expansion<Key> e;
    const System& sys = *node.sys;
    e.decided = decision_set(sys, cfg.n);
    if (quiescent(sys, cfg)) {
        e.is_quiescent = true;
        e.outcome.assign(cfg.n, kNoValue);
        for (ProcessId p = 1; p <= cfg.n; ++p) {
            auto d = sys.decision_of(p);
            if (d) e.outcome[p - 1] = *d;
        }
        return e;
    }
    if (node.depth >= cfg.max_depth) {
        e.at_depth = true;
        return e;
    }
    for (ProcessId p = 1; p <= cfg.n; ++p) {
        if (!sys.can_step(p)) continue;
        // Skip steps that provably change nothing: a decided correct
        // process with an empty buffer.
        if (!cfg.plan.is_faulty(p) && sys.decision_of(p) &&
            sys.buffer(p).empty())
            continue;
        for (StepChoice& mode : delivery_modes(sys, p)) {
            Child<Key> child;
            child.sys = sys.fork();
            child.sys->apply_choice(mode);
            // Only process p stepped: every other behavior digest is
            // unchanged from the parent.
            child.digests = node.digests;
            child.digests[p - 1] = child.sys->last_digest(p);
            child.key = make_key(*child.sys, child.digests);
            child.choice = std::move(mode);
            e.children.push_back(std::move(child));
        }
    }
    return e;
}

template <typename Key, typename KeyFn>
ExploreResult explore_snapshot(const Algorithm& algorithm,
                               const ExploreConfig& cfg,
                               const KeyFn& make_key) {
    ExploreResult result;
    // Deterministic container on purpose (ksa-verify): the frontier is
    // cut off by max_states, so *which* states fall inside the explored
    // set must not depend on hash-iteration order or hash seeding --
    // two runs of the explorer must produce identical reports.
    std::set<Key> visited;

    exec::TaskScheduler sched(cfg.threads < 1 ? 1 : cfg.threads);
    const std::size_t threshold = resolve_threshold(cfg, sched);
    std::size_t max_dispatched = 0;

    std::vector<Node<Key>> layer;
    {
        auto root =
                std::make_unique<System>(algorithm, cfg.n, cfg.inputs, cfg.plan);
        root->set_recording(false);
        Node<Key> node;
        node.digests.assign(static_cast<std::size_t>(cfg.n), std::string());
        visited.insert(make_key(*root, node.digests));
        node.sys = std::move(root);
        layer.push_back(std::move(node));
    }

    bool truncated = false;
    while (!layer.empty() && !truncated) {
        if (cfg.collect_layer_sizes)
            result.layer_frontier_sizes.push_back(layer.size());
        // Parallel phase: expand every node of the layer independently
        // (inline below the adaptive threshold -- byte-identical).
        if (sched.size() > 1 && layer.size() >= threshold &&
            layer.size() > max_dispatched)
            max_dispatched = layer.size();
        std::vector<Expansion<Key>> expansions = exec::parallel_map_grained(
                sched, layer.size(), /*grain=*/0,
                [&](std::size_t i, int) {
                    return expand_node(layer[i], cfg, make_key);
                },
                threshold);

        // Sequential merge, in input order (= the sequential engine's
        // pop order).
        std::vector<Node<Key>> next;
        for (std::size_t i = 0; i < layer.size(); ++i) {
            if (visited.size() > cfg.max_states) {
                result.exhaustive = false;
                truncated = true;
                break;
            }
            ++result.schedules_expanded;
            Expansion<Key>& e = expansions[i];
            result.reachable_decision_sets.insert(e.decided);
            if (static_cast<int>(e.decided.size()) > cfg.k &&
                !result.violation_found) {
                result.violation_found = true;
                result.witness = materialize_script(layer[i].script.get());
            }
            if (e.is_quiescent) {
                result.quiescent_outcomes.insert(std::move(e.outcome));
                continue;
            }
            if (e.at_depth) {
                result.exhaustive = false;
                continue;
            }
            for (Child<Key>& c : e.children) {
                if (visited.insert(c.key).second) {
                    Node<Key> node;
                    node.sys = std::move(c.sys);
                    node.digests = std::move(c.digests);
                    node.script = std::make_shared<const ScriptLink>(
                            ScriptLink{layer[i].script, std::move(c.choice)});
                    node.depth = layer[i].depth + 1;
                    next.push_back(std::move(node));
                } else {
                    ++result.dedup_hits;
                }
            }
        }
        layer = std::move(next);
    }
    result.states_explored = visited.size();
    record_parallel_observability(result, sched, threshold, max_dispatched);
    return result;
}

// ---------------------------------------------------------------------
// Store-path engines (fast + reduced): the layered ghost-step BFS over
// the out-of-core store (src/store/, doc/performance.md §6).
//
// A frontier node is a 16-byte DeltaRecord -- (parent id, stepper,
// delivered-prefix length) -- not a live System; node ids are BFS
// acceptance sequence numbers, so a layer is a contiguous id interval
// of the append-only DeltaStore and "popping the next layer" is
// advancing an id range.  Each layer is processed in blocks of
// StoreOptions::expand_block nodes through three phases:
//
//   1. EXPAND (parallel): each worker re-materializes its nodes from
//      delta records through a per-worker store::Rematerializer --
//      which keeps a spine of forked Systems along the root path, so
//      the common case re-forks from the direct parent and replays one
//      step -- and ghost-steps every (live process, delivery mode)
//      candidate into a dedup key.  Pure reads of the shared stores.
//
//   2. DEDUP (parallel): the block's candidate keys, flattened in
//      BFS candidate order, go through ShardedVisitedStore::
//      insert_batch -- one task per shard, each shard owned by exactly
//      one worker and processing its candidates in ascending global
//      order, so the verdict vector is byte-identical to sequential
//      insertion for every thread/shard/block configuration.
//
//   3. MERGE (sequential): consumes expansions + verdicts in input
//      order and replays the exact bookkeeping order of the in-RAM
//      engines -- pop-order max_states check, expansion counting,
//      first-in-BFS-order witness (materialized on demand by delta
//      replay), child append order.  Appends to the DeltaStore happen
//      only here, which is the entire concurrency protocol: expansion
//      phases read, the merge phase writes, nothing overlaps.
//
// Block boundaries affect CPU and resident memory only, never results:
// the candidate stream seen by the visited store and the record stream
// appended to the delta store are byte-identical for every
// expand_block, and truncation (max_states) cuts both at the same
// pop-order point the sequential engine would.

/// A candidate child, described without materializing it: the
/// (stepper, delivered-prefix-length) pair fully describes the step --
/// exactly the payload of the DeltaRecord appended if the key survives
/// deduplication.
struct StoreChild {
    Digest128 key{};
    ProcessId stepper = 0;
    std::uint32_t delivered = 0;  ///< length of the delivered buffer prefix
};

struct StoreExpansion {
    std::set<Value> decided;
    bool is_quiescent = false;
    std::vector<Value> outcome;  ///< filled iff is_quiescent
    bool at_depth = false;
    std::size_t por_skips = 0;  ///< reduced engine only
    std::vector<StoreChild> children;
};

#ifndef NDEBUG
/// The executable form of the rematerializer contract: the spine's
/// incrementally advanced caches equal a fresh recompute from the live
/// System.  An accepted child's ghost key is a pure function of these
/// caches, so this is the store-path descendant of the old "ghost key
/// == realized state hash" assertion of the in-RAM engines.
void check_node_caches(const store::MaterializedNode& node, int n,
                       store::Rematerializer::DigestSendFn digest_send) {
    for (ProcessId q = 1; q <= n; ++q) {
        const BehaviorMark& m = (*node.marks)[q - 1];
        require(m.stepped == (node.sys->steps_of(q) > 0),
                "store path: stale stepped flag in spine cache");
        if (m.stepped)
            require(m.hash == behavior_hash(node.sys->behavior_of(q)),
                    "store path: stale behavior digest in spine cache");
        const auto& mh = (*node.mhash)[q - 1];
        const auto& buf = node.sys->buffer(q);
        require(mh.size() == buf.size(),
                "store path: message-digest cache length mismatch");
        for (std::size_t i = 0; i < mh.size(); ++i)
            require(mh[i] == digest_send(buf[i].from, buf[i].payload),
                    "store path: stale message digest in spine cache");
    }
}
#endif

/// The shared BFS driver of the store-path engines.  `Worker` carries
/// the per-worker Rematerializer (`remat`) plus whatever expansion
/// scratch the engine needs; `expand(node, worker, depth)` classifies
/// one materialized node and returns its candidate children.
template <typename Worker, typename ExpandFn>
void run_store_bfs(const Algorithm& algorithm, const ExploreConfig& cfg,
                   const Digest128& root_key,
                   store::Rematerializer::DigestSendFn digest_send,
                   const ExpandFn& expand, ExploreResult& result) {
    exec::TaskScheduler sched(cfg.threads < 1 ? 1 : cfg.threads);
    const std::size_t threshold = resolve_threshold(cfg, sched);
    std::size_t max_dispatched = 0;

    store::ShardedVisitedStore visited(cfg.store);
    store::DeltaStore deltas(cfg.store);
    std::vector<Worker> workers(static_cast<std::size_t>(sched.size()));
    for (Worker& w : workers)
        w.remat = std::make_unique<store::Rematerializer>(
                algorithm, cfg.n, cfg.inputs, cfg.plan, deltas, digest_send);

    visited.insert(root_key);
    deltas.append(store::DeltaRecord{});  // the root: id 0, no real step
    // Pop-order truncation bookkeeping.  The in-RAM engines check
    // `visited.size() > max_states` when popping a node; insert_batch
    // pre-inserts a whole block's survivors at once, so the equivalent
    // sequential quantity -- root + children accepted by the merge so
    // far -- is carried explicitly, and states_explored is reported
    // from it for the same reason.
    std::size_t states_accepted = 1;

    const std::size_t block_cap =
            cfg.store.expand_block == 0 ? 1 : cfg.store.expand_block;
    std::vector<Digest128> keys;        // flattened candidate keys
    std::vector<std::uint8_t> verdict;  // 1 = new, in candidate order

    std::uint64_t layer_begin = 0;
    std::uint64_t layer_end = 1;
    int depth = 0;
    bool truncated = false;
    while (layer_begin < layer_end && !truncated) {
        if (cfg.collect_layer_sizes)
            result.layer_frontier_sizes.push_back(
                    static_cast<std::size_t>(layer_end - layer_begin));
        for (std::uint64_t block = layer_begin;
             block < layer_end && !truncated; block += block_cap) {
            const std::size_t count = static_cast<std::size_t>(
                    std::min<std::uint64_t>(block_cap, layer_end - block));
            // Phase 1 (parallel): materialize + ghost-expand the block.
            if (sched.size() > 1 && count >= threshold &&
                count > max_dispatched)
                max_dispatched = count;
            std::vector<StoreExpansion> expansions =
                    exec::parallel_map_grained(
                            sched, count, /*grain=*/0,
                            [&](std::size_t i, int w) {
                                Worker& wk =
                                        workers[static_cast<std::size_t>(w)];
                                const store::MaterializedNode node =
                                        wk.remat->materialize(block + i);
#ifndef NDEBUG
                                check_node_caches(node, cfg.n, digest_send);
#endif
                                return expand(node, wk, depth);
                            },
                            threshold);

            // Phase 2 (parallel): dedup the block's candidates in one
            // sharded batch.
            keys.clear();
            for (const StoreExpansion& e : expansions)
                for (const StoreChild& c : e.children) keys.push_back(c.key);
            visited.insert_batch(sched, keys, verdict);

            // Phase 3 (sequential merge, input order = the sequential
            // engine's pop order).
            std::size_t vi = 0;
            for (std::size_t i = 0; i < count; ++i) {
                if (states_accepted > cfg.max_states) {
                    result.exhaustive = false;
                    truncated = true;
                    break;
                }
                ++result.schedules_expanded;
                StoreExpansion& e = expansions[i];
                result.por_skips += e.por_skips;
                result.reachable_decision_sets.insert(e.decided);
                if (static_cast<int>(e.decided.size()) > cfg.k &&
                    !result.violation_found) {
                    result.violation_found = true;
                    result.witness = workers[0].remat->script_of(block + i);
                }
                if (e.is_quiescent) {
                    result.quiescent_outcomes.insert(std::move(e.outcome));
                    continue;
                }
                if (e.at_depth) {
                    result.exhaustive = false;
                    continue;
                }
                for (const StoreChild& c : e.children) {
                    if (verdict[vi++] != 0) {
                        ++states_accepted;
                        deltas.append(store::DeltaRecord{
                                block + i,
                                static_cast<std::uint32_t>(c.stepper),
                                c.delivered});
                    } else {
                        ++result.dedup_hits;
                    }
                }
            }
            const std::size_t resident =
                    visited.stats().resident_bytes + deltas.resident_bytes();
            if (resident > result.peak_resident_bytes)
                result.peak_resident_bytes = resident;
        }
        layer_begin = layer_end;
        layer_end = deltas.size();
        ++depth;
    }

    result.states_explored = states_accepted;
    record_parallel_observability(result, sched, threshold, max_dispatched);
    const store::VisitedStats vs = visited.stats();
    result.store_shards = vs.shards;
    result.filter_definite_new = vs.filter_negatives;
    result.filter_false_positives = vs.filter_false_positives;
    result.spilled_records = deltas.spilled_records();
    result.spill_bytes = deltas.spill_bytes();
    for (const Worker& w : workers) {
        result.replay_steps += w.remat->replay_steps();
        result.spill_reads += w.remat->spill_reads();
    }
}

// ---------------------------------------------------------------------
// Fast engine: ghost expansion over the store path.

/// Per-worker state of the fast engine: the delta rematerializer plus
/// ghost-step scratch, reused across every node the worker expands.
struct FastWorker {
    std::unique_ptr<store::Rematerializer> remat;
    StepInput step;
    std::vector<ArrivingSend> arriving;
};

/// Classifies one materialized node and ghost-steps every (live
/// process, delivery mode) candidate.  Reads the node and clones
/// single behaviors only -- safe to run concurrently on distinct nodes.
StoreExpansion expand_fast(const store::MaterializedNode& node, int depth,
                           const ExploreConfig& cfg, FastWorker& wk) {
    StoreExpansion e;
    const System& sys = *node.sys;
    e.decided = decision_set(sys, cfg.n);
    if (quiescent(sys, cfg)) {
        e.is_quiescent = true;
        e.outcome.assign(cfg.n, kNoValue);
        for (ProcessId p = 1; p <= cfg.n; ++p) {
            auto d = sys.decision_of(p);
            if (d) e.outcome[p - 1] = *d;
        }
        return e;
    }
    if (depth >= cfg.max_depth) {
        e.at_depth = true;
        return e;
    }
    e.children.reserve(static_cast<std::size_t>(3 * cfg.n));
    for (ProcessId p = 1; p <= cfg.n; ++p) {
        if (!sys.can_step(p)) continue;
        if (!cfg.plan.is_faulty(p) && sys.decision_of(p) &&
            sys.buffer(p).empty())
            continue;
        // The delivered-prefix lengths of delivery_modes(), without
        // materializing StepChoices: nothing, the oldest message, the
        // whole buffer (iff it differs from "oldest").
        const std::size_t buf_size = sys.buffer(p).size();
        std::size_t prefixes[3];
        std::size_t num_prefixes = 0;
        prefixes[num_prefixes++] = 0;
        if (buf_size >= 1) prefixes[num_prefixes++] = 1;
        if (buf_size > 1) prefixes[num_prefixes++] = buf_size;
        for (std::size_t m = 0; m < num_prefixes; ++m) {
            GhostStep g = ghost_step(sys, p, prefixes[m], wk.step);
            fill_arriving(g, p, msg_hash, wk.arriving);
            StoreChild child;
            child.key = hash_child(sys, cfg.n, p, g, *node.marks,
                                   *node.mhash, wk.arriving);
            child.stepper = p;
            child.delivered = static_cast<std::uint32_t>(prefixes[m]);
            e.children.push_back(child);
        }
    }
    return e;
}

ExploreResult explore_fast(const Algorithm& algorithm,
                           const ExploreConfig& cfg) {
    ExploreResult result;
    Digest128 root_key;
    {
        System root(algorithm, cfg.n, cfg.inputs, cfg.plan);
        root_key = hash_state(root, cfg.n);
    }
    run_store_bfs<FastWorker>(
            algorithm, cfg, root_key, &msg_hash,
            [&cfg](const store::MaterializedNode& node, FastWorker& wk,
                   int depth) { return expand_fast(node, depth, cfg, wk); },
            result);
    return result;
}

// ---------------------------------------------------------------------
// Reduced engine (ExploreMode::kReduced): the fast engine's store-path
// ghost-step BFS with the reduction layer (core/reduction.hpp) on top.
// doc/performance.md carries the full soundness argument; in brief:
//
//   * SYMMETRY -- dedup keys are canonicalized to the minimum digest
//     over the symmetry group G (permutations fixing inputs + plan that
//     the algorithm declares equivariance under): one representative
//     per G-orbit is explored.  The identity element reuses the fast
//     engine's incremental caches (with reduced_msg_hash as the
//     message digest); non-identity elements re-walk the candidate
//     through the renaming.  Decision-value sets are G-invariant;
//     per-process quiescent outcome vectors are orbit-expanded over G
//     before the result is returned.
//
//   * ABSORPTION -- the observational quotient of core/reduction.hpp:
//     when the algorithm declares decisions final, a decided process
//     folds to its decision value alone (buffer, crash flag and
//     internal bookkeeping leave the key), its step choices are
//     skipped, and quiescence classification treats it as drained --
//     the absorbed representative itself records the outcome its
//     drain-only descendants would have recorded.  Independently,
//     messages the receiver declares inert (Behavior::message_inert)
//     are deleted from every key, wherever they sit in the buffer.
//
//   * PARTIAL ORDER -- a persistent-set filter: when some enumerable
//     process's every delivery-mode move neither decides a fresh value
//     nor sends to a process that can still step (decided processes
//     of a decisions-are-final algorithm count as stopped), and every
//     OTHER steppable process is send-quiescent (Behavior::may_send),
//     that process's moves commute with everything the rest of the
//     system can ever do.  Only that process is expanded; the other
//     processes' moves are skipped and counted as por_skips.
//
// Unlike the other engines this explores a QUOTIENT of the reachable
// space: states_explored / schedules_expanded shrink, while
// violation_found, reachable_decision_sets and quiescent_outcomes are
// preserved (exactly so on exhaustive explorations).

/// Quotient-aware quiescence: a process that has decided under a
/// decisions-are-final algorithm is absorbed -- its undrained buffer
/// and remaining (skipped) steps cannot change any decision, so the
/// configuration's outcome vector is already the outcome vector of the
/// fully drained configurations it represents.  Without decided-final
/// absorption this is exactly quiescent().  Classifying quiescence on
/// the quotient is what keeps outcomes observable at all: drain-only
/// children hash equal to their parent and are deduplicated away, so
/// the absorbed representative itself must be the state that records
/// the outcome.
bool quiescent_reduced(const System& sys, const ExploreConfig& cfg,
                       const AbsorptionContext& abs) {
    for (ProcessId p = 1; p <= cfg.n; ++p) {
        if (abs.decided_final && sys.decision_of(p)) continue;  // absorbed
        if (cfg.plan.is_faulty(p)) {
            if (sys.can_step(p)) return false;
        } else {
            if (!sys.decision_of(p)) return false;
            // Dead (inert) leftovers don't block quiescence: the state
            // keys equal to its fully drained counterpart, so it must
            // also CLASSIFY like it, or the orbit's outcome would be
            // recorded by neither representative.
            const auto& buf = sys.buffer(p);
            const Behavior& recv = sys.behavior_of(p);
            for (const Message& m : buf)
                if (!dead_message(m.from, m.payload, recv, abs))
                    return false;
        }
    }
    return true;
}

/// Identity-renaming child key of the reduced engine: hash_child's
/// cached-digest walk with the absorption quotient applied -- decided
/// processes fold to their decision alone and dead messages (judged by
/// the receiver's CHILD-state behavior) are deleted from buffer keys.
/// Field-for-field identical to reduced_hash_state() of the realized
/// child, and to hash_child() when the quotient is off.
Digest128 hash_child_reduced(const System& sys, int n, ProcessId stepper,
                             const GhostStep& g,
                             const std::vector<BehaviorMark>& parent_marks,
                             const MessageHashes& parent_mhash,
                             const std::vector<ArrivingSend>& arriving,
                             const AbsorptionContext& abs,
                             std::vector<const Payload*>& payload_scratch) {
    StateHasher h;
    for (ProcessId q = 1; q <= n; ++q) {
        auto d = sys.decision_of(q);
        if (q == stepper && g.out.decision) d = g.out.decision;
        if (abs.decided_final && d) {
            h.u64(2);
            h.i64(*d);
            continue;
        }
        const bool crashed_q = q == stepper ? g.final_crash : sys.crashed(q);
        h.u64(crashed_q ? 1 : 0);
        h.u64(d ? 1 : 0);
        if (d) h.i64(*d);
        const auto& mh = parent_mhash[q - 1];
        const std::size_t skip = q == stepper ? g.delivered : 0;
        // Arriving payloads for q, in emission order: index-aligned with
        // the entries of `arriving` whose dest is q (fill_arriving walks
        // the same surviving sends in the same order).
        payload_scratch.clear();
        for (const auto& [dest, payload] : g.out.sends)
            if (dest == q && g.send_survives(dest))
                payload_scratch.push_back(&payload);
        // Delete dead messages anywhere in the child's buffer
        // (buf[skip:] ++ arriving), judged by q's child-state behavior.
        const Behavior& receiver =
                q == stepper ? *g.behavior : sys.behavior_of(q);
        const auto& buf = sys.buffer(q);
        std::size_t live = 0;
        for (std::size_t i = skip; i < mh.size(); ++i)
            if (!dead_message(buf[i].from, buf[i].payload, receiver, abs))
                ++live;
        for (const Payload* pl : payload_scratch)
            if (!dead_message(stepper, *pl, receiver, abs)) ++live;
        h.u64(live);
        for (std::size_t i = skip; i < mh.size(); ++i)
            if (!dead_message(buf[i].from, buf[i].payload, receiver, abs))
                h.fold(mh[i]);
        std::size_t ai = 0;  // walks arriving's dest==q entries in order
        for (const ArrivingSend& a : arriving) {
            if (a.dest != q) continue;
            if (!dead_message(stepper, *payload_scratch[ai], receiver, abs))
                h.fold(a.hash);
            ++ai;
        }
    }
    for (ProcessId q = 1; q <= n; ++q) {
        if (abs.decided_final) {
            auto d = sys.decision_of(q);
            if (q == stepper && g.out.decision) d = g.out.decision;
            if (d) continue;  // collapsed with the first loop's marker
        }
        if (q == stepper)
            fold_mark(h, BehaviorMark{true, g.bhash});
        else
            fold_mark(h, parent_marks[q - 1]);
    }
    return h.digest();
}

/// Per-worker state of the reduced engine: the delta rematerializer
/// plus ghost/rename/payload scratch, reused across every node a
/// worker expands.  Each worker owns exactly one: nothing is shared.
struct ReducedWorker {
    std::unique_ptr<store::Rematerializer> remat;
    StepInput step;
    RenameScratch rename;
    std::vector<const Payload*> payloads;
    std::vector<ArrivingSend> arriving;
};

/// Classify, pick the persistent set, ghost-step and canonicalize the
/// surviving candidates of one materialized node.  Reads the node, the
/// calling worker's scratch and clones single behaviors only -- safe
/// to run concurrently on distinct nodes.
StoreExpansion expand_reduced(const store::MaterializedNode& node, int depth,
                              const ExploreConfig& cfg,
                              const Algorithm& algorithm,
                              const SymmetryGroup& group,
                              const AbsorptionContext& abs,
                              ReducedWorker& wk) {
    StoreExpansion e;
    const System& sys = *node.sys;
    e.decided = decision_set(sys, cfg.n);
    if (quiescent_reduced(sys, cfg, abs)) {
        e.is_quiescent = true;
        e.outcome.assign(cfg.n, kNoValue);
        for (ProcessId p = 1; p <= cfg.n; ++p) {
            auto d = sys.decision_of(p);
            if (d) e.outcome[p - 1] = *d;
        }
        return e;
    }
    if (depth >= cfg.max_depth) {
        e.at_depth = true;
        return e;
    }

    // The enumerable moves, in the canonical (process, delivery-mode)
    // order every engine uses.
    struct ProcMoves {
        ProcessId p = 0;
        std::size_t prefixes[3] = {0, 0, 0};
        std::size_t num = 0;
    };
    std::vector<ProcMoves> procs;
    procs.reserve(static_cast<std::size_t>(cfg.n));
    std::size_t total_moves = 0;
    for (ProcessId p = 1; p <= cfg.n; ++p) {
        if (!sys.can_step(p)) continue;
        if (!cfg.plan.is_faulty(p) && sys.decision_of(p) &&
            sys.buffer(p).empty())
            continue;
        if (abs.decided_final && sys.decision_of(p)) {
            // Absorbed: a decided process of a decisions-are-final
            // algorithm never sends or decides again, so every one of
            // its moves reaches a state whose quotient key equals the
            // parent's.  Skip them outright (counted with the POR
            // skips) instead of generating self-deduplicating children.
            const std::size_t buf_size = sys.buffer(p).size();
            e.por_skips += 1 + (buf_size >= 1 ? 1 : 0) +
                           (buf_size > 1 ? 1 : 0);
            continue;
        }
        ProcMoves pm;
        pm.p = p;
        const std::size_t buf_size = sys.buffer(p).size();
        pm.prefixes[pm.num++] = 0;
        if (buf_size >= 1) pm.prefixes[pm.num++] = 1;
        if (buf_size > 1) pm.prefixes[pm.num++] = buf_size;
        total_moves += pm.num;
        procs.push_back(pm);
    }

    auto ghost_moves = [&](const ProcMoves& pm) {
        std::vector<GhostStep> out;
        out.reserve(pm.num);
        for (std::size_t m = 0; m < pm.num; ++m)
            out.push_back(ghost_step(sys, pm.p, pm.prefixes[m], wk.step));
        return out;
    };

    // Partial-order reduction: find the smallest-id safe process.  A
    // process p is safe when (a) every steppable process other than p
    // is send-quiescent -- so nothing can ever send to p or to anyone
    // else before p moves -- and (b) every move of p sends only to p
    // itself or to processes that can never step again, and either
    // does not decide or decides a value that is already in the
    // state's decision set (so hoisting the move past any interleaving
    // changes no intermediate decision set).  Then p's moves commute
    // with every future move of the rest of the system and expanding p
    // alone loses no decision set, no quiescent outcome and no
    // violation (doc/performance.md gives the full argument).
    const ProcMoves* ample = nullptr;
    std::vector<GhostStep> ample_ghosts;
    if (cfg.reduction.por) {
        std::vector<ProcessId> senders;  // steppable and may still send
        for (ProcessId q = 1; q <= cfg.n; ++q)
            if (sys.can_step(q) && sys.behavior_of(q).may_send())
                senders.push_back(q);
        // Two senders: whichever process we pick, some OTHER process
        // may still send -- nobody is safe.  One sender: only it can
        // be.  None: try every enumerable process in id order.
        if (senders.size() <= 1) {
            for (const ProcMoves& pm : procs) {
                if (!senders.empty() && senders.front() != pm.p) continue;
                std::vector<GhostStep> ghosts = ghost_moves(pm);
                bool safe = true;
                for (const GhostStep& g : ghosts) {
                    if (g.out.decision &&
                        e.decided.count(*g.out.decision) == 0) {
                        safe = false;
                        break;
                    }
                    for (const auto& [dest, payload] : g.out.sends) {
                        if (!g.send_survives(dest)) continue;
                        // A decided destination of a decisions-are-final
                        // algorithm is as good as stopped: the send
                        // lands in a buffer the quotient never reads.
                        if (dest != pm.p && sys.can_step(dest) &&
                            !(abs.decided_final && sys.decision_of(dest))) {
                            safe = false;
                            break;
                        }
                    }
                    if (!safe) break;
                }
                if (safe) {
                    ample = &pm;
                    ample_ghosts = std::move(ghosts);
                    break;
                }
            }
        }
    }

    auto emit_child = [&](ProcessId p, std::size_t delivered, GhostStep& g) {
        fill_arriving(g, p, reduced_msg_hash, wk.arriving);
        StoreChild child;
        child.key = hash_child_reduced(sys, cfg.n, p, g, *node.marks,
                                       *node.mhash, wk.arriving, abs,
                                       wk.payloads);
        if (group.size() > 1) {
            GhostEffects eff;
            eff.stepper = p;
            eff.delivered = delivered;
            eff.final_crash = g.final_crash;
            eff.omit_to = g.omit_to;
            eff.sends = &g.out.sends;
            eff.decision = &g.out.decision;
            eff.behavior_after = g.behavior.get();
            for (std::size_t gi = 1; gi < group.size(); ++gi) {
                const Digest128 d = hash_child_renamed(
                        sys, cfg.n, algorithm, eff, group.renaming(gi),
                        group.inverse(gi), wk.rename, abs);
                if (d < child.key) child.key = d;
            }
        }
        child.stepper = p;
        child.delivered = static_cast<std::uint32_t>(delivered);
        e.children.push_back(child);
    };

    if (ample != nullptr) {
        e.por_skips = total_moves - ample->num;
        for (std::size_t m = 0; m < ample->num; ++m)
            emit_child(ample->p, ample->prefixes[m], ample_ghosts[m]);
        return e;
    }
    e.children.reserve(total_moves);
    for (const ProcMoves& pm : procs) {
        std::vector<GhostStep> ghosts = ghost_moves(pm);
        for (std::size_t m = 0; m < pm.num; ++m)
            emit_child(pm.p, pm.prefixes[m], ghosts[m]);
    }
    return e;
}

ExploreResult explore_reduced(const Algorithm& algorithm,
                              const ExploreConfig& cfg) {
    ExploreResult result;

    const SymmetryGroup group =
            cfg.reduction.symmetry
                    ? SymmetryGroup::compute(algorithm, cfg.n, cfg.inputs,
                                             cfg.plan)
                    : SymmetryGroup::trivial(cfg.n);

    AbsorptionContext abs;
    abs.strip_inert = cfg.reduction.absorption;
    abs.decided_final =
            cfg.reduction.absorption && algorithm.decided_is_final();

    Digest128 root_key;
    {
        System root(algorithm, cfg.n, cfg.inputs, cfg.plan);
        RenameScratch scratch;
        root_key = canonical_state_key(root, cfg.n, algorithm, group,
                                       scratch, abs);
    }
    run_store_bfs<ReducedWorker>(
            algorithm, cfg, root_key, &reduced_msg_hash,
            [&](const store::MaterializedNode& node, ReducedWorker& wk,
                int depth) {
                return expand_reduced(node, depth, cfg, algorithm, group,
                                      abs, wk);
            },
            result);

    // Orbit-expand the quiescent outcomes: a pruned orbit member's runs
    // are the renamed runs of its explored representative, so its
    // outcome vectors are the renamed outcome vectors.
    if (!group.is_trivial()) {
        std::set<std::vector<Value>> expanded;
        for (const std::vector<Value>& o : result.quiescent_outcomes)
            for (std::size_t g = 0; g < group.size(); ++g)
                expanded.insert(group.apply_to_outcome(g, o));
        result.quiescent_outcomes = std::move(expanded);
    }
    return result;
}

// ---------------------------------------------------------------------
// Replay baseline.
//
// The pre-snapshot engine, kept verbatim: every frontier entry is a
// schedule script, every expansion replays the script on a fresh System
// and every candidate key additionally replays *and finishes* a
// throwaway copy to recover behavior digests from the Run record.  It
// exists (a) as the baseline bench_model_check measures the snapshot
// engine against and (b) as a third independent implementation for the
// golden equivalence suite.  Single-threaded by nature.

/// Runs `script` on a fresh system; returns the system for inspection.
std::unique_ptr<System> replay(const Algorithm& algorithm,
                               const ExploreConfig& cfg,
                               const std::vector<StepChoice>& script) {
    auto sys = std::make_unique<System>(algorithm, cfg.n, cfg.inputs, cfg.plan);
    for (const StepChoice& c : script) sys->apply_choice(c);
    return sys;
}

/// Configuration-state digest *including* the per-process behavior
/// state, reconstructed the pre-snapshot way: replay, then finish() a
/// throwaway copy and read the digests out of the Run record.
std::string baseline_full_digest(const Algorithm& algorithm,
                                 const ExploreConfig& cfg,
                                 const std::vector<StepChoice>& script) {
    auto sys = std::make_unique<System>(algorithm, cfg.n, cfg.inputs, cfg.plan);
    for (const StepChoice& c : script) sys->apply_choice(c);
    std::ostringstream out;
    for (ProcessId p = 1; p <= cfg.n; ++p) {
        out << '|' << (sys->crashed(p) ? "X" : "");
        auto d = sys->decision_of(p);
        if (d) out << "D" << *d;
        out << ';';
        for (const Message& m : sys->buffer(p))
            out << m.from << ':' << m.payload.to_string() << ',';
    }
    Run run = sys->finish(StopReason::kSchedulerEnded);
    std::vector<std::string> last(cfg.n);
    for (const StepRecord& s : run.steps) last[s.process - 1] = s.digest_after;
    out << '#';
    for (const std::string& d : last) out << d << '|';
    return out.str();
}

ExploreResult explore_replay_baseline(const Algorithm& algorithm,
                                      const ExploreConfig& cfg) {
    ExploreResult result;
    std::set<std::string> visited;
    std::deque<std::vector<StepChoice>> frontier;
    frontier.push_back({});
    visited.insert(baseline_full_digest(algorithm, cfg, {}));

    while (!frontier.empty()) {
        if (visited.size() > cfg.max_states) {
            result.exhaustive = false;
            break;
        }
        std::vector<StepChoice> script = std::move(frontier.front());
        frontier.pop_front();
        ++result.schedules_expanded;

        auto sys = replay(algorithm, cfg, script);
        const std::set<Value> decided = decision_set(*sys, cfg.n);
        result.reachable_decision_sets.insert(decided);
        if (static_cast<int>(decided.size()) > cfg.k &&
            !result.violation_found) {
            result.violation_found = true;
            result.witness = script;
        }
        if (quiescent(*sys, cfg)) {
            std::vector<Value> outcome(cfg.n, kNoValue);
            for (ProcessId p = 1; p <= cfg.n; ++p) {
                auto d = sys->decision_of(p);
                if (d) outcome[p - 1] = *d;
            }
            result.quiescent_outcomes.insert(std::move(outcome));
            continue;
        }
        if (static_cast<int>(script.size()) >= cfg.max_depth) {
            result.exhaustive = false;
            continue;
        }

        for (ProcessId p = 1; p <= cfg.n; ++p) {
            if (!sys->can_step(p)) continue;
            if (!cfg.plan.is_faulty(p) && sys->decision_of(p) &&
                sys->buffer(p).empty())
                continue;
            for (StepChoice& mode : delivery_modes(*sys, p)) {
                std::vector<StepChoice> child = script;
                child.push_back(std::move(mode));
                std::string digest = baseline_full_digest(algorithm, cfg, child);
                if (visited.insert(std::move(digest)).second)
                    frontier.push_back(std::move(child));
                else
                    ++result.dedup_hits;
            }
        }
    }
    result.states_explored = visited.size();
    return result;
}

}  // namespace

std::string to_string(ExploreMode mode) {
    switch (mode) {
        case ExploreMode::kFast: return "fast";
        case ExploreMode::kReference: return "reference";
        case ExploreMode::kReplayBaseline: return "replay-baseline";
        case ExploreMode::kReduced: return "reduced";
    }
    return "unknown";
}

std::string ExploreResult::summary() const {
    std::ostringstream out;
    out << "explored " << states_explored << " states ("
        << schedules_expanded << " expansions, "
        << dedup_hits << " dedup hits";
    if (por_skips > 0) out << ", " << por_skips << " POR skips";
    out << "), " << (exhaustive ? "exhaustive" : "TRUNCATED") << ", "
        << quiescent_outcomes.size() << " quiescent outcomes, "
        << reachable_decision_sets.size() << " reachable decision sets, "
        << (violation_found ? "VIOLATION FOUND" : "no violation");
    return out.str();
}

ExploreResult explore_schedules(const Algorithm& algorithm,
                                const ExploreConfig& cfg) {
    require(!algorithm.needs_failure_detector(),
            "explore_schedules: detector-using algorithms are not supported");
    require(static_cast<int>(cfg.inputs.size()) == cfg.n,
            "explore_schedules: need n inputs");

    switch (cfg.mode) {
        case ExploreMode::kFast:
            return explore_fast(algorithm, cfg);
        case ExploreMode::kReference:
            return explore_snapshot<std::string>(
                    algorithm, cfg,
                    [&cfg](const System& sys,
                           const std::vector<std::string>& digests) {
                        return canonical_state_string(sys, cfg.n, digests);
                    });
        case ExploreMode::kReplayBaseline:
            return explore_replay_baseline(algorithm, cfg);
        case ExploreMode::kReduced:
            return explore_reduced(algorithm, cfg);
    }
    throw UsageError("explore_schedules: unknown ExploreMode");
}

}  // namespace ksa::core
