#include "core/explorer.hpp"

#include <deque>
#include <set>
#include <sstream>

#include "sim/system.hpp"

namespace ksa::core {

namespace {

/// Content-based digest of a full configuration: local states, decisions,
/// crash flags, and buffer contents (sender + payload, in order; message
/// ids are simulator bookkeeping and intentionally excluded so that
/// content-equal states reached by different schedules deduplicate).
std::string configuration_digest(const System& sys, int n) {
    std::ostringstream out;
    for (ProcessId p = 1; p <= n; ++p) {
        out << '|' << (sys.crashed(p) ? "X" : "");
        auto d = sys.decision_of(p);
        if (d) out << "D" << *d;
        out << ';';
        for (const Message& m : sys.buffer(p))
            out << m.from << ':' << m.payload.to_string() << ',';
    }
    return out.str();
}

/// Runs `script` on a fresh system; returns the system for inspection.
std::unique_ptr<System> replay(const Algorithm& algorithm,
                               const ExploreConfig& cfg,
                               const std::vector<StepChoice>& script) {
    auto sys = std::make_unique<System>(algorithm, cfg.n, cfg.inputs, cfg.plan);
    for (const StepChoice& c : script) sys->apply_choice(c);
    return sys;
}

/// Configuration-state digest *including* the per-process behavior state.
std::string full_digest(const Algorithm& algorithm, const ExploreConfig& cfg,
                        const std::vector<StepChoice>& script) {
    // Behavior digests are recorded per step in the Run; rather than
    // threading them out of System we reconstruct them by replaying and
    // finishing a throwaway copy.
    auto sys = std::make_unique<System>(algorithm, cfg.n, cfg.inputs, cfg.plan);
    for (const StepChoice& c : script) sys->apply_choice(c);
    std::string conf = configuration_digest(*sys, cfg.n);
    Run run = sys->finish(StopReason::kSchedulerEnded);
    std::vector<std::string> last(cfg.n);
    for (const StepRecord& s : run.steps) last[s.process - 1] = s.digest_after;
    std::ostringstream out;
    out << conf << '#';
    for (const std::string& d : last) out << d << '|';
    return out.str();
}

bool quiescent(const System& sys, const ExploreConfig& cfg) {
    for (ProcessId p = 1; p <= cfg.n; ++p) {
        if (cfg.plan.is_faulty(p)) {
            if (sys.can_step(p)) return false;
        } else {
            if (!sys.decision_of(p) || !sys.buffer(p).empty()) return false;
        }
    }
    return true;
}

std::set<Value> decision_set(const System& sys, int n) {
    std::set<Value> out;
    for (ProcessId p = 1; p <= n; ++p) {
        auto d = sys.decision_of(p);
        if (d) out.insert(*d);
    }
    return out;
}

}  // namespace

std::string ExploreResult::summary() const {
    std::ostringstream out;
    out << "explored " << states_explored << " states ("
        << schedules_expanded << " expansions), "
        << (exhaustive ? "exhaustive" : "TRUNCATED") << ", "
        << quiescent_outcomes.size() << " quiescent outcomes, "
        << reachable_decision_sets.size() << " reachable decision sets, "
        << (violation_found ? "VIOLATION FOUND" : "no violation");
    return out.str();
}

ExploreResult explore_schedules(const Algorithm& algorithm,
                                const ExploreConfig& cfg) {
    require(!algorithm.needs_failure_detector(),
            "explore_schedules: detector-using algorithms are not supported");
    require(static_cast<int>(cfg.inputs.size()) == cfg.n,
            "explore_schedules: need n inputs");

    ExploreResult result;
    // Deterministic container on purpose (ksa-verify): the frontier is
    // cut off by max_states, so *which* states fall inside the explored
    // set must not depend on hash-iteration order or hash seeding --
    // two runs of the explorer must produce identical reports.
    std::set<std::string> visited;
    std::deque<std::vector<StepChoice>> frontier;
    frontier.push_back({});
    visited.insert(full_digest(algorithm, cfg, {}));

    while (!frontier.empty()) {
        if (visited.size() > cfg.max_states) {
            result.exhaustive = false;
            break;
        }
        std::vector<StepChoice> script = std::move(frontier.front());
        frontier.pop_front();
        ++result.schedules_expanded;

        auto sys = replay(algorithm, cfg, script);
        const std::set<Value> decided = decision_set(*sys, cfg.n);
        result.reachable_decision_sets.insert(decided);
        if (static_cast<int>(decided.size()) > cfg.k &&
            !result.violation_found) {
            result.violation_found = true;
            result.witness = script;
        }
        if (quiescent(*sys, cfg)) {
            std::vector<Value> outcome(cfg.n, kNoValue);
            for (ProcessId p = 1; p <= cfg.n; ++p) {
                auto d = sys->decision_of(p);
                if (d) outcome[p - 1] = *d;
            }
            result.quiescent_outcomes.insert(std::move(outcome));
            continue;
        }
        if (static_cast<int>(script.size()) >= cfg.max_depth) {
            result.exhaustive = false;
            continue;
        }

        // Children: for every live process, the three delivery modes.
        for (ProcessId p = 1; p <= cfg.n; ++p) {
            if (!sys->can_step(p)) continue;
            const auto& buf = sys->buffer(p);
            const bool faulty = cfg.plan.is_faulty(p);
            // Skip steps that provably change nothing: a decided correct
            // process with an empty buffer.
            if (!faulty && sys->decision_of(p) && buf.empty()) continue;

            std::vector<StepChoice> modes;
            {
                StepChoice none;
                none.process = p;
                modes.push_back(none);
            }
            if (!buf.empty()) {
                StepChoice oldest;
                oldest.process = p;
                oldest.deliver.push_back(buf.front().id);
                modes.push_back(oldest);
                if (buf.size() > 1) {
                    StepChoice all;
                    all.process = p;
                    for (const Message& m : buf) all.deliver.push_back(m.id);
                    modes.push_back(all);
                }
            }
            for (StepChoice& mode : modes) {
                std::vector<StepChoice> child = script;
                child.push_back(mode);
                std::string digest = full_digest(algorithm, cfg, child);
                if (visited.insert(std::move(digest)).second)
                    frontier.push_back(std::move(child));
            }
        }
    }
    result.states_explored = visited.size();
    return result;
}

}  // namespace ksa::core
