#pragma once
// The Corollary 13 possibility drivers: (Sigma_k, Omega_k) *does* solve
// k-set agreement at the two ends of the band.
//
//   k = 1:   (Sigma, Omega) suffices for consensus -- exercised with the
//            Paxos-style protocol of algo/paxos_consensus.hpp;
//   k = n-1: Sigma_{n-1} suffices for (n-1)-set agreement -- exercised
//            with the loneliness-style protocol of
//            algo/ranked_set_agreement.hpp.
//
// Each trial runs the protocol under a seeded random fair schedule with
// a caller-chosen crash set and validates the run against the k-set
// spec.  The tightness trial drives the Sigma_{n-1} protocol with the
// most adversarial *legal* quorum history -- n-1 processes see singleton
// quorums -- and shows it still produces at most (in fact exactly) n-1
// distinct decisions: the k = n-1 bound is tight.

#include <cstdint>

#include "core/kset_spec.hpp"
#include "sim/run.hpp"

namespace ksa::core {

/// Result of one possibility trial.
struct Corollary13Trial {
    int n = 0, k = 0;
    std::string algorithm;
    KSetCheck check;
    int distinct_decisions = 0;
    Run run;
};

/// k = 1: Paxos under a benign (Sigma, Omega) oracle with the given
/// initially-dead processes (leader = smallest correct id).
Corollary13Trial corollary13_consensus_trial(
        int n, const std::vector<ProcessId>& initially_dead,
        std::uint64_t seed);

/// k = n-1: the ranked protocol under a benign Sigma_{n-1} oracle.
Corollary13Trial corollary13_set_trial(
        int n, const std::vector<ProcessId>& initially_dead,
        std::uint64_t seed);

/// Tightness: the ranked protocol under the adversarial-but-legal
/// Sigma_{n-1} history where processes 2..n see singleton quorums; the
/// run decides exactly n-1 distinct values (and never n).
Corollary13Trial corollary13_tightness_trial(int n, std::uint64_t seed);

}  // namespace ksa::core
