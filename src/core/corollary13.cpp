#include "core/corollary13.hpp"

#include <algorithm>

#include "algo/paxos_consensus.hpp"
#include "algo/ranked_set_agreement.hpp"
#include "fd/sources.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

namespace ksa::core {

namespace {

/// The most adversarial legal Sigma_{n-1} quorum history: singletons at
/// p_2..p_n, and {1,2} at p_1 (any n choices of outputs contain two
/// members of {2..n}? no -- they contain p_1's {1,2} which meets {2}, or
/// two singletons of the same process; either way some pair intersects,
/// so Intersection for k = n-1 holds).
class LonelyStressQuorum final : public fd::QuorumSource {
public:
    std::vector<ProcessId> quorum(const QueryContext& ctx) override {
        if (ctx.querier == 1) return {1, 2};
        return {ctx.querier};
    }
    std::string name() const override { return "Sigma_{n-1}(lonely-stress)"; }
};

Corollary13Trial run_trial(const Algorithm& algorithm, int n, int k,
                           const FailurePlan& plan,
                           std::unique_ptr<FdOracle> oracle,
                           std::uint64_t seed) {
    Corollary13Trial trial;
    trial.n = n;
    trial.k = k;
    trial.algorithm = algorithm.name();
    RandomScheduler scheduler(seed);
    trial.run = execute_run(algorithm, n, distinct_inputs(n), plan, scheduler,
                            oracle.get());
    trial.check = check_kset_agreement(trial.run, k);
    trial.distinct_decisions =
        static_cast<int>(trial.run.distinct_decisions().size());
    return trial;
}

}  // namespace

Corollary13Trial corollary13_consensus_trial(
        int n, const std::vector<ProcessId>& initially_dead,
        std::uint64_t seed) {
    FailurePlan plan;
    plan.set_initially_dead(initially_dead);
    ProcessId leader = 0;
    for (ProcessId p = 1; p <= n && leader == 0; ++p)
        if (!plan.is_faulty(p)) leader = p;
    require(leader != 0, "corollary13_consensus_trial: nobody correct");
    ksa::algo::PaxosConsensus algorithm;
    return run_trial(algorithm, n, 1, plan,
                     fd::make_benign_sigma_omega(n, plan, {leader}), seed);
}

Corollary13Trial corollary13_set_trial(
        int n, const std::vector<ProcessId>& initially_dead,
        std::uint64_t seed) {
    FailurePlan plan;
    plan.set_initially_dead(initially_dead);
    ksa::algo::RankedSetAgreement algorithm;
    auto oracle = std::make_unique<fd::ComposedOracle>(
        std::make_unique<fd::CorrectSetQuorum>(n, plan), nullptr);
    return run_trial(algorithm, n, n - 1, plan, std::move(oracle), seed);
}

Corollary13Trial corollary13_tightness_trial(int n, std::uint64_t) {
    FailurePlan plan;  // no crashes: the stress is pure oracle adversity
    ksa::algo::RankedSetAgreement algorithm;
    auto oracle = std::make_unique<fd::ComposedOracle>(
        std::make_unique<LonelyStressQuorum>(), nullptr);

    // Stage 1: everybody steps once with all messages delayed, so
    // p_2..p_n take their lonely decisions before hearing any smaller-id
    // proposal.  Stage 2 releases the traffic; p_1 copies a decision.
    std::vector<ProcessId> all;
    for (ProcessId p = 1; p <= n; ++p) all.push_back(p);
    StagedScheduler::Stage mute;
    mute.active = all;
    mute.filter = [](const Message&, ProcessId) { return false; };
    mute.done = [n](const SystemView& v) {
        for (ProcessId p = 2; p <= n; ++p)
            if (!v.decided(p)) return false;
        return true;
    };
    StagedScheduler scheduler({mute});

    Corollary13Trial trial;
    trial.n = n;
    trial.k = n - 1;
    trial.algorithm = algorithm.name();
    trial.run = execute_run(algorithm, n, distinct_inputs(n), plan, scheduler,
                            oracle.get());
    trial.check = check_kset_agreement(trial.run, n - 1);
    trial.distinct_decisions =
        static_cast<int>(trial.run.distinct_decisions().size());
    return trial;
}

}  // namespace ksa::core
