#include "core/pasting.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "check/contract.hpp"
#include "sim/admissibility.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

namespace ksa::core {

namespace {

/// Plan of the isolated run alpha_i: the pasted plan restricted to the
/// block, everyone else initially dead.
FailurePlan isolated_plan(int n, const std::vector<ProcessId>& block,
                          const FailurePlan& pasted_plan) {
    FailurePlan plan;
    for (ProcessId p = 1; p <= n; ++p) {
        const bool member =
            std::find(block.begin(), block.end(), p) != block.end();
        if (!member)
            plan.set_initially_dead(p);
        else if (pasted_plan.is_faulty(p))
            plan.set_crash(p, pasted_plan.spec(p));
    }
    return plan;
}

}  // namespace

std::string PasteResult::summary() const {
    std::ostringstream out;
    out << "paste of " << isolated.size() << " blocks: pasted decisions="
        << pasted.distinct_decisions().size()
        << " indist=" << (all_indistinguishable ? "yes" : "NO")
        << " stalled=" << stalled_blocks.size();
    return out.str();
}

PasteResult paste_partition_runs(
        const Algorithm& algorithm, int n, const std::vector<Value>& inputs,
        const std::vector<std::vector<ProcessId>>& blocks,
        const FailurePlan& pasted_plan, const PasteOracleFactory& oracle_factory,
        int block_budget, Time max_steps) {
    KSA_REQUIRE(!blocks.empty(),
                "paste_partition_runs: need at least one block");
    // Block disjointness and range: B_1..B_m must partition a subset of
    // {1..n}.  A duplicated member would make the isolated plans overlap
    // and the Definition 2 comparison meaningless.
    {
        std::set<ProcessId> seen;
        for (const auto& block : blocks) {
            KSA_REQUIRE(!block.empty(), "paste_partition_runs: empty block");
            for (ProcessId p : block) {
                KSA_REQUIRE(p >= 1 && p <= n,
                            "paste_partition_runs: block member out of 1..n");
                KSA_REQUIRE(seen.insert(p).second,
                            "paste_partition_runs: blocks must be disjoint");
            }
        }
    }
    PasteResult result;

    // The isolated executions alpha_i.
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        FailurePlan plan = isolated_plan(n, blocks[i], pasted_plan);
        std::unique_ptr<FdOracle> oracle;
        if (oracle_factory) oracle = oracle_factory(static_cast<int>(i), plan);
        RoundRobinScheduler fair;
        result.isolated.push_back(execute_run(algorithm, n, inputs, plan, fair,
                                              oracle.get(),
                                              {.max_steps = max_steps}));
    }

    // The pasted execution alpha: blocks one after the other, cross-block
    // traffic delayed, then released.
    std::unique_ptr<FdOracle> pasted_oracle;
    if (oracle_factory) pasted_oracle = oracle_factory(-1, pasted_plan);
    PartitionScheduler scheduler(blocks, block_budget);
    result.pasted =
        execute_run(algorithm, n, inputs, pasted_plan, scheduler,
                    pasted_oracle.get(), {.max_steps = max_steps});
    result.stalled_blocks = scheduler.stalled_blocks();

    // Definition 2 check, block by block and member by member.
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        bool ok = true;
        for (ProcessId p : blocks[i])
            if (!indistinguishable_for(result.isolated[i], result.pasted, p))
                ok = false;
        result.block_indistinguishable.push_back(ok);
        if (!ok) result.all_indistinguishable = false;
    }

    // Contract: a paste that completed cleanly (every correct process
    // decided and quiesced, no block stalled in isolation) must be an
    // admissible run of MASYNC -- Lemma 12's construction promises this
    // by delaying, never dropping, cross-block traffic.  An inadmissible
    // "clean" paste would mean the engine manufactured its own
    // counterexample.
    if (result.pasted.stop == StopReason::kQuiescent &&
        result.stalled_blocks.empty()) {
        const AdmissibilityReport adm = check_admissibility(result.pasted);
        KSA_ENSURE(adm.admissible,
                   "paste_partition_runs: pasted run is not admissible: " +
                       (adm.violations.empty() ? std::string("unknown")
                                               : adm.violations.front()));
    }
    for (std::size_t i = 0; i < result.isolated.size(); ++i) {
        const Run& alpha = result.isolated[i];
        if (alpha.stop != StopReason::kQuiescent) continue;
        const AdmissibilityReport adm = check_admissibility(alpha);
        KSA_ENSURE(adm.admissible,
                   "paste_partition_runs: isolated run " + std::to_string(i) +
                       " is not admissible: " +
                       (adm.violations.empty() ? std::string("unknown")
                                               : adm.violations.front()));
    }
    return result;
}

}  // namespace ksa::core
