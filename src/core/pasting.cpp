#include "core/pasting.hpp"

#include <algorithm>
#include <sstream>

#include "sim/schedulers.hpp"
#include "sim/system.hpp"

namespace ksa::core {

namespace {

/// Plan of the isolated run alpha_i: the pasted plan restricted to the
/// block, everyone else initially dead.
FailurePlan isolated_plan(int n, const std::vector<ProcessId>& block,
                          const FailurePlan& pasted_plan) {
    FailurePlan plan;
    for (ProcessId p = 1; p <= n; ++p) {
        const bool member =
            std::find(block.begin(), block.end(), p) != block.end();
        if (!member)
            plan.set_initially_dead(p);
        else if (pasted_plan.is_faulty(p))
            plan.set_crash(p, pasted_plan.spec(p));
    }
    return plan;
}

}  // namespace

std::string PasteResult::summary() const {
    std::ostringstream out;
    out << "paste of " << isolated.size() << " blocks: pasted decisions="
        << pasted.distinct_decisions().size()
        << " indist=" << (all_indistinguishable ? "yes" : "NO")
        << " stalled=" << stalled_blocks.size();
    return out.str();
}

PasteResult paste_partition_runs(
        const Algorithm& algorithm, int n, const std::vector<Value>& inputs,
        const std::vector<std::vector<ProcessId>>& blocks,
        const FailurePlan& pasted_plan, const PasteOracleFactory& oracle_factory,
        int block_budget, Time max_steps) {
    require(!blocks.empty(), "paste_partition_runs: need at least one block");
    PasteResult result;

    // The isolated executions alpha_i.
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        FailurePlan plan = isolated_plan(n, blocks[i], pasted_plan);
        std::unique_ptr<FdOracle> oracle;
        if (oracle_factory) oracle = oracle_factory(static_cast<int>(i), plan);
        RoundRobinScheduler fair;
        result.isolated.push_back(execute_run(algorithm, n, inputs, plan, fair,
                                              oracle.get(),
                                              {.max_steps = max_steps}));
    }

    // The pasted execution alpha: blocks one after the other, cross-block
    // traffic delayed, then released.
    std::unique_ptr<FdOracle> pasted_oracle;
    if (oracle_factory) pasted_oracle = oracle_factory(-1, pasted_plan);
    PartitionScheduler scheduler(blocks, block_budget);
    result.pasted =
        execute_run(algorithm, n, inputs, pasted_plan, scheduler,
                    pasted_oracle.get(), {.max_steps = max_steps});
    result.stalled_blocks = scheduler.stalled_blocks();

    // Definition 2 check, block by block and member by member.
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        bool ok = true;
        for (ProcessId p : blocks[i])
            if (!indistinguishable_for(result.isolated[i], result.pasted, p))
                ok = false;
        result.block_indistinguishable.push_back(ok);
        if (!ok) result.all_indistinguishable = false;
    }
    return result;
}

}  // namespace ksa::core
