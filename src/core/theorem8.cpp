#include "core/theorem8.hpp"

#include <sstream>

#include "algo/initial_clique.hpp"
#include "core/bounds.hpp"
#include "sim/admissibility.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

namespace ksa::core {

Theorem8Trial theorem8_trial(int n, int f, int k,
                             const std::vector<ProcessId>& initially_dead,
                             std::uint64_t seed) {
    require(static_cast<int>(initially_dead.size()) <= f,
            "theorem8_trial: more initial crashes than f");
    Theorem8Trial trial;
    trial.n = n;
    trial.f = f;
    trial.k = k;
    trial.crashed = static_cast<int>(initially_dead.size());

    auto algorithm = ksa::algo::make_flp_kset(n, f);
    FailurePlan plan;
    plan.set_initially_dead(initially_dead);
    RandomScheduler scheduler(seed);
    trial.run = execute_run(*algorithm, n, distinct_inputs(n), plan, scheduler);
    trial.check = check_kset_agreement(trial.run, k);
    trial.distinct_decisions =
        static_cast<int>(trial.run.distinct_decisions().size());
    return trial;
}

std::string Theorem8Border::summary() const {
    std::ostringstream out;
    out << "Theorem8Border[n=" << n << ",f=" << f << ",k=" << k
        << "]: " << paste.summary() << " -> " << distinct_decisions
        << " decisions (violation=" << violation << ")";
    return out.str();
}

Theorem8Border theorem8_border(const Algorithm& candidate, int n, int k) {
    require(n % (k + 1) == 0,
            "theorem8_border: the exact border needs n divisible by k+1");
    Theorem8Border border;
    border.n = n;
    border.k = k;
    border.f = k * n / (k + 1);
    invariant(!theorem8_solvable(n, border.f, k),
              "theorem8_border: arithmetic says the border is solvable?");

    // Pi_0 .. Pi_k, each of size n - f = n/(k+1).
    const int group = n - border.f;
    std::vector<std::vector<ProcessId>> blocks;
    for (int i = 0; i <= k; ++i) {
        std::vector<ProcessId> b;
        for (int j = 1; j <= group; ++j) b.push_back(i * group + j);
        blocks.push_back(std::move(b));
    }

    border.paste = paste_partition_runs(candidate, n, distinct_inputs(n),
                                        blocks, FailurePlan{});
    border.distinct_decisions =
        static_cast<int>(border.paste.pasted.distinct_decisions().size());
    AdmissibilityReport adm = check_admissibility(border.paste.pasted);
    border.violation = border.distinct_decisions > k && adm.admissible &&
                       adm.conclusive && border.paste.all_indistinguishable;
    return border;
}

}  // namespace ksa::core
