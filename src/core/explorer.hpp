#pragma once
// Bounded exhaustive schedule exploration.
//
// The universal quantifier of an impossibility theorem ("no algorithm")
// cannot be executed, but for a *fixed* algorithm and small n the dual
// quantifier ("no schedule violates / some schedule violates") can: this
// module enumerates every adversarial schedule up to a depth bound,
// where at each step the adversary picks (a) which live process steps
// and (b) one of three delivery modes for that step -- nothing, the
// oldest buffered message, or the whole buffer.  These three modes
// suffice to realize every schedule the paper's constructions use, while
// keeping the branching factor at 3n.
//
// States reached by different schedules are deduplicated by
// configuration digest, so the search explores the reachable
// configuration space rather than the schedule tree.  Results:
//
//   * every decision set reachable at quiescence (the "valence" of the
//     initial configuration);
//   * a violation witness schedule if some reachable decisive state has
//     more than k distinct decisions -- the executable form of "this
//     candidate algorithm allows runs that make k-set agreement
//     impossible" (the remark after Theorem 1);
//   * whether the bound was exhaustive (no frontier node hit the depth
//     cap), in which case the absence of a violation is a *verified*
//     small-case possibility result for the fixed plan.
//
// Engine (see doc/performance.md for the full design):
//
//   * the BFS frontier holds live System snapshots; children are made
//     by System::fork() + one apply_choice, never by replaying the
//     whole schedule prefix from the initial configuration;
//   * frontier layers are expanded in parallel on the work-stealing
//     scheduler (exec/task_scheduler.hpp, via exec/parallel_map.hpp)
//     and merged sequentially in input order, so N-thread output is
//     byte-identical to 1-thread output;
//   * deduplication keys are deterministic 128-bit hashes
//     (sim/digest.hpp) in the default fast mode, canonical strings in
//     reference mode, and every mode inserts states in the same BFS
//     order -- the max_states truncation cuts the same frontier
//     regardless of mode or thread count.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/reduction_options.hpp"
#include "sim/behavior.hpp"
#include "sim/failure_plan.hpp"
#include "sim/run.hpp"
#include "sim/scheduler.hpp"
#include "store/store_options.hpp"

namespace ksa::core {

/// Which digest/stepping engine the exploration uses.  All modes
/// produce identical ExploreResults on the same config (the golden
/// equivalence suite in tests/test_explorer_equiv.cpp enforces it);
/// they differ only in speed.
enum class ExploreMode {
    /// Snapshot stepping + incremental 128-bit hash dedup (default).
    kFast,
    /// Snapshot stepping + canonical-string dedup: the reference the
    /// fast path is cross-checked against.  Slower (one full string
    /// rendering per candidate state), collision-free by construction.
    kReference,
    /// The pre-snapshot engine: every candidate state is digested by
    /// replaying its entire schedule prefix on a fresh System and
    /// finishing a throwaway copy.  Kept verbatim as the baseline that
    /// BENCH_explorer.json measures the snapshot engine against, and as
    /// a second cross-check.  Single-threaded; ignores `threads`.
    kReplayBaseline,
    /// The fast engine plus the reduction layer (core/reduction.hpp):
    /// symmetry canonicalization of dedup keys, an observational
    /// absorption quotient (decided-process collapse + dead-message
    /// deletion) and persistent-set partial-order reduction.  UNLIKE
    /// the other modes it explores a
    /// *quotient* of the configuration space: states_explored /
    /// schedules_expanded shrink, while violation_found,
    /// reachable_decision_sets and quiescent_outcomes are preserved
    /// (exactly on exhaustive explorations; doc/performance.md spells
    /// out what weakens under max_depth / max_states truncation).
    /// With every ExploreConfig::reduction axis off it partitions
    /// states exactly like kFast and produces bit-identical results.
    kReduced,
};

/// Renders an ExploreMode for reports ("fast" / "reference" /
/// "replay-baseline" / "reduced").
std::string to_string(ExploreMode mode);

/// Exploration parameters.
struct ExploreConfig {
    int n = 0;
    std::vector<Value> inputs;
    FailurePlan plan;      ///< fixed crash plan (explore plans separately)
    int k = 1;             ///< violation threshold: > k distinct decisions
    int max_depth = 12;    ///< schedule length bound
    std::size_t max_states = 200000;  ///< safety cap on distinct states
    ExploreMode mode = ExploreMode::kFast;
    /// Worker threads for layer-parallel expansion (1 = sequential).
    /// Output is byte-identical for every value.
    int threads = 1;
    /// Which reductions kReduced applies (ignored by the other modes).
    ReductionOptions reduction;
    /// Record per-layer frontier sizes into ExploreResult
    /// (observability; off by default to keep results lean).
    bool collect_layer_sizes = false;
    /// Frontiers smaller than this are expanded inline on the calling
    /// thread even when threads > 1: per-region handoff overhead dwarfs
    /// the work on tiny layers (the sub-millisecond cases in
    /// BENCH_explorer.json).  0 (the default) derives the threshold
    /// from the scheduler's grain policy
    /// (exec::TaskScheduler::sequential_threshold -- fewer than
    /// kMinGrain items per worker is not worth a dispatch); a nonzero
    /// value overrides it.  Output stays byte-identical either way.
    std::size_t min_parallel_frontier = 0;
    /// Sizing of the out-of-core store behind the layered engines
    /// (kFast/kReduced): visited-set sharding, the probabilistic dedup
    /// tier, the delta-frontier spill budget and the expansion block
    /// size.  Every knob trades CPU or resident memory only -- results
    /// are byte-identical for every setting (the equivalence suite
    /// sweeps them).  kReference/kReplayBaseline ignore this: they are
    /// the deliberately simple in-RAM cross-checks.
    store::StoreOptions store;
};

/// Exploration outcome.
struct ExploreResult {
    std::size_t states_explored = 0;
    std::size_t schedules_expanded = 0;
    /// Candidate children rejected because their key was already in the
    /// visited set -- the edge-over-vertex surplus of the reachable
    /// graph.  Identical across kFast/kReference/kReplayBaseline (same
    /// candidates, same partition); in kReduced it additionally counts
    /// symmetry-orbit merges.
    std::size_t dedup_hits = 0;
    /// Step choices skipped by the reduction layer (kReduced only; 0
    /// in every other mode): persistent-set sibling moves plus the
    /// skipped moves of absorbed (decided, decisions-final) processes.
    std::size_t por_skips = 0;
    /// Frontier size of each BFS layer, filled iff
    /// ExploreConfig::collect_layer_sizes (layered engines only; the
    /// replay baseline keeps a rolling queue and leaves this empty).
    std::vector<std::size_t> layer_frontier_sizes;
    /// Scheduler observability (layered engines; the replay baseline
    /// leaves all three 0).  Excluded from the cross-engine/
    /// cross-thread equivalence comparisons and from every report:
    /// grain and threshold depend on the effective worker count (a
    /// machine property), and steals are timing-dependent by design.
    /// The grain chosen for the largest parallel-dispatched layer (0
    /// when every layer ran inline).
    std::size_t parallel_grain = 0;
    /// The sequential-fallback threshold in effect (resolved from
    /// ExploreConfig::min_parallel_frontier).
    std::size_t parallel_threshold = 0;
    /// Successful work steals during this exploration.
    std::uint64_t parallel_steals = 0;
    /// Out-of-core store observability (kFast/kReduced only; zero in
    /// the in-RAM cross-check modes).  The tier counters and spill
    /// tallies are DETERMINISTIC -- pure functions of the key/record
    /// streams, which are byte-identical across thread counts -- so
    /// the equivalence suite pins them; replay_steps and spill_reads
    /// depend on which worker materialized which node (spine cache
    /// locality), so like parallel_steals they are excluded from every
    /// comparison.
    /// Visited-store shard count in effect (2^StoreOptions::shard_bits).
    std::size_t store_shards = 0;
    /// Dedup probes the probabilistic tier answered "definitely new"
    /// without touching the exact table.
    std::uint64_t filter_definite_new = 0;
    /// Dedup probes the filter passed through but the exact table
    /// rejected as absent -- the filter's false positives (observed
    /// FPR = fp / (fp + definite_new)).
    std::uint64_t filter_false_positives = 0;
    /// Frontier delta records spilled to disk / their byte volume.
    std::uint64_t spilled_records = 0;
    std::uint64_t spill_bytes = 0;
    /// Delta-chain steps replayed by re-materialization (spine cache
    /// misses; timing-dependent).
    std::uint64_t replay_steps = 0;
    /// Spilled-record reads during re-materialization (timing-dependent).
    std::uint64_t spill_reads = 0;
    /// Peak bytes resident in the store-owned structures (visited
    /// shards + delta window), sampled per expansion block.
    std::size_t peak_resident_bytes = 0;
    bool exhaustive = true;  ///< no node was cut off by max_depth/max_states
    bool violation_found = false;
    std::vector<StepChoice> witness;  ///< schedule reaching the violation
    /// All decision-vectors (one optional value per process, kNoValue for
    /// undecided) observed at quiescent states.
    std::set<std::vector<Value>> quiescent_outcomes;
    /// All distinct decision-value sets observed anywhere.
    std::set<std::set<Value>> reachable_decision_sets;

    std::string summary() const;
};

/// Runs the exploration for `algorithm` (which must not use a failure
/// detector -- exploring oracle nondeterminism is out of scope).
ExploreResult explore_schedules(const Algorithm& algorithm,
                                const ExploreConfig& config);

}  // namespace ksa::core
