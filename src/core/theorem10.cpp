#include "core/theorem10.hpp"

#include <algorithm>
#include <sstream>

#include "core/bounds.hpp"
#include "fd/sources.hpp"

namespace ksa::core {

std::vector<std::vector<ProcessId>> theorem10_fd_blocks(int n, int k) {
    require(theorem10_applies(n, k), "theorem10: need 2 <= k <= n-2");
    std::vector<std::vector<ProcessId>> blocks;
    for (ProcessId p = 1; p <= k - 1; ++p) blocks.push_back({p});
    std::vector<ProcessId> d;
    for (ProcessId p = k; p <= n; ++p) d.push_back(p);
    blocks.push_back(std::move(d));
    return blocks;
}

std::vector<ProcessId> theorem10_leader_set(int n, int k) {
    require(theorem10_applies(n, k), "theorem10: need 2 <= k <= n-2");
    std::vector<ProcessId> ld;
    for (ProcessId p = 1; p <= k - 2; ++p) ld.push_back(p);
    ld.push_back(k);      // p_s: the smallest member of D
    ld.push_back(k + 1);  // p_t: the second member of D
    return ld;
}

std::string Theorem10Result::summary() const {
    std::ostringstream out;
    out << "Theorem10[n=" << n << ",k=" << k << "]: bound=" << bound_applies
        << " " << certificate.summary()
        << " Def7-history=" << (partition_validation.ok ? "valid" : "INVALID")
        << " (Sigma_k,Omega_k)-history="
        << (sigma_omega_validation.ok ? "valid (Lemma 9)" : "INVALID");
    return out.str();
}

Theorem10Result run_theorem10(const Algorithm& candidate, int n, int k,
                              int stage_budget) {
    Theorem10Result result;
    result.n = n;
    result.k = k;
    result.bound_applies = theorem10_applies(n, k);
    require(result.bound_applies, "run_theorem10: need 2 <= k <= n-2");

    const auto fd_blocks = theorem10_fd_blocks(n, k);
    const auto ld = theorem10_leader_set(n, k);
    const ProcessId ps = k, pt = k + 1;

    // D and the singleton blocks for the Theorem 1 spec.
    std::vector<std::vector<ProcessId>> d_blocks(fd_blocks.begin(),
                                                 fd_blocks.end() - 1);
    PartitionSpec spec = make_partition_spec(n, k, d_blocks);

    // Split schedule inside D: hold back decision announcements until
    // both p_s and p_t have decided, then release them within D.
    std::vector<ProcessId> d = spec.d;
    auto in_d = [d](ProcessId p) {
        return std::binary_search(d.begin(), d.end(), p);
    };
    StagedScheduler::Stage hold;
    hold.active = d;
    hold.filter = [in_d](const Message& m, ProcessId) {
        return in_d(m.from) && m.payload.tag != "DEC";
    };
    hold.done = [ps, pt](const SystemView& v) {
        return v.decided(ps) && v.decided(pt);
    };
    hold.budget = stage_budget;
    StagedScheduler::Stage flush;
    flush.active = d;
    flush.filter = [in_d](const Message& m, ProcessId) { return in_d(m.from); };
    flush.budget = stage_budget;

    // The stabilization time must come after the singleton blocks decide
    // in the beta/violating runs; retry with larger guesses if a slower
    // candidate needs more pre-GST steps.
    for (Time gst : {Time{k}, Time{4 * k + 8}, Time{16 * k + 64}}) {
        Theorem1Inputs in;
        in.algorithm = &candidate;
        in.spec = spec;
        in.inputs = distinct_inputs(n);
        in.plan = FailurePlan{};
        in.split_stages = {hold, flush};
        in.stage_budget = stage_budget;
        in.oracle_factory = [&, gst](CertRun kind, const FailurePlan& plan) {
            // Runs whose interesting activity starts at t = 1 see the
            // stabilized set immediately; runs that must let the
            // singleton blocks decide first stabilize at `gst`.
            const Time when = (kind == CertRun::kBeta ||
                               kind == CertRun::kViolating)
                                  ? gst
                                  : 0;
            return fd::make_partition_detector(n, k, fd_blocks, plan, ld,
                                               when);
        };
        result.certificate = certify_theorem1(in);
        if (result.certificate.complete()) break;
    }

    result.partition_validation = fd::validate_partition_detector(
        result.certificate.violating, fd_blocks, k);
    result.sigma_omega_validation =
        fd::validate_sigma_omega_k(result.certificate.violating, k);
    return result;
}

}  // namespace ksa::core
