#include "core/restriction.hpp"

#include <algorithm>
#include <sstream>

namespace ksa::core {

namespace {

class RestrictedBehavior final : public Behavior {
public:
    RestrictedBehavior(std::unique_ptr<Behavior> inner,
                       const std::vector<ProcessId>* domain)
        : inner_(std::move(inner)), domain_(domain) {}

    StepOutput on_step(const StepInput& input) override {
        StepOutput out = inner_->on_step(input);
        std::erase_if(out.sends, [this](const auto& send) {
            return !std::binary_search(domain_->begin(), domain_->end(),
                                       send.first);
        });
        return out;
    }

    std::string state_digest() const override { return inner_->state_digest(); }

    std::unique_ptr<Behavior> clone() const override {
        return std::make_unique<RestrictedBehavior>(inner_->clone(), domain_);
    }

private:
    std::unique_ptr<Behavior> inner_;
    const std::vector<ProcessId>* domain_;
};

}  // namespace

RestrictedAlgorithm::RestrictedAlgorithm(const Algorithm& base,
                                         std::vector<ProcessId> domain)
    : base_(&base), domain_(std::move(domain)) {
    require(!domain_.empty(), "RestrictedAlgorithm: domain must be non-empty");
    std::sort(domain_.begin(), domain_.end());
    domain_.erase(std::unique(domain_.begin(), domain_.end()), domain_.end());
}

std::unique_ptr<Behavior> RestrictedAlgorithm::make_behavior(
        ProcessId id, int n, Value input) const {
    return std::make_unique<RestrictedBehavior>(
        base_->make_behavior(id, n, input), &domain_);
}

std::string RestrictedAlgorithm::name() const {
    std::ostringstream out;
    out << base_->name() << "|D(|D|=" << domain_.size() << ")";
    return out.str();
}

Run execute_restricted(const Algorithm& algorithm, int n,
                       const std::vector<ProcessId>& domain,
                       std::vector<Value> inputs, FailurePlan plan,
                       Scheduler& scheduler, FdOracle* oracle,
                       ExecutionLimits limits) {
    RestrictedAlgorithm restricted(algorithm, domain);
    for (ProcessId p = 1; p <= n; ++p)
        if (!std::binary_search(restricted.domain().begin(),
                                restricted.domain().end(), p))
            plan.set_initially_dead(p);
    return execute_run(restricted, n, std::move(inputs), std::move(plan),
                       scheduler, oracle, limits);
}

}  // namespace ksa::core
