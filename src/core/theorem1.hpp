#pragma once
// The Theorem 1 engine: the paper's generic k-set agreement
// impossibility argument, executable.
//
// Setting (Theorem 1).  Fix disjoint non-empty blocks D_1, ..., D_{k-1}
// (their union is D-bar) and let D = Pi \ D-bar.  Two run predicates:
//
//   (dec-Dbar)  for every D_i, some process in D_i decides v_i, the v_i
//               are distinct and each was proposed in D-bar;
//   (dec-D)     every process of D receives no message from D-bar until
//               after every process in D has decided.
//
// R(D) is the set of runs satisfying (dec-D); R(D, Dbar) those
// satisfying both.  Theorem 1: if
//   (A) R(D) is non-empty,
//   (B) every run of R(D) has a D-indistinguishable counterpart in
//       R(D, Dbar),
//   (C) consensus is unsolvable in the restricted model M' = <D>, and
//   (D) every run of the restricted algorithm A|D in M' has a
//       D-indistinguishable counterpart among A's runs in M,
// then A does not solve k-set agreement in M.  (The chain: (B) + the
// k-1 distinct block decisions force all of D to decide ONE common value
// in every R(D) run -- Fact 1 -- so A|D would solve consensus in M',
// contradicting (C).)
//
// The engine constructs certificate runs for (A), (B) and (D)
// mechanically and verifies them with the Definition 2 digest
// comparison.  Condition (C) is discharged analytically (the DDS
// classification in sim/model.hpp, or the failure-detector hierarchy
// argument of Theorem 10) and *empirically*: the caller supplies a
// split schedule under which the concrete candidate algorithm violates
// consensus inside <D>, and the engine assembles the end-to-end witness
// run in which the system decides more than k distinct values --
// the contradiction made concrete.

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/restriction.hpp"
#include "sim/admissibility.hpp"
#include "sim/behavior.hpp"
#include "sim/run.hpp"
#include "sim/schedulers.hpp"

namespace ksa::core {

/// The partition underlying an application of Theorem 1.
struct PartitionSpec {
    int n = 0;
    int k = 0;
    std::vector<std::vector<ProcessId>> blocks;  ///< D_1 .. D_{k-1}
    std::vector<ProcessId> d;                    ///< D = Pi \ union(blocks)

    /// All processes of D-bar (the blocks), sorted.
    std::vector<ProcessId> dbar() const;
};

/// Builds the spec and computes D; validates disjointness and sizes.
PartitionSpec make_partition_spec(int n, int k,
                                  std::vector<std::vector<ProcessId>> blocks);

/// Predicate (dec-Dbar) on a recorded run: every block has a decider,
/// the per-block values are pairwise distinct and proposed within D-bar.
/// On success, `out_values` (if non-null) receives the v_i.
bool dec_dbar_holds(const Run& run,
                    const std::vector<std::vector<ProcessId>>& blocks,
                    std::set<Value>* out_values = nullptr);

/// Predicate (dec-D) on a recorded run: every p in D received no message
/// from D-bar strictly before the time every process of D had decided
/// (faulty members of D count as "decided" at their crash).
bool dec_d_holds(const Run& run, const PartitionSpec& spec);

/// Which execution the oracle factory is being asked to serve; lets
/// drivers pick stabilization times per run (see theorem10.cpp).
enum class CertRun {
    kAlpha,       ///< the (A) witness: D isolated, blocks delayed
    kBeta,        ///< the (B) witness: blocks decide first, then D as in alpha
    kRestricted,  ///< A|D in M' (blocks dead)
    kFullDead,    ///< A in M with blocks initially dead
    kViolating,   ///< blocks decide, then the split schedule on D
    kSplitOnly,   ///< the split schedule on D alone (blocks dead)
};

/// Produces the oracle for one certificate run (nullptr = no detector).
using CertOracleFactory = std::function<std::unique_ptr<FdOracle>(
        CertRun, const FailurePlan& plan)>;

/// Everything certify_theorem1 produces.
struct Theorem1Certificate {
    PartitionSpec spec;

    bool condition_a = false;  ///< alpha exists: R(D) non-empty
    Run alpha;                 ///< witness for (A)

    bool condition_b = false;  ///< alpha ~_D beta with beta in R(D, Dbar)
    Run beta;                  ///< witness for (B)
    std::set<Value> block_values;  ///< the v_i realized in beta

    bool condition_d = false;  ///< rho' ~_D rho
    Run restricted;            ///< rho': A|D in M'
    Run full_dead;             ///< rho: A in M, blocks initially dead

    bool consensus_split = false;  ///< split schedule breaks consensus in <D>
    Run split_run;                 ///< the A|D run deciding >= 2 values in D
    std::set<Value> d_values;      ///< D's decisions in split_run

    bool violation = false;  ///< the end-to-end > k decisions witness
    Run violating;           ///< blocks + split in one admissible run
    std::set<Value> violating_values;
    AdmissibilityReport violating_admissibility;

    /// True iff every certificate component succeeded.
    bool complete() const {
        return condition_a && condition_b && condition_d && consensus_split &&
               violation;
    }
    std::string summary() const;
};

/// Inputs to the engine.
struct Theorem1Inputs {
    const Algorithm* algorithm = nullptr;
    PartitionSpec spec;
    std::vector<Value> inputs;  ///< distinct proposals (|V| > n)
    FailurePlan plan;           ///< plan of the full-system witness runs
    CertOracleFactory oracle_factory;  ///< empty when no detector is used
    /// Stages that drive D to two or more decision values inside one run
    /// (active sets must be subsets of D).  Supplied by the per-theorem
    /// driver; empty disables the split/violation components.
    std::vector<StagedScheduler::Stage> split_stages;
    int stage_budget = 20000;
    Time max_steps = 200000;
};

/// Runs the whole certification; see the file comment.
Theorem1Certificate certify_theorem1(const Theorem1Inputs& in);

}  // namespace ksa::core
