#pragma once
// Theorem 1's partition argument carried into the Heard-Of round model
// -- the Discussion section's conjecture ("we are confident it can also
// be used to establish impossibility results in round models"),
// executed.
//
// The structure mirrors the asynchronous engine: pick blocks
// D_1..D_{k-1} and D; isolate them via heard-of sets (PartitionHo); each
// block decides its own minimum; pasting is trivial in the round model
// (HO assignments compose pointwise), and the indistinguishability check
// compares per-round digests between the all-alone runs and the
// partitioned run.  The conclusion is the same: an algorithm whose
// blocks can decide in isolation cannot solve k-set agreement when the
// adversary can sustain k+1 groups -- e.g. when the synchronous window
// (Alistarh et al., DISC 2010, cited as [1]) is shorter than the
// protocol's decision round.

#include <string>

#include "sim/rounds.hpp"

namespace ksa::core {

/// Result of the HO-model partition argument.
struct HoPartitionResult {
    int n = 0, k = 0;
    ho::HoRun partitioned;           ///< run under PartitionHo
    std::vector<ho::HoRun> isolated;  ///< one run per block, others absent
    bool all_indistinguishable = true;  ///< per-block digest match
    int distinct_decisions = 0;
    bool violation = false;  ///< > k distinct decisions
    std::string summary() const;
};

/// Runs the argument for k+1 blocks against `algorithm`.
/// `isolation_rounds` = 0 isolates for ever (pure asynchrony); a finite
/// value models a late synchronous window -- the violation occurs iff
/// the window opens after the algorithm's decision round.
HoPartitionResult ho_partition_argument(
        const ho::RoundAlgorithm& algorithm, int n, int k,
        const std::vector<std::vector<ProcessId>>& blocks,
        int isolation_rounds, int max_rounds = 64);

/// Validates FloodMin's synchronous guarantee: runs the f-crash
/// adversary with the given per-round crash schedule and returns the
/// number of distinct decisions (must be <= k when the protocol runs
/// floor(f/k)+1 rounds).  `crash_rounds[i]` gives the round in which the
/// i-th faulty process (ids 1..f) crashes; partial delivery in the crash
/// round goes to the odd-id half of the receivers.
int ho_floodmin_crash_trial(int n, int f, int k,
                            const std::vector<int>& crash_rounds,
                            std::uint64_t seed);

}  // namespace ksa::core
