#pragma once
// Restriction of an algorithm (Definition 1).
//
// Given an algorithm A for M = <Pi> and a non-empty D subset of Pi, the
// restricted algorithm A|D for M' = <D> is obtained by dropping, in the
// message sending function, all messages addressed to processes outside
// D.  The code of A is not changed in any way -- in particular A|D still
// believes the system has |Pi| processes.
//
// Operationally, M' = <D> is executed as an n-process System in which
// every process outside D is initially dead and never receives anything
// (its incoming messages were dropped by the restriction), which is
// exactly the run correspondence used to discharge condition (D) of
// Theorem 1: for every run of A|D in M' there is a run of A in M --
// the one where Pi \ D are initially dead -- that is indistinguishable
// for all of D.

#include <memory>
#include <vector>

#include "sim/behavior.hpp"
#include "sim/run.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"

namespace ksa::core {

/// A|D: decorates A's behaviors, filtering sends to destinations outside
/// D.  State digests are forwarded unchanged, so indistinguishability
/// comparisons between restricted and unrestricted runs are meaningful.
class RestrictedAlgorithm final : public Algorithm {
public:
    /// `base` is borrowed and must outlive this object.
    RestrictedAlgorithm(const Algorithm& base, std::vector<ProcessId> domain);

    std::unique_ptr<Behavior> make_behavior(ProcessId id, int n,
                                            Value input) const override;
    std::string name() const override;
    bool needs_failure_detector() const override {
        return base_->needs_failure_detector();
    }

    const std::vector<ProcessId>& domain() const { return domain_; }

private:
    const Algorithm* base_;
    std::vector<ProcessId> domain_;  // sorted
};

/// Executes A|D in the restricted system <D>: an n-process System where
/// all processes outside D are initially dead (merged into `plan`).
/// Scheduler and oracle semantics are unchanged.
Run execute_restricted(const Algorithm& algorithm, int n,
                       const std::vector<ProcessId>& domain,
                       std::vector<Value> inputs, FailurePlan plan,
                       Scheduler& scheduler, FdOracle* oracle = nullptr,
                       ExecutionLimits limits = {});

}  // namespace ksa::core
