#pragma once
// Strongly connected components, condensation and source components.
//
// Lemma 6: every finite directed simple graph whose vertices all have
// in-degree >= delta > 0 has a *source component* (an SCC that is a
// source of the condensation DAG) of size >= delta + 1.
// Lemma 7: the same holds inside each weakly connected component.
// Moreover at most floor(n / (delta + 1)) source components exist, and
// when 2*delta >= n there is exactly one -- these facts drive the
// Theorem 8 bound and are verified by tests/bench E6.

#include <vector>

#include "graph/digraph.hpp"

namespace ksa::graph {

/// The strongly-connected-component decomposition of a digraph, computed
/// with Tarjan's algorithm (iterative, so deep graphs cannot overflow the
/// stack).
class SccDecomposition {
public:
    explicit SccDecomposition(const Digraph& g);

    /// Number of SCCs.
    int num_components() const { return static_cast<int>(members_.size()); }

    /// Component id of vertex u (0-based; ids are in reverse topological
    /// order of the condensation, as produced by Tarjan).
    int component_of(int u) const { return comp_[u]; }

    /// Sorted member list of component c.
    const std::vector<int>& members(int c) const { return members_[c]; }

    /// The condensation: a DAG whose vertices are the SCC ids.  Computed
    /// eagerly by the constructor, so the decomposition never retains a
    /// reference to the input graph (constructing from a temporary
    /// Digraph is safe).
    const Digraph& condensation() const { return condensation_; }

    /// Ids of source components: SCCs with no incoming condensation edge.
    std::vector<int> source_component_ids() const;

    /// Member sets of all source components, each sorted, ordered by
    /// smallest member.
    std::vector<std::vector<int>> source_components() const;

private:
    std::vector<int> comp_;
    std::vector<std::vector<int>> members_;
    Digraph condensation_{0};
};

/// Convenience: the source components of g (see SccDecomposition).
std::vector<std::vector<int>> source_components(const Digraph& g);

/// Lemma 7 helper: for each weakly connected component of g, the source
/// components inside it.
std::vector<std::vector<std::vector<int>>> source_components_per_wcc(
        const Digraph& g);

}  // namespace ksa::graph
