#pragma once
// Seeded random digraph generators for property tests and bench E6.

#include <cstdint>

#include "graph/digraph.hpp"

namespace ksa::graph {

/// A digraph on n vertices where every vertex independently picks
/// `delta` distinct random in-neighbours (so min in-degree >= delta).
/// This is the exact random model that exercises Lemmas 6 and 7.
Digraph random_min_indegree(int n, int delta, std::uint64_t seed);

/// Directed Erdos-Renyi G(n, p): each ordered pair (u, v), u != v, is an
/// edge independently with probability p.
Digraph random_gnp(int n, double p, std::uint64_t seed);

/// The heard-from graph of an FLP-style first stage where every live
/// process waits for l_minus_1 messages and the processes in
/// `dead` (0-based vertex ids) are initially dead: every live vertex picks
/// its l_minus_1 in-neighbours uniformly among the other live vertices.
/// Dead vertices are isolated.
Digraph random_stage_graph(int n, int l_minus_1,
                           const std::vector<int>& dead, std::uint64_t seed);

}  // namespace ksa::graph
