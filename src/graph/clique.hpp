#pragma once
// Initial cliques and reachability from source components.
//
// The FLP initial-crash consensus protocol has every process determine
// the unique *initial clique* of the stage-1 heard-from graph G: a fully
// connected maximal subgraph with no incoming edges.  Section VI observes
// that locally detecting the initial clique is equivalent to locally
// detecting the source component the process is connected to, which is
// how the generalized k-set protocol decides.  This module provides the
// clique predicates and the source-reachability map the protocols use.

#include <vector>

#include "graph/digraph.hpp"
#include "graph/scc.hpp"

namespace ksa::graph {

/// True iff `members` induces a complete digraph (every ordered pair of
/// distinct members is an edge).
bool is_clique(const Digraph& g, const std::vector<int>& members);

/// True iff no edge enters `members` from outside.
bool has_no_incoming(const Digraph& g, const std::vector<int>& members);

/// True iff `members` is an initial clique: a clique with no incoming
/// edges (maximality follows for source components).
bool is_initial_clique(const Digraph& g, const std::vector<int>& members);

/// All source components of g that are cliques, ordered by smallest
/// member.  In the FLP setting with L-1 >= n/2 this list has exactly one
/// entry.
std::vector<std::vector<int>> initial_cliques(const Digraph& g);

/// Vertices reachable from any vertex in `from` (including `from`
/// itself), sorted.
std::vector<int> reachable_from(const Digraph& g, const std::vector<int>& from);

/// For every vertex v, the indices (into dec.source_components()) of the
/// source components from which v is reachable.  Every vertex of a graph
/// with positive min in-degree is reachable from at least one source
/// component (Lemma 7).
std::vector<std::vector<int>> source_reachability(const Digraph& g);

}  // namespace ksa::graph
