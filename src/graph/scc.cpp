#include "graph/scc.hpp"

#include <algorithm>

namespace ksa::graph {

namespace {

/// Iterative Tarjan SCC.  Returns (component id per vertex, #components).
/// Component ids come out in reverse topological order.
std::pair<std::vector<int>, int> tarjan(const Digraph& g) {
    const int n = g.num_vertices();
    std::vector<int> index(n, -1), low(n, 0), comp(n, -1);
    std::vector<bool> on_stack(n, false);
    std::vector<int> stack;
    int next_index = 0, next_comp = 0;

    struct Frame {
        int v;
        std::size_t child;
    };
    std::vector<Frame> call;

    for (int root = 0; root < n; ++root) {
        if (index[root] != -1) continue;
        call.push_back({root, 0});
        while (!call.empty()) {
            Frame& f = call.back();
            int v = f.v;
            if (f.child == 0) {
                index[v] = low[v] = next_index++;
                stack.push_back(v);
                on_stack[v] = true;
            }
            bool recursed = false;
            const auto& succ = g.successors(v);
            while (f.child < succ.size()) {
                int w = succ[f.child++];
                if (index[w] == -1) {
                    call.push_back({w, 0});
                    recursed = true;
                    break;
                }
                if (on_stack[w]) low[v] = std::min(low[v], index[w]);
            }
            if (recursed) continue;
            if (low[v] == index[v]) {
                while (true) {
                    int w = stack.back();
                    stack.pop_back();
                    on_stack[w] = false;
                    comp[w] = next_comp;
                    if (w == v) break;
                }
                ++next_comp;
            }
            call.pop_back();
            if (!call.empty()) {
                int parent = call.back().v;
                low[parent] = std::min(low[parent], low[v]);
            }
        }
    }
    return {std::move(comp), next_comp};
}

}  // namespace

SccDecomposition::SccDecomposition(const Digraph& g) {
    auto [comp, count] = tarjan(g);
    comp_ = std::move(comp);
    members_.resize(count);
    for (int u = 0; u < g.num_vertices(); ++u) members_[comp_[u]].push_back(u);
    for (auto& m : members_) std::sort(m.begin(), m.end());
    // Build the condensation now, while g is guaranteed alive.  Keeping a
    // pointer to g instead would dangle whenever the decomposition is
    // constructed from a temporary (AddressSanitizer: stack-use-after-scope
    // in Scc.CycleIsOneComponent).
    Digraph dag(count);
    for (int u = 0; u < g.num_vertices(); ++u)
        for (int v : g.successors(u))
            if (comp_[u] != comp_[v]) dag.add_edge(comp_[u], comp_[v]);
    condensation_ = std::move(dag);
}

std::vector<int> SccDecomposition::source_component_ids() const {
    std::vector<int> out;
    for (int c = 0; c < num_components(); ++c)
        if (condensation_.in_degree(c) == 0) out.push_back(c);
    return out;
}

std::vector<std::vector<int>> SccDecomposition::source_components() const {
    std::vector<std::vector<int>> out;
    for (int c : source_component_ids()) out.push_back(members_[c]);
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.front() < b.front(); });
    return out;
}

std::vector<std::vector<int>> source_components(const Digraph& g) {
    return SccDecomposition(g).source_components();
}

std::vector<std::vector<std::vector<int>>> source_components_per_wcc(
        const Digraph& g) {
    std::vector<std::vector<std::vector<int>>> out;
    for (const auto& wcc : weakly_connected_components(g)) {
        std::vector<int> labels;
        Digraph sub = g.induced(wcc, &labels);
        std::vector<std::vector<int>> sources = source_components(sub);
        for (auto& s : sources)
            for (int& v : s) v = labels[v];
        out.push_back(std::move(sources));
    }
    return out;
}

}  // namespace ksa::graph
