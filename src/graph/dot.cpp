#include "graph/dot.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace ksa::graph {

void digraph_to_dot(std::ostream& out, const Digraph& g,
                    const std::vector<int>& highlight) {
    out << "digraph g {\n  node [shape=circle];\n";
    for (int v = 0; v < g.num_vertices(); ++v) {
        out << "  v" << v;
        if (std::find(highlight.begin(), highlight.end(), v) !=
            highlight.end())
            out << " [style=filled, fillcolor=gold]";
        out << ";\n";
    }
    for (int u = 0; u < g.num_vertices(); ++u)
        for (int v : g.successors(u)) out << "  v" << u << " -> v" << v << ";\n";
    out << "}\n";
}

std::string digraph_to_dot(const Digraph& g,
                           const std::vector<int>& highlight) {
    std::ostringstream out;
    digraph_to_dot(out, g, highlight);
    return out.str();
}

}  // namespace ksa::graph
