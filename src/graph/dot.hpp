#pragma once
// Graphviz export of digraphs -- e.g. the FLP stage-1 heard-from graph
// with its source components highlighted (see also sim/dot_export.hpp
// for run space-time diagrams).

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace ksa::graph {

/// Writes `g` in DOT form; vertices in `highlight` (0-based) are filled
/// -- pass a source component to make the Lemma 6 structure visible.
void digraph_to_dot(std::ostream& out, const Digraph& g,
                    const std::vector<int>& highlight = {});

/// The same, as a string.
std::string digraph_to_dot(const Digraph& g,
                           const std::vector<int>& highlight = {});

}  // namespace ksa::graph
