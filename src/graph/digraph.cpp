#include "graph/digraph.hpp"

#include <algorithm>
#include <sstream>

namespace ksa::graph {

Digraph::Digraph(int n) {
    require(n >= 0, "Digraph: negative vertex count");
    succ_.resize(n);
    pred_.resize(n);
}

void Digraph::check(int u, const char* who) const {
    if (u < 0 || u >= num_vertices())
        throw UsageError(std::string(who) + ": vertex out of range");
}

void Digraph::add_edge(int u, int v) {
    check(u, "Digraph::add_edge");
    check(v, "Digraph::add_edge");
    require(u != v, "Digraph::add_edge: self-loops not allowed");
    auto& s = succ_[u];
    auto it = std::lower_bound(s.begin(), s.end(), v);
    if (it != s.end() && *it == v) return;
    s.insert(it, v);
    auto& p = pred_[v];
    p.insert(std::lower_bound(p.begin(), p.end(), u), u);
    ++edges_;
}

bool Digraph::has_edge(int u, int v) const {
    check(u, "Digraph::has_edge");
    check(v, "Digraph::has_edge");
    const auto& s = succ_[u];
    return std::binary_search(s.begin(), s.end(), v);
}

const std::vector<int>& Digraph::successors(int u) const {
    check(u, "Digraph::successors");
    return succ_[u];
}

const std::vector<int>& Digraph::predecessors(int u) const {
    check(u, "Digraph::predecessors");
    return pred_[u];
}

int Digraph::min_in_degree() const {
    int best = num_vertices() == 0 ? 0 : in_degree(0);
    for (int u = 1; u < num_vertices(); ++u)
        best = std::min(best, in_degree(u));
    return best;
}

Digraph Digraph::reversed() const {
    Digraph r(num_vertices());
    for (int u = 0; u < num_vertices(); ++u)
        for (int v : succ_[u]) r.add_edge(v, u);
    return r;
}

Digraph Digraph::induced(const std::vector<int>& vertices,
                         std::vector<int>* out_labels) const {
    std::vector<int> index(num_vertices(), -1);
    for (std::size_t i = 0; i < vertices.size(); ++i) {
        check(vertices[i], "Digraph::induced");
        require(index[vertices[i]] == -1, "Digraph::induced: duplicate vertex");
        index[vertices[i]] = static_cast<int>(i);
    }
    Digraph g(static_cast<int>(vertices.size()));
    for (int u : vertices)
        for (int v : succ_[u])
            if (index[v] != -1) g.add_edge(index[u], index[v]);
    if (out_labels != nullptr) *out_labels = vertices;
    return g;
}

std::string Digraph::to_string() const {
    std::ostringstream out;
    for (int u = 0; u < num_vertices(); ++u) {
        out << u << " ->";
        for (int v : succ_[u]) out << ' ' << v;
        out << '\n';
    }
    return out.str();
}

std::vector<std::vector<int>> weakly_connected_components(const Digraph& g) {
    const int n = g.num_vertices();
    std::vector<int> comp(n, -1);
    int count = 0;
    std::vector<int> stack;
    for (int s = 0; s < n; ++s) {
        if (comp[s] != -1) continue;
        comp[s] = count;
        stack.push_back(s);
        while (!stack.empty()) {
            int u = stack.back();
            stack.pop_back();
            for (int v : g.successors(u))
                if (comp[v] == -1) comp[v] = count, stack.push_back(v);
            for (int v : g.predecessors(u))
                if (comp[v] == -1) comp[v] = count, stack.push_back(v);
        }
        ++count;
    }
    std::vector<std::vector<int>> out(count);
    for (int u = 0; u < n; ++u) out[comp[u]].push_back(u);
    return out;
}

}  // namespace ksa::graph
