#pragma once
// Directed simple graphs over vertices 0..n-1.
//
// Section VI of the paper analyses the "heard-from" graph of the first
// protocol stage: vertices are processes and there is an edge u -> w iff
// w received u's stage-1 message.  The solvability bound of Theorem 8
// falls out of purely graph-theoretic facts about this graph (Lemmas 6
// and 7), which this module and scc.hpp implement.

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace ksa::graph {

/// A directed simple graph with vertices 0..n-1.  Parallel edges are
/// collapsed; self-loops are rejected (the heard-from graph never has
/// them: a process does not wait for its own message).
class Digraph {
public:
    explicit Digraph(int n);

    int num_vertices() const { return static_cast<int>(succ_.size()); }
    std::size_t num_edges() const { return edges_; }

    /// Adds edge u -> v.  Idempotent.  u must differ from v.
    void add_edge(int u, int v);

    bool has_edge(int u, int v) const;

    /// Successors of u (sorted).
    const std::vector<int>& successors(int u) const;
    /// Predecessors of u (sorted).
    const std::vector<int>& predecessors(int u) const;

    int in_degree(int u) const { return static_cast<int>(pred_[u].size()); }
    int out_degree(int u) const { return static_cast<int>(succ_[u].size()); }

    /// Minimum in-degree over all vertices (the delta of Lemma 6).
    int min_in_degree() const;

    /// The graph with every edge reversed.
    Digraph reversed() const;

    /// The subgraph induced by `vertices` (relabelled 0..k-1 in the order
    /// given); also returns the label map via `out_labels` if non-null.
    Digraph induced(const std::vector<int>& vertices,
                    std::vector<int>* out_labels = nullptr) const;

    /// Canonical adjacency rendering for debugging.
    std::string to_string() const;

private:
    void check(int u, const char* who) const;

    std::vector<std::vector<int>> succ_;
    std::vector<std::vector<int>> pred_;
    std::size_t edges_ = 0;
};

/// Weakly connected components: vertex sets of the components of the
/// underlying undirected graph, each sorted, in order of smallest member.
std::vector<std::vector<int>> weakly_connected_components(const Digraph& g);

}  // namespace ksa::graph
