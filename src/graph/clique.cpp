#include "graph/clique.hpp"

#include <algorithm>

namespace ksa::graph {

bool is_clique(const Digraph& g, const std::vector<int>& members) {
    for (int u : members)
        for (int v : members)
            if (u != v && !g.has_edge(u, v)) return false;
    return true;
}

bool has_no_incoming(const Digraph& g, const std::vector<int>& members) {
    for (int v : members)
        for (int u : g.predecessors(v))
            if (std::find(members.begin(), members.end(), u) == members.end())
                return false;
    return true;
}

bool is_initial_clique(const Digraph& g, const std::vector<int>& members) {
    return is_clique(g, members) && has_no_incoming(g, members);
}

std::vector<std::vector<int>> initial_cliques(const Digraph& g) {
    std::vector<std::vector<int>> out;
    for (const auto& sc : source_components(g))
        if (is_clique(g, sc)) out.push_back(sc);
    return out;
}

std::vector<int> reachable_from(const Digraph& g, const std::vector<int>& from) {
    std::vector<bool> seen(g.num_vertices(), false);
    std::vector<int> stack;
    for (int v : from)
        if (!seen[v]) seen[v] = true, stack.push_back(v);
    while (!stack.empty()) {
        int u = stack.back();
        stack.pop_back();
        for (int w : g.successors(u))
            if (!seen[w]) seen[w] = true, stack.push_back(w);
    }
    std::vector<int> out;
    for (int v = 0; v < g.num_vertices(); ++v)
        if (seen[v]) out.push_back(v);
    return out;
}

std::vector<std::vector<int>> source_reachability(const Digraph& g) {
    std::vector<std::vector<int>> out(g.num_vertices());
    auto sources = source_components(g);
    for (std::size_t i = 0; i < sources.size(); ++i)
        for (int v : reachable_from(g, sources[i]))
            out[v].push_back(static_cast<int>(i));
    return out;
}

}  // namespace ksa::graph
