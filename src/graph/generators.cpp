#include "graph/generators.hpp"

#include <algorithm>
#include <random>

namespace ksa::graph {

Digraph random_min_indegree(int n, int delta, std::uint64_t seed) {
    require(delta >= 0 && delta < n,
            "random_min_indegree: need 0 <= delta < n");
    std::mt19937_64 rng(seed);
    Digraph g(n);
    std::vector<int> others(n - 1);
    for (int v = 0; v < n; ++v) {
        int k = 0;
        for (int u = 0; u < n; ++u)
            if (u != v) others[k++] = u;
        std::shuffle(others.begin(), others.end(), rng);
        for (int i = 0; i < delta; ++i) g.add_edge(others[i], v);
    }
    return g;
}

Digraph random_gnp(int n, double p, std::uint64_t seed) {
    require(p >= 0.0 && p <= 1.0, "random_gnp: p out of [0,1]");
    std::mt19937_64 rng(seed);
    std::bernoulli_distribution coin(p);
    Digraph g(n);
    for (int u = 0; u < n; ++u)
        for (int v = 0; v < n; ++v)
            if (u != v && coin(rng)) g.add_edge(u, v);
    return g;
}

Digraph random_stage_graph(int n, int l_minus_1, const std::vector<int>& dead,
                           std::uint64_t seed) {
    std::vector<bool> is_dead(n, false);
    for (int v : dead) {
        require(v >= 0 && v < n, "random_stage_graph: dead vertex out of range");
        is_dead[v] = true;
    }
    std::vector<int> live;
    for (int v = 0; v < n; ++v)
        if (!is_dead[v]) live.push_back(v);
    require(l_minus_1 < static_cast<int>(live.size()),
            "random_stage_graph: not enough live processes to hear from");

    std::mt19937_64 rng(seed);
    Digraph g(n);
    for (int v : live) {
        std::vector<int> pool;
        for (int u : live)
            if (u != v) pool.push_back(u);
        std::shuffle(pool.begin(), pool.end(), rng);
        for (int i = 0; i < l_minus_1; ++i) g.add_edge(pool[i], v);
    }
    return g;
}

}  // namespace ksa::graph
