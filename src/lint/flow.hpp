#pragma once
// lint::flow -- the flow-sensitive whole-program passes built on the
// declaration model (decls.hpp).  Four rules, all about keeping the
// parallel engine's executions deterministic and race-free:
//
//   parallel-capture-mutation      a lambda handed to a parallel entry
//                                  point (parallel_map_deterministic,
//                                  ThreadPool::run_indexed/submit)
//                                  writes a by-reference capture that
//                                  is not an atomic, not under a lock
//                                  and not a per-index element slot.
//   nondet-iteration-reaches-output
//                                  a range-for over an unordered
//                                  container whose body reaches digest
//                                  folds / JSON emission / KSARUN
//                                  trace writing, directly or through
//                                  the name-matched call graph.
//   lock-discipline                `ksa: guarded_by(mu)` members are
//                                  touched only in functions whose
//                                  body locks `mu` (or that opt out
//                                  with `ksa: thread_safe`); public
//                                  src/exec/ header entry points must
//                                  carry an annotation.
//   blocking-in-task               a `ksa: wait_free` body must not
//                                  lock, wait, do stream IO or call
//                                  allocation-heavy vocabulary.
//
// Soundness stance (doc/analysis.md §3): token-level flow analysis is
// deliberately tuned so imprecision surfaces as MISSED findings on
// exotic code, never as noise on idiomatic code -- the rules gate CI,
// so false positives would train people to sprinkle suppressions.

#include <vector>

#include "lint/decls.hpp"
#include "lint/rules.hpp"
#include "lint/source_file.hpp"

namespace ksa::lint {

std::vector<Finding> check_parallel_capture_mutation(
    const std::vector<SourceFile>& files, const DeclModel& decls);

std::vector<Finding> check_nondet_iteration(
    const std::vector<SourceFile>& files, const DeclModel& decls);

std::vector<Finding> check_lock_discipline(
    const std::vector<SourceFile>& files, const DeclModel& decls);

std::vector<Finding> check_blocking_in_task(
    const std::vector<SourceFile>& files, const DeclModel& decls);

/// All four passes in rule-table order, concatenated (convenience for
/// the analyzer and the fixture tests).
std::vector<Finding> run_flow_passes(const std::vector<SourceFile>& files,
                                     const DeclModel& decls);

}  // namespace ksa::lint
