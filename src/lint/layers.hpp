#pragma once
// lint layer-DAG enforcement.  The table itself lives in
// src/lint/layers.def (X-macro form, one source of truth for this pass
// and for the doc/analysis.md diagram); this module assigns every
// scanned file to a layer by longest-prefix match and turns each
// include-graph edge that crosses the DAG into a `layering` finding,
// plus each strongly connected include component into an
// `include-cycle` finding.

#include <cstddef>
#include <string>
#include <vector>

#include "lint/include_graph.hpp"
#include "lint/rules.hpp"
#include "lint/source_file.hpp"

namespace ksa::lint {

struct Layer {
    std::string name;
    std::string prefix;  ///< root-relative path prefix
    std::vector<std::string> allowed;            ///< layer names
    std::vector<std::string> private_importers;  ///< exact file paths
    bool is_private() const { return !private_importers.empty(); }
};

/// The parsed layer table, in layers.def order.
const std::vector<Layer>& layers();

/// Longest-prefix layer assignment; nullptr when no prefix matches
/// (such files are outside the DAG and never checked).
const Layer* layer_for(const std::string& rel_path);

/// One `layering` finding per include edge that crosses the DAG
/// (suppressions already applied by the caller's SourceFiles).
std::vector<Finding> check_layering(const IncludeGraph& graph);

/// One `include-cycle` finding per strongly connected component.
std::vector<Finding> check_include_cycles(const IncludeGraph& graph);

}  // namespace ksa::lint
