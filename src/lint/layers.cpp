#include "lint/layers.hpp"

#include <algorithm>

namespace ksa::lint {

namespace {

std::vector<Layer> parse_table() {
    std::vector<Layer> out;
    auto find = [&out](const char* name) -> Layer& {
        for (Layer& l : out)
            if (l.name == name) return l;
        out.push_back(Layer{name, "", {}, {}});
        return out.back();
    };

#define KSA_LAYER(id, prefix) out.push_back(Layer{#id, prefix, {}, {}});
#define KSA_ALLOW(from, to) find(#from).allowed.push_back(#to);
#define KSA_PRIVATE(id, importer) find(#id).private_importers.push_back(importer);
#include "lint/layers.def"  // IWYU pragma: keep
#undef KSA_LAYER
#undef KSA_ALLOW
#undef KSA_PRIVATE

    return out;
}

const RuleInfo& rule_info(const char* name) {
    for (const RuleInfo& r : all_rules())
        if (r.name == name) return r;
    // The rule table is static; reaching this is a programming error.
    static const RuleInfo kUnknown{"unknown", RuleKind::kWholeProgram,
                                  Severity::kError, "", "", false};
    return kUnknown;
}

bool allows(const Layer& from, const std::string& to_name) {
    return std::find(from.allowed.begin(), from.allowed.end(), to_name) !=
           from.allowed.end();
}

}  // namespace

const std::vector<Layer>& layers() {
    static const std::vector<Layer> kLayers = parse_table();
    return kLayers;
}

const Layer* layer_for(const std::string& rel_path) {
    const std::string path = normalize_path(rel_path);
    const Layer* best = nullptr;
    for (const Layer& l : layers()) {
        if (path.compare(0, l.prefix.size(), l.prefix) != 0) continue;
        if (best == nullptr || l.prefix.size() > best->prefix.size())
            best = &l;
    }
    return best;
}

std::vector<Finding> check_layering(const IncludeGraph& graph) {
    const RuleInfo& rule = rule_info("layering");
    std::vector<Finding> findings;
    for (const IncludeEdge& e : graph.edges()) {
        const SourceFile& from = graph.file(e.from);
        const SourceFile& to = graph.file(e.to);
        const Layer* lf = layer_for(from.path());
        const Layer* lt = layer_for(to.path());
        if (lf == nullptr || lt == nullptr) continue;  // outside the DAG

        std::string why;
        if (lf != lt && !allows(*lf, lt->name)) {
            why = "layer '" + lf->name + "' may not include layer '" +
                  lt->name + "' (" + e.written +
                  "); the DAG in src/lint/layers.def has no such edge";
        } else if (lt->is_private() && lf != lt) {
            const std::string norm = normalize_path(from.path());
            const auto& ok = lt->private_importers;
            if (std::find(ok.begin(), ok.end(), norm) == ok.end())
                why = "layer '" + lt->name +
                      "' is private (reduction internals); only its "
                      "listed importers in src/lint/layers.def may "
                      "include " +
                      e.written;
        }
        if (why.empty()) continue;
        if (from.suppressed(e.line, rule.name)) continue;
        findings.push_back({from.path(), e.line, 0, rule.name, rule.severity,
                            why + " -- " + rule.message});
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.file, a.line) < std::tie(b.file, b.line);
              });
    return findings;
}

std::vector<Finding> check_include_cycles(const IncludeGraph& graph) {
    const RuleInfo& rule = rule_info("include-cycle");
    std::vector<Finding> findings;
    for (const std::vector<std::size_t>& comp : graph.cycles()) {
        // Report at the first member's include of another member.
        const std::size_t head = comp[0];
        std::size_t line = 1;
        for (const IncludeEdge& e : graph.edges()) {
            if (e.from == head &&
                std::find(comp.begin(), comp.end(), e.to) != comp.end()) {
                line = e.line;
                break;
            }
        }
        std::string chain;
        for (std::size_t idx : comp) {
            if (!chain.empty()) chain += " -> ";
            chain += graph.file(idx).path();
        }
        const SourceFile& head_file = graph.file(head);
        if (head_file.suppressed(line, rule.name)) continue;
        findings.push_back({head_file.path(), line, 0, rule.name,
                            rule.severity,
                            "cycle: " + chain + " -- " + rule.message});
    }
    return findings;
}

}  // namespace ksa::lint
