#include "lint/include_graph.hpp"

#include <algorithm>

namespace ksa::lint {

namespace {

std::string parent_dir(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

bool ends_with(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Iterative Tarjan SCC (explicit stack: header chains can be long).
struct Tarjan {
    const std::vector<std::vector<std::size_t>>& adj;
    std::vector<int> index, lowlink;
    std::vector<bool> on_stack;
    std::vector<std::size_t> stack;
    int next_index = 0;
    std::vector<std::vector<std::size_t>> components;

    explicit Tarjan(const std::vector<std::vector<std::size_t>>& a)
        : adj(a),
          index(a.size(), -1),
          lowlink(a.size(), -1),
          on_stack(a.size(), false) {}

    void run(std::size_t root) {
        struct Frame {
            std::size_t v;
            std::size_t next_child = 0;
        };
        std::vector<Frame> frames;
        frames.push_back({root});
        index[root] = lowlink[root] = next_index++;
        stack.push_back(root);
        on_stack[root] = true;

        while (!frames.empty()) {
            Frame& f = frames.back();
            if (f.next_child < adj[f.v].size()) {
                const std::size_t w = adj[f.v][f.next_child++];
                if (index[w] < 0) {
                    index[w] = lowlink[w] = next_index++;
                    stack.push_back(w);
                    on_stack[w] = true;
                    frames.push_back({w});
                } else if (on_stack[w]) {
                    lowlink[f.v] = std::min(lowlink[f.v], index[w]);
                }
                continue;
            }
            // All children done: close the frame.
            const std::size_t v = f.v;
            frames.pop_back();
            if (!frames.empty())
                lowlink[frames.back().v] =
                    std::min(lowlink[frames.back().v], lowlink[v]);
            if (lowlink[v] == index[v]) {
                std::vector<std::size_t> comp;
                while (true) {
                    const std::size_t w = stack.back();
                    stack.pop_back();
                    on_stack[w] = false;
                    comp.push_back(w);
                    if (w == v) break;
                }
                components.push_back(std::move(comp));
            }
        }
    }
};

}  // namespace

std::string normalize_path(const std::string& path) {
    std::string p = path;
    std::replace(p.begin(), p.end(), '\\', '/');
    std::vector<std::string> parts;
    std::string cur;
    auto flush = [&]() {
        if (cur.empty() || cur == ".") {
            // drop
        } else if (cur == "..") {
            if (!parts.empty() && parts.back() != "..")
                parts.pop_back();
            else
                parts.push_back("..");
        } else {
            parts.push_back(cur);
        }
        cur.clear();
    };
    for (char c : p) {
        if (c == '/')
            flush();
        else
            cur += c;
    }
    flush();
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += '/';
        out += parts[i];
    }
    return out;
}

IncludeGraph IncludeGraph::build(const std::vector<SourceFile>& files) {
    IncludeGraph g;
    g.files_ = &files;
    g.adjacency_.assign(files.size(), {});

    std::map<std::string, std::size_t> by_path;
    for (std::size_t i = 0; i < files.size(); ++i)
        by_path.emplace(normalize_path(files[i].path()), i);

    for (std::size_t i = 0; i < files.size(); ++i) {
        const std::string dir = parent_dir(normalize_path(files[i].path()));
        for (const IncludeDirective& inc : files[i].includes()) {
            if (inc.angled) continue;  // system / external headers
            // Resolution order mirrors the build: -I src, repo root,
            // then the including file's own directory.
            const std::string candidates[] = {
                normalize_path("src/" + inc.path),
                normalize_path(inc.path),
                normalize_path(dir.empty() ? inc.path : dir + "/" + inc.path),
            };
            for (const std::string& cand : candidates) {
                const auto it = by_path.find(cand);
                if (it == by_path.end()) continue;
                if (it->second == i && inc.path != files[i].path())
                    continue;  // ignore accidental self-resolution
                g.edges_.push_back({i, it->second, inc.line, inc.path});
                g.adjacency_[i].push_back(it->second);
                break;
            }
        }
    }
    return g;
}

std::vector<std::vector<std::size_t>> IncludeGraph::cycles() const {
    Tarjan t(adjacency_);
    for (std::size_t v = 0; v < adjacency_.size(); ++v)
        if (t.index[v] < 0) t.run(v);

    std::vector<std::vector<std::size_t>> out;
    for (std::vector<std::size_t>& comp : t.components) {
        bool cyclic = comp.size() > 1;
        if (!cyclic) {
            // A single node forms a cycle only on a self-include.
            for (std::size_t w : adjacency_[comp[0]])
                if (w == comp[0]) cyclic = true;
        }
        if (!cyclic) continue;
        std::sort(comp.begin(), comp.end(),
                  [&](std::size_t a, std::size_t b) {
                      return (*files_)[a].path() < (*files_)[b].path();
                  });
        out.push_back(std::move(comp));
    }
    std::sort(out.begin(), out.end(),
              [&](const std::vector<std::size_t>& a,
                  const std::vector<std::size_t>& b) {
                  return (*files_)[a[0]].path() < (*files_)[b[0]].path();
              });
    return out;
}

bool IncludeGraph::reaches_suffix(std::size_t from,
                                  const std::string& suffix) const {
    std::vector<bool> seen(adjacency_.size(), false);
    std::vector<std::size_t> todo{from};
    seen[from] = true;
    while (!todo.empty()) {
        const std::size_t v = todo.back();
        todo.pop_back();
        if (v != from &&
            ends_with(normalize_path((*files_)[v].path()), suffix))
            return true;
        for (std::size_t w : adjacency_[v]) {
            if (!seen[w]) {
                seen[w] = true;
                todo.push_back(w);
            }
        }
    }
    return false;
}

}  // namespace ksa::lint
