#pragma once
// lint::SourceFile -- the per-file model shared by ksa_lint and
// ksa_analyze: lexed lines (lexer.hpp), extracted #include directives,
// and the suppression map parsed from `// ksa-lint: allow(rule, ...)`
// tags.
//
// Suppression semantics (the fixed version of the original ksa_lint
// behavior; regression-tested in tests/test_lint.cpp):
//
//   * one tag may name SEVERAL rules: `allow(rule-a, rule-b)`;
//   * a tag trailing a code line suppresses that line and the next;
//   * a tag on a standalone comment line suppresses the ENTIRE next
//     statement, even when it wraps over multiple lines (statement end
//     = the next code line containing `;`, `{` or `}`, within a
//     12-line window);
//   * tags inside /* block comments */ or string literals are INERT --
//     only real `//` line comments carry suppressions.

#include <cstddef>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace ksa::lint {

struct IncludeDirective {
    std::string path;  ///< as written between the quotes/brackets
    bool angled = false;
    std::size_t line = 0;  ///< 1-based
};

class SourceFile {
public:
    /// Reads `disk_path`, lexes it, extracts includes + suppressions.
    /// `report_path` is the path findings and layering rules see
    /// (root-relative for ksa_analyze, as-given for ksa_lint).
    /// Throws std::runtime_error when the file cannot be read.
    static SourceFile load(const std::filesystem::path& disk_path,
                           std::string report_path);

    /// Builds the model from an in-memory buffer (tests, scratch runs).
    static SourceFile from_string(std::string report_path,
                                  const std::string& text);

    const std::string& path() const { return path_; }
    std::size_t line_count() const { return lexed_.lines.size(); }

    /// 1-based accessors; out-of-range returns an empty string.
    const std::string& code(std::size_t line) const;
    const std::string& raw(std::size_t line) const;
    /// Text of the `//` comment on `line` (empty when there is none).
    /// Block comments and strings never show up here, so annotation
    /// vocabularies (`ksa: guarded_by(...)`) share the suppression
    /// tags' inertness guarantees.
    const std::string& comment(std::size_t line) const;

    const std::vector<IncludeDirective>& includes() const {
        return includes_;
    }

    /// True when a `ksa-lint: allow(rule)` tag covers `line` (1-based).
    bool suppressed(std::size_t line, const std::string& rule) const;

    /// True when any code line mentions `word` as a whole token.
    bool mentions_token(const std::string& word) const;

    /// True when some include directive's written path equals `inc`.
    bool includes_path(const std::string& inc) const;

private:
    SourceFile() = default;
    void index(const std::string& text);

    std::string path_;
    LexedFile lexed_;
    std::vector<IncludeDirective> includes_;
    /// rule name -> set of suppressed 1-based lines.
    std::map<std::string, std::set<std::size_t>> suppressions_;
};

}  // namespace ksa::lint
