#include "lint/lexer.hpp"

#include <cstddef>

namespace ksa::lint {

namespace {

enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
};

bool is_ident_char(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
}

/// Whether the `"` at text[i] opens a RAW string literal: the
/// characters before it must spell one of the raw-string prefixes (R,
/// u8R, uR, UR, LR) that is not merely the tail of a longer identifier
/// (FOOBAR"x" is an ordinary string after an identifier).
bool is_raw_string_open(const std::string& text, std::size_t i) {
    if (i == 0 || text[i - 1] != 'R') return false;
    std::size_t p = i - 1;  // first char of the literal prefix so far
    if (p >= 2 && text[p - 1] == '8' && text[p - 2] == 'u')
        p -= 2;
    else if (p >= 1 &&
             (text[p - 1] == 'u' || text[p - 1] == 'U' || text[p - 1] == 'L'))
        p -= 1;
    return p == 0 || !is_ident_char(text[p - 1]);
}

}  // namespace

bool contains_token(const std::string& text, const std::string& word) {
    for (std::size_t pos = text.find(word); pos != std::string::npos;
         pos = text.find(word, pos + 1)) {
        const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
        const std::size_t end = pos + word.size();
        const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
        if (left_ok && right_ok) return true;
    }
    return false;
}

LexedFile lex(const std::string& text) {
    LexedFile out;
    State state = State::kCode;
    std::string raw_delim;  // current raw-string delimiter, without parens

    LexedLine cur;
    cur.continues_multiline = false;

    auto flush_line = [&]() {
        out.lines.push_back(cur);
        cur = LexedLine{};
        cur.continues_multiline =
            state == State::kBlockComment || state == State::kRawString;
    };

    const std::size_t n = text.size();
    for (std::size_t i = 0; i < n; ++i) {
        const char c = text[i];
        if (c == '\n') {
            // A string/char literal cannot legally span a newline;
            // recover rather than swallowing the rest of the file.
            if (state == State::kString || state == State::kChar ||
                state == State::kLineComment)
                state = State::kCode;
            flush_line();
            continue;
        }
        if (c == '\r') continue;  // normalize CRLF
        cur.raw += c;

        switch (state) {
            case State::kCode: {
                if (c == '/' && i + 1 < n && text[i + 1] == '/') {
                    state = State::kLineComment;
                    cur.code += "  ";
                    cur.raw += text[i + 1];
                    ++i;
                    break;
                }
                if (c == '/' && i + 1 < n && text[i + 1] == '*') {
                    state = State::kBlockComment;
                    cur.code += "  ";
                    cur.raw += text[i + 1];
                    ++i;
                    break;
                }
                if (c == '"') {
                    state = is_raw_string_open(text, i) ? State::kRawString
                                                        : State::kString;
                    cur.code += c;  // keep the quote: columns align
                    if (state == State::kRawString) {
                        // Capture the delimiter up to '('.
                        raw_delim.clear();
                        std::size_t j = i + 1;
                        while (j < n && text[j] != '(' && text[j] != '\n' &&
                               raw_delim.size() < 16) {
                            raw_delim += text[j];
                            ++j;
                        }
                    }
                    break;
                }
                if (c == '\'') {
                    // A quote directly after a digit or an identifier
                    // tail of a numeric literal is a digit separator
                    // (1'000'000), not a character literal.
                    const bool separator =
                        i > 0 && ((text[i - 1] >= '0' && text[i - 1] <= '9') ||
                                  (text[i - 1] >= 'a' && text[i - 1] <= 'f') ||
                                  (text[i - 1] >= 'A' && text[i - 1] <= 'F')) &&
                        i + 1 < n &&
                        ((text[i + 1] >= '0' && text[i + 1] <= '9') ||
                         (text[i + 1] >= 'a' && text[i + 1] <= 'f') ||
                         (text[i + 1] >= 'A' && text[i + 1] <= 'F'));
                    if (separator) {
                        cur.code += c;
                        break;
                    }
                    state = State::kChar;
                    cur.code += c;
                    break;
                }
                cur.code += c;
                break;
            }
            case State::kLineComment:
                cur.code += ' ';
                cur.line_comment += c;
                break;
            case State::kBlockComment:
                cur.code += ' ';
                if (c == '*' && i + 1 < n && text[i + 1] == '/') {
                    cur.raw += text[i + 1];
                    cur.code += ' ';
                    ++i;
                    state = State::kCode;
                }
                break;
            case State::kString:
                if (c == '\\' && i + 1 < n && text[i + 1] != '\n') {
                    cur.raw += text[i + 1];
                    cur.code += "  ";
                    ++i;
                    break;
                }
                if (c == '"') {
                    cur.code += c;
                    state = State::kCode;
                    break;
                }
                cur.code += ' ';
                break;
            case State::kChar:
                if (c == '\\' && i + 1 < n && text[i + 1] != '\n') {
                    cur.raw += text[i + 1];
                    cur.code += "  ";
                    ++i;
                    break;
                }
                if (c == '\'') {
                    cur.code += c;
                    state = State::kCode;
                    break;
                }
                cur.code += ' ';
                break;
            case State::kRawString: {
                // Close on `)delim"`.
                if (c == ')' &&
                    i + raw_delim.size() + 1 < n &&
                    text.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
                    text[i + 1 + raw_delim.size()] == '"') {
                    for (std::size_t j = 0; j < raw_delim.size() + 1; ++j) {
                        cur.raw += text[i + 1 + j];
                        cur.code += ' ';
                    }
                    cur.code += ' ';  // for the ')'
                    // note: code got one blank for ')' plus delim+quote
                    i += raw_delim.size() + 1;
                    state = State::kCode;
                    break;
                }
                cur.code += ' ';
                break;
            }
        }
    }
    if (!cur.raw.empty() || !out.lines.empty()) flush_line();
    // Drop a phantom empty final line produced by a trailing newline.
    if (!out.lines.empty() && out.lines.back().raw.empty() &&
        !text.empty() && text.back() == '\n')
        out.lines.pop_back();
    return out;
}

}  // namespace ksa::lint
