#include "lint/ratchet.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "lint/json.hpp"

namespace ksa::lint {

namespace {

std::map<std::pair<std::string, std::string>, std::size_t> count_findings(
    const std::vector<Finding>& findings) {
    std::map<std::pair<std::string, std::string>, std::size_t> counts;
    for (const Finding& f : findings) ++counts[{f.rule, f.file}];
    return counts;
}

}  // namespace

std::optional<std::vector<BaselineEntry>> load_baseline(
    const std::filesystem::path& path, std::string* error) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr) *error = "cannot open " + path.string();
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string parse_error;
    const std::optional<json::Value> doc =
        json::parse(buf.str(), &parse_error);
    if (!doc.has_value() || !doc->is_object()) {
        if (error != nullptr)
            *error = path.string() + ": " +
                     (parse_error.empty() ? "not a JSON object" : parse_error);
        return std::nullopt;
    }
    const json::Value* findings = doc->find("findings");
    if (findings == nullptr || !findings->is_array()) {
        if (error != nullptr)
            *error = path.string() + ": missing \"findings\" array";
        return std::nullopt;
    }
    std::vector<BaselineEntry> out;
    for (const json::Value& e : findings->as_array()) {
        const json::Value* rule = e.find("rule");
        const json::Value* file = e.find("file");
        const json::Value* count = e.find("count");
        if (rule == nullptr || !rule->is_string() || file == nullptr ||
            !file->is_string() || count == nullptr || !count->is_number()) {
            if (error != nullptr)
                *error = path.string() +
                         ": each finding needs string rule/file and "
                         "numeric count";
            return std::nullopt;
        }
        out.push_back({rule->as_string(), file->as_string(),
                       static_cast<std::size_t>(count->as_number())});
    }
    return out;
}

RatchetResult ratchet_compare(const std::vector<Finding>& findings,
                              const std::vector<BaselineEntry>& baseline) {
    RatchetResult result;
    auto current = count_findings(findings);

    std::map<std::pair<std::string, std::string>, std::size_t> base;
    for (const BaselineEntry& e : baseline) base[{e.rule, e.file}] += e.count;

    for (const auto& [key, count] : current) {
        const auto it = base.find(key);
        const std::size_t allowed = it == base.end() ? 0 : it->second;
        if (count > allowed) {
            std::ostringstream os;
            os << key.second << ": [" << key.first << "] " << count
               << " finding(s), baseline allows " << allowed;
            result.regressions.push_back(os.str());
        }
    }
    for (const auto& [key, count] : base) {
        const auto it = current.find(key);
        const std::size_t now = it == current.end() ? 0 : it->second;
        if (now < count) {
            std::ostringstream os;
            os << key.second << ": [" << key.first << "] baseline records "
               << count << " finding(s) but only " << now
               << " remain -- refresh with --write-baseline so the fix "
                  "cannot regress";
            result.stale.push_back(os.str());
        }
    }
    return result;
}

std::string baseline_json(const std::vector<Finding>& findings) {
    json::Array arr;
    for (const auto& [key, count] : count_findings(findings)) {
        json::Object e;
        e.emplace("rule", key.first);
        e.emplace("file", key.second);
        e.emplace("count", count);
        arr.emplace_back(std::move(e));
    }
    json::Object doc;
    doc.emplace("version", 1);
    doc.emplace(
        "comment",
        "ksa_analyze ratchet baseline: grandfathered finding counts per "
        "(rule, file). New findings fail CI; fixes must be recorded with "
        "--write-baseline so they cannot regress. See doc/analysis.md.");
    doc.emplace("findings", std::move(arr));
    return json::serialize(json::Value(std::move(doc)));
}

}  // namespace ksa::lint
