#include "lint/decls.hpp"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>

namespace ksa::lint {

namespace {

bool is_id(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)); }

/// Tokens the header scanner must never take for a function name:
/// control/declaration keywords and the builtin type names that lead a
/// declarator.  (`operator` is deliberately absent: `operator()(...)`
/// should match, and the name it yields is accepted as-is.)
const std::set<std::string>& keyword_set() {
    static const std::set<std::string> kKeywords = {
        "if", "for", "while", "switch", "do", "else", "try", "catch",
        "return", "co_return", "co_await", "co_yield", "goto", "new",
        "delete", "throw", "sizeof", "alignof", "alignas", "decltype",
        "typeid", "static_assert", "static_cast", "dynamic_cast",
        "const_cast", "reinterpret_cast", "void", "int", "bool", "char",
        "short", "long", "unsigned", "signed", "float", "double", "auto",
        "wchar_t", "char8_t", "char16_t", "char32_t", "const",
        "constexpr", "consteval", "constinit", "static", "inline",
        "virtual", "explicit", "friend", "typedef", "using", "template",
        "typename", "class", "struct", "union", "enum", "namespace",
        "noexcept", "override", "final", "public", "private", "protected",
        "extern", "mutable", "volatile", "requires", "concept", "this",
        "assert",
    };
    return kKeywords;
}

std::string trim(const std::string& s) {
    const std::size_t a = s.find_first_not_of(" \t\n");
    if (a == std::string::npos) return {};
    const std::size_t b = s.find_last_not_of(" \t\n");
    return s.substr(a, b - a + 1);
}

/// The flattened translation unit: all code lines joined with '\n',
/// preprocessor directives (including their backslash continuations)
/// blanked so macro-body braces cannot unbalance the block scanner.
/// `line_of[i]` is the 1-based source line of text[i].
struct FlatFile {
    std::string text;
    std::vector<std::size_t> line_of;
};

FlatFile flatten(const SourceFile& file) {
    FlatFile flat;
    bool continuation = false;
    for (std::size_t ln = 1; ln <= file.line_count(); ++ln) {
        const std::string& code = file.code(ln);
        const std::string& raw = file.raw(ln);
        bool directive = continuation;
        if (!directive) {
            const std::size_t first = code.find_first_not_of(" \t");
            directive = first != std::string::npos && code[first] == '#';
        }
        continuation = directive && !raw.empty() && raw.back() == '\\';
        if (directive) {
            flat.text.append(code.size(), ' ');
        } else {
            flat.text += code;
        }
        flat.text += '\n';
        flat.line_of.insert(flat.line_of.end(), code.size() + 1, ln);
    }
    return flat;
}

std::size_t skip_ws(const std::string& t, std::size_t i) {
    while (i < t.size() && is_space(t[i])) ++i;
    return i;
}

/// Index of the previous non-whitespace char before `i`, or npos.
std::size_t prev_non_ws(const std::string& t, std::size_t i) {
    while (i > 0) {
        --i;
        if (!is_space(t[i])) return i;
    }
    return std::string::npos;
}

/// The identifier token whose LAST character sits at `i` ("" if t[i]
/// is not an identifier char).
std::string token_ending_at(const std::string& t, std::size_t i) {
    if (!is_id(t[i])) return {};
    std::size_t b = i;
    while (b > 0 && is_id(t[b - 1])) --b;
    return t.substr(b, i - b + 1);
}

/// t[open] is '(', '[' or '{'; returns the index of the bracket that
/// closes it (any of )]}, nesting-aware), or npos.
std::size_t match_forward(const std::string& t, std::size_t open) {
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
        const char c = t[i];
        if (c == '(' || c == '[' || c == '{') {
            ++depth;
        } else if (c == ')' || c == ']' || c == '}') {
            if (--depth == 0) return i;
            if (depth < 0) return std::string::npos;
        }
    }
    return std::string::npos;
}

/// Splits on commas at bracket depth 0 (angle brackets counted too, so
/// `std::function<void(int)> f` stays one part).
std::vector<std::string> split_top_commas(const std::string& s) {
    std::vector<std::string> parts;
    std::string cur;
    int depth = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '(' || c == '[' || c == '{' || c == '<') {
            ++depth;
        } else if (c == ')' || c == ']' || c == '}') {
            --depth;
        } else if (c == '>' && (i == 0 || s[i - 1] != '-')) {
            --depth;
        }
        if (c == ',' && depth <= 0) {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);
    return parts;
}

/// The declared name inside one parameter: the last identifier token
/// before any default argument; "" when unnamed (or the last token is
/// a keyword/builtin, i.e. `int`, `const Foo&`).
std::string param_name(const std::string& part) {
    std::string p = part;
    const std::size_t eq = p.find('=');
    if (eq != std::string::npos) p.resize(eq);
    std::string last;
    std::size_t i = 0;
    while (i < p.size()) {
        if (is_id(p[i]) && !std::isdigit(static_cast<unsigned char>(p[i]))) {
            const std::size_t b = i;
            while (i < p.size() && is_id(p[i])) ++i;
            last = p.substr(b, i - b);
        } else {
            ++i;
        }
    }
    if (last.empty() || keyword_set().count(last) != 0) return {};
    return last;
}

void parse_params(const std::string& list, std::vector<std::string>& out) {
    for (const std::string& part : split_top_commas(list)) {
        std::string name = param_name(part);
        if (!name.empty()) out.push_back(std::move(name));
    }
}

/// Parses a lambda capture list ("&", "=", "&x", "x", "x = expr",
/// "this", "*this", "xs...") into the decl's default_capture/captures.
void parse_captures(const std::string& list, char& default_capture,
                    std::vector<Capture>& captures) {
    for (const std::string& raw_part : split_top_commas(list)) {
        std::string part = trim(raw_part);
        if (part.empty()) continue;
        if (part == "&") {
            default_capture = '&';
            continue;
        }
        if (part == "=") {
            default_capture = '=';
            continue;
        }
        Capture cap;
        if (part[0] == '&') {
            cap.by_ref = true;
            part = trim(part.substr(1));
        }
        if (part == "this" || part == "*this") {
            cap.name = "this";
            cap.by_ref = part == "this";
            captures.push_back(std::move(cap));
            continue;
        }
        const std::size_t eq = part.find('=');
        if (eq != std::string::npos) {
            cap.init = true;
            part = trim(part.substr(0, eq));
        }
        while (!part.empty() && part.back() == '.') part.pop_back();
        cap.name = trim(part);
        if (!cap.name.empty()) captures.push_back(std::move(cap));
    }
}

/// A lambda found by the pre-pass, keyed (in the caller's map) by the
/// flat-text offset of its body's `{`.
struct LambdaInfo {
    std::size_t header_off = 0;  ///< offset of the `[`
    char default_capture = 0;
    std::vector<Capture> captures;
    std::vector<std::string> params;
};

/// Pre-pass: finds every lambda introducer.  A `[` opens a lambda when
/// the previous non-whitespace char is one of `( , = & { } ; : <` (or
/// the previous token is `return`/`co_return`/`co_yield`, or it is the
/// first char), the bracket closes, and after the optional template
/// head / parameter list / specifiers / trailing return type a `{`
/// follows.  `[[` attributes and subscripts (`a[i]`) never qualify.
std::map<std::size_t, LambdaInfo> find_lambdas(const std::string& t) {
    std::map<std::size_t, LambdaInfo> out;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i] != '[') continue;
        if (i + 1 < t.size() && t[i + 1] == '[') {
            const std::size_t attr = match_forward(t, i);
            if (attr != std::string::npos) i = attr;
            continue;
        }
        if (i > 0 && t[i - 1] == '[') continue;
        const std::size_t p = prev_non_ws(t, i);
        bool introducer = p == std::string::npos;
        if (!introducer) {
            const char c = t[p];
            if (c == '(' || c == ',' || c == '=' || c == '&' || c == '{' ||
                c == '}' || c == ';' || c == ':' || c == '<') {
                introducer = true;
            } else if (is_id(c)) {
                const std::string tok = token_ending_at(t, p);
                introducer = tok == "return" || tok == "co_return" ||
                             tok == "co_yield";
            }
        }
        if (!introducer) continue;
        const std::size_t close = match_forward(t, i);
        if (close == std::string::npos) continue;

        LambdaInfo info;
        info.header_off = i;
        parse_captures(t.substr(i + 1, close - i - 1), info.default_capture,
                       info.captures);

        std::size_t j = skip_ws(t, close + 1);
        if (j < t.size() && t[j] == '<') {  // C++20 template lambda
            int angle = 1;
            ++j;
            while (j < t.size() && angle > 0) {
                if (t[j] == '<') ++angle;
                if (t[j] == '>') --angle;
                ++j;
            }
            j = skip_ws(t, j);
        }
        if (j < t.size() && t[j] == '(') {
            const std::size_t pc = match_forward(t, j);
            if (pc == std::string::npos) continue;
            parse_params(t.substr(j + 1, pc - j - 1), info.params);
            j = pc + 1;
        }
        // Specifiers and an optional `-> type` up to the body brace.
        bool has_body = false;
        int angle = 0;
        std::size_t guard = 0;
        while (j < t.size() && guard++ < 400) {
            const char c = t[j];
            if (c == '{') {
                has_body = true;
                break;
            }
            if (c == '<') {
                ++angle;
            } else if (c == '>' && (j == 0 || t[j - 1] != '-')) {
                angle = std::max(0, angle - 1);
            } else if (c == '(') {  // noexcept(...)
                const std::size_t pc = match_forward(t, j);
                if (pc == std::string::npos) break;
                j = pc + 1;
                continue;
            } else if (c == ';' || c == '=' || c == '[' || c == ']') {
                break;
            } else if ((c == ')' || c == ',') && angle == 0) {
                break;
            }
            ++j;
        }
        if (!has_body) continue;
        out.emplace(j, std::move(info));
        i = close;  // keep scanning inside the parameter list
    }
    return out;
}

/// The first identifier token of `s` ("" when there is none).
std::string first_token(const std::string& s) {
    std::size_t i = 0;
    while (i < s.size() && !is_id(s[i])) ++i;
    if (i >= s.size() || std::isdigit(static_cast<unsigned char>(s[i])))
        return {};
    const std::size_t b = i;
    while (i < s.size() && is_id(s[i])) ++i;
    return s.substr(b, i - b);
}

/// True when `stmt` has a top-level `=` (assignment, not ==/<=/...)
/// strictly before offset `pos` -- the mark of an initialized variable
/// declaration rather than a function declaration.
bool top_level_eq_before(const std::string& stmt, std::size_t pos) {
    int depth = 0;
    for (std::size_t k = 0; k < pos && k < stmt.size(); ++k) {
        const char c = stmt[k];
        if (c == '(' || c == '[' || c == '{' || c == '<') {
            ++depth;
        } else if (c == ')' || c == ']' || c == '}') {
            depth = std::max(0, depth - 1);
        } else if (c == '>' && (k == 0 || stmt[k - 1] != '-')) {
            depth = std::max(0, depth - 1);
        } else if (c == '=' && depth == 0) {
            const bool part_of_comparison =
                (k + 1 < stmt.size() && stmt[k + 1] == '=') ||
                (k > 0 && (stmt[k - 1] == '=' || stmt[k - 1] == '!' ||
                           stmt[k - 1] == '<' || stmt[k - 1] == '>'));
            if (!part_of_comparison) return true;
        }
    }
    return false;
}

/// Finds the first plausible function name in a statement header: the
/// first (possibly qualified) identifier directly followed by `(`
/// whose unqualified tail is not a keyword.  Returns the unqualified
/// name; sets `name_pos` to its offset and `paren_pos` to the `(`.
std::string header_name(const std::string& stmt, std::size_t* name_pos,
                        std::size_t* paren_pos) {
    static const std::regex kName(
        R"(((?:[A-Za-z_]\w*::)*~?[A-Za-z_]\w*)\s*\()");
    for (auto it = std::sregex_iterator(stmt.begin(), stmt.end(), kName);
         it != std::sregex_iterator(); ++it) {
        const std::string full = (*it)[1].str();
        const std::size_t sep = full.rfind("::");
        std::string name =
            sep == std::string::npos ? full : full.substr(sep + 2);
        std::string bare = name;
        if (!bare.empty() && bare[0] == '~') bare.erase(0, 1);
        if (keyword_set().count(bare) != 0) continue;
        if (name_pos != nullptr)
            *name_pos = static_cast<std::size_t>(it->position(1)) +
                        full.size() - name.size();
        if (paren_pos != nullptr)
            *paren_pos = static_cast<std::size_t>(it->position(0)) +
                         it->length(0) - 1;
        return name;
    }
    return {};
}

/// True when a top-level `:` (not `::`, not inside brackets) occurs in
/// stmt[from..): the constructor-initializer-list marker.
bool has_top_level_colon(const std::string& stmt, std::size_t from) {
    int depth = 0;
    for (std::size_t k = from; k < stmt.size(); ++k) {
        const char c = stmt[k];
        if (c == '(' || c == '[' || c == '{' || c == '<') {
            ++depth;
        } else if (c == ')' || c == ']' || c == '}') {
            depth = std::max(0, depth - 1);
        } else if (c == '>' && (k == 0 || stmt[k - 1] != '-')) {
            depth = std::max(0, depth - 1);
        } else if (c == ':' && depth == 0) {
            const bool scope_res =
                (k + 1 < stmt.size() && stmt[k + 1] == ':') ||
                (k > 0 && stmt[k - 1] == ':');
            if (!scope_res) return true;
        }
    }
    return false;
}

/// Parses every `ksa:` annotation in one line-comment text.
std::vector<Annotation> annotations_in_comment(const std::string& comment,
                                               std::size_t line) {
    static const std::regex kAnn(
        R"(ksa:\s*(thread_safe|wait_free|guarded_by\s*\(\s*([A-Za-z_]\w*)\s*\)))");
    std::vector<Annotation> out;
    for (auto it =
             std::sregex_iterator(comment.begin(), comment.end(), kAnn);
         it != std::sregex_iterator(); ++it) {
        Annotation a;
        a.line = line;
        const std::string what = (*it)[1].str();
        if (what == "thread_safe") {
            a.kind = AnnotationKind::kThreadSafe;
        } else if (what == "wait_free") {
            a.kind = AnnotationKind::kWaitFree;
        } else {
            a.kind = AnnotationKind::kGuardedBy;
            a.arg = (*it)[2].str();
        }
        out.push_back(std::move(a));
    }
    return out;
}

bool code_blank(const std::string& code) {
    return code.find_first_not_of(" \t") == std::string::npos;
}

/// The declared name on a member/variable declaration line: the first
/// identifier directly followed by `;`, `=`, `{` or `[`.
std::string declared_member_name(const std::string& code) {
    static const std::regex kMember(R"(([A-Za-z_]\w*)\s*[;={[])");
    std::smatch m;
    if (!std::regex_search(code, m, kMember)) return {};
    return m[1].str();
}

enum class BlockKind {
    kNamespace,
    kType,
    kFunction,
    kLambda,
    kControl,
    kInit
};

struct Block {
    BlockKind kind = BlockKind::kControl;
    std::size_t decl = FunctionDecl::npos;
    int saved_paren_depth = 0;
    bool keeps_statement = false;  ///< member-init braces: `{` of m_{...}
};

const std::set<std::string>& control_keywords() {
    static const std::set<std::string> kControl = {
        "if", "for", "while", "switch", "do", "else", "try", "catch"};
    return kControl;
}

const std::set<std::string>& specifier_tail_tokens() {
    static const std::set<std::string> kTail = {
        "const", "noexcept", "override", "final", "mutable", "volatile",
        "try", "requires"};
    return kTail;
}

}  // namespace

DeclModel DeclModel::build(const std::vector<SourceFile>& files) {
    DeclModel model;
    model.by_file_.resize(files.size());

    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        const SourceFile& file = files[fi];
        const FlatFile flat = flatten(file);
        const std::string& t = flat.text;
        const auto line_at = [&](std::size_t off) -> std::size_t {
            if (off < flat.line_of.size()) return flat.line_of[off];
            return file.line_count() == 0 ? 1 : file.line_count();
        };
        const auto col_at = [&](std::size_t off) -> std::size_t {
            std::size_t b = off;
            while (b > 0 && t[b - 1] != '\n') --b;
            return off - b + 1;
        };

        const std::map<std::size_t, LambdaInfo> lambdas = find_lambdas(t);

        std::vector<Block> stack;
        std::vector<std::size_t> decl_stack;
        std::size_t stmt_begin = 0;
        int paren_depth = 0;

        const auto push_function = [&](FunctionDecl fn) -> std::size_t {
            fn.parent = decl_stack.empty() ? FunctionDecl::npos
                                           : decl_stack.back();
            const std::size_t idx = model.funcs_.size();
            if (fn.parent != FunctionDecl::npos)
                model.funcs_[fn.parent].children.push_back(idx);
            model.by_file_[fi].push_back(idx);
            model.funcs_.push_back(std::move(fn));
            return idx;
        };

        const auto statement_lines = [&](const std::string& stmt,
                                         std::size_t off, FunctionDecl& fn,
                                         std::size_t name_pos) {
            const std::size_t lead = stmt.find_first_not_of(" \t\n");
            fn.header_begin =
                line_at(off + (lead == std::string::npos ? 0 : lead));
            fn.line = line_at(off + name_pos);
        };

        for (std::size_t i = 0; i < t.size(); ++i) {
            const char c = t[i];
            if (c == '(') {
                ++paren_depth;
                continue;
            }
            if (c == ')') {
                if (paren_depth > 0) --paren_depth;
                continue;
            }
            if (c == ';' && paren_depth == 0) {
                const BlockKind scope =
                    stack.empty() ? BlockKind::kNamespace
                                  : stack.back().kind;
                if (scope == BlockKind::kNamespace ||
                    scope == BlockKind::kType) {
                    const std::string stmt =
                        t.substr(stmt_begin, i - stmt_begin);
                    const std::string first = first_token(stmt);
                    if (first != "using" && first != "typedef" &&
                        first != "friend") {
                        std::size_t name_pos = 0;
                        std::size_t paren_pos = 0;
                        const std::string name =
                            header_name(stmt, &name_pos, &paren_pos);
                        if (!name.empty() &&
                            !top_level_eq_before(stmt, name_pos)) {
                            FunctionDecl fn;
                            fn.name = name;
                            fn.file = fi;
                            statement_lines(stmt, stmt_begin, fn, name_pos);
                            fn.header_end = line_at(i);
                            const std::size_t close = match_forward(
                                t, stmt_begin + paren_pos);
                            if (close != std::string::npos &&
                                close < i) {
                                parse_params(
                                    t.substr(stmt_begin + paren_pos + 1,
                                             close - stmt_begin -
                                                 paren_pos - 1),
                                    fn.params);
                            }
                            static const std::regex kDeleted(
                                R"(=\s*(delete|default|0)\s*$)");
                            fn.deleted_or_defaulted =
                                std::regex_search(stmt, kDeleted);
                            push_function(std::move(fn));
                        }
                    }
                }
                stmt_begin = i + 1;
                continue;
            }
            if (c == '{') {
                Block blk;
                blk.saved_paren_depth = paren_depth;
                const auto lam = lambdas.find(i);
                if (lam != lambdas.end()) {
                    FunctionDecl fn;
                    fn.name = "operator()";
                    fn.is_lambda = true;
                    fn.file = fi;
                    fn.line = line_at(lam->second.header_off);
                    fn.header_begin = fn.line;
                    fn.header_end = line_at(i);
                    fn.body_begin = line_at(i);
                    fn.body_begin_col = col_at(i);
                    fn.default_capture = lam->second.default_capture;
                    fn.captures = lam->second.captures;
                    fn.params = lam->second.params;
                    blk.kind = BlockKind::kLambda;
                    blk.decl = push_function(std::move(fn));
                    decl_stack.push_back(blk.decl);
                } else {
                    const std::string stmt =
                        t.substr(stmt_begin, i - stmt_begin);
                    const std::size_t pn = prev_non_ws(t, i);
                    const char pc =
                        pn == std::string::npos ? '\0' : t[pn];
                    const std::string ptok =
                        (pn != std::string::npos && is_id(pc))
                            ? token_ending_at(t, pn)
                            : std::string();
                    const std::string first = first_token(stmt);
                    std::size_t name_pos = 0;
                    std::size_t paren_pos = 0;
                    const std::string name =
                        control_keywords().count(first) != 0
                            ? std::string()
                            : header_name(stmt, &name_pos, &paren_pos);
                    if (pc == '=' || pc == ',' || pc == '(' ||
                        pc == '[' || ptok == "return") {
                        blk.kind = BlockKind::kInit;
                    } else if (control_keywords().count(first) != 0) {
                        blk.kind = BlockKind::kControl;
                    } else if (!name.empty() &&
                               !top_level_eq_before(stmt, name_pos)) {
                        // A `{` directly after an identifier that is
                        // not a trailing specifier, with a ctor
                        // init-list colon in between, is a member's
                        // brace initializer, not the body.
                        const std::size_t close =
                            match_forward(t, stmt_begin + paren_pos);
                        const std::size_t after_params =
                            close == std::string::npos
                                ? paren_pos
                                : close - stmt_begin;
                        if (!ptok.empty() &&
                            specifier_tail_tokens().count(ptok) == 0 &&
                            has_top_level_colon(stmt, after_params)) {
                            blk.kind = BlockKind::kInit;
                            blk.keeps_statement = true;
                        } else {
                            FunctionDecl fn;
                            fn.name = name;
                            fn.file = fi;
                            statement_lines(stmt, stmt_begin, fn,
                                            name_pos);
                            fn.header_end = line_at(i);
                            fn.body_begin = line_at(i);
                            fn.body_begin_col = col_at(i);
                            if (close != std::string::npos &&
                                close < i) {
                                parse_params(
                                    t.substr(stmt_begin + paren_pos + 1,
                                             close - stmt_begin -
                                                 paren_pos - 1),
                                    fn.params);
                            }
                            blk.kind = BlockKind::kFunction;
                            blk.decl = push_function(std::move(fn));
                            decl_stack.push_back(blk.decl);
                        }
                    } else if (contains_token(stmt, "namespace") ||
                               contains_token(stmt, "extern")) {
                        blk.kind = BlockKind::kNamespace;
                    } else if (contains_token(stmt, "class") ||
                               contains_token(stmt, "struct") ||
                               contains_token(stmt, "union") ||
                               contains_token(stmt, "enum")) {
                        blk.kind = BlockKind::kType;
                    } else if (contains_token(stmt, "operator")) {
                        FunctionDecl fn;
                        fn.name = "operator";
                        fn.file = fi;
                        statement_lines(stmt, stmt_begin, fn, 0);
                        fn.header_end = line_at(i);
                        fn.body_begin = line_at(i);
                        fn.body_begin_col = col_at(i);
                        blk.kind = BlockKind::kFunction;
                        blk.decl = push_function(std::move(fn));
                        decl_stack.push_back(blk.decl);
                    } else {
                        blk.kind = BlockKind::kControl;
                    }
                }
                stack.push_back(blk);
                paren_depth = 0;
                if (!stack.back().keeps_statement) stmt_begin = i + 1;
                continue;
            }
            if (c == '}') {
                if (!stack.empty()) {
                    const Block blk = stack.back();
                    stack.pop_back();
                    paren_depth = blk.saved_paren_depth;
                    if (blk.decl != FunctionDecl::npos) {
                        model.funcs_[blk.decl].body_end = line_at(i);
                        model.funcs_[blk.decl].body_end_col = col_at(i);
                        if (!decl_stack.empty()) decl_stack.pop_back();
                    }
                    if (blk.keeps_statement) continue;
                }
                stmt_begin = i + 1;
                continue;
            }
        }

        // -- annotations: trailing comments on header lines, plus the
        // standalone comment block directly above the header.
        for (const std::size_t idx : model.by_file_[fi]) {
            FunctionDecl& fn = model.funcs_[idx];
            for (std::size_t l = fn.header_begin;
                 l != 0 && l <= fn.header_end; ++l) {
                for (Annotation& a :
                     annotations_in_comment(file.comment(l), l))
                    fn.annotations.push_back(std::move(a));
            }
            for (std::size_t l = fn.header_begin;
                 l > 1 && code_blank(file.code(l - 1)) &&
                 !file.comment(l - 1).empty();
                 --l) {
                for (Annotation& a :
                     annotations_in_comment(file.comment(l - 1), l - 1))
                    fn.annotations.push_back(std::move(a));
            }
        }

        // -- guarded members: every guarded_by annotation whose target
        // line is not a function header annotates a member/variable.
        for (std::size_t l = 1; l <= file.line_count(); ++l) {
            for (const Annotation& a :
                 annotations_in_comment(file.comment(l), l)) {
                if (a.kind != AnnotationKind::kGuardedBy) continue;
                std::size_t target = l;
                if (code_blank(file.code(l))) {
                    target = 0;
                    const std::size_t cap =
                        std::min(file.line_count(), l + 4);
                    for (std::size_t n = l + 1; n <= cap; ++n) {
                        if (code_blank(file.code(n))) continue;
                        target = n;
                        break;
                    }
                    if (target == 0) continue;
                }
                bool is_function = false;
                for (const std::size_t idx : model.by_file_[fi]) {
                    const FunctionDecl& fn = model.funcs_[idx];
                    if (fn.is_lambda) continue;
                    if (fn.header_begin <= target &&
                        target <= fn.header_end) {
                        is_function = true;
                        break;
                    }
                }
                if (is_function) continue;
                const std::string member =
                    declared_member_name(file.code(target));
                if (member.empty()) continue;
                model.guarded_.push_back({fi, target, member, a.arg});
            }
        }
    }

    for (std::size_t i = 0; i < model.funcs_.size(); ++i)
        model.by_name_[model.funcs_[i].name].push_back(i);
    return model;
}

const std::vector<std::size_t>& DeclModel::functions_in(
    std::size_t file) const {
    static const std::vector<std::size_t> kEmpty;
    return file < by_file_.size() ? by_file_[file] : kEmpty;
}

const std::vector<std::size_t>& DeclModel::functions_named(
    const std::string& name) const {
    static const std::vector<std::size_t> kEmpty;
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? kEmpty : it->second;
}

std::vector<std::size_t> DeclModel::own_body_lines(std::size_t fn) const {
    const FunctionDecl& f = funcs_[fn];
    if (f.body_begin == 0) return {};
    std::set<std::size_t> excluded;
    for (const std::size_t c : f.children) {
        const FunctionDecl& child = funcs_[c];
        const std::size_t from =
            child.header_begin == 0 ? child.body_begin : child.header_begin;
        const std::size_t to =
            child.body_end == 0 ? child.header_end : child.body_end;
        for (std::size_t l = from; l != 0 && l <= to; ++l)
            excluded.insert(l);
    }
    std::vector<std::size_t> out;
    for (std::size_t l = f.body_begin; l <= f.body_end; ++l)
        if (excluded.count(l) == 0) out.push_back(l);
    return out;
}

std::vector<std::size_t> DeclModel::callees(
    const std::vector<SourceFile>& files, std::size_t fn) const {
    static const std::regex kCall(R"(([A-Za-z_]\w*)\s*\()");
    const SourceFile& file = files[funcs_[fn].file];
    std::set<std::size_t> out;
    for (const std::size_t l : own_body_lines(fn)) {
        const std::string& code = file.code(l);
        for (auto it = std::sregex_iterator(code.begin(), code.end(), kCall);
             it != std::sregex_iterator(); ++it) {
            const auto hit = by_name_.find((*it)[1].str());
            if (hit == by_name_.end()) continue;
            for (const std::size_t callee : hit->second) out.insert(callee);
        }
    }
    return {out.begin(), out.end()};
}

bool DeclModel::reaches_token(const std::vector<SourceFile>& files,
                              std::size_t fn,
                              const std::vector<std::string>& tokens) const {
    std::set<std::size_t> visited;
    std::vector<std::size_t> queue = {fn};
    while (!queue.empty()) {
        const std::size_t cur = queue.back();
        queue.pop_back();
        if (!visited.insert(cur).second) continue;
        const SourceFile& file = files[funcs_[cur].file];
        for (const std::size_t l : own_body_lines(cur)) {
            const std::string& code = file.code(l);
            for (const std::string& tok : tokens)
                if (contains_token(code, tok)) return true;
        }
        for (const std::size_t callee : callees(files, cur))
            if (visited.count(callee) == 0) queue.push_back(callee);
    }
    return false;
}

}  // namespace ksa::lint
