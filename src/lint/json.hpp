#pragma once
// lint::json -- a minimal JSON value model, parser and serializer.
//
// Exists so the analyzer can (a) emit SARIF 2.1.0 and the machine
// readable --list-rules output, (b) read/write the lint_baseline.json
// ratchet, and (c) let tests validate the emitted SARIF structurally --
// all without adding a dependency the container may not have.  It
// implements the JSON grammar (RFC 8259) with the one liberty that
// numbers are held as doubles (every number this tool round-trips is a
// small integer; integral values serialize without a decimal point).
//
// Ordering: objects keep keys in std::map order, so serialization is
// deterministic -- the same findings always produce byte-identical
// SARIF/baseline files, which keeps CI artifact diffs meaningful.

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ksa::lint::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Value() : type_(Type::kNull) {}
    Value(bool b) : type_(Type::kBool), bool_(b) {}
    Value(double d) : type_(Type::kNumber), num_(d) {}
    Value(int i) : type_(Type::kNumber), num_(i) {}
    Value(std::size_t n) : type_(Type::kNumber),
                           num_(static_cast<double>(n)) {}
    Value(const char* s) : type_(Type::kString), str_(s) {}
    Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
    Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
    Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::kNull; }
    bool is_bool() const { return type_ == Type::kBool; }
    bool is_number() const { return type_ == Type::kNumber; }
    bool is_string() const { return type_ == Type::kString; }
    bool is_array() const { return type_ == Type::kArray; }
    bool is_object() const { return type_ == Type::kObject; }

    bool as_bool() const { return bool_; }
    double as_number() const { return num_; }
    const std::string& as_string() const { return str_; }
    const Array& as_array() const { return arr_; }
    const Object& as_object() const { return obj_; }
    Array& as_array() { return arr_; }
    Object& as_object() { return obj_; }

    /// Object member lookup; nullptr when absent or not an object.
    const Value* find(const std::string& key) const {
        if (type_ != Type::kObject) return nullptr;
        const auto it = obj_.find(key);
        return it == obj_.end() ? nullptr : &it->second;
    }

private:
    Type type_;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    Array arr_;
    Object obj_;
};

/// Parses `text`; on failure returns std::nullopt and, when `error` is
/// non-null, a one-line description with the byte offset.
std::optional<Value> parse(const std::string& text,
                           std::string* error = nullptr);

/// Serializes with 2-space indentation and a trailing newline.
std::string serialize(const Value& v);

/// JSON string escaping (quotes not included).
std::string escape(const std::string& s);

}  // namespace ksa::lint::json
