#pragma once
// lint::lex -- a comment/string/raw-string aware line lexer for the
// project analyzers (tools/ksa_lint, tools/ksa_analyze).
//
// The original ksa_lint matched its rule regexes against raw source
// lines, so a pattern could fire inside a string literal or a trailing
// comment, and a suppression tag inside a /* block comment */ was
// honored as if it were real.  This lexer classifies every character of
// a translation unit exactly once, producing per line:
//
//   * `code`    -- the raw line with comments and the BODIES of
//                  string/char literals blanked to spaces (the quotes
//                  and prefixes survive, so columns line up with `raw`).
//                  Rules match against this, and only this.
//   * `line_comment` -- the text of a trailing or standalone `//`
//                  comment.  Suppression tags (`ksa-lint: allow(...)`)
//                  are parsed from here ONLY: a tag inside a block
//                  comment or a string literal is inert by design.
//
// Handled: `//` and `/* ... */` comments (multi-line), "..." strings
// with escapes, '...' char literals, digit separators (1'000'000), and
// R"delim( ... )delim" raw strings spanning any number of lines.
// Not handled (irrelevant at this tool's precision): trigraphs,
// backslash-newline splices inside tokens.

#include <string>
#include <vector>

namespace ksa::lint {

struct LexedLine {
    std::string raw;           ///< the line as read (no trailing newline)
    std::string code;          ///< comments + literal bodies blanked
    std::string line_comment;  ///< text after `//` (empty if none)
    /// True when the line STARTS inside a /* block comment or a raw
    /// string literal that opened on an earlier line.
    bool continues_multiline = false;
};

struct LexedFile {
    std::vector<LexedLine> lines;
};

/// Lexes a whole translation unit.  Never fails: unterminated literals
/// or comments simply classify the rest of the file.
LexedFile lex(const std::string& text);

/// True when `text` contains `word` as a whole identifier token (not as
/// a substring of a longer identifier).
bool contains_token(const std::string& text, const std::string& word);

}  // namespace ksa::lint
