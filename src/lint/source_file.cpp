#include "lint/source_file.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ksa::lint {

namespace {

const std::string kEmpty;

bool blank(const std::string& s) {
    return s.find_first_not_of(" \t") == std::string::npos;
}

/// Splits "rule-a, rule-b" into trimmed rule names.
std::vector<std::string> split_rules(const std::string& list) {
    std::vector<std::string> out;
    std::string cur;
    for (char c : list) {
        if (c == ',') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    for (std::string& r : out) {
        const std::size_t a = r.find_first_not_of(" \t");
        const std::size_t b = r.find_last_not_of(" \t");
        r = a == std::string::npos ? std::string() : r.substr(a, b - a + 1);
    }
    out.erase(std::remove_if(out.begin(), out.end(),
                             [](const std::string& r) { return r.empty(); }),
              out.end());
    return out;
}

/// All `ksa-lint: allow(...)` rule lists inside one line-comment text.
std::vector<std::string> rules_in_comment(const std::string& comment) {
    static const std::string kTag = "ksa-lint: allow(";
    std::vector<std::string> rules;
    for (std::size_t pos = comment.find(kTag); pos != std::string::npos;
         pos = comment.find(kTag, pos + 1)) {
        const std::size_t open = pos + kTag.size();
        const std::size_t close = comment.find(')', open);
        if (close == std::string::npos) continue;
        for (std::string& r : split_rules(comment.substr(open, close - open)))
            rules.push_back(std::move(r));
    }
    return rules;
}

/// Statement-terminator heuristic shared with the missing-override
/// logic: a C++ statement/declaration ends at `;`, `{` or `}`.
bool terminates_statement(const std::string& code) {
    return code.find(';') != std::string::npos ||
           code.find('{') != std::string::npos ||
           code.find('}') != std::string::npos;
}

}  // namespace

SourceFile SourceFile::load(const std::filesystem::path& disk_path,
                            std::string report_path) {
    std::ifstream in(disk_path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + disk_path.string());
    std::ostringstream buf;
    buf << in.rdbuf();
    return from_string(std::move(report_path), buf.str());
}

SourceFile SourceFile::from_string(std::string report_path,
                                   const std::string& text) {
    SourceFile f;
    f.path_ = std::move(report_path);
    f.index(text);
    return f;
}

void SourceFile::index(const std::string& text) {
    lexed_ = lex(text);
    const std::size_t n = lexed_.lines.size();

    for (std::size_t i = 0; i < n; ++i) {
        const LexedLine& ln = lexed_.lines[i];

        // -- include directives.  The pathname is a string literal (or
        // an angled token), so it is read from the RAW line; but the
        // directive itself must be real code -- `#include` spelled
        // inside a comment or a raw string has blank `code` here.
        const std::size_t hash = ln.code.find_first_not_of(" \t");
        if (hash != std::string::npos && ln.code[hash] == '#') {
            std::size_t p = hash + 1;
            while (p < ln.code.size() &&
                   (ln.code[p] == ' ' || ln.code[p] == '\t'))
                ++p;
            if (ln.code.compare(p, 7, "include") == 0) {
                p += 7;
                while (p < ln.raw.size() &&
                       (ln.raw[p] == ' ' || ln.raw[p] == '\t'))
                    ++p;
                if (p < ln.raw.size()) {
                    const char open = ln.raw[p];
                    const char close = open == '<' ? '>' : '"';
                    if (open == '<' || open == '"') {
                        const std::size_t end = ln.raw.find(close, p + 1);
                        if (end != std::string::npos && end > p + 1) {
                            includes_.push_back(
                                {ln.raw.substr(p + 1, end - p - 1),
                                 open == '<', i + 1});
                        }
                    }
                }
            }
        }

        // -- suppression tags (line comments only; see header).
        if (ln.line_comment.empty()) continue;
        const std::vector<std::string> rules =
            rules_in_comment(ln.line_comment);
        if (rules.empty()) continue;

        std::vector<std::size_t> covered;
        const std::size_t line_no = i + 1;
        covered.push_back(line_no);
        if (blank(ln.code)) {
            // Standalone comment line: cover the whole next statement.
            std::size_t s = i + 1;  // 0-based index of the next line
            while (s < n && s <= i + 3 && blank(lexed_.lines[s].code)) ++s;
            const std::size_t cap = std::min(n, s + 12);
            for (std::size_t j = s; j < cap; ++j) {
                covered.push_back(j + 1);
                if (terminates_statement(lexed_.lines[j].code)) break;
            }
        } else {
            // Trailing tag: this line and the next (the original
            // ksa_lint contract).
            if (line_no < n) covered.push_back(line_no + 1);
        }
        for (const std::string& rule : rules)
            for (std::size_t c : covered) suppressions_[rule].insert(c);
    }
}

const std::string& SourceFile::code(std::size_t line) const {
    if (line == 0 || line > lexed_.lines.size()) return kEmpty;
    return lexed_.lines[line - 1].code;
}

const std::string& SourceFile::raw(std::size_t line) const {
    if (line == 0 || line > lexed_.lines.size()) return kEmpty;
    return lexed_.lines[line - 1].raw;
}

const std::string& SourceFile::comment(std::size_t line) const {
    if (line == 0 || line > lexed_.lines.size()) return kEmpty;
    return lexed_.lines[line - 1].line_comment;
}

bool SourceFile::suppressed(std::size_t line, const std::string& rule) const {
    const auto it = suppressions_.find(rule);
    return it != suppressions_.end() && it->second.count(line) != 0;
}

bool SourceFile::mentions_token(const std::string& word) const {
    for (const LexedLine& ln : lexed_.lines)
        if (contains_token(ln.code, word)) return true;
    return false;
}

bool SourceFile::includes_path(const std::string& inc) const {
    for (const IncludeDirective& d : includes_)
        if (d.path == inc) return true;
    return false;
}

}  // namespace ksa::lint
