#pragma once
// lint rule framework: the table of model-conformance rules shared by
// tools/ksa_lint (the classic line-local scanner) and tools/ksa_analyze
// (the whole-program analyzer).
//
// Two kinds of rule live here:
//
//   * kLine rules match one lexed code line at a time (lexer.hpp blanks
//     comments and literal bodies first, so patterns no longer fire
//     inside strings or comments);
//   * kWholeProgram rules need cross-file facts -- the include graph
//     (layering, include-cycle) or include reachability (float-in-
//     digest) -- and are executed by the analyzer (analyzer.hpp), not
//     by run_line_rules().
//
// Every rule has a stable name (the suppression key), a severity, and a
// one-line rationale; doc/analysis.md carries the same table and
// tests/test_lint.cpp fails when the two drift apart.

#include <cstddef>
#include <string>
#include <vector>

#include "lint/source_file.hpp"

namespace ksa::lint {

enum class Severity { kError, kWarning, kNote };

std::string to_string(Severity s);

enum class RuleKind { kLine, kWholeProgram };

struct Finding {
    std::string file;
    std::size_t line = 0;
    std::size_t column = 0;  ///< 1-based; 0 = unknown
    std::string rule;
    Severity severity = Severity::kError;
    std::string message;
};

struct RuleInfo {
    std::string name;
    RuleKind kind = RuleKind::kLine;
    Severity severity = Severity::kError;
    /// Human-readable scope ("src/sim, src/core, src/chaos", ...).
    std::string scope;
    /// The message attached to findings (also the table rationale).
    std::string message;
    /// Part of the classic ksa_lint rule set (pre-analyzer).  ksa_lint
    /// runs exactly these; ksa_analyze runs everything.
    bool legacy = false;
};

/// The full rule table, in stable order: the six classic ksa_lint rules
/// first, then the analyzer's additions.
const std::vector<RuleInfo>& all_rules();

/// Machine-readable rule table (--list-rules --json): a JSON array of
/// {name, kind, severity, scope, summary, legacy}.
std::string rules_json();

/// Runs every LINE rule applicable to `file` and returns the
/// unsuppressed findings in line order.  `legacy_only` restricts to the
/// classic ksa_lint set (behavior-identical to the original tool).
std::vector<Finding> run_line_rules(const SourceFile& file, bool legacy_only);

/// Whether `rule` applies to `path` at all (exposed for tests).
bool rule_applies(const std::string& rule, const std::string& path);

}  // namespace ksa::lint
