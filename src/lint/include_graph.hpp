#pragma once
// lint::IncludeGraph -- the whole-program include graph over a scanned
// file set.
//
// Nodes are the scanned SourceFiles (report paths, '/'-separated and
// root-relative under ksa_analyze).  Edges are QUOTED include
// directives resolved the way the build resolves them:
//
//   1. `<root>/src/<path>`  (every target compiles with -I src),
//   2. `<root>/<path>`,
//   3. `<dir of including file>/<path>`  (bench_util.hpp style).
//
// Angled includes and quoted includes that resolve to nothing in the
// scanned set (system headers, generated files) carry no edge.  The
// graph powers three whole-program passes: include-cycle detection
// (Tarjan SCC), layer-DAG enforcement (layers.hpp) and digest
// reachability for the float-in-digest rule.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint/source_file.hpp"

namespace ksa::lint {

struct IncludeEdge {
    std::size_t from = 0;  ///< node (file) index
    std::size_t to = 0;    ///< node (file) index
    std::size_t line = 0;  ///< 1-based line of the directive in `from`
    std::string written;   ///< the path as written in the directive
};

class IncludeGraph {
public:
    /// Builds the graph.  `files` must outlive the graph.
    static IncludeGraph build(const std::vector<SourceFile>& files);

    std::size_t node_count() const { return files_->size(); }
    const SourceFile& file(std::size_t idx) const { return (*files_)[idx]; }
    const std::vector<IncludeEdge>& edges() const { return edges_; }

    /// Strongly connected components with >= 2 nodes, plus self-loops:
    /// exactly the include cycles.  Each cycle lists its node indices
    /// in a deterministic order (smallest report path first).
    std::vector<std::vector<std::size_t>> cycles() const;

    /// True when `from` includes, directly or transitively, a scanned
    /// file whose report path ends with `suffix` (e.g.
    /// "sim/digest.hpp").
    bool reaches_suffix(std::size_t from, const std::string& suffix) const;

private:
    const std::vector<SourceFile>* files_ = nullptr;
    std::vector<IncludeEdge> edges_;
    std::vector<std::vector<std::size_t>> adjacency_;
};

/// Normalizes a report path: '\' -> '/', resolves "." and ".."
/// segments lexically.
std::string normalize_path(const std::string& path);

}  // namespace ksa::lint
