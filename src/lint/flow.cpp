#include "lint/flow.hpp"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>
#include <tuple>

namespace ksa::lint {

namespace {

const RuleInfo& rule_info(const char* name) {
    for (const RuleInfo& r : all_rules())
        if (r.name == name) return r;
    static const RuleInfo kUnknown{"unknown", RuleKind::kWholeProgram,
                                   Severity::kError, "", "", false};
    return kUnknown;
}

/// A piece of a function body on one line: `text` is the code between
/// the braces (boundary lines are trimmed at the brace columns), and
/// `offset` is the 0-based column where `text` starts in the full line.
struct BodySegment {
    std::size_t line = 0;
    std::size_t offset = 0;
    std::string text;
};

/// The body of `fn`, line by line, trimmed to the `{...}` extent.
/// `own_only` drops lines covered by nested lambdas/local functions.
std::vector<BodySegment> body_segments(const SourceFile& file,
                                       const DeclModel& decls,
                                       std::size_t fn, bool own_only) {
    const FunctionDecl& f = decls.functions()[fn];
    if (f.body_begin == 0) return {};
    std::set<std::size_t> keep;
    if (own_only) {
        for (const std::size_t l : decls.own_body_lines(fn)) keep.insert(l);
    } else {
        for (std::size_t l = f.body_begin; l <= f.body_end; ++l)
            keep.insert(l);
    }
    std::vector<BodySegment> out;
    for (const std::size_t l : keep) {
        const std::string& code = file.code(l);
        std::size_t from = 0;
        std::size_t to = code.size();
        if (l == f.body_begin && f.body_begin_col > 0)
            from = std::min(code.size(), f.body_begin_col);  // past the `{`
        if (l == f.body_end && f.body_end_col > 0)
            to = std::min(code.size(), f.body_end_col - 1);  // before `}`
        if (from >= to) continue;
        out.push_back({l, from, code.substr(from, to - from)});
    }
    return out;
}

/// Scans forward from the `(` at (line, col: 0-based) and returns the
/// line of the matching `)`.  Code lines only, so comment parens are
/// already blank.
std::size_t paren_close_line(const SourceFile& file, std::size_t line,
                             std::size_t col) {
    int depth = 0;
    const std::size_t cap = std::min(file.line_count(), line + 400);
    for (std::size_t l = line; l <= cap; ++l) {
        const std::string& code = file.code(l);
        for (std::size_t k = (l == line ? col : 0); k < code.size(); ++k) {
            if (code[k] == '(') ++depth;
            if (code[k] == ')' && --depth == 0) return l;
        }
    }
    return line;
}

bool lock_vocabulary(const std::string& code) {
    static const std::regex kLock(
        R"(lock_guard|unique_lock|scoped_lock|shared_lock|\.lock\s*\(|\.try_lock)");
    return std::regex_search(code, kLock);
}

/// True when some body line of `fn` names `mutex` together with lock
/// vocabulary -- the evidence lock-discipline accepts.
bool body_locks(const SourceFile& file, const DeclModel& decls,
                std::size_t fn, const std::string& mutex) {
    for (const BodySegment& seg :
         body_segments(file, decls, fn, /*own_only=*/false)) {
        if (contains_token(seg.text, mutex) && lock_vocabulary(seg.text))
            return true;
    }
    return false;
}

// ----- parallel-capture-mutation ------------------------------------

/// Local names declared inside a lambda body: `Type name =`/`;`/`{`,
/// `auto& name :` (range-for), structured bindings.  Over-approximate
/// on purpose -- a name wrongly taken for a local only silences a
/// finding, it never invents one.
std::set<std::string> local_names(const std::vector<BodySegment>& body) {
    static const std::regex kDecl(
        R"(([A-Za-z_][\w:]*(?:<[^;]*>)?[&*\s]+)([A-Za-z_]\w*)\s*(=(?!=)|;|\{|\(|:(?!:)))");
    static const std::regex kBinding(R"(auto\s*&?\s*\[([^\]]*)\])");
    static const std::set<std::string> kNotTypes = {
        "return",   "co_return", "co_yield", "co_await", "delete",
        "throw",    "case",      "goto",     "new",      "break",
        "continue", "typedef",   "using",    "else",     "operator"};
    std::set<std::string> out;
    for (const BodySegment& seg : body) {
        for (auto it = std::sregex_iterator(seg.text.begin(),
                                            seg.text.end(), kDecl);
             it != std::sregex_iterator(); ++it) {
            std::string head = (*it)[1].str();
            const std::size_t sp = head.find_first_of(" \t&*<:");
            if (sp != std::string::npos) head.resize(sp);
            if (kNotTypes.count(head) != 0) continue;
            out.insert((*it)[2].str());
        }
        for (auto it = std::sregex_iterator(seg.text.begin(),
                                            seg.text.end(), kBinding);
             it != std::sregex_iterator(); ++it) {
            std::string names = (*it)[1].str();
            std::string cur;
            for (char ch : names + ",") {
                if (ch == ',') {
                    std::size_t a = cur.find_first_not_of(" \t&");
                    std::size_t b = cur.find_last_not_of(" \t");
                    if (a != std::string::npos)
                        out.insert(cur.substr(a, b - a + 1));
                    cur.clear();
                } else {
                    cur += ch;
                }
            }
        }
    }
    return out;
}

/// True when `name` is declared std::atomic somewhere in the file.
bool declared_atomic(const SourceFile& file, const std::string& name) {
    for (std::size_t l = 1; l <= file.line_count(); ++l) {
        const std::string& code = file.code(l);
        if (code.find("atomic") == std::string::npos) continue;
        if (contains_token(code, name)) return true;
    }
    return false;
}

struct Mutation {
    std::size_t line = 0;
    std::size_t column = 0;  ///< 1-based
    std::string name;        ///< base identifier being written
    std::string chain;       ///< member/subscript chain, "" when none
};

std::vector<Mutation> find_mutations(const std::vector<BodySegment>& body) {
    // base identifier + optional member/subscript chain + a write:
    // assignment (not ==), compound assignment, ++/--, or a mutating
    // container/atomic method call.
    static const std::regex kWrite(
        R"(([A-Za-z_]\w*)((?:\s*(?:\.\w+|->\w+|\[[^\][]*\]))*)\s*(=(?![=])|\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<=|>>=|\+\+|--|\.(?:push_back|emplace_back|pop_back|insert|emplace|erase|clear|resize|reserve|assign|store|fetch_add|fetch_sub|fetch_or|fetch_and|fetch_xor|exchange)\s*\())");
    static const std::regex kPrefix(R"((\+\+|--)\s*([A-Za-z_]\w*))");
    static const std::set<std::string> kNotWrites = {
        // `x == y`-adjacent false friends the regex cannot see past:
        // keywords that can precede `=` in declarations it misreads.
        "if", "while", "for", "return", "auto", "const", "int", "bool",
        "char", "long", "unsigned", "signed", "float", "double", "else",
        "case", "default", "operator"};
    std::vector<Mutation> out;
    for (const BodySegment& seg : body) {
        for (auto it = std::sregex_iterator(seg.text.begin(),
                                            seg.text.end(), kWrite);
             it != std::sregex_iterator(); ++it) {
            const std::string name = (*it)[1].str();
            if (kNotWrites.count(name) != 0) continue;
            // `a = b` where `a` is freshly declared on the same match
            // is handled by the locals pass; `<=`/`>=` comparisons:
            const std::size_t pos =
                static_cast<std::size_t>(it->position(3));
            if (seg.text[pos] == '=' && pos > 0 &&
                (seg.text[pos - 1] == '<' || seg.text[pos - 1] == '>' ||
                 seg.text[pos - 1] == '!'))
                continue;
            out.push_back({seg.line,
                           seg.offset +
                               static_cast<std::size_t>(it->position(1)) + 1,
                           name, (*it)[2].str()});
        }
        for (auto it = std::sregex_iterator(seg.text.begin(),
                                            seg.text.end(), kPrefix);
             it != std::sregex_iterator(); ++it) {
            out.push_back({seg.line,
                           seg.offset +
                               static_cast<std::size_t>(it->position(2)) + 1,
                           (*it)[2].str(), ""});
        }
    }
    return out;
}

}  // namespace

std::vector<Finding> check_parallel_capture_mutation(
    const std::vector<SourceFile>& files, const DeclModel& decls) {
    static const std::regex kEntry(
        R"(\b(parallel_map_deterministic|parallel_map_grained|run_indexed|run_chunked|submit)\s*\()");
    const RuleInfo& rule = rule_info("parallel-capture-mutation");
    const std::vector<FunctionDecl>& funcs = decls.functions();
    std::vector<Finding> findings;
    std::set<std::tuple<std::string, std::size_t, std::size_t>> seen;

    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        const SourceFile& file = files[fi];
        for (std::size_t l = 1; l <= file.line_count(); ++l) {
            const std::string& code = file.code(l);
            std::smatch m;
            std::string tail = code;
            std::size_t base = 0;
            while (std::regex_search(tail, m, kEntry)) {
                const std::size_t open =
                    base + static_cast<std::size_t>(m.position(0)) +
                    static_cast<std::size_t>(m.length(0)) - 1;
                const std::size_t end = paren_close_line(file, l, open);

                for (const std::size_t fn : decls.functions_in(fi)) {
                    const FunctionDecl& f = funcs[fn];
                    if (!f.is_lambda) continue;
                    if (f.line < l || f.line > end) continue;
                    // Only the lambdas handed to THIS call: skip ones
                    // nested inside another lambda of the same call.
                    if (f.parent != FunctionDecl::npos) {
                        const FunctionDecl& p = funcs[f.parent];
                        if (p.is_lambda && p.line >= l && p.line <= end)
                            continue;
                    }
                    if (f.default_capture != '&' &&
                        std::none_of(f.captures.begin(), f.captures.end(),
                                     [](const Capture& c) {
                                         return c.by_ref;
                                     }))
                        continue;  // copies only: cannot race

                    const std::vector<BodySegment> body = body_segments(
                        file, decls, fn, /*own_only=*/true);
                    bool locked = false;
                    for (const BodySegment& seg : body)
                        if (lock_vocabulary(seg.text)) locked = true;
                    if (locked) continue;

                    const std::set<std::string> locals = local_names(body);
                    const std::set<std::string> params(f.params.begin(),
                                                       f.params.end());
                    std::set<std::string> by_ref;
                    std::set<std::string> by_value;
                    for (const Capture& c : f.captures)
                        (c.by_ref && !c.init ? by_ref : by_value)
                            .insert(c.name);

                    for (const Mutation& mut : find_mutations(body)) {
                        if (params.count(mut.name) != 0) continue;
                        if (locals.count(mut.name) != 0) continue;
                        if (by_value.count(mut.name) != 0) continue;
                        const bool captured_by_ref =
                            by_ref.count(mut.name) != 0 ||
                            (f.default_capture == '&' &&
                             mut.name != "this");
                        if (!captured_by_ref) continue;
                        // Per-index slot: out[i] = ... with i a param.
                        bool per_index = false;
                        for (const std::string& p : f.params)
                            if (contains_token(mut.chain, p))
                                per_index = true;
                        if (per_index) continue;
                        if (declared_atomic(file, mut.name)) continue;
                        if (file.suppressed(mut.line, rule.name)) continue;
                        if (!seen.insert({file.path(), mut.line,
                                          mut.column})
                                 .second)
                            continue;
                        findings.push_back({file.path(), mut.line,
                                            mut.column, rule.name,
                                            rule.severity, rule.message});
                    }
                }
                base += static_cast<std::size_t>(m.position(0)) +
                        static_cast<std::size_t>(m.length(0));
                tail = m.suffix().str();
            }
        }
    }
    return findings;
}

// ----- nondet-iteration-reaches-output ------------------------------

namespace {

const std::vector<std::string>& sink_tokens() {
    // The digest fold vocabulary (sim/digest.hpp), JSON emission, and
    // KSARUN trace writing: anything whose bytes depend on visit order.
    static const std::vector<std::string> kSinks = {
        "fold",       "fold_state", "fold_bytes",    "fold_mark",
        "StateHasher", "Digest128", "state_digest",  "serialize",
        "to_json",    "run_to_string", "KSARUN",     "write_trace",
        "trace_line"};
    return kSinks;
}

/// Last line of the loop body that starts after the for(...) closing
/// paren: a braced body's extent, or the single statement's last line.
std::size_t loop_body_end(const SourceFile& file, std::size_t for_line,
                          std::size_t paren_col) {
    const std::size_t close = paren_close_line(file, for_line, paren_col);
    // Find the first `{` or `;` after the `)`.
    int depth = 0;
    bool counting = false;
    const std::size_t cap = std::min(file.line_count(), close + 200);
    for (std::size_t l = close; l <= cap; ++l) {
        const std::string& code = file.code(l);
        for (std::size_t k = 0; k < code.size(); ++k) {
            const char c = code[k];
            if (!counting) {
                if (c == '{') {
                    counting = true;
                    depth = 1;
                } else if (c == ';' && l > close) {
                    return l;  // single-statement body
                } else if (c == ';' && l == close) {
                    // `;` on the for line after the paren closes.
                    return l;
                }
                continue;
            }
            if (c == '{') ++depth;
            if (c == '}' && --depth == 0) return l;
        }
    }
    return close;
}

}  // namespace

std::vector<Finding> check_nondet_iteration(
    const std::vector<SourceFile>& files, const DeclModel& decls) {
    static const std::regex kUnorderedDecl(
        R"(std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s+([A-Za-z_]\w*))");
    static const std::regex kRangeFor(R"(\bfor\s*\()");
    static const std::regex kCall(R"(([A-Za-z_]\w*)\s*\()");
    const RuleInfo& rule = rule_info("nondet-iteration-reaches-output");
    std::vector<Finding> findings;

    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        const SourceFile& file = files[fi];

        std::set<std::string> unordered_vars;
        for (std::size_t l = 1; l <= file.line_count(); ++l) {
            const std::string& code = file.code(l);
            for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                                kUnorderedDecl);
                 it != std::sregex_iterator(); ++it)
                unordered_vars.insert((*it)[1].str());
        }

        for (std::size_t l = 1; l <= file.line_count(); ++l) {
            const std::string& code = file.code(l);
            std::smatch m;
            if (!std::regex_search(code, m, kRangeFor)) continue;
            const std::size_t open = static_cast<std::size_t>(
                m.position(0) + m.length(0) - 1);
            // The range expression: everything after the `:` inside the
            // for parens (joined over up to 3 lines for wrapped heads).
            std::string head = code.substr(open);
            for (std::size_t n = l + 1;
                 n <= std::min(file.line_count(), l + 2) &&
                 head.find(')') == std::string::npos;
                 ++n)
                head += " " + file.code(n);
            const std::size_t colon = head.find(" : ");
            if (colon == std::string::npos) continue;
            const std::string range_expr = head.substr(colon + 3);
            bool nondet = range_expr.find("unordered_") !=
                          std::string::npos;
            if (!nondet)
                for (const std::string& v : unordered_vars)
                    if (contains_token(range_expr, v)) nondet = true;
            if (!nondet) continue;

            const std::size_t body_end = loop_body_end(file, l, open);
            bool reaches = false;
            for (std::size_t bl = l; bl <= body_end && !reaches; ++bl) {
                const std::string& bcode = file.code(bl);
                for (const std::string& tok : sink_tokens())
                    if (contains_token(bcode, tok)) reaches = true;
                if (reaches) break;
                for (auto it = std::sregex_iterator(bcode.begin(),
                                                    bcode.end(), kCall);
                     it != std::sregex_iterator() && !reaches; ++it) {
                    for (const std::size_t callee :
                         decls.functions_named((*it)[1].str())) {
                        if (decls.reaches_token(files, callee,
                                                sink_tokens())) {
                            reaches = true;
                            break;
                        }
                    }
                }
            }
            if (!reaches) continue;
            if (file.suppressed(l, rule.name)) continue;
            findings.push_back({file.path(), l,
                                static_cast<std::size_t>(m.position(0)) + 1,
                                rule.name, rule.severity, rule.message});
        }
    }
    return findings;
}

// ----- lock-discipline ----------------------------------------------

namespace {

bool is_exec_header(const std::string& path) {
    static const std::regex kExecHeader(R"((^|/)src/exec/[^/]+\.(hpp|h)$)");
    return std::regex_search(path, kExecHeader);
}

}  // namespace

std::vector<Finding> check_lock_discipline(
    const std::vector<SourceFile>& files, const DeclModel& decls) {
    const RuleInfo& rule = rule_info("lock-discipline");
    const std::vector<FunctionDecl>& funcs = decls.functions();
    std::vector<Finding> findings;
    std::set<std::pair<std::string, std::size_t>> seen;

    const auto report = [&](const SourceFile& file, std::size_t line,
                            std::size_t column, const std::string& what) {
        if (file.suppressed(line, rule.name)) return;
        if (!seen.insert({file.path(), line}).second) return;
        findings.push_back({file.path(), line, column, rule.name,
                            rule.severity, rule.message + " (" + what + ")"});
    };

    // (a) guarded members: touched only under their mutex.
    for (const GuardedMember& g : decls.guarded_members()) {
        const SourceFile& file = files[g.file];
        for (const std::size_t fn : decls.functions_in(g.file)) {
            const FunctionDecl& f = funcs[fn];
            if (f.is_lambda || f.body_begin == 0) continue;
            if (!f.name.empty() && f.name[0] == '~') continue;
            if (f.has_annotation(AnnotationKind::kThreadSafe)) continue;
            std::size_t touch_line = 0;
            std::size_t touch_col = 0;
            for (const BodySegment& seg :
                 body_segments(file, decls, fn, /*own_only=*/true)) {
                if (seg.line == g.line) continue;
                if (!contains_token(seg.text, g.member)) continue;
                touch_line = seg.line;
                touch_col =
                    seg.offset + seg.text.find(g.member) + 1;
                break;
            }
            if (touch_line == 0) continue;
            if (body_locks(file, decls, fn, g.mutex)) continue;
            report(file, touch_line, touch_col,
                   "member `" + g.member + "` is guarded_by(" + g.mutex +
                       ") but `" + f.name + "` never locks it");
        }
    }

    // (b) a function-level guarded_by(mu) promise must be kept.
    for (std::size_t fn = 0; fn < funcs.size(); ++fn) {
        const FunctionDecl& f = funcs[fn];
        if (f.body_begin == 0) continue;
        const Annotation* ann =
            f.find_annotation(AnnotationKind::kGuardedBy);
        if (ann == nullptr) continue;
        const SourceFile& file = files[f.file];
        if (body_locks(file, decls, fn, ann->arg)) continue;
        report(file, f.line, 1,
               "`" + f.name + "` is annotated guarded_by(" + ann->arg +
                   ") but its body never locks it");
    }

    // (c) src/exec/ public header entry points carry an annotation.
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        const SourceFile& file = files[fi];
        if (!is_exec_header(file.path())) continue;
        for (const std::size_t fn : decls.functions_in(fi)) {
            const FunctionDecl& f = funcs[fn];
            if (f.is_lambda || f.deleted_or_defaulted) continue;
            if (!f.name.empty() && f.name[0] == '~') continue;
            if (!f.annotations.empty()) continue;
            report(file, f.line, 1,
                   "src/exec entry point `" + f.name +
                       "` has no ksa: thread_safe / guarded_by / "
                       "wait_free annotation");
        }
    }
    return findings;
}

// ----- blocking-in-task ---------------------------------------------

std::vector<Finding> check_blocking_in_task(
    const std::vector<SourceFile>& files, const DeclModel& decls) {
    static const std::regex kBlocking(
        R"(std::(?:lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable)|\.lock\s*\(|\.try_lock|\.wait\s*\(|std::(?:cout|cerr|clog|ifstream|ofstream|fstream|getline)|\b(?:printf|fprintf|fopen|fwrite|fread|malloc|calloc|realloc)\s*\(|\bnew\b|std::make_(?:unique|shared)|\.(?:push_back|emplace_back|resize|reserve)\s*\()");
    const RuleInfo& rule = rule_info("blocking-in-task");
    const std::vector<FunctionDecl>& funcs = decls.functions();
    std::vector<Finding> findings;

    for (std::size_t fn = 0; fn < funcs.size(); ++fn) {
        const FunctionDecl& f = funcs[fn];
        if (f.body_begin == 0) continue;
        if (!f.has_annotation(AnnotationKind::kWaitFree)) continue;
        const SourceFile& file = files[f.file];
        for (const BodySegment& seg :
             body_segments(file, decls, fn, /*own_only=*/false)) {
            for (auto it = std::sregex_iterator(seg.text.begin(),
                                                seg.text.end(), kBlocking);
                 it != std::sregex_iterator(); ++it) {
                const std::size_t line = seg.line;
                if (file.suppressed(line, rule.name)) continue;
                findings.push_back(
                    {file.path(), line,
                     seg.offset + static_cast<std::size_t>(it->position(0)) +
                         1,
                     rule.name, rule.severity, rule.message});
            }
        }
    }
    return findings;
}

std::vector<Finding> run_flow_passes(const std::vector<SourceFile>& files,
                                     const DeclModel& decls) {
    std::vector<Finding> findings;
    for (auto&& pass : {check_parallel_capture_mutation(files, decls),
                        check_nondet_iteration(files, decls),
                        check_lock_discipline(files, decls),
                        check_blocking_in_task(files, decls)}) {
        findings.insert(findings.end(), pass.begin(), pass.end());
    }
    return findings;
}

}  // namespace ksa::lint
