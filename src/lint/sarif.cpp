#include "lint/sarif.hpp"

#include <algorithm>
#include <map>

namespace ksa::lint {

namespace {

const char* level_for(Severity s) {
    switch (s) {
        case Severity::kError: return "error";
        case Severity::kWarning: return "warning";
        case Severity::kNote: return "note";
    }
    return "error";
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings,
                     const std::string& root_uri) {
    using json::Array;
    using json::Object;
    using json::Value;

    // Rule table + name -> index map (ruleIndex is a spec SHOULD that
    // GitHub code scanning treats as a de-facto MUST).
    Array rules;
    std::map<std::string, std::size_t> rule_index;
    for (const RuleInfo& r : all_rules()) {
        rule_index.emplace(r.name, rules.size());
        Object cfg;
        cfg.emplace("level", level_for(r.severity));
        Object shortDesc;
        shortDesc.emplace("text", r.scope);
        Object fullDesc;
        fullDesc.emplace("text", r.message);
        Object rule;
        rule.emplace("id", r.name);
        rule.emplace("shortDescription", std::move(shortDesc));
        rule.emplace("fullDescription", std::move(fullDesc));
        rule.emplace("defaultConfiguration", std::move(cfg));
        rules.emplace_back(std::move(rule));
    }

    Array results;
    for (const Finding& f : findings) {
        Object artifact;
        artifact.emplace("uri", f.file);
        if (!root_uri.empty()) artifact.emplace("uriBaseId", "SRCROOT");
        Object region;
        region.emplace("startLine", f.line == 0 ? std::size_t{1} : f.line);
        if (f.column > 0) region.emplace("startColumn", f.column);
        Object physical;
        physical.emplace("artifactLocation", std::move(artifact));
        physical.emplace("region", std::move(region));
        Object location;
        location.emplace("physicalLocation", std::move(physical));
        Object message;
        message.emplace("text", f.message);
        Object result;
        result.emplace("ruleId", f.rule);
        const auto it = rule_index.find(f.rule);
        if (it != rule_index.end())
            result.emplace("ruleIndex", it->second);
        result.emplace("level", level_for(f.severity));
        result.emplace("message", std::move(message));
        result.emplace("locations", Array{Value(std::move(location))});
        results.emplace_back(std::move(result));
    }

    Object driver;
    driver.emplace("name", "ksa_analyze");
    driver.emplace("informationUri",
                   "doc/analysis.md");
    driver.emplace("version", "1.0.0");
    driver.emplace("rules", std::move(rules));
    Object tool;
    tool.emplace("driver", std::move(driver));

    Object run;
    run.emplace("tool", std::move(tool));
    run.emplace("results", std::move(results));
    run.emplace("columnKind", "utf16CodeUnits");
    if (!root_uri.empty()) {
        Object base;
        base.emplace("uri", root_uri);
        Object bases;
        bases.emplace("SRCROOT", std::move(base));
        run.emplace("originalUriBaseIds", std::move(bases));
    }

    Object doc;
    doc.emplace("$schema",
                "https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/"
                "sarif-schema-2.1.0.json");
    doc.emplace("version", "2.1.0");
    doc.emplace("runs", Array{Value(std::move(run))});
    return json::serialize(Value(std::move(doc)));
}

std::vector<std::string> validate_sarif(const json::Value& doc) {
    std::vector<std::string> errors;
    auto need = [&errors](bool ok, const std::string& what) {
        if (!ok) errors.push_back(what);
        return ok;
    };

    if (!need(doc.is_object(), "document must be an object")) return errors;
    const json::Value* version = doc.find("version");
    need(version != nullptr && version->is_string() &&
             version->as_string() == "2.1.0",
         "version must be the string \"2.1.0\"");
    const json::Value* runs = doc.find("runs");
    if (!need(runs != nullptr && runs->is_array() && !runs->as_array().empty(),
              "runs must be a non-empty array"))
        return errors;

    static const char* kLevels[] = {"none", "note", "warning", "error"};
    for (const json::Value& run : runs->as_array()) {
        if (!need(run.is_object(), "run must be an object")) continue;
        const json::Value* tool = run.find("tool");
        const json::Value* driver =
            tool != nullptr ? tool->find("driver") : nullptr;
        const json::Value* name =
            driver != nullptr ? driver->find("name") : nullptr;
        need(name != nullptr && name->is_string() &&
                 !name->as_string().empty(),
             "run.tool.driver.name (required) missing or empty");

        std::vector<std::string> rule_ids;
        if (driver != nullptr) {
            if (const json::Value* rules = driver->find("rules");
                rules != nullptr && rules->is_array()) {
                for (const json::Value& rule : rules->as_array()) {
                    const json::Value* id = rule.find("id");
                    if (need(id != nullptr && id->is_string(),
                             "reportingDescriptor.id (required) missing"))
                        rule_ids.push_back(id->as_string());
                }
            }
        }

        const json::Value* results = run.find("results");
        if (!need(results != nullptr && results->is_array(),
                  "run.results must be an array"))
            continue;
        for (const json::Value& res : results->as_array()) {
            const json::Value* rule_id = res.find("ruleId");
            need(rule_id != nullptr && rule_id->is_string(),
                 "result.ruleId missing");
            const json::Value* message = res.find("message");
            const json::Value* text =
                message != nullptr ? message->find("text") : nullptr;
            need(text != nullptr && text->is_string(),
                 "result.message.text (required) missing");
            if (const json::Value* level = res.find("level")) {
                need(level->is_string() &&
                         std::find_if(std::begin(kLevels), std::end(kLevels),
                                      [&](const char* l) {
                                          return level->as_string() == l;
                                      }) != std::end(kLevels),
                     "result.level must be none|note|warning|error");
            }
            if (const json::Value* idx = res.find("ruleIndex")) {
                const bool ok =
                    idx->is_number() && rule_id != nullptr &&
                    rule_id->is_string() &&
                    static_cast<std::size_t>(idx->as_number()) <
                        rule_ids.size() &&
                    rule_ids[static_cast<std::size_t>(idx->as_number())] ==
                        rule_id->as_string();
                need(ok, "result.ruleIndex does not point at its ruleId");
            }
            const json::Value* locations = res.find("locations");
            if (!need(locations != nullptr && locations->is_array() &&
                          !locations->as_array().empty(),
                      "result.locations must be non-empty"))
                continue;
            for (const json::Value& loc : locations->as_array()) {
                const json::Value* phys = loc.find("physicalLocation");
                const json::Value* artifact =
                    phys != nullptr ? phys->find("artifactLocation") : nullptr;
                const json::Value* uri =
                    artifact != nullptr ? artifact->find("uri") : nullptr;
                need(uri != nullptr && uri->is_string() &&
                         !uri->as_string().empty(),
                     "physicalLocation.artifactLocation.uri missing");
                const json::Value* region =
                    phys != nullptr ? phys->find("region") : nullptr;
                const json::Value* start =
                    region != nullptr ? region->find("startLine") : nullptr;
                need(start != nullptr && start->is_number() &&
                         start->as_number() >= 1,
                     "region.startLine must be a 1-based integer");
            }
        }
    }
    return errors;
}

}  // namespace ksa::lint
