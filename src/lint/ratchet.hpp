#pragma once
// The lint ratchet: lint_baseline.json pins the grandfathered finding
// counts per (rule, file); the analyzer fails when a count GROWS (a new
// finding slipped in) and also when a count SHRINKS without the
// baseline being refreshed (so burn-down is monotone: once a finding is
// fixed, `ksa_analyze --write-baseline` records the lower count and the
// old level can never silently return).
//
// Keying on (rule, file) counts rather than exact lines keeps the
// baseline stable under unrelated edits to the same file -- the
// standard ratchet design (cf. betterer / detekt baselines).

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace ksa::lint {

struct BaselineEntry {
    std::string rule;
    std::string file;
    std::size_t count = 0;
};

struct RatchetResult {
    /// Findings above the baselined count ("new finding; fix it or --
    /// after review -- re-baseline").
    std::vector<std::string> regressions;
    /// Baselined findings that no longer exist ("ratchet down: refresh
    /// the baseline so the fix cannot regress").
    std::vector<std::string> stale;
    bool ok() const { return regressions.empty() && stale.empty(); }
};

/// Loads a baseline file; std::nullopt + `error` on IO/parse problems.
/// A missing file is NOT an error here -- the caller decides (the CLI
/// treats it as an empty baseline for bootstrap, ctest passes the
/// committed file).
std::optional<std::vector<BaselineEntry>> load_baseline(
    const std::filesystem::path& path, std::string* error);

/// Compares current findings against the baseline.
RatchetResult ratchet_compare(const std::vector<Finding>& findings,
                              const std::vector<BaselineEntry>& baseline);

/// Serializes `findings` as a fresh baseline (deterministic order).
std::string baseline_json(const std::vector<Finding>& findings);

}  // namespace ksa::lint
