#pragma once
// lint::DeclModel -- a token-level declaration/function model for the
// flow passes (flow.hpp).
//
// The lexer (lexer.hpp) classifies characters; this layer recovers the
// *shape* of a translation unit from the blanked code lines: which
// brace blocks are function bodies, which are lambdas, what each lambda
// captures, which parameters a function takes, and which functions its
// body names (a call-graph edge by NAME, the only identity a
// non-type-checking scanner has).
//
// It also parses the `// ksa:` annotation vocabulary the flow rules
// verify:
//
//   // ksa: thread_safe          -- callable from any thread as-is
//   // ksa: wait_free            -- body must not lock/block/allocate
//   // ksa: guarded_by(mutex)    -- on a member: touch only under
//                                   `mutex`; on a function: the body
//                                   must lock `mutex`
//
// An annotation trails the declaration line or sits on a comment line
// directly above it (same placement contract as suppression tags, and
// like them it is parsed from real `//` comments only).
//
// Deliberate imprecision (documented in doc/analysis.md §3): extents
// come from brace matching over blanked code with preprocessor
// directives removed, names from a header regex -- no overload
// resolution, no template instantiation, no type checking.  The rules
// built on top are tuned so this imprecision surfaces as missed
// findings in exotic code, never as noise on idiomatic code.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint/source_file.hpp"

namespace ksa::lint {

struct Capture {
    std::string name;      ///< captured entity ("" for pure [=] / [&])
    bool by_ref = false;   ///< &name, or covered by a [&] default
    bool init = false;     ///< init-capture: [x = expr] owns a copy
};

enum class AnnotationKind { kThreadSafe, kWaitFree, kGuardedBy };

struct Annotation {
    AnnotationKind kind = AnnotationKind::kThreadSafe;
    std::string arg;       ///< guarded_by's mutex name; empty otherwise
    std::size_t line = 0;  ///< 1-based line the comment sits on
};

struct FunctionDecl {
    std::string name;      ///< unqualified ("operator()" for lambdas)
    std::size_t file = 0;  ///< index into DeclModel's file list
    std::size_t line = 0;  ///< 1-based line of the header's name token
    /// Extent, 1-based inclusive: header_begin..header_end bracket the
    /// header (for a declaration, the whole statement up to its `;`),
    /// body_begin/body_end bracket the `{...}` body.  A declaration
    /// without a body has body_begin == body_end == 0.
    std::size_t header_begin = 0;
    std::size_t header_end = 0;
    std::size_t body_begin = 0;
    std::size_t body_end = 0;
    /// 1-based columns of the body's `{` and `}` on their lines, so a
    /// single-line lambda body can be cut out of the surrounding call
    /// expression exactly.
    std::size_t body_begin_col = 0;
    std::size_t body_end_col = 0;
    bool is_lambda = false;
    /// `= delete`, `= default` or pure-virtual `= 0` declaration.
    bool deleted_or_defaulted = false;
    /// Lambda default capture: '&', '=' or 0 (none / not a lambda).
    char default_capture = 0;
    std::vector<Capture> captures;    ///< explicit captures, in order
    std::vector<std::string> params;  ///< parameter names, in order
    std::vector<Annotation> annotations;
    /// Enclosing function/lambda in the same file (index into
    /// DeclModel::functions()), or npos for top-level functions.
    std::size_t parent = npos;
    std::vector<std::size_t> children;  ///< directly nested lambdas

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    bool has_annotation(AnnotationKind kind) const {
        for (const Annotation& a : annotations)
            if (a.kind == kind) return true;
        return false;
    }
    const Annotation* find_annotation(AnnotationKind kind) const {
        for (const Annotation& a : annotations)
            if (a.kind == kind) return &a;
        return nullptr;
    }
};

/// A data member (or file-scope variable) carrying `ksa: guarded_by`.
struct GuardedMember {
    std::size_t file = 0;  ///< index into DeclModel's file list
    std::size_t line = 0;  ///< 1-based declaration line
    std::string member;    ///< declared name
    std::string mutex;     ///< the guarding mutex's name
};

class DeclModel {
public:
    /// Builds the model over a pre-scanned file set.  The file indices
    /// stored in FunctionDecl/GuardedMember refer to `files` positions.
    static DeclModel build(const std::vector<SourceFile>& files);

    const std::vector<FunctionDecl>& functions() const { return funcs_; }
    const std::vector<GuardedMember>& guarded_members() const {
        return guarded_;
    }

    /// Indices of all functions/lambdas recorded for file `file`.
    const std::vector<std::size_t>& functions_in(std::size_t file) const;

    /// Indices of every recorded function with unqualified name `name`
    /// (overloads and same-named functions across files all match --
    /// name identity is all a token-level call graph has).
    const std::vector<std::size_t>& functions_named(
        const std::string& name) const;

    /// The body lines belonging to `fn` ITSELF: [body_begin..body_end]
    /// minus the full extents of nested lambdas/local functions.
    /// 1-based line numbers, ascending.
    std::vector<std::size_t> own_body_lines(std::size_t fn) const;

    /// Indices of recorded functions whose name appears called (name
    /// followed by `(`) on `fn`'s own body lines -- the outgoing
    /// call-graph edges, resolved by name across the whole file set.
    std::vector<std::size_t> callees(const std::vector<SourceFile>& files,
                                     std::size_t fn) const;

    /// True when `fn`'s own body names `token`, or any function
    /// reachable from it through the name-matched call graph does.
    /// `files` must be the same vector the model was built over.
    bool reaches_token(const std::vector<SourceFile>& files, std::size_t fn,
                       const std::vector<std::string>& tokens) const;

private:
    std::vector<FunctionDecl> funcs_;
    std::vector<GuardedMember> guarded_;
    std::vector<std::vector<std::size_t>> by_file_;
    /// name -> indices of functions with that name (call-graph identity).
    std::map<std::string, std::vector<std::size_t>> by_name_;
};

}  // namespace ksa::lint
