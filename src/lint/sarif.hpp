#pragma once
// SARIF 2.1.0 emission (and a structural validator for tests).
//
// SARIF (Static Analysis Results Interchange Format, OASIS standard
// v2.1.0) is the interchange format CI systems ingest for code-scanning
// results; the `analyze` CI job uploads the file ksa_analyze emits
// here.  The writer produces the minimal valid document: one run, the
// full rule table under tool.driver.rules, one result per finding with
// a physicalLocation carrying a SRCROOT-relative artifact URI and a
// startLine/startColumn region.
//
// validate_sarif() re-checks an emitted document against the schema
// obligations this tool relies on (required properties, enumerated
// levels, rule-index consistency).  It is a structural subset of the
// official JSON schema -- the container has no network access to fetch
// the real one -- but every constraint it checks is a MUST in the
// 2.1.0 spec, so a regression that would fail schema validation
// upstream fails the ctest here first.

#include <string>
#include <vector>

#include "lint/json.hpp"
#include "lint/rules.hpp"

namespace ksa::lint {

/// Serializes findings as a SARIF 2.1.0 document.  `root_uri` becomes
/// originalUriBaseIds.SRCROOT (pass a file:// URI of the repo root, or
/// empty to omit).  Finding paths must be root-relative.
std::string to_sarif(const std::vector<Finding>& findings,
                     const std::string& root_uri);

/// Returns the list of schema violations (empty = valid).  Checks the
/// 2.1.0 MUSTs this tool's output exercises: version string, runs
/// array, tool.driver.name, rule metadata, result ruleId/ruleIndex
/// agreement, level enumeration, location artifactLocation.uri and
/// 1-based region lines.
std::vector<std::string> validate_sarif(const json::Value& doc);

}  // namespace ksa::lint
