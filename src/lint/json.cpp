#include "lint/json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace ksa::lint::json {

namespace {

struct Parser {
    const std::string& text;
    std::size_t pos = 0;
    std::string error;

    bool fail(const std::string& what) {
        if (error.empty()) {
            std::ostringstream os;
            os << what << " at byte " << pos;
            error = os.str();
        }
        return false;
    }

    void skip_ws() {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                text[pos] == '\r'))
            ++pos;
    }

    bool consume(char c) {
        skip_ws();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool parse_value(Value& out) {
        skip_ws();
        if (pos >= text.size()) return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') return parse_object(out);
        if (c == '[') return parse_array(out);
        if (c == '"') return parse_string_value(out);
        if (c == 't' || c == 'f') return parse_bool(out);
        if (c == 'n') return parse_null(out);
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
        return fail("unexpected character");
    }

    bool parse_literal(const char* lit) {
        const std::size_t len = std::char_traits<char>::length(lit);
        if (text.compare(pos, len, lit) != 0) return fail("bad literal");
        pos += len;
        return true;
    }

    bool parse_null(Value& out) {
        if (!parse_literal("null")) return false;
        out = Value();
        return true;
    }

    bool parse_bool(Value& out) {
        if (text[pos] == 't') {
            if (!parse_literal("true")) return false;
            out = Value(true);
        } else {
            if (!parse_literal("false")) return false;
            out = Value(false);
        }
        return true;
    }

    bool parse_number(Value& out) {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-') ++pos;
        while (pos < text.size() &&
               ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
                text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        try {
            out = Value(std::stod(text.substr(start, pos - start)));
        } catch (const std::exception&) {
            return fail("bad number");
        }
        return true;
    }

    bool parse_string_raw(std::string& out) {
        if (text[pos] != '"') return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos];
            if (c == '\\') {
                ++pos;
                if (pos >= text.size()) return fail("bad escape");
                switch (text[pos]) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        if (pos + 4 >= text.size()) return fail("bad \\u");
                        unsigned code = 0;
                        for (int i = 1; i <= 4; ++i) {
                            const char h = text[pos + i];
                            code <<= 4;
                            if (h >= '0' && h <= '9')
                                code |= static_cast<unsigned>(h - '0');
                            else if (h >= 'a' && h <= 'f')
                                code |= static_cast<unsigned>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F')
                                code |= static_cast<unsigned>(h - 'A' + 10);
                            else
                                return fail("bad \\u digit");
                        }
                        pos += 4;
                        // UTF-8 encode (BMP only; surrogate pairs are
                        // not produced by this tool's own output).
                        if (code < 0x80) {
                            out += static_cast<char>(code);
                        } else if (code < 0x800) {
                            out += static_cast<char>(0xC0 | (code >> 6));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        } else {
                            out += static_cast<char>(0xE0 | (code >> 12));
                            out += static_cast<char>(0x80 |
                                                     ((code >> 6) & 0x3F));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        }
                        break;
                    }
                    default: return fail("bad escape");
                }
                ++pos;
            } else {
                out += c;
                ++pos;
            }
        }
        if (pos >= text.size()) return fail("unterminated string");
        ++pos;  // closing quote
        return true;
    }

    bool parse_string_value(Value& out) {
        std::string s;
        if (!parse_string_raw(s)) return false;
        out = Value(std::move(s));
        return true;
    }

    bool parse_array(Value& out) {
        ++pos;  // '['
        Array arr;
        skip_ws();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            out = Value(std::move(arr));
            return true;
        }
        while (true) {
            Value v;
            if (!parse_value(v)) return false;
            arr.push_back(std::move(v));
            skip_ws();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            break;
        }
        if (!consume(']')) return false;
        out = Value(std::move(arr));
        return true;
    }

    bool parse_object(Value& out) {
        ++pos;  // '{'
        Object obj;
        skip_ws();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            out = Value(std::move(obj));
            return true;
        }
        while (true) {
            skip_ws();
            std::string key;
            if (!parse_string_raw(key)) return false;
            if (!consume(':')) return false;
            Value v;
            if (!parse_value(v)) return false;
            obj.emplace(std::move(key), std::move(v));
            skip_ws();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            break;
        }
        if (!consume('}')) return false;
        out = Value(std::move(obj));
        return true;
    }
};

void write(const Value& v, std::string& out, int indent) {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
    switch (v.type()) {
        case Value::Type::kNull: out += "null"; break;
        case Value::Type::kBool: out += v.as_bool() ? "true" : "false"; break;
        case Value::Type::kNumber: {
            const double d = v.as_number();
            char buf[64];
            if (d == std::floor(d) && std::abs(d) < 1e15) {
                std::snprintf(buf, sizeof buf, "%.0f", d);
            } else {
                std::snprintf(buf, sizeof buf, "%.17g", d);
            }
            out += buf;
            break;
        }
        case Value::Type::kString:
            out += '"';
            out += escape(v.as_string());
            out += '"';
            break;
        case Value::Type::kArray: {
            const Array& a = v.as_array();
            if (a.empty()) {
                out += "[]";
                break;
            }
            out += "[\n";
            for (std::size_t i = 0; i < a.size(); ++i) {
                out += pad_in;
                write(a[i], out, indent + 1);
                if (i + 1 < a.size()) out += ',';
                out += '\n';
            }
            out += pad;
            out += ']';
            break;
        }
        case Value::Type::kObject: {
            const Object& o = v.as_object();
            if (o.empty()) {
                out += "{}";
                break;
            }
            out += "{\n";
            std::size_t i = 0;
            for (const auto& [key, val] : o) {
                out += pad_in;
                out += '"';
                out += escape(key);
                out += "\": ";
                write(val, out, indent + 1);
                if (++i < o.size()) out += ',';
                out += '\n';
            }
            out += pad;
            out += '}';
            break;
        }
    }
}

}  // namespace

std::optional<Value> parse(const std::string& text, std::string* error) {
    Parser p{text, 0, {}};
    Value v;
    if (!p.parse_value(v)) {
        if (error != nullptr) *error = p.error;
        return std::nullopt;
    }
    p.skip_ws();
    if (p.pos != text.size()) {
        if (error != nullptr) *error = "trailing garbage";
        return std::nullopt;
    }
    return v;
}

std::string serialize(const Value& v) {
    std::string out;
    write(v, out, 0);
    out += '\n';
    return out;
}

std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace ksa::lint::json
