#include "lint/rules.hpp"

#include <filesystem>
#include <regex>

#include "lint/json.hpp"

namespace fs = std::filesystem;

namespace ksa::lint {

namespace {

/// Path helpers (paths are judged as reported: root-relative under
/// ksa_analyze, as given on the command line under ksa_lint) ----------

bool path_contains_dir(const fs::path& file, const std::string& dir) {
    for (const fs::path& part : file)
        if (part == dir) return true;
    return false;
}

bool in_deterministic_hot_path(const fs::path& file) {
    // The engine (sim/), the proof constructions (core/) and the
    // fault-injection adversary (chaos/) are the replay-critical
    // layers: chaos runs must replay bit-identically through the
    // determinism auditor, so the injector is held to the same
    // determinism bar as the engine it perturbs.
    return path_contains_dir(file, "sim") || path_contains_dir(file, "core") ||
           path_contains_dir(file, "chaos");
}

bool in_library_code(const fs::path& file) {
    // Library code lives under src/; examples/ and tools/ are entitled
    // to stream IO (it is their job).
    return path_contains_dir(file, "src");
}

bool in_library_code_outside_exec(const fs::path& file) {
    // src/exec/ is the ONE layer allowed to hold threading primitives
    // (thread_pool.hpp states the determinism discipline).
    return path_contains_dir(file, "src") && !path_contains_dir(file, "exec");
}

bool is_interface_header(const fs::path& file) {
    // The headers that *introduce* the virtuals: declaring them there
    // without `override` is correct.
    const std::string name = file.filename().string();
    return name == "scheduler.hpp" || name == "behavior.hpp" ||
           name == "fd_oracle.hpp";
}

bool in_library_code_outside_reduction(const fs::path& file) {
    // src/core/reduction.{hpp,cpp} own the tag interner; every other
    // library file must not touch it (see the rule table entry).
    const std::string name = file.filename().string();
    if (path_contains_dir(file, "core") && name.rfind("reduction.", 0) == 0)
        return false;
    return path_contains_dir(file, "src");
}

bool in_library_code_outside_store(const fs::path& file) {
    // src/store/ owns the frontier containers: it is the one layer
    // that enforces the RAM ceiling and the spill discipline, so
    // frontier-typed containers anywhere else in src/ re-introduce the
    // unbounded per-state resident growth the store exists to remove.
    return path_contains_dir(file, "src") && !path_contains_dir(file, "store");
}

bool outside_bench_and_exec(const fs::path& file) {
    // Wall clocks belong to measurement (bench/) and to the exec
    // layer's pool plumbing; everywhere else a timestamp read is a
    // replay hazard.
    if (path_contains_dir(file, "bench")) return false;
    if (path_contains_dir(file, "src") && path_contains_dir(file, "exec"))
        return false;
    return true;
}

/// Compiled line-rule patterns ---------------------------------------

struct LineRule {
    const RuleInfo* info;
    std::regex pattern;
    bool (*applies)(const fs::path&);
};

const std::vector<RuleInfo>& rule_table() {
    static const std::vector<RuleInfo> kRules = {
        // -- the classic ksa_lint set (order preserved: it is the
        //    --list-rules output order of the original tool).
        {"unordered-container", RuleKind::kLine, Severity::kError,
         "src/sim, src/core, src/chaos",
         "hash-ordered container in a replay-critical layer; iteration "
         "order is not deterministic across builds -- use std::set/std::map "
         "or sort before iterating",
         true},
        {"raw-random", RuleKind::kLine, Severity::kError, "all sources",
         "unseeded/global randomness; take an explicit seed and use "
         "std::mt19937_64 so runs stay replayable",
         true},
        {"missing-override", RuleKind::kLine, Severity::kError,
         "everywhere except the interface headers",
         "re-declared engine virtual without `override`/`final`; interface "
         "drift would silently detach this subclass",
         true},
        {"threading-outside-exec", RuleKind::kLine, Severity::kError,
         "src/ except src/exec",
         "threading primitive outside src/exec/; express parallelism "
         "through exec::parallel_map_deterministic (doc/performance.md) "
         "or, for genuinely thread-safe bookkeeping, annotate with "
         "ksa-lint: allow(threading-outside-exec)",
         true},
        {"stream-io-in-library", RuleKind::kLine, Severity::kError, "src/",
         "process-global stream IO in library code; return a report/string "
         "and let examples/ or tools/ render it",
         true},
        {"interning-outside-reduction", RuleKind::kLine, Severity::kError,
         "src/ except src/core/reduction.*",
         "tag interning outside core/reduction; interned ids are the "
         "reduction layer's private cache (content-derived, but the table "
         "is warm-up-stateful global state) -- hash the tag bytes directly "
         "(sim/digest.hpp) or, for a justified exception, annotate with "
         "ksa-lint: allow(interning-outside-reduction)",
         true},
        {"frontier-growth-outside-store", RuleKind::kLine, Severity::kError,
         "src/ except src/store",
         "frontier-typed container (vector/deque of DeltaRecord or "
         "frontier nodes) outside src/store/; such containers grow with "
         "the explored state count and bypass the store's RAM ceiling "
         "and spill discipline (doc/performance.md §6) -- route the "
         "records through store::DeltaStore or, for a bounded scratch "
         "buffer, annotate with "
         "ksa-lint: allow(frontier-growth-outside-store)",
         true},
        // -- analyzer additions (ksa_analyze only).
        {"pointer-keyed-container", RuleKind::kLine, Severity::kError, "src/",
         "map/set keyed on a raw pointer: iteration follows address order, "
         "which ASLR reshuffles on every execution -- key on a stable id "
         "(ProcessId, MessageId, an index) or on the pointee's canonical "
         "rendering instead",
         false},
        {"wall-clock-outside-bench", RuleKind::kLine, Severity::kError,
         "everywhere except bench/ and src/exec",
         "wall-clock read outside bench//exec: timestamps differ on every "
         "execution, so any value derived from one poisons replays and "
         "digests -- measure in bench/, count steps in the engine",
         false},
        {"float-in-digest", RuleKind::kWholeProgram, Severity::kError,
         "src/ files that reach sim/digest.hpp",
         "float/double in a file that feeds the state digest: NaN "
         "payloads, signed zeros and x87 excess precision make float bit "
         "patterns environment-dependent, so hashing one breaks "
         "bit-identical replay -- store scaled integers or a rational pair "
         "instead",
         false},
        {"layering", RuleKind::kWholeProgram, Severity::kError,
         "the whole tree (table: src/lint/layers.def)",
         "include crosses the architecture DAG (src/lint/layers.def): a "
         "lower layer must not reach into a higher one, and private "
         "layers (core/reduction) admit only their listed importers",
         false},
        {"include-cycle", RuleKind::kWholeProgram, Severity::kError,
         "the whole tree",
         "include cycle: the headers in the cycle have no valid build "
         "order and the layer DAG cannot hold -- break the cycle with a "
         "forward declaration or by splitting the header",
         false},
        // -- flow rules (decls.hpp/flow.hpp: function model + dataflow).
        {"parallel-capture-mutation", RuleKind::kWholeProgram,
         Severity::kError, "lambdas passed to parallel entry points",
         "lambda passed to a parallel entry point writes a by-reference "
         "capture that is not an atomic, not under a lock and not a "
         "per-index element slot -- a data race that desynchronizes "
         "replays; write to out[i] or aggregate after the join",
         false},
        {"nondet-iteration-reaches-output", RuleKind::kWholeProgram,
         Severity::kError, "the whole tree",
         "iteration over an unordered container reaches digest folds / "
         "JSON emission / KSARUN trace writing: hash iteration order is "
         "not deterministic across builds, so the emitted bytes are not "
         "either -- sort the keys first or use std::map/std::set",
         false},
        {"lock-discipline", RuleKind::kWholeProgram, Severity::kError,
         "annotated members; src/exec public headers",
         "lock discipline violated: a `ksa: guarded_by(mu)` member is "
         "touched without locking `mu`, or a src/exec entry point "
         "carries no ksa: thread_safe / guarded_by / wait_free "
         "annotation",
         false},
        {"blocking-in-task", RuleKind::kWholeProgram, Severity::kError,
         "bodies annotated `ksa: wait_free`",
         "blocking call in a `ksa: wait_free` body: locks, condition "
         "waits, stream IO and allocation-heavy vocabulary stall the "
         "worker and (under the future work-stealing deques) invite "
         "scheduling-order divergence -- hoist the work out of the task",
         false},
    };
    return kRules;
}

const RuleInfo* info(const char* name) {
    for (const RuleInfo& r : rule_table())
        if (r.name == name) return &r;
    return nullptr;
}

const std::vector<LineRule>& line_rules() {
    static const std::vector<LineRule> kLineRules = {
        {info("unordered-container"),
         std::regex(R"(std::unordered_(set|map|multiset|multimap)\b)"),
         &in_deterministic_hot_path},
        {info("raw-random"),
         std::regex(R"((\b(s?rand)\s*\()|(std::random_device\b))"),
         [](const fs::path&) { return true; }},
        {info("missing-override"),
         // A re-declaration of one of the engine's virtuals that
         // carries neither `override` nor `final` nor a pure-virtual
         // marker in the same statement.  The virtual set is small and
         // stable, which keeps this textual check precise.
         std::regex(
             R"((next\s*\(\s*const\s+SystemView|on_step\s*\(\s*const\s+StepInput|state_digest\s*\(\s*\)\s*const|fold_state\s*\(\s*StateHasher|fold_state_renamed\s*\(\s*StateHasher|make_behavior\s*\(\s*ProcessId|query\s*\(\s*const\s+QueryContext|needs_failure_detector\s*\(\s*\)\s*const|may_send\s*\(\s*\)\s*const|message_inert\s*\(\s*ProcessId|rename_payload_ids\s*\(\s*Payload|decided_is_final\s*\(\s*\)\s*const))"),
         [](const fs::path& f) { return !is_interface_header(f); }},
        {info("threading-outside-exec"),
         // Thread/lock/atomic vocabulary outside the exec layer.  The
         // match is on the primitives, not on <thread>-style includes.
         std::regex(
             R"(std::(jthread|thread\b|mutex|shared_mutex|timed_mutex|recursive_mutex|condition_variable|atomic|async\s*\(|future<|promise<|lock_guard|unique_lock|scoped_lock|shared_lock|barrier<|latch\b|counting_semaphore|binary_semaphore|call_once|once_flag|this_thread))"),
         &in_library_code_outside_exec},
        {info("stream-io-in-library"),
         std::regex(R"((std::cout\b|std::cerr\b|\bprintf\s*\())"),
         &in_library_code},
        {info("interning-outside-reduction"),
         std::regex(R"(\b(TagInterner|intern_tag)\b)"),
         &in_library_code_outside_reduction},
        {info("frontier-growth-outside-store"),
         // A vector/deque whose ELEMENT type is a frontier node type.
         // Passing records by value or holding one (`DeltaRecord rec`)
         // is fine; amassing them is the store's job.
         std::regex(
             R"(std::(vector|deque)\s*<\s*(ksa::)?(store::)?(DeltaRecord|FrontierNode|FastNode)\b)"),
         &in_library_code_outside_store},
        {info("pointer-keyed-container"),
         // First template argument of a map/set family instance is a
         // pointer type: `std::map<Foo*`, `std::set<const Bar *`, ...
         // (a pointer MAPPED VALUE is fine -- iteration still follows
         // the key).
         std::regex(
             R"(std::(unordered_)?(map|set|multimap|multiset)\s*<\s*(const\s+)?[A-Za-z_][A-Za-z0-9_:]*(\s+const)?\s*\*)"),
         &in_library_code},
        {info("wall-clock-outside-bench"),
         std::regex(
             R"(std::chrono::(system_clock|steady_clock|high_resolution_clock)\b)"),
         &outside_bench_and_exec},
    };
    return kLineRules;
}

/// missing-override helpers (ported from the original ksa_lint) ------

bool line_declares_virtual(const std::string& code) {
    return code.find("virtual ") != std::string::npos;
}

/// An out-of-class member *definition* (`Type Class::next(...)`) cannot
/// repeat `override`; only in-class re-declarations are checked.
bool is_out_of_class_definition(const std::string& code,
                                const std::smatch& match) {
    const std::size_t pos = static_cast<std::size_t>(match.position(0));
    return pos >= 2 && code.compare(pos - 2, 2, "::") == 0;
}

/// Joins code lines [index..] into the complete declaration statement:
/// C++ declarations may wrap, and `override` usually sits on the last
/// line.
std::string statement_from(const SourceFile& file, std::size_t line) {
    std::string statement;
    const std::size_t limit = std::min(file.line_count(), line + 7);
    for (std::size_t i = line; i <= limit; ++i) {
        statement += file.code(i);
        statement += ' ';
        // A declaration ends at `;` or at the body's opening `{`.
        if (file.code(i).find(';') != std::string::npos ||
            file.code(i).find('{') != std::string::npos)
            break;
    }
    return statement;
}

bool code_blank(const std::string& code) {
    return code.find_first_not_of(" \t") == std::string::npos;
}

}  // namespace

std::string to_string(Severity s) {
    switch (s) {
        case Severity::kError: return "error";
        case Severity::kWarning: return "warning";
        case Severity::kNote: return "note";
    }
    return "error";
}

const std::vector<RuleInfo>& all_rules() { return rule_table(); }

std::string rules_json() {
    json::Array arr;
    for (const RuleInfo& r : rule_table()) {
        json::Object o;
        o.emplace("name", r.name);
        o.emplace("kind", r.kind == RuleKind::kLine ? "line"
                                                    : "whole-program");
        o.emplace("severity", to_string(r.severity));
        o.emplace("scope", r.scope);
        o.emplace("summary", r.message);
        o.emplace("legacy", r.legacy);
        arr.emplace_back(std::move(o));
    }
    return json::serialize(json::Value(std::move(arr)));
}

bool rule_applies(const std::string& rule, const std::string& path) {
    const fs::path p(path);
    for (const LineRule& lr : line_rules())
        if (lr.info->name == rule) return lr.applies(p);
    if (rule == "float-in-digest") return in_library_code(p);
    return true;  // layering / include-cycle judge edges, not files
}

std::vector<Finding> run_line_rules(const SourceFile& file,
                                    bool legacy_only) {
    std::vector<Finding> findings;
    const fs::path path(file.path());
    // Resolve applicability once per file, not once per line.
    std::vector<const LineRule*> active;
    for (const LineRule& rule : line_rules()) {
        if (legacy_only && !rule.info->legacy) continue;
        if (rule.applies(path)) active.push_back(&rule);
    }
    if (active.empty()) return findings;

    for (std::size_t i = 1; i <= file.line_count(); ++i) {
        const std::string& code = file.code(i);
        if (code_blank(code)) continue;
        for (const LineRule* rule : active) {
            std::smatch match;
            if (!std::regex_search(code, match, rule->pattern)) continue;
            if (rule->info->name == "missing-override") {
                if (line_declares_virtual(code)) continue;
                if (is_out_of_class_definition(code, match)) continue;
                const std::string statement = statement_from(file, i);
                if (contains_token(statement, "override") ||
                    contains_token(statement, "final"))
                    continue;
            }
            if (file.suppressed(i, rule->info->name)) continue;
            findings.push_back(
                {file.path(), i,
                 static_cast<std::size_t>(match.position(0)) + 1,
                 rule->info->name, rule->info->severity,
                 rule->info->message});
        }
    }
    return findings;
}

}  // namespace ksa::lint
