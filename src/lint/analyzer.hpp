#pragma once
// lint::analyze -- the whole-program orchestration behind
// tools/ksa_analyze (and, in legacy mode, tools/ksa_lint).
//
// A run scans a file set, executes the line rules (rules.hpp) on every
// file, builds the include graph once, and executes the whole-program
// passes on top of it:
//
//   layering        every quoted include checked against the DAG in
//                   src/lint/layers.def (longest-prefix layer
//                   assignment, private-layer importer lists);
//   include-cycle   Tarjan SCC over the include graph;
//   float-in-digest float/double tokens in any file that reaches
//                   sim/digest.hpp (direct includer, or transitive
//                   includer that names StateHasher/Digest128/
//                   fold_state in code).
//
// The library does no stream IO (ksa_lint rule stream-io-in-library):
// results come back as values, the CLIs render them.

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "lint/source_file.hpp"

namespace ksa::lint {

struct AnalyzerOptions {
    /// Repo root: scan roots and report paths are relative to it.
    std::filesystem::path root;
    /// Root-relative directories (or files) to scan.
    std::vector<std::string> roots = {"src", "tools", "tests", "bench",
                                      "examples"};
    /// Run only the classic ksa_lint line rules, skip the include-graph
    /// passes (ksa_lint compatibility mode).
    bool legacy_only = false;
    /// Baseline for the ratchet; when unset the ratchet is skipped.
    std::optional<std::filesystem::path> baseline;
};

struct AnalysisResult {
    std::vector<Finding> findings;  ///< unsuppressed, deterministic order
    std::size_t files_scanned = 0;
    /// True when a baseline was loaded and the ratchet ran: findings
    /// are then grandfathered and only the ratchet verdicts gate.
    bool ratcheted = false;
    std::vector<std::string> ratchet_regressions;
    std::vector<std::string> ratchet_stale;
    /// IO/parse errors that should map to CLI exit code 2.
    std::vector<std::string> errors;

    /// Exit-code-1 conditions.  Without a baseline every finding is a
    /// violation; with one, only ratchet regressions/staleness are.
    bool has_violations() const {
        if (ratcheted)
            return !ratchet_regressions.empty() || !ratchet_stale.empty();
        return !findings.empty();
    }
};

/// Loads + lexes every C++ source under the option roots, skipping
/// directories named `lint_fixtures` (planted-violation corpora) and
/// hidden/build directories.  Report paths are root-relative with '/'
/// separators, sorted, so results are deterministic.  IO problems land
/// in `errors`.
std::vector<SourceFile> scan_tree(const AnalyzerOptions& options,
                                  std::vector<std::string>& errors);

/// Full analysis over the option roots.  With `baseline` set, findings
/// are additionally ratcheted; without it, any finding is a violation.
AnalysisResult analyze(const AnalyzerOptions& options);

/// Analysis over pre-scanned files (tests, scratch copies).
AnalysisResult analyze_files(const std::vector<SourceFile>& files,
                             bool legacy_only);

/// Ratchets `result` against the baseline file: loads it, compares,
/// fills ratcheted/ratchet_regressions/ratchet_stale.  A missing or
/// unparseable baseline lands in `result.errors` (exit code 2 at the
/// CLIs) -- bootstrapping is the CLIs' explicit --init-baseline path,
/// never an implicit empty-baseline fallback.
void apply_baseline(AnalysisResult& result,
                    const std::filesystem::path& baseline);

/// The findings as the internal JSON model (--format=json at both
/// CLIs): {version, files_scanned, findings: [{file, line, column,
/// rule, severity, message}], ratcheted, ratchet_regressions,
/// ratchet_stale, errors}.  Deterministic byte-for-byte for a given
/// result (json.hpp keeps object keys sorted).
std::string analysis_json(const AnalysisResult& result);

/// True for the extensions ksa_lint/ksa_analyze scan (.cpp/.hpp/.cc/.h).
bool is_source_file(const std::filesystem::path& file);

}  // namespace ksa::lint
