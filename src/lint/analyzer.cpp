#include "lint/analyzer.hpp"

#include <algorithm>
#include <regex>

#include "lint/decls.hpp"
#include "lint/flow.hpp"
#include "lint/include_graph.hpp"
#include "lint/json.hpp"
#include "lint/layers.hpp"
#include "lint/ratchet.hpp"

namespace fs = std::filesystem;

namespace ksa::lint {

namespace {

bool skip_directory(const fs::path& dir) {
    const std::string name = dir.filename().string();
    // Planted-violation corpora (scanned explicitly by their tests),
    // build trees, VCS/houskeeping directories.
    return name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
           (!name.empty() && name[0] == '.');
}

const RuleInfo& rule_info(const char* name) {
    for (const RuleInfo& r : all_rules())
        if (r.name == name) return r;
    static const RuleInfo kUnknown{"unknown", RuleKind::kWholeProgram,
                                  Severity::kError, "", "", false};
    return kUnknown;
}

/// float-in-digest: files that feed the deterministic digest must not
/// traffic in floats (see the rule table entry for why).  "Feeds the
/// digest" = directly includes sim/digest.hpp, or transitively includes
/// it while naming the hasher vocabulary in code.
std::vector<Finding> check_float_in_digest(
    const std::vector<SourceFile>& files, const IncludeGraph& graph) {
    static const std::regex kFloat(R"(\b(float|double|long\s+double)\b)");
    const RuleInfo& rule = rule_info("float-in-digest");
    std::vector<Finding> findings;

    for (std::size_t i = 0; i < files.size(); ++i) {
        const SourceFile& file = files[i];
        if (!rule_applies(rule.name, file.path())) continue;
        const std::string norm = normalize_path(file.path());
        if (norm.size() >= 14 &&
            norm.compare(norm.size() - 14, 14, "sim/digest.hpp") == 0)
            continue;  // the hasher itself defines the vocabulary

        bool digest_aware = file.includes_path("sim/digest.hpp");
        if (!digest_aware &&
            (file.mentions_token("StateHasher") ||
             file.mentions_token("Digest128") ||
             file.mentions_token("fold_state")))
            digest_aware = graph.reaches_suffix(i, "sim/digest.hpp");
        if (!digest_aware) continue;

        for (std::size_t line = 1; line <= file.line_count(); ++line) {
            std::smatch match;
            const std::string& code = file.code(line);
            if (!std::regex_search(code, match, kFloat)) continue;
            if (file.suppressed(line, rule.name)) continue;
            findings.push_back(
                {file.path(), line,
                 static_cast<std::size_t>(match.position(0)) + 1, rule.name,
                 rule.severity, rule.message});
        }
    }
    return findings;
}

}  // namespace

bool is_source_file(const fs::path& file) {
    const std::string ext = file.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::vector<SourceFile> scan_tree(const AnalyzerOptions& options,
                                  std::vector<std::string>& errors) {
    std::vector<std::pair<std::string, fs::path>> targets;  // rel, disk
    for (const std::string& rel_root : options.roots) {
        const fs::path root = options.root / rel_root;
        std::error_code ec;
        if (fs::is_regular_file(root, ec)) {
            targets.emplace_back(normalize_path(rel_root), root);
            continue;
        }
        if (!fs::is_directory(root, ec)) {
            errors.push_back("no such file or directory: " + root.string());
            continue;
        }
        for (fs::recursive_directory_iterator it(root, ec), end;
             it != end && !ec; it.increment(ec)) {
            if (it->is_directory() && skip_directory(it->path())) {
                it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file() || !is_source_file(it->path()))
                continue;
            const std::string rel =
                normalize_path(fs::relative(it->path(), options.root,
                                            ec)
                                   .string());
            targets.emplace_back(rel, it->path());
        }
        if (ec) errors.push_back("walking " + root.string() + ": " +
                                 ec.message());
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());

    std::vector<SourceFile> files;
    files.reserve(targets.size());
    for (const auto& [rel, disk] : targets) {
        try {
            files.push_back(SourceFile::load(disk, rel));
        } catch (const std::exception& e) {
            errors.push_back(e.what());
        }
    }
    return files;
}

AnalysisResult analyze_files(const std::vector<SourceFile>& files,
                             bool legacy_only) {
    AnalysisResult result;
    result.files_scanned = files.size();

    for (const SourceFile& file : files) {
        std::vector<Finding> f = run_line_rules(file, legacy_only);
        result.findings.insert(result.findings.end(),
                               std::make_move_iterator(f.begin()),
                               std::make_move_iterator(f.end()));
    }

    if (!legacy_only) {
        const IncludeGraph graph = IncludeGraph::build(files);
        const DeclModel decls = DeclModel::build(files);
        for (auto&& pass :
             {check_layering(graph), check_include_cycles(graph),
              check_float_in_digest(files, graph),
              run_flow_passes(files, decls)}) {
            result.findings.insert(result.findings.end(), pass.begin(),
                                   pass.end());
        }
    }

    std::sort(result.findings.begin(), result.findings.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    return result;
}

void apply_baseline(AnalysisResult& result,
                    const std::filesystem::path& baseline) {
    std::string error;
    const auto loaded = load_baseline(baseline, &error);
    if (!loaded.has_value()) {
        result.errors.push_back(error);
        return;
    }
    RatchetResult ratchet = ratchet_compare(result.findings, *loaded);
    result.ratcheted = true;
    result.ratchet_regressions = std::move(ratchet.regressions);
    result.ratchet_stale = std::move(ratchet.stale);
}

std::string analysis_json(const AnalysisResult& result) {
    json::Object root;
    root.emplace("version", 1);
    root.emplace("files_scanned", result.files_scanned);
    json::Array findings;
    for (const Finding& f : result.findings) {
        json::Object o;
        o.emplace("file", f.file);
        o.emplace("line", f.line);
        o.emplace("column", f.column);
        o.emplace("rule", f.rule);
        o.emplace("severity", to_string(f.severity));
        o.emplace("message", f.message);
        findings.emplace_back(std::move(o));
    }
    root.emplace("findings", std::move(findings));
    root.emplace("ratcheted", result.ratcheted);
    json::Array regressions;
    for (const std::string& line : result.ratchet_regressions)
        regressions.emplace_back(line);
    root.emplace("ratchet_regressions", std::move(regressions));
    json::Array stale;
    for (const std::string& line : result.ratchet_stale)
        stale.emplace_back(line);
    root.emplace("ratchet_stale", std::move(stale));
    json::Array errors;
    for (const std::string& line : result.errors)
        errors.emplace_back(line);
    root.emplace("errors", std::move(errors));
    return json::serialize(json::Value(std::move(root)));
}

AnalysisResult analyze(const AnalyzerOptions& options) {
    std::vector<std::string> errors;
    const std::vector<SourceFile> files = scan_tree(options, errors);
    AnalysisResult result = analyze_files(files, options.legacy_only);
    result.errors = std::move(errors);

    if (options.baseline.has_value())
        apply_baseline(result, *options.baseline);
    return result;
}

}  // namespace ksa::lint
