#pragma once
// Delta re-fork: materializing live Systems from delta records
// (doc/performance.md §6).
//
// A frontier node on the store path is a 16-byte DeltaRecord, not a
// live System.  When the explorer expands a node it asks a
// Rematerializer for the node's live state; the rematerializer walks
// the delta chain upward to the nearest retained full snapshot and
// replays the missing suffix of steps on a fork of it.
//
// The retained snapshots form a per-worker SPINE: the root-to-node path
// of the most recently materialized node, one forked System (plus its
// incremental digest caches) per level -- at most max_depth entries,
// a few dozen Systems per worker no matter how wide the frontier is.
// BFS id order gives strong locality: consecutive ids are siblings or
// cousins, whose chains share all but the last one or two levels with
// the spine, so the common case re-forks from the direct parent and
// replays a single step.  Replay depth is bounded by max_depth
// regardless, so the worst case (a cold worker, a layer boundary) is a
// dozen-step replay, not a from-scratch reconstruction.
//
// Each spine level carries the two incremental hash caches the
// explorer's ghost-stepping needs (the marks/mhash economy of the old
// in-RAM frontier, resurrected on the spine):
//
//   * marks: per-process stepped flag + behavior fold_state digest;
//   * mhash: per-process, per-buffered-message content digests,
//     advanced by diffing the live buffers across one applied step --
//     each message is hashed exactly once per spine, on arrival.
//
// The message digest function is injected (fast mode hashes sender +
// payload; reduced mode tags payloads through the interner), keeping
// this layer below core/reduction in the layer DAG.
//
// DETERMINISM.  Materialization replays the same deterministic steps
// the original acceptance replayed, so the returned System (message
// ids included: fork() copies the id counter) is byte-identical to the
// state the merge phase accepted -- whichever worker materializes it,
// whatever the spine held before.  Spine hits affect CPU only.

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/digest.hpp"
#include "sim/failure_plan.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"
#include "store/delta_store.hpp"

namespace ksa::store {

/// Per-process behavior-state entry of a hashed state key.  `stepped`
/// mirrors the replay baseline's convention of keying an unstepped
/// process on the empty digest (see the state-key commentary in
/// core/explorer.cpp).
struct BehaviorMark {
    bool stepped = false;
    Digest128 hash{};
};

/// Per-process, per-buffered-message digest cache: mhash[p-1][i] is
/// the digest of the i-th message of p's buffer.
using MessageHashes = std::vector<std::vector<Digest128>>;

/// A materialized frontier node: the live System plus the incremental
/// caches, borrowed from the rematerializer's spine.  Valid until the
/// next materialize() call on the same rematerializer.
struct MaterializedNode {
    const System* sys = nullptr;
    const std::vector<BehaviorMark>* marks = nullptr;
    const MessageHashes* mhash = nullptr;
};

/// See file comment.  One instance per worker; never shared.
class Rematerializer {
  public:
    /// `digest_send(from, payload)` digests one buffered message --
    /// msg_hash for the fast engine, reduced_msg_hash for the reduced
    /// engine.  `algorithm`/`inputs`/`plan` describe the root
    /// configuration (the same arguments the explorer built its root
    /// System from).
    using DigestSendFn = Digest128 (*)(ProcessId, const Payload&);

    Rematerializer(const Algorithm& algorithm, int n,
                   std::vector<Value> inputs, FailurePlan plan,
                   const DeltaStore& deltas, DigestSendFn digest_send);

    /// Live state + caches of node `id`.  Replays the delta chain from
    /// the deepest spine entry on the node's root path (the root itself
    /// in the worst case).
    MaterializedNode materialize(std::uint64_t id);

    /// The full schedule script of node `id` (root exclusive): the
    /// exact StepChoice sequence that re-creates it on a fresh System,
    /// with concrete message ids read back from the live buffers during
    /// replay.  Used to materialize violation witnesses.
    std::vector<StepChoice> script_of(std::uint64_t id);

    /// Delta-chain steps replayed so far (observability: spine misses;
    /// depends on work distribution, so it is excluded from every
    /// equivalence comparison, like steal counts).
    std::uint64_t replay_steps() const { return replay_steps_; }
    /// Spilled-record reads so far (observability).
    std::uint64_t spill_reads() const { return reader_.spill_reads(); }

  private:
    struct SpineEntry {
        std::uint64_t id = 0;
        std::unique_ptr<System> sys;
        std::vector<BehaviorMark> marks;
        MessageHashes mhash;
    };

    /// Forks `from` and advances the fork (and its caches) by one
    /// recorded step.
    SpineEntry advance(const SpineEntry& from, std::uint64_t child_id,
                       const DeltaRecord& rec);
    SpineEntry make_root() const;

    const Algorithm& algorithm_;
    int n_;
    std::vector<Value> inputs_;
    FailurePlan plan_;
    DeltaStore::Reader reader_;
    DigestSendFn digest_send_;
    /// spine_[0] is always the root (id 0); spine_[d] sits at BFS
    /// depth d of the current root path.
    std::vector<SpineEntry> spine_;
    std::uint64_t replay_steps_ = 0;
    /// Chain scratch, reused across calls.
    std::vector<std::pair<std::uint64_t, DeltaRecord>> chain_;
};

}  // namespace ksa::store
