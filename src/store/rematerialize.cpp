#include "store/rematerialize.hpp"

#include <algorithm>
#include <utility>

namespace ksa::store {

namespace {

/// Behavior::fold_state in a fresh hasher -- the behavior-state digest
/// both engines key on (core/explorer.cpp keeps its own copy for the
/// root/ghost paths; the two must and do agree, which the equivalence
/// suite pins down end to end).
Digest128 behavior_state_hash(const Behavior& b) {
    StateHasher h;
    b.fold_state(h);
    return h.digest();
}

}  // namespace

Rematerializer::Rematerializer(const Algorithm& algorithm, int n,
                               std::vector<Value> inputs, FailurePlan plan,
                               const DeltaStore& deltas,
                               DigestSendFn digest_send)
    : algorithm_(algorithm),
      n_(n),
      inputs_(std::move(inputs)),
      plan_(std::move(plan)),
      reader_(deltas),
      digest_send_(digest_send) {}

Rematerializer::SpineEntry Rematerializer::make_root() const {
    SpineEntry e;
    e.id = 0;
    e.sys = std::make_unique<System>(algorithm_, n_, inputs_, plan_);
    e.sys->set_recording(false);
    e.marks.assign(static_cast<std::size_t>(n_), BehaviorMark{});
    e.mhash.assign(static_cast<std::size_t>(n_), {});
    for (ProcessId p = 1; p <= n_; ++p)
        for (const Message& m : e.sys->buffer(p))
            e.mhash[p - 1].push_back(digest_send_(m.from, m.payload));
    return e;
}

Rematerializer::SpineEntry Rematerializer::advance(const SpineEntry& from,
                                                   std::uint64_t child_id,
                                                   const DeltaRecord& rec) {
    SpineEntry e;
    e.id = child_id;
    e.sys = from.sys->fork(false);
    const ProcessId stepper = static_cast<ProcessId>(rec.stepper);
    // The delivered-prefix length plus the live parent buffer fully
    // reconstruct the original StepChoice, concrete message ids
    // included (fork() copies the id counter, so replayed ids equal
    // first-run ids).
    e.sys->apply_choice(from.sys->prefix_choice(stepper, rec.delivered));
    ++replay_steps_;

    // Advance the incremental caches exactly the way apply_choice
    // advanced the buffers: only the stepper's behavior changed; the
    // stepper's delivered prefix left its buffer; the step's surviving
    // sends were appended (emission order) to their destinations.
    e.marks = from.marks;
    e.marks[stepper - 1] =
            BehaviorMark{true, behavior_state_hash(e.sys->behavior_of(stepper))};
    e.mhash = from.mhash;
    auto& sm = e.mhash[stepper - 1];
    sm.erase(sm.begin(), sm.begin() + static_cast<std::ptrdiff_t>(rec.delivered));
    for (ProcessId q = 1; q <= n_; ++q) {
        auto& mq = e.mhash[q - 1];
        const auto& b = e.sys->buffer(q);
        require(b.size() >= mq.size(),
                "Rematerializer: cache longer than live buffer");
        for (std::size_t i = mq.size(); i < b.size(); ++i)
            mq.push_back(digest_send_(b[i].from, b[i].payload));
    }
    return e;
}

MaterializedNode Rematerializer::materialize(std::uint64_t id) {
    if (spine_.empty()) spine_.push_back(make_root());
    // Walk the delta chain upward until it meets the spine.  The root
    // (id 0, spine_[0]) terminates the walk unconditionally.
    chain_.clear();
    std::uint64_t cur = id;
    std::size_t meet = 0;
    for (bool found = false; !found;) {
        for (std::size_t j = spine_.size(); j-- > 0;) {
            if (spine_[j].id == cur) {
                meet = j;
                found = true;
                break;
            }
        }
        if (found) break;
        const DeltaRecord rec = reader_.get(cur);
        chain_.emplace_back(cur, rec);
        cur = rec.parent;
    }
    // Keep the shared prefix, replay the divergent suffix.  BFS id
    // locality makes the suffix one or two records in the common case.
    spine_.resize(meet + 1);
    for (auto it = chain_.rbegin(); it != chain_.rend(); ++it)
        spine_.push_back(advance(spine_.back(), it->first, it->second));
    const SpineEntry& e = spine_.back();
    return MaterializedNode{e.sys.get(), &e.marks, &e.mhash};
}

std::vector<StepChoice> Rematerializer::script_of(std::uint64_t id) {
    // Root-to-node record path.
    std::vector<DeltaRecord> records;
    for (std::uint64_t cur = id; cur != 0;) {
        const DeltaRecord rec = reader_.get(cur);
        records.push_back(rec);
        cur = rec.parent;
    }
    std::reverse(records.begin(), records.end());
    // Replay on a fresh System, reading concrete message ids back from
    // the live buffers -- the same ids the original run delivered.
    System sys(algorithm_, n_, inputs_, plan_);
    sys.set_recording(false);
    std::vector<StepChoice> script;
    script.reserve(records.size());
    for (const DeltaRecord& rec : records) {
        StepChoice choice = sys.prefix_choice(
                static_cast<ProcessId>(rec.stepper), rec.delivered);
        sys.apply_choice(choice);
        script.push_back(std::move(choice));
    }
    return script;
}

}  // namespace ksa::store
