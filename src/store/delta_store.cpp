#include "store/delta_store.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>

#include "sim/types.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace ksa::store {

namespace {

constexpr char kMagic[8] = {'K', 'S', 'A', 'S', 'P', 'I', 'L', 'L'};
constexpr std::uint64_t kHeaderBytes = 8;
constexpr std::uint64_t kRecordBytes = 16;

void put_u32le(char* out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void put_u64le(char* out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t get_u32le(const char* in) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[i]))
             << (8 * i);
    return v;
}

std::uint64_t get_u64le(const char* in) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[i]))
             << (8 * i);
    return v;
}

/// Process-unique spill file name.  pid + a process-local counter: two
/// concurrently running test binaries sharing one temp directory must
/// not collide (and no wall clock -- determinism rules).
std::string unique_spill_name() {
    // A process-wide monotonic counter is the sanctioned thread-safe-
    // bookkeeping exception (cf. check/contract.cpp): it names files,
    // it never orders work.
    // ksa-lint: allow(threading-outside-exec)
    static std::atomic<std::uint64_t> counter{0};  // ksa: thread_safe
#if defined(__unix__) || defined(__APPLE__)
    const long pid = static_cast<long>(::getpid());
#else
    const long pid = 0;
#endif
    return "ksa-spill-" + std::to_string(pid) + "-" +
           std::to_string(counter.fetch_add(1)) + ".bin";
}

}  // namespace

DeltaStore::DeltaStore(const StoreOptions& opt)
    : max_window_records_(opt.frontier_ram_bytes == 0
                                  ? 0
                                  : opt.frontier_ram_bytes / kRecordBytes),
      dir_(opt.spill_dir) {
    if (max_window_records_ != 0 && max_window_records_ < 2)
        max_window_records_ = 2;  // keep the spill arithmetic trivial
}

DeltaStore::~DeltaStore() {
    if (!path_.empty()) {
        out_.close();
        std::error_code ec;  // best-effort cleanup; nothing to report to
        std::filesystem::remove(path_, ec);
    }
}

std::uint64_t DeltaStore::append(const DeltaRecord& rec) {
    const std::uint64_t id = size();
    window_.push_back(rec);
    if (max_window_records_ != 0 && window_.size() > max_window_records_)
        spill_window();
    return id;
}

void DeltaStore::spill_window() {
    // Spill the cold (oldest) half; the hot tail -- the records the
    // next expansion phase will re-materialize most -- stays resident.
    const std::size_t count = window_.size() / 2;
    if (count == 0) return;
    if (path_.empty()) {
        namespace fs = std::filesystem;
        const fs::path dir =
                dir_.empty() ? fs::temp_directory_path() : fs::path(dir_);
        path_ = (dir / unique_spill_name()).string();
        out_.open(path_, std::ios::binary | std::ios::trunc);
        require(out_.good(), "DeltaStore: cannot create spill file");
        out_.write(kMagic, sizeof(kMagic));
    }
    char buf[kRecordBytes];
    for (std::size_t i = 0; i < count; ++i) {
        const DeltaRecord& r = window_[i];
        put_u64le(buf, r.parent);
        put_u32le(buf + 8, r.stepper);
        put_u32le(buf + 12, r.delivered);
        out_.write(buf, sizeof(buf));
    }
    out_.flush();  // readers open the file independently
    require(out_.good(), "DeltaStore: spill write failed");
    window_.erase(window_.begin(),
                  window_.begin() + static_cast<std::ptrdiff_t>(count));
    flushed_ += count;
}

DeltaRecord DeltaStore::Reader::get(std::uint64_t id) {
    require(id < store_->size(), "DeltaStore::Reader: id out of range");
    if (id >= store_->flushed_)
        return store_->window_[static_cast<std::size_t>(id - store_->flushed_)];
    ++spill_reads_;
    if (!in_.is_open()) {
        in_.open(store_->path_, std::ios::binary);
        require(in_.good(), "DeltaStore::Reader: cannot open spill file");
    }
    char buf[kRecordBytes];
    // The file grows between reads (later spills append); clear any
    // stale eof state from a previous read near the then-current end.
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(kHeaderBytes + id * kRecordBytes));
    in_.read(buf, sizeof(buf));
    require(in_.good(), "DeltaStore::Reader: spill read failed");
    DeltaRecord r;
    r.parent = get_u64le(buf);
    r.stepper = get_u32le(buf + 8);
    r.delivered = get_u32le(buf + 12);
    return r;
}

}  // namespace ksa::store
