#pragma once
// Append-only delta store + disk-spillable frontier (doc/performance.md
// §6).
//
// The explorer's frontier used to hold one live System per node -- the
// dominant resident cost at scale.  On the store path a node is a
// 16-byte DeltaRecord: the id of its parent plus the (stepper,
// delivered-prefix-length) pair that produced it.  Because the
// explorer's delivery modes always deliver a buffer PREFIX, that pair
// fully determines the StepChoice (the concrete message ids are read
// back from the live parent buffer during re-materialization), so a
// record is all that is ever stored per state.
//
// Node ids are BFS acceptance sequence numbers (root = 0): children
// accepted by the in-order sequential merge get consecutive ids, so a
// BFS layer is a CONTIGUOUS id interval and the append-only record
// array doubles as the frontier queue -- "popping the next layer" is
// advancing an id range, and spilling the frontier is spilling the
// cold prefix of this array.
//
// SPILL FORMAT ("KSASPILL-1", the binary sibling of the KSARUN-1 text
// format in sim/serialize.hpp): an 8-byte magic "KSASPILL" followed by
// records of three little-endian fields (u64 parent, u32 stepper, u32
// delivered), 16 bytes each, at file offset 8 + 16*id.  Fixed-size
// records make spilled nodes random-access (a seek, not a scan), which
// re-materialization depends on.
//
// CONCURRENCY.  Appends happen only in the sequential merge phase;
// parallel expansion phases only read.  RAM-window reads are plain
// const reads of a vector that no one mutates during the phase; spill
// reads go through per-worker Reader objects, each owning its private
// file handle.  No locks anywhere -- phase separation is the protocol.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "store/store_options.hpp"

namespace ksa::store {

/// One frontier node, delta-encoded against its parent.  The root is
/// record 0 with parent == 0 and stepper == 0 (no real step has
/// stepper 0: ProcessIds are 1-based).
struct DeltaRecord {
    std::uint64_t parent = 0;
    std::uint32_t stepper = 0;
    std::uint32_t delivered = 0;
};

class DeltaStore {
  public:
    explicit DeltaStore(const StoreOptions& opt);
    ~DeltaStore();
    DeltaStore(const DeltaStore&) = delete;
    DeltaStore& operator=(const DeltaStore&) = delete;

    /// Appends one record; returns its id (== previous size()).  May
    /// spill the cold window prefix to disk when the RAM budget is
    /// exceeded.  Sequential-merge-phase only.
    std::uint64_t append(const DeltaRecord& rec);

    std::uint64_t size() const { return flushed_ + window_.size(); }
    std::uint64_t spilled_records() const { return flushed_; }
    std::uint64_t spill_bytes() const {
        return flushed_ * sizeof(DeltaRecord);
    }
    std::size_t resident_bytes() const {
        return window_.capacity() * sizeof(DeltaRecord);
    }
    const std::string& spill_path() const { return path_; }

    /// Per-worker random-access reader.  RAM-window hits are lock-free
    /// const reads; spilled ids are read through this reader's private
    /// ifstream.  Valid only while the store outlives it; must not be
    /// used concurrently with append().
    class Reader {
      public:
        explicit Reader(const DeltaStore& store) : store_(&store) {}
        DeltaRecord get(std::uint64_t id);
        std::uint64_t spill_reads() const { return spill_reads_; }

      private:
        const DeltaStore* store_;
        std::ifstream in_;  ///< lazily opened on the first spilled read
        std::uint64_t spill_reads_ = 0;
    };

  private:
    void spill_window();

    std::size_t max_window_records_;  ///< 0 = unbounded (never spill)
    std::string dir_;
    /// Records [flushed_, flushed_ + window_.size()); ids below
    /// flushed_ live in the spill file.
    std::vector<DeltaRecord> window_;
    std::uint64_t flushed_ = 0;
    std::ofstream out_;
    std::string path_;  ///< empty until the first spill
};

}  // namespace ksa::store
