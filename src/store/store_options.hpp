#pragma once
// Switchboard for the out-of-core exploration store (src/store/).
//
// Mirrors core/reduction_options.hpp: an ordinary public header the
// explorer config embeds, so callers (benches, tests, tools) can size
// the store without including the store internals.  Every knob here
// trades CPU or resident memory for the other -- NONE of them may
// change any exploration result.  The equivalence suite runs the same
// exploration across shard counts, spill budgets and cache sizes and
// requires byte-identical ExploreResults.

#include <cstddef>
#include <string>

namespace ksa::store {

/// Sizing knobs for the sharded visited store, the delta/spill frontier
/// and the re-materialization caches.  Defaults are tuned so that the
/// toy-scale explorations of the test suite never touch disk and carry
/// negligible constant overhead, while a 10^7-state run stays inside a
/// few hundred MB of resident memory.
struct StoreOptions {
    /// log2 of the visited-store shard count.  A shard is the unit of
    /// exclusive ownership during a parallel dedup batch (one task per
    /// shard -- no locks, no atomics, deterministic per-shard insertion
    /// order), so more shards = more dedup parallelism and smaller
    /// rehash pauses.  Results are identical for every value.
    int shard_bits = 4;
    /// Bloom-filter budget of the probabilistic tier, in bits per
    /// stored key (~10 bits/key = ~1% false-positive rate at design
    /// load).  0 disables the filter tier entirely (every probe goes
    /// to the exact table; counters then read 0).
    int filter_bits_per_key = 10;
    /// Resident-byte budget of the delta frontier window.  Once the
    /// in-RAM tail of the append-only delta store exceeds this, cold
    /// records spill to disk and are re-read on demand during
    /// re-materialization.  0 = never spill.
    std::size_t frontier_ram_bytes = std::size_t(64) << 20;
    /// Frontier nodes expanded per parallel block.  Bounds the
    /// transient expansion buffers (candidate keys, verdicts) of one
    /// BFS layer regardless of layer width; block boundaries do not
    /// affect results because blocks are merged strictly in order.
    std::size_t expand_block = 8192;
    /// Directory for spill files; "" = std::filesystem::temp_directory_path().
    /// The file is created lazily on first spill and removed on
    /// destruction, so explorations that fit in RAM never touch disk.
    std::string spill_dir;
};

}  // namespace ksa::store
