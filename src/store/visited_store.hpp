#pragma once
// Two-tier digest-sharded visited store (doc/performance.md §6).
//
// The explorer's visited set used to be one std::set<Digest128>: ~50+
// bytes and several cache misses per state, one global structure every
// insertion serializes through.  This store splits the key space into
// 2^s shards by digest prefix; each shard is a bloom filter (the
// probabilistic tier -- answers "definitely new" without touching the
// exact structure) in front of an open-addressing table of raw
// Digest128 keys (~16 bytes per slot, one probe line in the common
// case).
//
// DETERMINISM.  A parallel dedup batch partitions the candidate keys
// by shard and hands each shard's sub-sequence -- in ascending global
// candidate order -- to exactly one task.  A shard is therefore owned
// exclusively for the duration of the batch: no locks, no atomics, and
// each shard observes its candidates in the same order the sequential
// merge would have inserted them.  Keys of different shards never
// interact (they can never be equal), so the batch's verdict vector is
// byte-identical to sequential insertion for every thread count, every
// shard count and every block size.  The filter tier is deterministic
// too (pure functions of the key stream), so the tier-hit counters are
// themselves reproducible and are surfaced in ExploreResult.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/digest.hpp"
#include "store/store_options.hpp"

namespace ksa::exec {
class TaskScheduler;
}  // namespace ksa::exec

namespace ksa::store {

/// Per-shard blocked bloom filter over Digest128 keys.  Probe indices
/// are derived from the two 64-bit lanes by double hashing -- the key
/// IS the hash (StateHasher output), so no re-hashing happens here.
/// Grows by rebuild from the exact table when the shard outgrows the
/// designed bits-per-key budget (see ExactShard::maybe_grow_filter).
class BloomFilter {
  public:
    /// `bits` is rounded up to a power of two (minimum 64).
    explicit BloomFilter(std::size_t bits = 64);

    void insert(const Digest128& key);
    bool maybe_contains(const Digest128& key) const;
    std::size_t bit_capacity() const { return mask_ + 1; }
    std::size_t resident_bytes() const { return words_.capacity() * 8; }

  private:
    static constexpr int kProbes = 6;
    std::vector<std::uint64_t> words_;
    std::uint64_t mask_ = 0;  ///< bit_capacity - 1
};

/// One shard: bloom tier + exact open-addressing tier + tier counters.
/// Not thread-safe by design -- the batch protocol above guarantees
/// exclusive ownership; sequential callers own every shard trivially.
class VisitedShard {
  public:
    explicit VisitedShard(int filter_bits_per_key);

    /// Inserts `key` unless present; returns true iff it was new.
    bool insert(const Digest128& key);
    bool contains(const Digest128& key) const;

    std::size_t size() const { return size_ + (has_zero_ ? 1 : 0); }
    std::uint64_t filter_negatives() const { return filter_negatives_; }
    std::uint64_t filter_false_positives() const { return filter_fp_; }
    std::size_t resident_bytes() const {
        return slots_.capacity() * sizeof(Digest128) + filter_.resident_bytes();
    }

  private:
    void grow();
    bool exact_contains(const Digest128& key) const;
    /// Exact-tier insert of a key known to be absent.
    void exact_insert_new(const Digest128& key);

    BloomFilter filter_;
    int filter_bits_per_key_;
    /// Open-addressing table, power-of-two capacity, linear probing on
    /// the low lane (shards key on the HIGH lane's prefix, so the low
    /// lane is an independent, well-mixed index).  The all-zero digest
    /// doubles as the empty-slot sentinel; a real all-zero key is
    /// tracked by has_zero_.
    std::vector<Digest128> slots_;
    std::size_t size_ = 0;  ///< non-zero keys stored
    bool has_zero_ = false;
    std::uint64_t filter_negatives_ = 0;
    std::uint64_t filter_fp_ = 0;
};

/// Aggregated tier counters of a store (all deterministic; see the
/// determinism note at the top of the file).
struct VisitedStats {
    std::size_t shards = 0;
    std::size_t size = 0;
    /// Probes the filter tier answered "definitely new" -- the hot path
    /// that never touched the exact table.
    std::uint64_t filter_negatives = 0;
    /// Probes the filter tier passed through but the exact table
    /// rejected: the filter's false positives (rate = fp / (fp + neg)).
    std::uint64_t filter_false_positives = 0;
    std::size_t resident_bytes = 0;
};

/// The sharded two-tier store.  Sequential insert() for roots and
/// simple callers; insert_batch() is the explorer's parallel dedup
/// phase.
class ShardedVisitedStore {
  public:
    explicit ShardedVisitedStore(const StoreOptions& opt);

    /// Sequential insert; returns true iff `key` was new.
    bool insert(const Digest128& key);
    bool contains(const Digest128& key) const;

    /// Parallel deduplication of one candidate batch: after the call,
    /// verdict[i] == 1 iff keys[i] was new (and is now stored), with
    /// within-batch duplicates resolved exactly as ascending-index
    /// sequential insertion would.  One task per shard on `sched`
    /// (work affinity: a shard never splits across workers).  Verdicts
    /// and counter updates are byte-identical for every thread count.
    void insert_batch(exec::TaskScheduler& sched,
                      const std::vector<Digest128>& keys,
                      std::vector<std::uint8_t>& verdict);

    std::size_t size() const;
    VisitedStats stats() const;

  private:
    std::size_t shard_of(const Digest128& key) const {
        // Top bits of the high lane: independent of both the exact
        // tier's probe index (low lane) and the bloom probes.
        return static_cast<std::size_t>(key.hi >> (64 - shard_bits_));
    }

    int shard_bits_;
    std::vector<VisitedShard> shards_;
    /// Batch scratch: per-shard candidate index lists, reused across
    /// batches (capacity persists; contents are rebuilt per call).
    std::vector<std::vector<std::uint32_t>> batch_index_;
};

}  // namespace ksa::store
