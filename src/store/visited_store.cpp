#include "store/visited_store.hpp"

#include <algorithm>

#include "exec/parallel_map.hpp"

namespace ksa::store {

namespace {

std::size_t round_up_pow2(std::size_t v, std::size_t floor) {
    std::size_t cap = floor;
    while (cap < v) cap <<= 1;
    return cap;
}

}  // namespace

// ---------------------------------------------------------------------
// BloomFilter

BloomFilter::BloomFilter(std::size_t bits) {
    const std::size_t cap = round_up_pow2(bits, 64);
    words_.assign(cap / 64, 0);
    mask_ = cap - 1;
}

void BloomFilter::insert(const Digest128& key) {
    // Double hashing over the two already-mixed 64-bit lanes; |1 keeps
    // the stride odd so every probe sequence covers the table.
    const std::uint64_t h1 = key.lo;
    const std::uint64_t h2 = key.hi | 1;
    for (int i = 0; i < kProbes; ++i) {
        const std::uint64_t bit =
                (h1 + static_cast<std::uint64_t>(i) * h2) & mask_;
        words_[bit >> 6] |= std::uint64_t(1) << (bit & 63);
    }
}

bool BloomFilter::maybe_contains(const Digest128& key) const {
    const std::uint64_t h1 = key.lo;
    const std::uint64_t h2 = key.hi | 1;
    for (int i = 0; i < kProbes; ++i) {
        const std::uint64_t bit =
                (h1 + static_cast<std::uint64_t>(i) * h2) & mask_;
        if ((words_[bit >> 6] & (std::uint64_t(1) << (bit & 63))) == 0)
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// VisitedShard

namespace {
constexpr std::size_t kInitialSlots = 64;  ///< power of two
constexpr Digest128 kEmptySlot{};          ///< all-zero sentinel
}  // namespace

VisitedShard::VisitedShard(int filter_bits_per_key)
    : filter_(filter_bits_per_key > 0
                      ? kInitialSlots * static_cast<std::size_t>(
                                                filter_bits_per_key)
                      : 64),
      filter_bits_per_key_(filter_bits_per_key),
      slots_(kInitialSlots, kEmptySlot) {}

bool VisitedShard::exact_contains(const Digest128& key) const {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = static_cast<std::size_t>(key.lo) & mask;;
         i = (i + 1) & mask) {
        if (slots_[i] == key) return true;
        if (slots_[i] == kEmptySlot) return false;
    }
}

void VisitedShard::exact_insert_new(const Digest128& key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(key.lo) & mask;
    while (!(slots_[i] == kEmptySlot)) i = (i + 1) & mask;
    slots_[i] = key;
    ++size_;
    // Grow at 70% load; rebuilding also re-sizes the bloom tier back
    // to its designed bits-per-key budget.
    if (size_ * 10 >= slots_.size() * 7) grow();
}

void VisitedShard::grow() {
    std::vector<Digest128> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmptySlot);
    const std::size_t mask = slots_.size() - 1;
    for (const Digest128& key : old) {
        if (key == kEmptySlot) continue;
        std::size_t i = static_cast<std::size_t>(key.lo) & mask;
        while (!(slots_[i] == kEmptySlot)) i = (i + 1) & mask;
        slots_[i] = key;
    }
    if (filter_bits_per_key_ > 0) {
        // Rebuild the filter for the doubled population from the exact
        // tier (bloom filters cannot be resized in place).  The rebuilt
        // filter is a pure function of the stored key SET, which is a
        // pure function of the insertion sequence -- determinism holds.
        filter_ = BloomFilter(slots_.size() *
                              static_cast<std::size_t>(filter_bits_per_key_));
        for (const Digest128& key : slots_)
            if (!(key == kEmptySlot)) filter_.insert(key);
        if (has_zero_) filter_.insert(kEmptySlot);
    }
}

bool VisitedShard::insert(const Digest128& key) {
    if (key == kEmptySlot) {
        if (has_zero_) return false;
        has_zero_ = true;
        if (filter_bits_per_key_ > 0) filter_.insert(key);
        return true;
    }
    if (filter_bits_per_key_ > 0) {
        if (!filter_.maybe_contains(key)) {
            // The hot path: definitely new, the exact tier is only
            // written, never probed.
            ++filter_negatives_;
            filter_.insert(key);
            exact_insert_new(key);
            return true;
        }
        if (exact_contains(key)) return false;  // true positive: a dup
        ++filter_fp_;
        filter_.insert(key);
        exact_insert_new(key);
        return true;
    }
    if (exact_contains(key)) return false;
    exact_insert_new(key);
    return true;
}

bool VisitedShard::contains(const Digest128& key) const {
    if (key == kEmptySlot) return has_zero_;
    if (filter_bits_per_key_ > 0 && !filter_.maybe_contains(key))
        return false;
    return exact_contains(key);
}

// ---------------------------------------------------------------------
// ShardedVisitedStore

ShardedVisitedStore::ShardedVisitedStore(const StoreOptions& opt)
    : shard_bits_(std::clamp(opt.shard_bits, 0, 16)) {
    const std::size_t count = std::size_t(1) << shard_bits_;
    shards_.reserve(count);
    for (std::size_t s = 0; s < count; ++s)
        shards_.emplace_back(opt.filter_bits_per_key);
    batch_index_.resize(count);
}

bool ShardedVisitedStore::insert(const Digest128& key) {
    return shards_[shard_bits_ == 0 ? 0 : shard_of(key)].insert(key);
}

bool ShardedVisitedStore::contains(const Digest128& key) const {
    return shards_[shard_bits_ == 0 ? 0 : shard_of(key)].contains(key);
}

void ShardedVisitedStore::insert_batch(exec::TaskScheduler& sched,
                                       const std::vector<Digest128>& keys,
                                       std::vector<std::uint8_t>& verdict) {
    verdict.assign(keys.size(), 0);
    for (auto& idx : batch_index_) idx.clear();
    for (std::size_t i = 0; i < keys.size(); ++i)
        batch_index_[shard_bits_ == 0 ? 0 : shard_of(keys[i])].push_back(
                static_cast<std::uint32_t>(i));
    // One task per shard (grain 1): a shard is owned by exactly one
    // worker for the whole batch, and processes its candidates in
    // ascending global index order -- the per-shard projection of the
    // sequential merge's insertion order.
    exec::parallel_map_grained(
            sched, shards_.size(), /*grain=*/1,
            [&](std::size_t s, int) -> std::uint8_t {
                VisitedShard& shard = shards_[s];
                for (const std::uint32_t i : batch_index_[s])
                    // Per-index slots in disguise: batch_index_ holds
                    // disjoint index sets per shard (a key has exactly
                    // one shard), so no two tasks ever touch the same
                    // verdict element.
                    // ksa-lint: allow(parallel-capture-mutation)
                    verdict[i] = shard.insert(keys[i]) ? 1 : 0;
                return 0;
            },
            /*min_parallel=*/2);
}

std::size_t ShardedVisitedStore::size() const {
    std::size_t total = 0;
    for (const VisitedShard& s : shards_) total += s.size();
    return total;
}

VisitedStats ShardedVisitedStore::stats() const {
    VisitedStats st;
    st.shards = shards_.size();
    for (const VisitedShard& s : shards_) {
        st.size += s.size();
        st.filter_negatives += s.filter_negatives();
        st.filter_false_positives += s.filter_false_positives();
        st.resident_bytes += s.resident_bytes();
    }
    return st;
}

}  // namespace ksa::store
