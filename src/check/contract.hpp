#pragma once
// Runtime contract checking (the ksa-verify contract layer).
//
// Every theorem the repository reproduces is built from exact run
// restrictions and pastings; the constructions are only sound if the
// model invariants they assume actually hold at runtime (block
// disjointness, no delivery to crashed processes, write-once decisions,
// failure-detector history consistency, ...).  The macros below state
// those invariants at the point where they must hold:
//
//   KSA_REQUIRE(cond, msg)    -- precondition: the *caller* broke the
//                                contract.  Throw policy raises UsageError.
//   KSA_ENSURE(cond, msg)     -- postcondition: *this* component failed to
//                                deliver.  Throw policy raises SimulationBug.
//   KSA_INVARIANT(cond, msg)  -- internal consistency.  Throw policy
//                                raises SimulationBug.
//
// The reaction to a violated contract is a process-global policy:
//
//   Policy::kThrow (default) -- raise the exception above; this is the
//       historical behavior of require()/invariant() in sim/types.hpp
//       and what the test-suite expects.
//   Policy::kAbort -- print the violation to stderr and abort().  Use
//       under sanitizers / fuzzing, where an exception could be swallowed
//       by a driver and the most valuable artifact is the core dump.
//   Policy::kCount -- record the violation and continue.  Survey mode:
//       run a large batch and read violation_count() afterwards.  NOTE:
//       execution continues past the failed check, so the code after it
//       must not rely on the condition -- use only for read-only audits.
//
// The policy is process-global on purpose: it is an execution-
// environment property (like a sanitizer), not a per-call-site one.
// Use PolicyGuard to scope a change.  Checks may fire from the exec
// layer's pool threads (the explorer steps Systems in parallel), so
// the policy/counter are atomics and the last-violation record is
// mutex-guarded; set_policy itself should still be called from the
// main thread between parallel regions -- scoping a policy change
// around a concurrently-running sweep is a caller bug.

#include <cstddef>
#include <optional>
#include <string>

namespace ksa::check {

/// Reaction to a violated contract.  See file comment.
enum class Policy { kThrow, kAbort, kCount };

/// Which macro fired.
enum class ContractKind { kRequire, kEnsure, kInvariant };

/// Renders "require" / "ensure" / "invariant".
const char* to_string(ContractKind kind);

/// A recorded contract violation.
struct Violation {
    ContractKind kind = ContractKind::kInvariant;
    std::string expression;  ///< the stringized condition
    std::string file;        ///< __FILE__ of the check
    int line = 0;            ///< __LINE__ of the check
    std::string message;     ///< the human explanation

    /// "file:line: require(expr) violated: message".
    std::string to_string() const;
};

/// Current process-global policy (initially Policy::kThrow).
Policy policy() noexcept;

/// Sets the process-global policy.
void set_policy(Policy policy) noexcept;

/// Number of violations recorded since the last reset.  Counts every
/// fired check under kCount; under kThrow/kAbort the count still
/// increments before the throw/abort (so tests can assert on it).
std::size_t violation_count() noexcept;

/// The most recent violation, if any was recorded since the last reset.
std::optional<Violation> last_violation();

/// Resets the counter and the recorded last violation.
void reset_violations() noexcept;

/// RAII scope for a temporary policy change (tests, survey passes).
/// Resets the violation log on entry and restores the previous policy
/// on exit.
class PolicyGuard {
public:
    explicit PolicyGuard(Policy scoped) : previous_(policy()) {
        set_policy(scoped);
        reset_violations();
    }
    ~PolicyGuard() { set_policy(previous_); }

    PolicyGuard(const PolicyGuard&) = delete;
    PolicyGuard& operator=(const PolicyGuard&) = delete;

private:
    Policy previous_;
};

/// Backend of the macros.  Records the violation, then reacts according
/// to the current policy (throw UsageError/SimulationBug, abort, or
/// return normally under kCount).
void report_violation(ContractKind kind, const char* expression,
                      const char* file, int line, const std::string& message);

}  // namespace ksa::check

// The macros.  `cond` is evaluated exactly once; `msg` is evaluated only
// on violation (so it may build a std::string without a hot-path cost).
#define KSA_CONTRACT_CHECK_(kind, cond, msg)                                 \
    do {                                                                     \
        if (!(cond))                                                         \
            ::ksa::check::report_violation((kind), #cond, __FILE__,          \
                                           __LINE__, (msg));                 \
    } while (false)

/// Precondition: the caller must establish `cond` before the call.
#define KSA_REQUIRE(cond, msg) \
    KSA_CONTRACT_CHECK_(::ksa::check::ContractKind::kRequire, cond, msg)

/// Postcondition: this component promises `cond` on exit.
#define KSA_ENSURE(cond, msg) \
    KSA_CONTRACT_CHECK_(::ksa::check::ContractKind::kEnsure, cond, msg)

/// Internal invariant: `cond` must hold at this program point.
#define KSA_INVARIANT(cond, msg) \
    KSA_CONTRACT_CHECK_(::ksa::check::ContractKind::kInvariant, cond, msg)
