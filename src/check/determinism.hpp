#pragma once
// Determinism auditing (the ksa-verify replay layer).
//
// sim/system.hpp promises that executions are *bit-identical* given the
// same (algorithm, inputs, plan, oracle, choice sequence).  Every proof
// artifact in core/ -- Theorem 1's reduction, the Lemma 11/12 pastings,
// the Theorem 2/10 partition adversaries -- silently assumes that
// promise; a single source of hidden nondeterminism (an unordered
// container scan, an unseeded RNG, uninitialized state folded into a
// digest) invalidates the whole construction without any test failing.
//
// The auditor mechanically enforces the promise along both axes:
//
//   * audit_replay: extract the recorded Run's exact StepChoice sequence
//     (sim/serialize.hpp schedule_of()), re-execute it through the
//     step-wise System::apply_choice API against a fresh System (and a
//     fresh oracle from the factory), and byte-compare the two
//     serialized traces.  Catches nondeterministic *behaviors*, oracles
//     and engine bookkeeping.
//
//   * audit_scheduler: execute the same configuration twice with two
//     fresh scheduler instances from a factory and byte-compare the
//     traces.  Catches nondeterministic *schedulers* (the adversary is
//     part of the trusted base: a scheduler that consults global RNG
//     state or container hash order produces unreproducible
//     counterexample runs).
//
// Byte comparison deliberately goes through the KSARUN-1 text format of
// sim/serialize.hpp: it covers every field any validator consumes, and a
// divergence report quotes the first differing line, which names the
// step, field and value -- a far better debugging artifact than a bool.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/fd_oracle.hpp"
#include "sim/run.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"

namespace ksa::check {

/// Produces a fresh oracle equivalent to the one used for the original
/// execution.  Empty factory means "the algorithm uses no detector".
/// Oracles are stateful (e.g. StableLeaders), so the auditor must not
/// reuse the original instance.
using OracleFactory = std::function<std::unique_ptr<FdOracle>()>;

/// Produces a fresh scheduler instance for one execution.
using SchedulerFactory = std::function<std::unique_ptr<Scheduler>()>;

/// Outcome of a determinism audit.
struct ReplayReport {
    bool deterministic = true;
    /// Empty when deterministic; otherwise a description of the first
    /// divergence ("line N: `...` vs `...`") or of a replay failure
    /// (e.g. the replayed System rejected a recorded choice).
    std::string divergence;
    /// 0-based index of the first differing line of the serialized
    /// traces; npos when the traces are equal or replay failed earlier.
    static constexpr std::size_t kNoLine = static_cast<std::size_t>(-1);
    std::size_t first_diff_line = kNoLine;

    std::string to_string() const;
};

/// See file comment.
class DeterminismAuditor {
public:
    /// `oracle_factory` may be empty iff the algorithm does not query a
    /// failure detector.  `limits` bounds the re-executions.
    explicit DeterminismAuditor(const Algorithm& algorithm,
                                OracleFactory oracle_factory = {},
                                ExecutionLimits limits = {});

    /// Replays `run`'s recorded choice sequence step-wise on a fresh
    /// System and byte-compares the serialized traces.
    ReplayReport audit_replay(const Run& run) const;

    /// Executes the configuration twice with fresh schedulers from
    /// `make_scheduler` and byte-compares the serialized traces.
    ReplayReport audit_scheduler(int n, const std::vector<Value>& inputs,
                                 const FailurePlan& plan,
                                 const SchedulerFactory& make_scheduler) const;

private:
    const Algorithm* algorithm_;
    OracleFactory oracle_factory_;
    ExecutionLimits limits_;
};

/// One-shot convenience: execute with a fresh scheduler, then verify the
/// produced run replays bit-identically.  Returns the report of the
/// replay audit.
ReplayReport audit_determinism(const Algorithm& algorithm, int n,
                               const std::vector<Value>& inputs,
                               const FailurePlan& plan, Scheduler& scheduler,
                               const OracleFactory& oracle_factory = {},
                               ExecutionLimits limits = {});

/// Diff helper shared by the audits (exposed for tests): byte-compares
/// two serialized traces and fills a report quoting the first differing
/// line.
ReplayReport compare_traces(const std::string& expected,
                            const std::string& actual);

}  // namespace ksa::check
