#include "check/contract.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sim/types.hpp"

namespace ksa::check {

namespace {

// Process-global contract state.  The engine is single-threaded (see the
// file comment in contract.hpp); plain statics keep the hot path to one
// predictable branch.
Policy g_policy = Policy::kThrow;
std::size_t g_count = 0;
std::optional<Violation> g_last;

}  // namespace

const char* to_string(ContractKind kind) {
    switch (kind) {
        case ContractKind::kRequire: return "require";
        case ContractKind::kEnsure: return "ensure";
        case ContractKind::kInvariant: return "invariant";
    }
    return "contract";
}

std::string Violation::to_string() const {
    std::ostringstream out;
    out << file << ':' << line << ": " << check::to_string(kind) << '('
        << expression << ") violated: " << message;
    return out.str();
}

Policy policy() noexcept { return g_policy; }

void set_policy(Policy policy) noexcept { g_policy = policy; }

std::size_t violation_count() noexcept { return g_count; }

std::optional<Violation> last_violation() { return g_last; }

void reset_violations() noexcept {
    g_count = 0;
    g_last.reset();
}

void report_violation(ContractKind kind, const char* expression,
                      const char* file, int line, const std::string& message) {
    Violation v;
    v.kind = kind;
    v.expression = expression;
    v.file = file;
    v.line = line;
    v.message = message;
    ++g_count;
    g_last = v;

    switch (g_policy) {
        case Policy::kThrow:
            if (kind == ContractKind::kRequire) throw UsageError(message);
            throw SimulationBug(v.to_string());
        case Policy::kAbort:
            std::fprintf(stderr, "ksa contract violation: %s\n",
                         v.to_string().c_str());
            std::fflush(stderr);
            std::abort();
        case Policy::kCount:
            return;  // survey mode: record and continue
    }
}

}  // namespace ksa::check
