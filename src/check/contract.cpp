#include "check/contract.hpp"

#include <atomic>  // ksa-lint: allow(threading-outside-exec) -- see below
#include <cstdio>
#include <cstdlib>
#include <mutex>  // ksa-lint: allow(threading-outside-exec) -- see below
#include <sstream>

#include "sim/types.hpp"

namespace ksa::check {

namespace {

// Process-global contract state.  Contract checks fire inside behaviors
// and Systems, which the explorer's layer-parallel BFS steps from pool
// threads (src/exec/) -- so this bookkeeping must be thread-safe.  It
// is bookkeeping, not a parallelism construct: relaxed atomics for the
// policy and counter keep the hot path at one load plus one predictable
// branch, and a mutex guards only the rarely-written last-violation
// record.  This is the sanctioned use of the lint escape hatch; actual
// parallelism still belongs in src/exec/ alone.
// ksa-lint: allow(threading-outside-exec)
std::atomic<Policy> g_policy{Policy::kThrow};  // ksa: thread_safe
// ksa-lint: allow(threading-outside-exec)
std::atomic<std::size_t> g_count{0};  // ksa: thread_safe
// ksa-lint: allow(threading-outside-exec)
std::mutex g_last_mutex;
std::optional<Violation> g_last;  // ksa: guarded_by(g_last_mutex)

}  // namespace

const char* to_string(ContractKind kind) {
    switch (kind) {
        case ContractKind::kRequire: return "require";
        case ContractKind::kEnsure: return "ensure";
        case ContractKind::kInvariant: return "invariant";
    }
    return "contract";
}

std::string Violation::to_string() const {
    std::ostringstream out;
    out << file << ':' << line << ": " << check::to_string(kind) << '('
        << expression << ") violated: " << message;
    return out.str();
}

Policy policy() noexcept { return g_policy.load(std::memory_order_relaxed); }

void set_policy(Policy policy) noexcept {
    g_policy.store(policy, std::memory_order_relaxed);
}

std::size_t violation_count() noexcept {
    return g_count.load(std::memory_order_relaxed);
}

std::optional<Violation> last_violation() {
    // ksa-lint: allow(threading-outside-exec)
    std::lock_guard<std::mutex> lock(g_last_mutex);
    return g_last;
}

void reset_violations() noexcept {
    g_count.store(0, std::memory_order_relaxed);
    // ksa-lint: allow(threading-outside-exec)
    std::lock_guard<std::mutex> lock(g_last_mutex);
    g_last.reset();
}

void report_violation(ContractKind kind, const char* expression,
                      const char* file, int line, const std::string& message) {
    Violation v;
    v.kind = kind;
    v.expression = expression;
    v.file = file;
    v.line = line;
    v.message = message;
    g_count.fetch_add(1, std::memory_order_relaxed);
    {
        // ksa-lint: allow(threading-outside-exec)
        std::lock_guard<std::mutex> lock(g_last_mutex);
        g_last = v;
    }

    switch (g_policy.load(std::memory_order_relaxed)) {
        case Policy::kThrow:
            if (kind == ContractKind::kRequire) throw UsageError(message);
            throw SimulationBug(v.to_string());
        case Policy::kAbort:
            std::fprintf(stderr, "ksa contract violation: %s\n",
                         v.to_string().c_str());
            std::fflush(stderr);
            std::abort();
        case Policy::kCount:
            return;  // survey mode: record and continue
    }
}

}  // namespace ksa::check
