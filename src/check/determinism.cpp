#include "check/determinism.hpp"

#include <sstream>

#include "check/contract.hpp"
#include "sim/serialize.hpp"

namespace ksa::check {

namespace {

/// Splits `text` at newlines (the KSARUN-1 format is line-oriented).
std::vector<std::string> lines_of(const std::string& text) {
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    return out;
}

}  // namespace

std::string ReplayReport::to_string() const {
    if (deterministic) return "deterministic (traces byte-identical)";
    return "NONDETERMINISM: " + divergence;
}

ReplayReport compare_traces(const std::string& expected,
                            const std::string& actual) {
    ReplayReport report;
    if (expected == actual) return report;
    report.deterministic = false;
    const std::vector<std::string> a = lines_of(expected);
    const std::vector<std::string> b = lines_of(actual);
    const std::size_t shared = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < shared; ++i) {
        if (a[i] != b[i]) {
            report.first_diff_line = i;
            std::ostringstream out;
            out << "trace line " << i + 1 << ": `" << a[i] << "` vs `" << b[i]
                << "`";
            report.divergence = out.str();
            return report;
        }
    }
    report.first_diff_line = shared;
    std::ostringstream out;
    out << "trace lengths differ: " << a.size() << " vs " << b.size()
        << " lines (first " << shared << " identical)";
    report.divergence = out.str();
    return report;
}

DeterminismAuditor::DeterminismAuditor(const Algorithm& algorithm,
                                       OracleFactory oracle_factory,
                                       ExecutionLimits limits)
    : algorithm_(&algorithm),
      oracle_factory_(std::move(oracle_factory)),
      limits_(limits) {
    KSA_REQUIRE(!algorithm.needs_failure_detector() || oracle_factory_,
                "DeterminismAuditor: algorithm queries a failure detector "
                "but no oracle factory given");
}

ReplayReport DeterminismAuditor::audit_replay(const Run& run) const {
    const std::string expected = run_to_string(run);
    const std::vector<StepChoice> schedule = schedule_of(run);

    std::unique_ptr<FdOracle> oracle;
    if (oracle_factory_) oracle = oracle_factory_();
    // Replay against the *static* plan: crash injections recorded in the
    // schedule's fault events re-extend it to the effective plan, exactly
    // as the original execution did.  The scheduler label is metadata the
    // stepping API cannot reproduce, so copy it for byte-identity.
    System replay(*algorithm_, run.n, run.inputs, run.static_plan(),
                  oracle.get());
    replay.set_scheduler_label(run.scheduler);

    std::size_t applied = 0;
    try {
        for (const StepChoice& choice : schedule) {
            replay.apply_choice(choice);
            ++applied;
        }
    } catch (const Error& e) {
        ReplayReport report;
        report.deterministic = false;
        std::ostringstream out;
        out << "replay rejected recorded choice " << applied + 1 << "/"
            << schedule.size() << ": " << e.what();
        report.divergence = out.str();
        return report;
    }
    Run replayed = replay.finish(run.stop);
    return compare_traces(expected, run_to_string(replayed));
}

ReplayReport DeterminismAuditor::audit_scheduler(
        int n, const std::vector<Value>& inputs, const FailurePlan& plan,
        const SchedulerFactory& make_scheduler) const {
    KSA_REQUIRE(static_cast<bool>(make_scheduler),
                "DeterminismAuditor::audit_scheduler: null scheduler factory");
    std::string traces[2];
    for (std::string& trace : traces) {
        std::unique_ptr<FdOracle> oracle;
        if (oracle_factory_) oracle = oracle_factory_();
        std::unique_ptr<Scheduler> scheduler = make_scheduler();
        KSA_REQUIRE(scheduler != nullptr,
                    "DeterminismAuditor::audit_scheduler: factory returned "
                    "no scheduler");
        System system(*algorithm_, n, inputs, plan, oracle.get());
        trace = run_to_string(system.execute(*scheduler, limits_));
    }
    return compare_traces(traces[0], traces[1]);
}

ReplayReport audit_determinism(const Algorithm& algorithm, int n,
                               const std::vector<Value>& inputs,
                               const FailurePlan& plan, Scheduler& scheduler,
                               const OracleFactory& oracle_factory,
                               ExecutionLimits limits) {
    DeterminismAuditor auditor(algorithm, oracle_factory, limits);
    std::unique_ptr<FdOracle> oracle;
    if (oracle_factory) oracle = oracle_factory();
    System system(algorithm, n, inputs, plan, oracle.get());
    Run run = system.execute(scheduler, limits);
    return auditor.audit_replay(run);
}

}  // namespace ksa::check
