// Quickstart: simulate k-set agreement protocols in a message-passing
// system, validate them against the problem spec, and run the paper's
// partitioning adversary.
//
//   $ ./quickstart
//
// Walks through: (1) running the FLP initial-crash consensus protocol on
// a fair schedule, (2) surviving initial crashes, (3) what the
// partitioning adversary does to a protocol that only achieves
// (f+1)-set agreement.

#include <iostream>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "core/kset_spec.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"
#include "sim/trace.hpp"

int main() {
    using namespace ksa;

    std::cout << "== 1. FLP initial-crash consensus, n = 5, fair schedule ==\n";
    auto consensus = algo::make_flp_consensus(5);
    {
        RoundRobinScheduler fair;
        Run run = execute_run(*consensus, 5, distinct_inputs(5), {}, fair);
        std::cout << run_summary(run) << "\n";
        core::expect_kset_agreement(run, 1);  // throws on violation
        std::cout << "   consensus holds: everyone decided "
                  << *run.decision_of(1) << "\n\n";
    }

    std::cout << "== 2. Two processes crash before taking a step ==\n";
    {
        FailurePlan plan;
        plan.set_initially_dead({2, 4});
        RandomScheduler random(/*seed=*/7);
        Run run = execute_run(*consensus, 5, distinct_inputs(5), plan, random);
        std::cout << run_summary(run) << "\n";
        core::expect_kset_agreement(run, 1);
        std::cout << "   still consensus, as Theorem 8 promises (1*5 > 2*2)\n\n";
    }

    std::cout << "== 3. The partitioning adversary vs. flooding, n = 4 ==\n";
    {
        // Flooding with threshold n-f = 2 solves only (f+1)-set
        // agreement; isolating {1,2} from {3,4} makes both halves decide
        // their own minimum -- two values, admissibly.
        auto flooding = algo::make_flooding(4, 2);
        PartitionScheduler adversary({{1, 2}, {3, 4}});
        Run run = execute_run(*flooding, 4, distinct_inputs(4), {}, adversary);
        print_trace(std::cout, run);
        std::cout << "   distinct decisions: "
                  << run.distinct_decisions().size()
                  << " (so flooding is NOT a consensus protocol)\n";
    }
    return 0;
}
