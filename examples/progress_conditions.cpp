// Section IV in practice: classifying protocols by T-independence.
//
// For each protocol in the library, checks which classic progress
// condition families (wait-freedom, obstruction-freedom, f-resilience,
// asymmetric wait-freedom of p1) it is T-independent for, by actually
// constructing the isolation runs of Definition 6.  Then demonstrates
// the bounded schedule explorer: the executable form of "checking
// whether a candidate algorithm allows runs that make k-set agreement
// impossible" (the remark after Theorem 1).

#include <iomanip>
#include <iostream>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "core/explorer.hpp"
#include "core/independence.hpp"
#include "sim/system.hpp"

namespace {

const char* mark(bool b) { return b ? "yes" : " - "; }

bool holds(const ksa::Algorithm& a, int n,
           const std::vector<std::vector<ksa::ProcessId>>& family) {
    return ksa::core::check_family_independence(a, n, ksa::distinct_inputs(n),
                                                {}, family, {}, 400)
        .holds_for_all;
}

}  // namespace

int main() {
    using namespace ksa;
    const int n = 4;

    std::cout << "T-independence of the protocol zoo (n = " << n << ")\n\n";
    std::cout << std::left << std::setw(26) << "protocol" << std::setw(12)
              << "wait-free" << std::setw(14) << "obstr-free" << std::setw(14)
              << "1-resilient" << std::setw(14) << "2-resilient"
              << "asym(p1)\n";

    algo::TrivialWaitFree trivial;
    algo::FloodingKSet flood1(3);  // f = 1
    algo::FloodingKSet flood2(2);  // f = 2
    algo::InitialCliqueKSet flp(3);

    const Algorithm* algos[] = {&trivial, &flood1, &flood2, &flp};
    for (const Algorithm* a : algos) {
        std::cout << std::left << std::setw(26) << a->name() << std::setw(12)
                  << mark(holds(*a, n, core::wait_free_family(n)))
                  << std::setw(14)
                  << mark(holds(*a, n, core::obstruction_free_family(n)))
                  << std::setw(14)
                  << mark(holds(*a, n, core::f_resilient_family(n, 1)))
                  << std::setw(14)
                  << mark(holds(*a, n, core::f_resilient_family(n, 2)))
                  << mark(holds(*a, n, core::asymmetric_family(n, 1))) << "\n";
    }

    std::cout << "\nQuick candidate triage with the schedule explorer:\n";
    std::cout << "  can flooding(threshold 2) on 3 processes be a consensus\n"
              << "  protocol?  Exhaust all schedules:\n";
    core::ExploreConfig cfg;
    cfg.n = 3;
    cfg.inputs = {10, 20, 30};
    cfg.k = 1;
    cfg.max_depth = 10;
    core::ExploreResult result = core::explore_schedules(flood2, cfg);
    std::cout << "  " << result.summary() << "\n";
    if (result.violation_found) {
        std::cout << "  => a " << result.witness.size()
                  << "-step schedule already forces two decision values;\n"
                  << "     per the remark after Theorem 1, the candidate is "
                     "flawed.\n";
    }
    return 0;
}
