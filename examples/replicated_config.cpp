// Scenario: bounded-divergence configuration agreement in a cluster
// whose nodes may fail on boot.
//
// A fleet of n replicas boots with possibly different candidate
// configuration epochs (the proposal values).  Nodes that fail during
// boot never take a step -- exactly the initial-crash failure model of
// Section VI.  The operator can tolerate the fleet converging to at most
// k different epochs (each epoch group re-syncs internally later), and
// wants the largest boot-failure budget f for which that is guaranteed.
//
// Theorem 8 answers: k-set agreement with f initial crashes is solvable
// iff k*n > (k+1)*f.  This example sweeps the failure budget for a
// 12-node fleet, runs the generalized FLP protocol at the border, and
// demonstrates both sides of it empirically.

#include <iomanip>
#include <iostream>
#include <random>

#include "algo/initial_clique.hpp"
#include "core/bounds.hpp"
#include "core/kset_spec.hpp"
#include "core/theorem8.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

int main() {
    using namespace ksa;
    const int n = 12;

    std::cout << "Fleet size n = " << n
              << ": minimal divergence k per boot-failure budget f\n";
    std::cout << std::setw(4) << "f" << std::setw(10) << "min k"
              << std::setw(12) << "L = n-f" << std::setw(22)
              << "observed divergence\n";

    std::mt19937_64 rng(2026);
    for (int f = 1; f < n; ++f) {
        const int k = core::theorem8_min_k(n, f);

        // Run 20 boot scenarios with random crash sets of size <= f.
        int worst = 0;
        for (int trial = 0; trial < 20; ++trial) {
            std::vector<ProcessId> all;
            for (ProcessId p = 1; p <= n; ++p) all.push_back(p);
            std::shuffle(all.begin(), all.end(), rng);
            std::vector<ProcessId> dead(
                all.begin(),
                all.begin() + static_cast<long>(rng() % (f + 1)));

            core::Theorem8Trial t =
                core::theorem8_trial(n, f, k, dead, rng());
            if (!t.check.ok()) {
                std::cout << "UNEXPECTED spec violation at f=" << f << "\n";
                return 1;
            }
            worst = std::max(worst, t.distinct_decisions);
        }
        std::cout << std::setw(4) << f << std::setw(10) << k << std::setw(12)
                  << n - f << std::setw(14) << worst << " <= " << k << "\n";
    }

    std::cout << "\nAt the border (k*n = (k+1)*f) the guarantee breaks:\n";
    // n=12, k=2, f=8: the k+1-way partition pasting yields 3 epochs.
    auto algorithm = algo::make_flp_kset(12, 8);
    core::Theorem8Border border = core::theorem8_border(*algorithm, 12, 2);
    std::cout << "  " << border.summary() << "\n";
    std::cout << "  => a crash-free but partition-delayed boot can leave "
              << border.distinct_decisions
              << " config epochs where 2 were required.\n";
    return border.violation ? 0 : 1;
}
