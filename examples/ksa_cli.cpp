// ksa_cli -- command-line frontend over the library.
//
//   ksa_cli run --algo <name> --n <n> [--f <f>] [--scheduler rr|random|
//           lockstep] [--seed <s>] [--dead p1,p2,...] [--k <k>] [--trace]
//       executes one run and validates it against the k-set spec;
//   ksa_cli theorem2 --n <n> --f <f> --k <k>
//       runs the Theorem 2 certification against the flooding candidate;
//   ksa_cli theorem10 --n <n> --k <k>
//       runs the Theorem 10 construction against the (Sigma_k, Omega_k)
//       candidate, including the Lemma 9 history re-validation;
//   ksa_cli border --n <n>
//       prints the solvability map;
//   ksa_cli explore --algo <name> --n <n> --k <k> [--depth <d>]
//       exhausts all schedules up to the bound and reports violations;
//   ksa_cli dump --algo <name> --n <n> [--seed <s>]
//       executes a run and prints it in the KSARUN serialization format;
//   ksa_cli dot --algo <name> --n <n> [--seed <s>] [--trace]
//       executes a run and prints its Graphviz space-time diagram
//       (--trace adds state digests to the nodes).
//
// theorem2/theorem10 accept --report for a markdown proof transcript.
//
// Algorithms: flooding (threshold n-f), flp (initial-clique, L = n-f),
// trivial, paxos (needs no flags beyond n), ranked.

#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "algo/paxos_consensus.hpp"
#include "algo/quorum_leader_kset.hpp"
#include "algo/ranked_set_agreement.hpp"
#include "core/border_map.hpp"
#include "core/explorer.hpp"
#include "core/kset_spec.hpp"
#include "core/report.hpp"
#include "core/theorem10.hpp"
#include "core/theorem2.hpp"
#include "fd/sources.hpp"
#include "sim/dot_export.hpp"
#include "sim/schedulers.hpp"
#include "sim/serialize.hpp"
#include "sim/system.hpp"
#include "sim/trace.hpp"

namespace {

using namespace ksa;

struct Args {
    std::string command;
    std::map<std::string, std::string> flags;
    bool has(const std::string& key) const { return flags.count(key) != 0; }
    std::string get(const std::string& key, const std::string& fallback) const {
        auto it = flags.find(key);
        return it == flags.end() ? fallback : it->second;
    }
    int geti(const std::string& key, int fallback) const {
        auto it = flags.find(key);
        return it == flags.end() ? fallback : std::stoi(it->second);
    }
};

Args parse(int argc, char** argv) {
    Args args;
    if (argc >= 2) args.command = argv[1];
    for (int i = 2; i + 1 < argc; i += 2) {
        std::string key = argv[i];
        if (key.rfind("--", 0) == 0) key = key.substr(2);
        args.flags[key] = argv[i + 1];
    }
    // Boolean flags (no value) -- handled by rescanning.
    for (int i = 2; i < argc; ++i) {
        std::string key = argv[i];
        if (key == "--trace") args.flags["trace"] = "1";
        if (key == "--report") args.flags["report"] = "1";
    }
    return args;
}

std::vector<ProcessId> parse_ids(const std::string& csv) {
    std::vector<ProcessId> out;
    std::istringstream in(csv);
    std::string tok;
    while (std::getline(in, tok, ','))
        if (!tok.empty()) out.push_back(std::stoi(tok));
    return out;
}

std::unique_ptr<Algorithm> make_algorithm(const Args& args, int n, int f) {
    const std::string name = args.get("algo", "flooding");
    if (name == "flooding") return algo::make_flooding(n, f);
    if (name == "flp") return algo::make_flp_kset(n, f);
    if (name == "trivial") return std::make_unique<algo::TrivialWaitFree>();
    if (name == "paxos") return std::make_unique<algo::PaxosConsensus>();
    if (name == "ranked")
        return std::make_unique<algo::RankedSetAgreement>();
    throw UsageError("unknown --algo '" + name +
                     "' (flooding|flp|trivial|paxos|ranked)");
}

int cmd_run(const Args& args) {
    const int n = args.geti("n", 5);
    const int f = args.geti("f", 1);
    const int k = args.geti("k", 1);
    auto algorithm = make_algorithm(args, n, f);

    FailurePlan plan;
    if (args.has("dead")) plan.set_initially_dead(parse_ids(args.flags.at("dead")));

    std::unique_ptr<FdOracle> oracle;
    if (algorithm->needs_failure_detector()) {
        ProcessId leader = 0;
        for (ProcessId p = 1; p <= n && leader == 0; ++p)
            if (!plan.is_faulty(p)) leader = p;
        oracle = fd::make_benign_sigma_omega(n, plan, {leader});
    }

    std::unique_ptr<Scheduler> scheduler;
    const std::string sched_name = args.get("scheduler", "rr");
    if (sched_name == "rr")
        scheduler = std::make_unique<RoundRobinScheduler>();
    else if (sched_name == "random")
        scheduler = std::make_unique<RandomScheduler>(args.geti("seed", 1));
    else if (sched_name == "lockstep")
        scheduler = std::make_unique<LockstepScheduler>();
    else
        throw UsageError("unknown --scheduler (rr|random|lockstep)");

    Run run = execute_run(*algorithm, n, distinct_inputs(n), plan, *scheduler,
                          oracle.get());
    if (args.has("trace")) print_trace(std::cout, run);
    std::cout << run_summary(run) << "\n";
    auto check = core::check_kset_agreement(run, k);
    std::cout << "k-set spec (k=" << k << "): "
              << (check.ok() ? "satisfied" : "VIOLATED") << "\n";
    for (const auto& v : check.violations) std::cout << "  " << v << "\n";
    return check.ok() ? 0 : 2;
}

int cmd_theorem2(const Args& args) {
    const int n = args.geti("n", 7);
    const int f = args.geti("f", 4);
    const int k = args.geti("k", 2);
    algo::FloodingKSet candidate(n - f);
    core::Theorem2Result r = core::run_theorem2(candidate, n, f, k);
    if (args.has("report")) {
        std::cout << core::render_report(r);
    } else {
        std::cout << r.summary() << "\n";
        if (r.certificate.violation) {
            std::cout << "violating run:\n";
            print_trace(std::cout, r.certificate.violating);
        }
    }
    return r.certificate.complete() ? 0 : 2;
}

int cmd_theorem10(const Args& args) {
    const int n = args.geti("n", 6);
    const int k = args.geti("k", 3);
    algo::QuorumLeaderKSet candidate;
    core::Theorem10Result r = core::run_theorem10(candidate, n, k);
    if (args.has("report"))
        std::cout << core::render_report(r);
    else
        std::cout << r.summary() << "\n";
    return r.certificate.complete() && r.sigma_omega_validation.ok ? 0 : 2;
}

int cmd_border(const Args& args) {
    const int n = args.geti("n", 8);
    std::cout << "k = 1.." << n - 1 << "; S solvable, X impossible (easy "
              << "reduction), x topology-only\n";
    std::cout << "(Sigma_k,Omega_k): " << core::detector_line(n) << "\n";
    for (const core::BorderRow& row : core::border_map(n))
        std::cout << "f=" << row.f << "  initial:" << row.initial
                  << "  async:" << row.async_ << "\n";
    return 0;
}

int cmd_explore(const Args& args) {
    const int n = args.geti("n", 3);
    const int f = args.geti("f", 1);
    auto algorithm = make_algorithm(args, n, f);
    core::ExploreConfig cfg;
    cfg.n = n;
    cfg.inputs = distinct_inputs(n);
    cfg.k = args.geti("k", 1);
    cfg.max_depth = args.geti("depth", 10);
    if (args.has("dead")) cfg.plan.set_initially_dead(parse_ids(args.flags.at("dead")));
    core::ExploreResult r = core::explore_schedules(*algorithm, cfg);
    std::cout << r.summary() << "\n";
    if (r.violation_found) {
        ScriptedScheduler replay(r.witness);
        Run run = execute_run(*algorithm, n, cfg.inputs, cfg.plan, replay);
        print_trace(std::cout, run);
    }
    return 0;
}

int cmd_dot(const Args& args) {
    const int n = args.geti("n", 4);
    const int f = args.geti("f", 1);
    auto algorithm = make_algorithm(args, n, f);
    RandomScheduler sched(args.geti("seed", 1));
    Run run = execute_run(*algorithm, n, distinct_inputs(n), {}, sched);
    DotOptions options;
    options.show_digests = args.has("trace");
    run_to_dot(std::cout, run, options);
    return 0;
}

int cmd_dump(const Args& args) {
    const int n = args.geti("n", 4);
    const int f = args.geti("f", 1);
    auto algorithm = make_algorithm(args, n, f);
    RandomScheduler sched(args.geti("seed", 1));
    Run run = execute_run(*algorithm, n, distinct_inputs(n), {}, sched);
    write_run(std::cout, run);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        Args args = parse(argc, argv);
        if (args.command == "run") return cmd_run(args);
        if (args.command == "theorem2") return cmd_theorem2(args);
        if (args.command == "theorem10") return cmd_theorem10(args);
        if (args.command == "border") return cmd_border(args);
        if (args.command == "explore") return cmd_explore(args);
        if (args.command == "dump") return cmd_dump(args);
        if (args.command == "dot") return cmd_dot(args);
        std::cerr << "usage: ksa_cli "
                     "run|theorem2|theorem10|border|explore|dump|dot [flags]\n"
                     "(see the comment at the top of examples/ksa_cli.cpp)\n";
        return 1;
    } catch (const ksa::Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
