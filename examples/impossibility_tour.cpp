// A guided tour of the paper's impossibility machinery.
//
// Replays, with full commentary, what the Theorem 1 engine constructs
// when it is pointed at a concrete candidate algorithm:
//
//   Act I   -- Theorem 2: an f-resilient flooding protocol for (n,f,k) =
//              (7,4,2) is dismantled by the partitioning adversary.
//   Act II  -- Theorem 10: a (Sigma_k, Omega_k)-based protocol for
//              (n,k) = (6,3) is dismantled by the partition failure
//              detector of Definition 7, and the recorded detector
//              history is re-validated as a genuine (Sigma_3, Omega_3)
//              history (Lemma 9, executable).

#include <iostream>

#include "algo/flooding.hpp"
#include "algo/quorum_leader_kset.hpp"
#include "core/theorem10.hpp"
#include "core/theorem2.hpp"
#include "sim/trace.hpp"

namespace {

void show_certificate(const ksa::core::Theorem1Certificate& cert) {
    std::cout << "  condition (A): R(D) non-empty ............ "
              << (cert.condition_a ? "witnessed" : "FAILED") << "\n";
    std::cout << "  condition (B): alpha ~_D beta ............ "
              << (cert.condition_b ? "witnessed" : "FAILED") << "\n";
    std::cout << "  block values realized in beta:           { ";
    for (ksa::Value v : cert.block_values) std::cout << v << ' ';
    std::cout << "}\n";
    std::cout << "  condition (D): A|D ~_D full run .......... "
              << (cert.condition_d ? "witnessed" : "FAILED") << "\n";
    std::cout << "  consensus split inside <D>: .............. "
              << (cert.consensus_split ? "constructed" : "FAILED")
              << " -> D decides { ";
    for (ksa::Value v : cert.d_values) std::cout << v << ' ';
    std::cout << "}\n";
    std::cout << "  end-to-end violation: .................... "
              << (cert.violation ? "constructed" : "FAILED") << " -> { ";
    for (ksa::Value v : cert.violating_values) std::cout << v << ' ';
    std::cout << "} distinct decisions, k = " << cert.spec.k << "\n";
}

}  // namespace

int main() {
    using namespace ksa;

    std::cout << "ACT I -- Theorem 2 at (n, f, k) = (7, 4, 2)\n";
    std::cout << "  bound: k*(n-f) = 6 <= n-1 = 6, so impossibility bites.\n";
    algo::FloodingKSet flooding(3);  // an f-resilient candidate (threshold 3)
    core::Theorem2Result t2 = core::run_theorem2(flooding, 7, 4, 2);
    show_certificate(t2.certificate);
    std::cout << "  the violating run:\n";
    print_trace(std::cout, t2.certificate.violating);

    std::cout << "\nACT II -- Theorem 10 at (n, k) = (6, 3)\n";
    std::cout << "  blocks D_1 = {1}, D_2 = {2}; D = {3,4,5,6};"
              << " LD = {1, 3, 4}\n";
    algo::QuorumLeaderKSet candidate;
    core::Theorem10Result t10 = core::run_theorem10(candidate, 6, 3);
    show_certificate(t10.certificate);
    std::cout << "  Definition 7 history check:  "
              << (t10.partition_validation.ok ? "valid" : "INVALID") << "\n";
    std::cout << "  Lemma 9 ((Sigma_3,Omega_3) admissibility): "
              << (t10.sigma_omega_validation.ok ? "valid" : "INVALID") << "\n";
    std::cout << "  the violating run:\n";
    print_trace(std::cout, t10.certificate.violating);

    const bool ok = t2.certificate.complete() && t10.certificate.complete() &&
                    t10.partition_validation.ok &&
                    t10.sigma_omega_validation.ok;
    std::cout << "\n" << (ok ? "tour complete: every certificate verified"
                             : "TOUR FAILED")
              << "\n";
    return ok ? 0 : 1;
}
