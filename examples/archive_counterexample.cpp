// Archive a complete impossibility counterexample: the full evidence
// bundle a reviewer (or a future self) needs.
//
//   $ ./archive_counterexample [dir]
//
// Runs the Theorem 2 certification at (n, f, k) = (7, 4, 2) against the
// flooding candidate, then writes into `dir` (default "counterexample/"):
//
//   report.md    -- the markdown proof transcript,
//   violating.run -- the KSARUN serialization of the violating run
//                    (replayable with ScriptedScheduler + schedule_of),
//   violating.dot -- its Graphviz space-time diagram,
//   alpha.run / beta.run -- the (A) and (B) witness runs.
//
// Finishes by re-reading violating.run from disk and re-validating the
// k-agreement violation, demonstrating the round trip.

#include <filesystem>
#include <fstream>
#include <iostream>

#include "algo/flooding.hpp"
#include "core/kset_spec.hpp"
#include "core/report.hpp"
#include "core/theorem2.hpp"
#include "sim/dot_export.hpp"
#include "sim/serialize.hpp"

int main(int argc, char** argv) {
    using namespace ksa;
    const std::filesystem::path dir =
        argc > 1 ? argv[1] : "counterexample";
    std::filesystem::create_directories(dir);

    const int n = 7, f = 4, k = 2;
    algo::FloodingKSet candidate(n - f);
    core::Theorem2Result result = core::run_theorem2(candidate, n, f, k);
    if (!result.certificate.complete()) {
        std::cerr << "certification failed: " << result.summary() << "\n";
        return 1;
    }

    auto write = [&dir](const std::string& name, const std::string& body) {
        std::ofstream out(dir / name);
        out << body;
        std::cout << "  wrote " << (dir / name).string() << " (" << body.size()
                  << " bytes)\n";
    };
    std::cout << "archiving Theorem 2 counterexample at (n,f,k) = (" << n
              << "," << f << "," << k << ")\n";
    write("report.md", core::render_report(result));
    write("violating.run", run_to_string(result.certificate.violating));
    write("violating.dot", run_to_dot(result.certificate.violating));
    write("alpha.run", run_to_string(result.certificate.alpha));
    write("beta.run", run_to_string(result.certificate.beta));

    // Round trip: read the archived run back and re-check the violation.
    std::ifstream in(dir / "violating.run");
    Run restored = read_run(in);
    core::KSetCheck check = core::check_kset_agreement(restored, k);
    std::cout << "re-validated from disk: " << restored.distinct_decisions().size()
              << " distinct decisions, k-agreement "
              << (check.k_agreement ? "holds (?!)" : "violated, as archived")
              << "\n";
    return check.k_agreement ? 1 : 0;
}
