// E1 -- Theorem 2 / Corollary 5: the impossibility border
// k <= (n-1)/(n-f) for partially synchronous processes with asynchronous
// communication.
//
// For every (n, f, k) in the sweep, prints whether the bound applies
// and, when it does, runs the full Theorem 1 certification against the
// f-resilient flooding candidate: conditions (A), (B), (D), the
// consensus split inside <D>, and the assembled admissible run with
// more than k distinct decisions.  On the solvable side of the border
// (k >= f+1), flooding genuinely solves k-set agreement and the sweep
// reports the observed maximum of distinct decisions instead.
//
// Points are certified in parallel (exec/parallel_map.hpp) and printed
// sequentially in sweep order, so the output is byte-identical for
// every thread count.  `bench_theorem2_border [threads]` defaults to
// the hardware concurrency.

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "algo/flooding.hpp"
#include "core/bounds.hpp"
#include "core/kset_spec.hpp"
#include "core/theorem2.hpp"
#include "exec/parallel_map.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

int main(int argc, char** argv) {
    using namespace ksa;
    const int threads =
        argc > 1 ? std::atoi(argv[1]) : exec::hardware_threads();

    std::cout << "E1: Theorem 2 border sweep (candidate: flooding, threshold "
                 "n-f)\n";
    std::cout << "bound applies iff k*(n-f) <= n-1; certificate columns show "
                 "the Theorem 1 conditions\n\n";
    std::cout << std::setw(4) << "n" << std::setw(4) << "f" << std::setw(4)
              << "k" << std::setw(8) << "bound" << std::setw(6) << "(A)"
              << std::setw(6) << "(B)" << std::setw(6) << "(D)" << std::setw(8)
              << "split" << std::setw(10) << "violate" << std::setw(10)
              << "#values" << "\n";

    // Step 1 (parallel-sweep recipe): materialize the iteration space.
    struct Point {
        int n, f, k;
    };
    std::vector<Point> points;
    for (int n : {4, 5, 6, 7, 8, 9, 10, 12})
        for (int f = 1; f < n; ++f)
            for (int k = 1; k <= 3; ++k) {
                if (k >= n) continue;
                if (core::theorem2_impossible(n, f, k))
                    points.push_back({n, f, k});
            }

    // Step 2: certify every point independently on the pool.
    std::vector<core::Theorem2Result> results =
        exec::parallel_map_deterministic(
            threads, points.size(), [&points](std::size_t i) {
                const Point& pt = points[i];
                algo::FloodingKSet candidate(pt.n - pt.f);
                return core::run_theorem2(candidate, pt.n, pt.f, pt.k, 5000);
            });

    // Step 3: fold into the report sequentially, in sweep order.
    int certified = 0;
    const int total_impossible = static_cast<int>(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& pt = points[i];
        const auto& c = results[i].certificate;
        if (c.complete()) ++certified;
        std::cout << std::setw(4) << pt.n << std::setw(4) << pt.f
                  << std::setw(4) << pt.k << std::setw(8) << "yes"
                  << std::setw(6) << (c.condition_a ? "ok" : "-")
                  << std::setw(6) << (c.condition_b ? "ok" : "-")
                  << std::setw(6) << (c.condition_d ? "ok" : "-")
                  << std::setw(8) << (c.consensus_split ? "ok" : "-")
                  << std::setw(10) << (c.violation ? "YES" : "no")
                  << std::setw(10) << c.violating_values.size() << "\n";
    }
    std::cout << "\ncertified " << certified << "/" << total_impossible
              << " impossible points with a full Theorem 1 witness chain\n";

    std::cout << "\nSolvable side (k >= f+1): flooding achieves k-set "
                 "agreement\n";
    std::cout << std::setw(4) << "n" << std::setw(4) << "f" << std::setw(4)
              << "k" << std::setw(14) << "worst #vals" << std::setw(10)
              << "spec ok\n";

    struct SolvablePoint {
        int n, f;
    };
    std::vector<SolvablePoint> solvable;
    for (int n : {5, 7, 9})
        for (int f = 1; f <= 3; ++f) solvable.push_back({n, f});

    struct SolvableRow {
        int worst = 0;
        bool ok = true;
    };
    std::vector<SolvableRow> rows = exec::parallel_map_deterministic(
        threads, solvable.size(), [&solvable](std::size_t i) {
            const auto [n, f] = solvable[i];
            const int k = f + 1;
            auto algorithm = algo::make_flooding(n, f);
            SolvableRow row;
            for (std::uint64_t seed = 1; seed <= 25; ++seed) {
                RandomScheduler sched(seed);
                Run run = execute_run(*algorithm, n, distinct_inputs(n), {},
                                      sched);
                row.worst = std::max(
                    row.worst,
                    static_cast<int>(run.distinct_decisions().size()));
                row.ok = row.ok && core::check_kset_agreement(run, k).ok();
            }
            return row;
        });
    for (std::size_t i = 0; i < solvable.size(); ++i) {
        const auto [n, f] = solvable[i];
        std::cout << std::setw(4) << n << std::setw(4) << f << std::setw(4)
                  << f + 1 << std::setw(14) << rows[i].worst << std::setw(10)
                  << (rows[i].ok ? "yes" : "NO") << "\n";
    }
    return certified == total_impossible ? 0 : 1;
}
