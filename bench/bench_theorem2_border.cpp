// E1 -- Theorem 2 / Corollary 5: the impossibility border
// k <= (n-1)/(n-f) for partially synchronous processes with asynchronous
// communication.
//
// For every (n, f, k) in the sweep, prints whether the bound applies
// and, when it does, runs the full Theorem 1 certification against the
// f-resilient flooding candidate: conditions (A), (B), (D), the
// consensus split inside <D>, and the assembled admissible run with
// more than k distinct decisions.  On the solvable side of the border
// (k >= f+1), flooding genuinely solves k-set agreement and the sweep
// reports the observed maximum of distinct decisions instead.

#include <iomanip>
#include <iostream>

#include "algo/flooding.hpp"
#include "core/bounds.hpp"
#include "core/kset_spec.hpp"
#include "core/theorem2.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

int main() {
    using namespace ksa;
    std::cout << "E1: Theorem 2 border sweep (candidate: flooding, threshold "
                 "n-f)\n";
    std::cout << "bound applies iff k*(n-f) <= n-1; certificate columns show "
                 "the Theorem 1 conditions\n\n";
    std::cout << std::setw(4) << "n" << std::setw(4) << "f" << std::setw(4)
              << "k" << std::setw(8) << "bound" << std::setw(6) << "(A)"
              << std::setw(6) << "(B)" << std::setw(6) << "(D)" << std::setw(8)
              << "split" << std::setw(10) << "violate" << std::setw(10)
              << "#values" << "\n";

    int certified = 0, total_impossible = 0;
    for (int n : {4, 5, 6, 7, 8, 9, 10, 12}) {
        for (int f = 1; f < n; ++f) {
            for (int k = 1; k <= 3; ++k) {
                if (k >= n) continue;
                const bool bound = core::theorem2_impossible(n, f, k);
                if (!bound) continue;
                ++total_impossible;
                algo::FloodingKSet candidate(n - f);
                core::Theorem2Result r =
                    core::run_theorem2(candidate, n, f, k, 5000);
                const auto& c = r.certificate;
                if (c.complete()) ++certified;
                std::cout << std::setw(4) << n << std::setw(4) << f
                          << std::setw(4) << k << std::setw(8) << "yes"
                          << std::setw(6) << (c.condition_a ? "ok" : "-")
                          << std::setw(6) << (c.condition_b ? "ok" : "-")
                          << std::setw(6) << (c.condition_d ? "ok" : "-")
                          << std::setw(8) << (c.consensus_split ? "ok" : "-")
                          << std::setw(10) << (c.violation ? "YES" : "no")
                          << std::setw(10) << c.violating_values.size() << "\n";
            }
        }
    }
    std::cout << "\ncertified " << certified << "/" << total_impossible
              << " impossible points with a full Theorem 1 witness chain\n";

    std::cout << "\nSolvable side (k >= f+1): flooding achieves k-set "
                 "agreement\n";
    std::cout << std::setw(4) << "n" << std::setw(4) << "f" << std::setw(4)
              << "k" << std::setw(14) << "worst #vals" << std::setw(10)
              << "spec ok\n";
    for (int n : {5, 7, 9}) {
        for (int f = 1; f <= 3; ++f) {
            const int k = f + 1;
            auto algorithm = algo::make_flooding(n, f);
            int worst = 0;
            bool ok = true;
            for (std::uint64_t seed = 1; seed <= 25; ++seed) {
                RandomScheduler sched(seed);
                Run run = execute_run(*algorithm, n, distinct_inputs(n), {},
                                      sched);
                worst = std::max(
                    worst, static_cast<int>(run.distinct_decisions().size()));
                ok = ok && core::check_kset_agreement(run, k).ok();
            }
            std::cout << std::setw(4) << n << std::setw(4) << f << std::setw(4)
                      << k << std::setw(14) << worst << std::setw(10)
                      << (ok ? "yes" : "NO") << "\n";
        }
    }
    return certified == total_impossible ? 0 : 1;
}
