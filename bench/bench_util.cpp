#include "bench_util.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "sim/types.hpp"

namespace ksa::bench {

namespace {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string render_double(double value) {
    // Fixed format with three decimals: stable across locales and
    // readable for millisecond timings.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    return buf;
}

}  // namespace

BenchEntry::BenchEntry(std::string name) : name_(std::move(name)) {}

BenchEntry& BenchEntry::num(const std::string& key, double value) {
    fields_.emplace_back(key, render_double(value));
    return *this;
}

BenchEntry& BenchEntry::num(const std::string& key, std::int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
}

BenchEntry& BenchEntry::num(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
}

BenchEntry& BenchEntry::num(const std::string& key, int value) {
    return num(key, static_cast<std::int64_t>(value));
}

BenchEntry& BenchEntry::boolean(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
    return *this;
}

BenchEntry& BenchEntry::str(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, '"' + json_escape(value) + '"');
    return *this;
}

std::string BenchEntry::to_json() const {
    std::ostringstream out;
    out << "{\"name\": \"" << json_escape(name_) << "\"";
    for (const auto& [key, value] : fields_)
        out << ", \"" << json_escape(key) << "\": " << value;
    out << "}";
    return out.str();
}

BenchReport::BenchReport(std::string suite) : suite_(std::move(suite)) {}

BenchEntry& BenchReport::entry(std::string name) {
    entries_.emplace_back(std::move(name));
    return entries_.back();
}

std::string BenchReport::to_json() const {
    std::ostringstream out;
    out << "{\n  \"suite\": \"" << json_escape(suite_) << "\",\n";
    out << "  \"entries\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i)
        out << "    " << entries_[i].to_json()
            << (i + 1 < entries_.size() ? "," : "") << "\n";
    out << "  ]\n}\n";
    return out.str();
}

void BenchReport::write(const std::string& path) const {
    std::ofstream out(path);
    require(static_cast<bool>(out), "BenchReport::write: cannot open " + path);
    out << to_json();
    require(static_cast<bool>(out), "BenchReport::write: write failed: " + path);
    std::cout << "wrote " << path << "\n";
}

}  // namespace ksa::bench
