// E3 -- Theorem 8, border side: at k*n = (k+1)*f the problem becomes
// impossible; the standard partitioning argument produces a crash-free
// admissible run with k+1 distinct decisions.
//
// For each k, takes n = (k+1) * group for several group sizes, builds
// the k+1-way partition pasting against the generalized FLP protocol,
// and prints: the number of distinct decisions in the pasted run, the
// Definition 2 indistinguishability verdict between the isolated runs
// eps_i and the pasted run eps, and the admissibility verdict.

#include <iomanip>
#include <iostream>

#include "algo/initial_clique.hpp"
#include "core/theorem8.hpp"

int main() {
    using namespace ksa;
    std::cout << "E3: Theorem 8 border (k*n = (k+1)*f): the k+1-way "
                 "partition pasting\n\n";
    std::cout << std::setw(4) << "k" << std::setw(6) << "n" << std::setw(6)
              << "f" << std::setw(10) << "groups" << std::setw(12)
              << "#decided" << std::setw(10) << "indist" << std::setw(12)
              << "violation\n";

    bool all = true;
    for (int k : {1, 2, 3, 4}) {
        for (int group : {2, 3}) {
            const int n = (k + 1) * group;
            const int f = k * n / (k + 1);
            auto algorithm = algo::make_flp_kset(n, f);
            core::Theorem8Border border =
                core::theorem8_border(*algorithm, n, k);
            all = all && border.violation;
            std::cout << std::setw(4) << k << std::setw(6) << n << std::setw(6)
                      << f << std::setw(10) << k + 1 << std::setw(12)
                      << border.distinct_decisions << std::setw(10)
                      << (border.paste.all_indistinguishable ? "yes" : "NO")
                      << std::setw(12) << (border.violation ? "YES" : "no")
                      << "\n";
        }
    }
    std::cout << "\nevery row shows k+1 distinct decisions in an admissible "
                 "crash-free run -> k-agreement violated at the border\n";
    return all ? 0 : 1;
}
