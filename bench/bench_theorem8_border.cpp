// E3 -- Theorem 8, border side: at k*n = (k+1)*f the problem becomes
// impossible; the standard partitioning argument produces a crash-free
// admissible run with k+1 distinct decisions.
//
// For each k, takes n = (k+1) * group for several group sizes, builds
// the k+1-way partition pasting against the generalized FLP protocol,
// and prints: the number of distinct decisions in the pasted run, the
// Definition 2 indistinguishability verdict between the isolated runs
// eps_i and the pasted run eps, and the admissibility verdict.
//
// Points are evaluated in parallel (exec/parallel_map.hpp) and printed
// sequentially in sweep order, so the output is byte-identical for
// every thread count.  `bench_theorem8_border [threads]` defaults to
// the hardware concurrency.

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "algo/initial_clique.hpp"
#include "core/theorem8.hpp"
#include "exec/parallel_map.hpp"

int main(int argc, char** argv) {
    using namespace ksa;
    const int threads =
        argc > 1 ? std::atoi(argv[1]) : exec::hardware_threads();

    std::cout << "E3: Theorem 8 border (k*n = (k+1)*f): the k+1-way "
                 "partition pasting\n\n";
    std::cout << std::setw(4) << "k" << std::setw(6) << "n" << std::setw(6)
              << "f" << std::setw(10) << "groups" << std::setw(12)
              << "#decided" << std::setw(10) << "indist" << std::setw(12)
              << "violation\n";

    struct Point {
        int k, n, f;
    };
    std::vector<Point> points;
    for (int k : {1, 2, 3, 4})
        for (int group : {2, 3}) {
            const int n = (k + 1) * group;
            points.push_back({k, n, k * n / (k + 1)});
        }

    std::vector<core::Theorem8Border> borders =
        exec::parallel_map_deterministic(
            threads, points.size(), [&points](std::size_t i) {
                const Point& pt = points[i];
                auto algorithm = algo::make_flp_kset(pt.n, pt.f);
                return core::theorem8_border(*algorithm, pt.n, pt.k);
            });

    bool all = true;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& pt = points[i];
        const core::Theorem8Border& border = borders[i];
        all = all && border.violation;
        std::cout << std::setw(4) << pt.k << std::setw(6) << pt.n
                  << std::setw(6) << pt.f << std::setw(10) << pt.k + 1
                  << std::setw(12) << border.distinct_decisions
                  << std::setw(10)
                  << (border.paste.all_indistinguishable ? "yes" : "NO")
                  << std::setw(12) << (border.violation ? "YES" : "no")
                  << "\n";
    }
    std::cout << "\nevery row shows k+1 distinct decisions in an admissible "
                 "crash-free run -> k-agreement violated at the border\n";
    return all ? 0 : 1;
}
