// Chaos-layer costs: what adversarial fault injection adds to a run,
// what a resilience sweep costs per trial, and how hard the shrinker
// works for its reductions.
//
//   (a) injector overhead -- steps-to-quiescence and wall time of the
//       Theorem 8 algorithm under a bare random schedule vs the same
//       schedule wrapped in guard-mode chaos, across n.  The drops the
//       guard converts into delays and the duplicate deliveries both
//       lengthen runs; this table quantifies by how much.
//   (b) sweep throughput -- trials/second of the full resilience grid,
//       the number CI budgets against.
//   (c) byzantine sweep -- trials/second and per-cell mean cost of the
//       Bouzid-Imbs-Raynal grid under corruption + equivocation, plus
//       the witnessed-violation and inconclusive counts.
//   (d) shrink effort -- planted violations at increasing mess levels
//       (duplication rate), with fault events before/after, replay
//       candidates tried, the acceptance ratio and wall time; one row
//       adds equivocation faults so the Byzantine shrink path is
//       measured too.
//
// Usage: bench_chaos [--out FILE] [--quick]
//
// Emits a BENCH_chaos.json report (bench_util schema): every derived
// count in an entry is byte-stable, only the *_ms timings vary across
// machines.

#include <cstring>
#include <iostream>
#include <string>

#include "algo/initial_clique.hpp"
#include "bench_util.hpp"
#include "chaos/chaos_trace.hpp"
#include "chaos/fault_injector.hpp"
#include "chaos/profile.hpp"
#include "chaos/resilience.hpp"
#include "chaos/shrink.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

namespace {

using namespace ksa;

struct Options {
    std::string out = "BENCH_chaos.json";
    bool quick = false;
};

Options parse_args(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            opt.out = argv[++i];
        else if (std::strcmp(argv[i], "--quick") == 0)
            opt.quick = true;
        else {
            std::cerr << "usage: bench_chaos [--out FILE] [--quick]\n";
            std::exit(2);
        }
    }
    return opt;
}

/// (a) steps and wall time, bare vs guard-chaos, at one n.
void bench_injector_overhead(bench::BenchReport& report, int n, int seeds) {
    const auto algorithm = algo::make_flp_kset(n, 1);
    FailurePlan plan;
    plan.set_initially_dead(2);

    long bare_steps = 0, chaos_steps = 0, faults = 0;
    const double bare_ms = bench::time_call_ms([&] {
        for (std::uint64_t seed = 1; seed <= std::uint64_t(seeds); ++seed) {
            RandomScheduler sched(seed);
            Run run = execute_run(*algorithm, n, distinct_inputs(n), plan,
                                  sched);
            bare_steps += static_cast<long>(run.steps.size());
        }
    });
    const double chaos_ms = bench::time_call_ms([&] {
        for (std::uint64_t seed = 1; seed <= std::uint64_t(seeds); ++seed) {
            RandomScheduler sched(seed);
            chaos::FaultInjector injector(sched,
                                          chaos::guarded_profile(seed));
            Run run = execute_run(*algorithm, n, distinct_inputs(n), plan,
                                  injector);
            chaos_steps += static_cast<long>(run.steps.size());
            faults += injector.stats().total_faults();
        }
    });

    report.entry("injector_overhead_n" + std::to_string(n))
        .num("n", n)
        .num("seeds", seeds)
        .num("bare_steps", static_cast<std::int64_t>(bare_steps))
        .num("chaos_steps", static_cast<std::int64_t>(chaos_steps))
        .num("faults", static_cast<std::int64_t>(faults))
        .num("bare_ms", bare_ms)
        .num("chaos_ms", chaos_ms);
    std::cout << "  injector n=" << n << ": " << bare_steps / seeds
              << " -> " << chaos_steps / seeds << " steps/run, "
              << faults / seeds << " faults/run\n";
}

/// (b) the crash-model resilience grid.
void bench_crash_sweep(bench::BenchReport& report, const Options& opt) {
    chaos::SweepConfig config;
    config.profile = chaos::guarded_profile(1);
    if (opt.quick) {
        config.max_n = 5;
        config.seeds_per_cell = 8;
    }
    chaos::SweepReport sweep;
    const double ms =
        bench::time_call_ms([&] { sweep = chaos::resilience_sweep(config); });
    report.entry("crash_sweep")
        .num("max_n", config.max_n)
        .num("seeds_per_cell", config.seeds_per_cell)
        .num("trials", sweep.total_trials())
        .boolean("boundary_clean", sweep.boundary_clean())
        .boolean("complete", sweep.complete())
        .num("total_ms", ms)
        .num("trials_per_s", sweep.total_trials() * 1000.0 / ms);
    std::cout << "  crash sweep: " << sweep.total_trials() << " trials in "
              << ms << " ms\n";
}

/// (c) the Byzantine grid: throughput plus the stable outcome tallies.
void bench_byzantine_sweep(bench::BenchReport& report, const Options& opt) {
    chaos::SweepConfig config;
    config.model = chaos::SweepConfig::FaultModel::kByzantine;
    config.max_n = opt.quick ? 4 : 5;
    config.seeds_per_cell = opt.quick ? 6 : 12;
    config.profile = chaos::byzantine_profile(config.base_seed, -1);
    config.limits.max_steps = 6000;
    chaos::SweepReport sweep;
    const double ms =
        bench::time_call_ms([&] { sweep = chaos::resilience_sweep(config); });

    int violations = 0, inconclusive = 0, retries = 0;
    for (const chaos::CellResult& c : sweep.cells) {
        violations += c.agreement_violations + c.validity_violations;
        inconclusive += c.inconclusive;
        retries += c.retries;
    }
    const double cells = static_cast<double>(sweep.cells.size());
    report.entry("byzantine_sweep")
        .num("max_n", config.max_n)
        .num("seeds_per_cell", config.seeds_per_cell)
        .num("cells", static_cast<std::int64_t>(sweep.cells.size()))
        .num("trials", sweep.total_trials())
        .num("violations_witnessed", violations)
        .num("inconclusive", inconclusive)
        .num("retries", retries)
        .boolean("complete", sweep.complete())
        .num("total_ms", ms)
        .num("mean_cell_ms", cells > 0 ? ms / cells : 0.0)
        .num("trials_per_s", sweep.total_trials() * 1000.0 / ms);
    std::cout << "  byzantine sweep: " << sweep.total_trials()
              << " trials, " << violations << " violations, " << inconclusive
              << " inconclusive in " << ms << " ms\n";
}

/// (d) one shrink row: a planted (n=4, f=2, k=1) partition violation at
/// the given duplication rate, optionally with equivocation on top so
/// the Byzantine sanitization path is exercised.
void bench_shrink(bench::BenchReport& report, int dup, bool byzantine) {
    const auto algorithm = algo::make_flp_kset(4, 2);
    const chaos::RunPredicate violates = chaos::violates_k_agreement(1);

    // The partition forces the violation in the bare run; added chaos
    // can perturb it away for a particular seed -- and equivocation can
    // break a receiver's closure so the drain spins to the step limit.
    // Scan seeds for a run that terminates within a tight step budget
    // AND still reproduces (deterministic: first hit wins).
    ExecutionLimits limits;
    limits.max_steps = 3000;
    Run run;
    bool found = false;
    for (std::uint64_t seed = 11; seed <= 60 && !found; ++seed) {
        PartitionScheduler partition({{1, 2}, {3, 4}});
        chaos::ChaosProfile profile = chaos::guarded_profile(seed);
        profile.duplicate_per_mille = dup;
        profile.max_duplicates = 32;
        if (byzantine) {
            profile.equivocate_per_mille = 80;
            profile.max_equivocations = 3;
            profile.max_byzantine = 2;
        }
        chaos::FaultInjector injector(partition, profile);
        run = execute_run(*algorithm, 4, distinct_inputs(4), FailurePlan{},
                          injector, nullptr, limits);
        found = run.stop != StopReason::kStepLimit && violates(run);
    }
    if (!found) {
        std::cout << "  shrink dup=" << dup << (byzantine ? " +byz" : "")
                  << ": no violating seed in range, skipped\n";
        return;
    }

    chaos::ShrinkResult shrunk;
    const double ms = bench::time_call_ms([&] {
        shrunk = chaos::shrink_chaos_trace(
            *algorithm, chaos::extract_chaos_trace(run), violates);
    });
    const double acceptance =
        shrunk.original_faults > 0
            ? static_cast<double>(shrunk.shrunk_faults) /
                  static_cast<double>(shrunk.original_faults)
            : 0.0;
    report.entry(std::string(byzantine ? "shrink_byz_dup" : "shrink_dup") +
                 std::to_string(dup))
        .num("dup_per_mille", dup)
        .boolean("byzantine", byzantine)
        .num("original_faults", shrunk.original_faults)
        .num("shrunk_faults", shrunk.shrunk_faults)
        .num("candidates_tried", shrunk.candidates_tried)
        .num("acceptance", acceptance)
        .num("shrink_ms", ms);
    std::cout << "  shrink dup=" << dup << (byzantine ? " +byz" : "")
              << ": " << shrunk.original_faults << " -> "
              << shrunk.shrunk_faults << " faults, "
              << shrunk.candidates_tried << " candidates\n";
}

}  // namespace

int main(int argc, char** argv) {
    const Options opt = parse_args(argc, argv);
    bench::BenchReport report("chaos");

    std::cout << "B-chaos (a): guard-mode injector overhead\n";
    const int max_n = opt.quick ? 5 : 7;
    const int seeds = opt.quick ? 8 : 20;
    for (int n = 3; n <= max_n; ++n)
        bench_injector_overhead(report, n, seeds);

    std::cout << "B-chaos (b): crash resilience sweep\n";
    bench_crash_sweep(report, opt);

    std::cout << "B-chaos (c): byzantine resilience sweep\n";
    bench_byzantine_sweep(report, opt);

    std::cout << "B-chaos (d): shrink effort\n";
    for (int dup : {200, 400, 700}) bench_shrink(report, dup, false);
    bench_shrink(report, 400, true);

    report.write(opt.out);
    return 0;
}
