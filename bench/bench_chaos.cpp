// Chaos-layer costs: what adversarial fault injection adds to a run,
// what a resilience sweep costs per trial, and how hard the shrinker
// works for its reductions.
//
//   (a) injector overhead -- steps-to-quiescence and wall time of the
//       Theorem 8 algorithm under a bare random schedule vs the same
//       schedule wrapped in guard-mode chaos, across n.  The drops the
//       guard converts into delays and the duplicate deliveries both
//       lengthen runs; this table quantifies by how much.
//   (b) sweep throughput -- trials/second of the full resilience grid,
//       the number CI budgets against.
//   (c) shrink effort -- planted violations at increasing mess levels
//       (duplication rate), with fault events before/after, replay
//       candidates tried and wall time.

#include <chrono>
#include <iomanip>
#include <iostream>

#include "algo/initial_clique.hpp"
#include "chaos/chaos_trace.hpp"
#include "chaos/fault_injector.hpp"
#include "chaos/profile.hpp"
#include "chaos/resilience.hpp"
#include "chaos/shrink.hpp"
#include "sim/schedulers.hpp"
#include "sim/system.hpp"

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

}  // namespace

int main() {
    using namespace ksa;

    std::cout << "B-chaos (a): guard-mode injector overhead, "
                 "flp_kset(n, f=1), k=1, 20 seeds each\n\n";
    std::cout << std::setw(4) << "n" << std::setw(12) << "bare steps"
              << std::setw(13) << "chaos steps" << std::setw(10) << "faults"
              << std::setw(12) << "bare ms" << std::setw(12) << "chaos ms"
              << "\n";
    for (int n = 3; n <= 7; ++n) {
        const auto algorithm = algo::make_flp_kset(n, 1);
        FailurePlan plan;
        plan.set_initially_dead(2);

        long bare_steps = 0, chaos_steps = 0, faults = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (std::uint64_t seed = 1; seed <= 20; ++seed) {
            RandomScheduler sched(seed);
            Run run = execute_run(*algorithm, n, distinct_inputs(n), plan,
                                  sched);
            bare_steps += static_cast<long>(run.steps.size());
        }
        const double bare_ms = ms_since(t0);

        const auto t1 = std::chrono::steady_clock::now();
        for (std::uint64_t seed = 1; seed <= 20; ++seed) {
            RandomScheduler sched(seed);
            chaos::FaultInjector injector(sched,
                                          chaos::guarded_profile(seed));
            Run run = execute_run(*algorithm, n, distinct_inputs(n), plan,
                                  injector);
            chaos_steps += static_cast<long>(run.steps.size());
            faults += injector.stats().total_faults();
        }
        const double chaos_ms = ms_since(t1);

        std::cout << std::setw(4) << n << std::setw(12) << bare_steps / 20
                  << std::setw(13) << chaos_steps / 20 << std::setw(10)
                  << faults / 20 << std::setw(12) << std::fixed
                  << std::setprecision(2) << bare_ms << std::setw(12)
                  << chaos_ms << "\n";
    }

    std::cout << "\nB-chaos (b): resilience sweep throughput "
                 "(n in [2,7], 20 seeds/cell)\n\n";
    {
        chaos::SweepConfig config;
        config.profile = chaos::guarded_profile(1);
        const auto t0 = std::chrono::steady_clock::now();
        const chaos::SweepReport report = chaos::resilience_sweep(config);
        const double ms = ms_since(t0);
        std::cout << "  " << report.total_trials() << " trials in "
                  << std::fixed << std::setprecision(1) << ms << " ms ("
                  << std::setprecision(0)
                  << report.total_trials() * 1000.0 / ms
                  << " trials/s), solvable side "
                  << (report.boundary_clean() ? "clean" : "NOT CLEAN")
                  << "\n";
    }

    std::cout << "\nB-chaos (c): shrink effort on planted violations "
                 "(n=4, f=2, k=1, partition + guard chaos)\n\n";
    std::cout << std::setw(10) << "dup rate" << std::setw(10) << "faults"
              << std::setw(10) << "shrunk" << std::setw(12) << "candidates"
              << std::setw(10) << "ms" << "\n";
    for (int dup : {200, 400, 700}) {
        const auto algorithm = algo::make_flp_kset(4, 2);
        PartitionScheduler partition({{1, 2}, {3, 4}});
        chaos::ChaosProfile profile = chaos::guarded_profile(11);
        profile.duplicate_per_mille = dup;
        profile.max_duplicates = 32;
        chaos::FaultInjector injector(partition, profile);
        Run run = execute_run(*algorithm, 4, distinct_inputs(4),
                              FailurePlan{}, injector);
        const auto t0 = std::chrono::steady_clock::now();
        const chaos::ShrinkResult shrunk = chaos::shrink_chaos_trace(
            *algorithm, chaos::extract_chaos_trace(run),
            chaos::violates_k_agreement(1));
        std::cout << std::setw(10) << dup << std::setw(10)
                  << shrunk.original_faults << std::setw(10)
                  << shrunk.shrunk_faults << std::setw(12)
                  << shrunk.candidates_tried << std::setw(10) << std::fixed
                  << std::setprecision(2) << ms_since(t0) << "\n";
    }
    return 0;
}
