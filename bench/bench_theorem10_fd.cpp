// E4 -- Theorem 10 + Corollary 13: the exact solvability border of
// k-set agreement with the failure detector family (Sigma_k, Omega_k).
//
// For every n in the sweep and every k in [1, n-1]:
//   * k = 1:    possibility -- Paxos with (Sigma, Omega) reaches
//               consensus (trial column shows distinct decisions);
//   * 2..n-2:   impossibility -- the Theorem 10 construction defeats the
//               (Sigma_k, Omega_k) candidate; the table shows the full
//               certificate and the Lemma 9 history re-validation;
//   * k = n-1:  possibility -- the ranked protocol with Sigma_{n-1}.
//
// This regenerates the paper's Corollary 13: solvable iff k = 1 or
// k = n-1.

#include <iomanip>
#include <iostream>

#include "algo/quorum_leader_kset.hpp"
#include "core/corollary13.hpp"
#include "core/theorem10.hpp"

int main() {
    using namespace ksa;
    std::cout << "E4: (Sigma_k, Omega_k) border sweep -- Corollary 13\n\n";
    std::cout << std::setw(4) << "n" << std::setw(4) << "k" << std::setw(14)
              << "verdict" << std::setw(34) << "evidence" << "\n";

    bool all = true;
    for (int n : {4, 5, 6, 7, 8}) {
        for (int k = 1; k <= n - 1; ++k) {
            std::cout << std::setw(4) << n << std::setw(4) << k;
            if (k == 1) {
                core::Corollary13Trial t =
                    core::corollary13_consensus_trial(n, {}, 1000 + n);
                const bool ok = t.check.ok() && t.distinct_decisions == 1;
                all = all && ok;
                std::cout << std::setw(14) << "solvable" << std::setw(24)
                          << "paxos decides" << std::setw(3)
                          << t.distinct_decisions << " value"
                          << (ok ? "" : "  UNEXPECTED") << "\n";
            } else if (k == n - 1) {
                core::Corollary13Trial t =
                    core::corollary13_set_trial(n, {}, 2000 + n);
                const bool ok = t.check.ok();
                all = all && ok;
                std::cout << std::setw(14) << "solvable" << std::setw(24)
                          << "ranked decides" << std::setw(3)
                          << t.distinct_decisions << " <= " << k
                          << (ok ? "" : "  UNEXPECTED") << "\n";
            } else {
                algo::QuorumLeaderKSet candidate;
                core::Theorem10Result r =
                    core::run_theorem10(candidate, n, k, 5000);
                const bool ok = r.certificate.complete() &&
                                r.partition_validation.ok &&
                                r.sigma_omega_validation.ok;
                all = all && ok;
                std::cout << std::setw(14) << "IMPOSSIBLE" << std::setw(18)
                          << "witness run:" << std::setw(3)
                          << r.certificate.violating_values.size() << " > " << k
                          << " values, Lemma9="
                          << (r.sigma_omega_validation.ok ? "ok" : "FAIL")
                          << (ok ? "" : "  INCOMPLETE") << "\n";
            }
        }
        std::cout << "\n";
    }
    std::cout << "border reproduced: (Sigma_k, Omega_k) solves k-set "
                 "agreement iff k = 1 or k = n-1\n";
    std::cout << "(compare [Bouzid & Travers 2010], impossible only when "
                 "2k^2 <= n: Theorem 10 covers the whole band 2..n-2)\n";
    return all ? 0 : 1;
}
