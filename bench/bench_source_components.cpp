// E6 -- Lemmas 6 and 7: source-component statistics of random digraphs
// with min in-degree delta, and of FLP stage graphs with threshold L.
//
// Confirms, over large random sweeps: every source component has size
// >= delta+1; the number of source components never exceeds
// floor(n/(delta+1)); with 2*delta >= n the source component is unique.

#include <iomanip>
#include <iostream>

#include "graph/generators.hpp"
#include "graph/scc.hpp"

int main() {
    using namespace ksa::graph;
    std::cout << "E6: source components of random min-in-degree graphs\n\n";
    std::cout << std::setw(6) << "n" << std::setw(7) << "delta" << std::setw(9)
              << "trials" << std::setw(10) << "min|SC|" << std::setw(10)
              << "max#SC" << std::setw(12) << "bound" << std::setw(10)
              << "holds\n";

    bool all = true;
    for (int n : {10, 20, 40, 80}) {
        for (int delta : {1, 2, n / 4, n / 2, n - 2}) {
            if (delta < 1 || delta >= n) continue;
            const int trials = 200;
            int min_size = n + 1, max_count = 0;
            bool ok = true;
            for (int t = 0; t < trials; ++t) {
                Digraph g = random_min_indegree(
                    n, delta, static_cast<std::uint64_t>(t) * 1315423911u + 1);
                auto sources = source_components(g);
                for (const auto& sc : sources) {
                    min_size = std::min(min_size, static_cast<int>(sc.size()));
                    if (static_cast<int>(sc.size()) < delta + 1) ok = false;
                }
                max_count =
                    std::max(max_count, static_cast<int>(sources.size()));
                if (static_cast<int>(sources.size()) > n / (delta + 1))
                    ok = false;
                if (2 * delta >= n && sources.size() != 1) ok = false;
            }
            all = all && ok;
            std::cout << std::setw(6) << n << std::setw(7) << delta
                      << std::setw(9) << trials << std::setw(10) << min_size
                      << std::setw(10) << max_count << std::setw(9) << "<="
                      << n / (delta + 1) << std::setw(10) << (ok ? "yes" : "NO")
                      << "\n";
        }
    }

    std::cout << "\nFLP stage graphs (waiting for L-1 messages, d initially "
                 "dead):\n";
    std::cout << std::setw(6) << "n" << std::setw(5) << "L" << std::setw(6)
              << "dead" << std::setw(10) << "max#SC" << std::setw(16)
              << "floor(live/L)\n";
    for (int n : {9, 12, 15}) {
        for (int l : {2, 3, n / 2}) {
            for (int dead_count : {0, 2}) {
                if (l - 1 >= n - dead_count) continue;
                std::vector<int> dead;
                for (int i = 0; i < dead_count; ++i) dead.push_back(i);
                int max_count = 0;
                for (int t = 0; t < 100; ++t) {
                    Digraph g = random_stage_graph(
                        n, l - 1, dead,
                        static_cast<std::uint64_t>(t) * 2654435761u + 3);
                    std::vector<int> live;
                    for (int v = dead_count; v < n; ++v) live.push_back(v);
                    auto sources = source_components(g.induced(live));
                    max_count =
                        std::max(max_count, static_cast<int>(sources.size()));
                }
                const int bound = (n - dead_count) / l;
                if (max_count > bound) all = false;
                std::cout << std::setw(6) << n << std::setw(5) << l
                          << std::setw(6) << dead_count << std::setw(10)
                          << max_count << std::setw(16) << bound << "\n";
            }
        }
    }
    std::cout << "\n"
              << (all ? "all bounds hold" : "BOUND VIOLATED") << "\n";
    return all ? 0 : 1;
}
