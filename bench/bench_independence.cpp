// E7 -- Section IV: the T-independence matrix of the protocol zoo.
//
// For each protocol and each classic progress-condition family, builds
// the Definition 6 isolation runs and reports whether the protocol is
// T-independent for that family.  The pattern matches the paper's
// catalogue: wait-freedom gives 2^Pi-independence (trivial protocol),
// f-resilience gives {|S| >= n-f}-independence (flooding with threshold
// n-f), and the FLP protocol is independent exactly for the families
// whose sets can host L-1 peers.

#include <iomanip>
#include <iostream>

#include "algo/flooding.hpp"
#include "algo/initial_clique.hpp"
#include "core/independence.hpp"
#include "sim/system.hpp"

int main() {
    using namespace ksa;
    const int n = 5;
    std::cout << "E7: T-independence matrix (n = " << n << ")\n\n";

    struct Family {
        const char* label;
        std::vector<std::vector<ProcessId>> sets;
    };
    std::vector<Family> families = {
        {"wait-free (2^Pi)", core::wait_free_family(n)},
        {"obstruction-free", core::obstruction_free_family(n)},
        {"1-resilient", core::f_resilient_family(n, 1)},
        {"2-resilient", core::f_resilient_family(n, 2)},
        {"3-resilient", core::f_resilient_family(n, 3)},
        {"asym wait-free p1", core::asymmetric_family(n, 1)},
    };

    algo::TrivialWaitFree trivial;
    algo::FloodingKSet flood1(n - 1), flood2(n - 2), flood3(n - 3);
    algo::InitialCliqueKSet flp_major((n + 2) / 2), flp_small(2);
    struct Row {
        const char* label;
        const Algorithm* algorithm;
    };
    std::vector<Row> rows = {
        {"trivial-wait-free", &trivial},   {"flooding f=1", &flood1},
        {"flooding f=2", &flood2},         {"flooding f=3", &flood3},
        {"initial-clique L=4", &flp_major}, {"initial-clique L=2", &flp_small},
    };

    std::cout << std::left << std::setw(22) << "protocol";
    for (const Family& f : families) std::cout << std::setw(19) << f.label;
    std::cout << "\n";

    for (const Row& row : rows) {
        std::cout << std::left << std::setw(22) << row.label;
        for (const Family& family : families) {
            core::FamilyIndependence r = core::check_family_independence(
                *row.algorithm, n, distinct_inputs(n), {}, family.sets, {},
                400);
            int held = 0;
            for (const auto& w : r.witnesses) held += w.holds;
            std::ostringstream cell;
            cell << (r.holds_for_all ? "yes" : " - ") << " (" << held << "/"
                 << r.witnesses.size() << ")";
            std::cout << std::setw(19) << cell.str();
        }
        std::cout << "\n";
    }

    std::cout << "\n(cells: family holds? (sets-that-held / sets-checked));\n"
                 "the f-resilient rows hold exactly down to sets of size "
                 "n-f, matching Section IV's catalogue\n";
    return 0;
}
