// E9 (extension) -- the round-model landscape the Discussion section
// points at:
//
//   (a) FloodMin under the synchronous f-crash adversary: the classic
//       floor(f/k)+1 round bound, swept over (n, f, k) and adversarial
//       crash schedules;
//   (b) the Theorem-1-style partition argument in the Heard-Of model:
//       k+1 isolated blocks force k+1 decisions;
//   (c) the synchronous-window crossover (Alistarh et al. [1],
//       qualitatively): a window opening before the decision round
//       rescues agreement, one opening after is too late.

#include <iomanip>
#include <iostream>

#include "algo/floodmin.hpp"
#include "core/ho_argument.hpp"
#include "sim/rounds.hpp"
#include "sim/system.hpp"

int main() {
    using namespace ksa;
    bool all = true;

    std::cout << "E9a: FloodMin with floor(f/k)+1 rounds under staggered "
                 "crashes\n\n";
    std::cout << std::setw(4) << "n" << std::setw(4) << "f" << std::setw(4)
              << "k" << std::setw(8) << "rounds" << std::setw(10) << "trials"
              << std::setw(10) << "worst#" << std::setw(10) << "bound\n";
    for (int n : {5, 7, 9, 12}) {
        for (int f = 1; f < n - 1; f += 2) {
            for (int k : {1, 2, 3}) {
                if (k > f) continue;
                int worst = 0;
                const int trials = 20;
                for (int t = 0; t < trials; ++t) {
                    std::vector<int> rounds;
                    for (int i = 0; i < f; ++i) rounds.push_back(i / k + 1);
                    worst = std::max(
                        worst, core::ho_floodmin_crash_trial(
                                   n, f, k, rounds,
                                   static_cast<std::uint64_t>(t) * 97 + 1));
                }
                if (worst > k) all = false;
                std::cout << std::setw(4) << n << std::setw(4) << f
                          << std::setw(4) << k << std::setw(8)
                          << algo::FloodMin::rounds_for(f, k) << std::setw(10)
                          << trials << std::setw(10) << worst << std::setw(7)
                          << "<= " << k << "\n";
            }
        }
    }

    std::cout << "\nE9b: the partition argument in the HO model (k+1 blocks "
                 "isolated for ever)\n\n";
    std::cout << std::setw(4) << "k" << std::setw(6) << "n" << std::setw(12)
              << "#decided" << std::setw(10) << "indist" << std::setw(12)
              << "violation\n";
    for (int k : {1, 2, 3}) {
        const int group = 2;
        const int n = (k + 1) * group;
        std::vector<std::vector<ProcessId>> blocks;
        for (int i = 0; i <= k; ++i) {
            std::vector<ProcessId> b;
            for (int j = 1; j <= group; ++j) b.push_back(i * group + j);
            blocks.push_back(std::move(b));
        }
        algo::FloodMin algorithm(2);
        core::HoPartitionResult r =
            core::ho_partition_argument(algorithm, n, k, blocks, 0);
        all = all && r.violation && r.all_indistinguishable;
        std::cout << std::setw(4) << k << std::setw(6) << n << std::setw(12)
                  << r.distinct_decisions << std::setw(10)
                  << (r.all_indistinguishable ? "yes" : "NO") << std::setw(12)
                  << (r.violation ? "YES" : "no") << "\n";
    }

    std::cout << "\nE9c: synchronous-window crossover (n=6, k=2, 3 blocks, "
                 "FloodMin R=3)\n\n";
    std::cout << std::setw(18) << "window opens at" << std::setw(12)
              << "#decided" << std::setw(12) << "violation\n";
    for (int window : {1, 2, 3, 4, 0}) {
        algo::FloodMin algorithm(3);
        core::HoPartitionResult r = core::ho_partition_argument(
            algorithm, 6, 2, {{1, 2}, {3, 4}, {5, 6}}, window);
        std::ostringstream label;
        if (window == 0)
            label << "never";
        else
            label << "round " << window + 1;
        std::cout << std::setw(18) << label.str() << std::setw(12)
                  << r.distinct_decisions << std::setw(12)
                  << (r.violation ? "YES" : "no") << "\n";
    }
    std::cout << "\ncrossover: the protocol survives iff the window opens "
                 "before its decision round -- the paper's border logic in "
                 "round form\n";
    return all ? 0 : 1;
}
